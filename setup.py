"""Shim for legacy editable installs (`pip install -e . --no-use-pep517`).

All real metadata lives in pyproject.toml; this file exists because the
offline environment lacks the `wheel` package PEP-517 editable installs need.
"""

from setuptools import setup

setup()
