"""Streaming training + quantised deployment: the full edge lifecycle.

Beyond the paper's batch evaluation, this example walks the lifecycle its
introduction motivates: an edge device (1) learns from a sensor stream one
``partial_fit`` mini-batch at a time — incremental training is part of the
estimator protocol, so the streamed learner is an ordinary
``make_model("disthd-stream")`` classifier — then (2) freezes the model
into a 1-bit fixed-point memory image for deployment, and (3) keeps serving
predictions while its memory slowly accumulates bit errors.

Run with::

    python examples/streaming_edge.py
"""

from repro import make_model
from repro.datasets.loaders import load_dataset
from repro.deploy import QuantizedHDCModel


def main() -> None:
    dataset = load_dataset("pamap2", scale=0.004, seed=0)
    print(
        f"PAMAP2 analog stream: {dataset.n_train} samples, "
        f"{dataset.n_features} IMU features, {dataset.n_classes} activities\n"
    )

    # ---------------------------------------------------------- 1. streaming
    model = make_model(
        "disthd-stream", dim=256, seed=0,
        reservoir_size=400, regen_every=5,
    )
    classes = range(dataset.n_classes)
    for epoch in range(3):
        for batch_x, batch_y in dataset.batches(64, seed=epoch):
            model.partial_fit(batch_x, batch_y, classes=classes)
        acc = model.score(dataset.test_x, dataset.test_y)
        print(
            f"epoch {epoch}: test accuracy {acc:.3f}  "
            f"(batches {model.n_batches_}, regenerated "
            f"{model.total_regenerated_} dims, D*={model.effective_dim_})"
        )

    # --------------------------------------------------------- 2. deployment
    deployed = QuantizedHDCModel(model, bits=1)
    report = deployed.footprint_report()
    print(
        f"\ndeployed at 1-bit: class memory {report['memory_bytes']} bytes "
        f"({report['compression']:.0f}x smaller than float64), "
        f"test accuracy {deployed.score(dataset.test_x, dataset.test_y):.3f}"
    )

    # ------------------------------------------------- 3. lifetime bit decay
    print("\nsimulating memory decay on the device:")
    for step, rate in enumerate((0.01, 0.02, 0.05), start=1):
        flipped = deployed.inject_faults(rate, seed=step)
        acc = deployed.score(dataset.test_x, dataset.test_y)
        print(f"  +{rate:.0%} of bits flipped ({flipped} bits): accuracy {acc:.3f}")
    print(
        "\nThe holographic class memory degrades gracefully — the paper's "
        "robustness claim, end to end."
    )


if __name__ == "__main__":
    main()
