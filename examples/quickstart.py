"""Quickstart: train DistHD on a dataset analog in a dozen lines.

Run with::

    python examples/quickstart.py
"""

from repro import load_dataset, make_model

def main() -> None:
    # A scaled-down synthetic analog of the UCIHAR activity-recognition
    # dataset (561 features, 12 classes) — see DESIGN.md for why analogs.
    dataset = load_dataset("ucihar", scale=0.10, seed=0)
    print(
        f"dataset: {dataset.name}  "
        f"{dataset.n_train} train / {dataset.n_test} test samples, "
        f"{dataset.n_features} features, {dataset.n_classes} classes"
    )

    # Any registered model is one make_model call away; DistHD with the
    # paper's defaults: D=500 physical dimensions, 10% regeneration rate,
    # top-2-driven dimension regeneration.
    clf = make_model("disthd", dim=500, iterations=20, seed=0)
    clf.fit(dataset.train_x, dataset.train_y)

    accuracy = clf.score(dataset.test_x, dataset.test_y)
    print(f"test accuracy: {accuracy:.3f}")
    print(f"physical dimensionality D: {clf.config.dim}")
    print(f"effective dimensionality D* (after regeneration): {clf.effective_dim_}")
    print(f"iterations run: {clf.n_iterations_}")

    # The training history records the dynamic-encoding activity.
    total_regen = clf.history_.total_regenerated
    print(f"dimensions regenerated during training: {total_regen}")

    # Top-2 predictions (the signal DistHD's regeneration is driven by).
    top2 = clf.predict_topk(dataset.test_x[:5], k=2)
    print("first five top-2 predictions:")
    for i, pair in enumerate(top2):
        print(f"  sample {i}: {pair[0]} (best) / {pair[1]} (runner-up)"
              f"   true={dataset.test_y[i]}")


if __name__ == "__main__":
    main()
