"""Tuning sensitivity vs specificity with DistHD's weight parameters.

The paper's §III-C / Fig. 6: α weighs "distance from the true label" and
β/θ weigh "proximity to wrong labels" when scoring misleading dimensions.
Larger α favours sensitivity (fewer false negatives); larger β favours
specificity (fewer false positives).  This example binarises the ISOLET
voice analog (vowel-ish class group vs rest) and walks the trade-off.

Run with::

    python examples/voice_roc_tuning.py
"""

import numpy as np

from repro import load_dataset, make_model
from repro.metrics.roc import auc, roc_curve
from repro.metrics.sensitivity import binary_rates
from repro.pipeline.report import format_markdown_table


def binarize(labels: np.ndarray, positive_classes) -> np.ndarray:
    return np.isin(labels, positive_classes).astype(np.int64)


def main() -> None:
    dataset = load_dataset("isolet", scale=0.10, seed=0)
    # Treat the first five letter classes as the positive group (e.g. a
    # wake-word cluster) and the rest as background.
    positive = list(range(5))
    train_y = binarize(dataset.train_y, positive)
    test_y = binarize(dataset.test_y, positive)
    print(
        f"ISOLET analog, binarised: {train_y.mean():.0%} positive rate, "
        f"{dataset.n_train} train / {dataset.n_test} test\n"
    )

    rows = []
    for alpha, beta in ((0.5, 1.0), (1.0, 1.0), (2.0, 1.0)):
        # Union selection + a higher regeneration rate make the weight
        # parameters bite visibly at example scale (with the paper's
        # conservative intersection, few dimensions regenerate per epoch and
        # all settings converge to near-identical models).
        clf = make_model(
            "disthd",
            dim=256, iterations=15, alpha=alpha, beta=beta, theta=beta / 4,
            regen_rate=0.2, selection="union", seed=0,
        )
        clf.fit(dataset.train_x, train_y)
        scores = clf.decision_scores(dataset.test_x)
        margin = scores[:, 1] - scores[:, 0]
        fpr, tpr, _ = roc_curve(test_y, margin)
        rates = binary_rates(test_y, clf.predict(dataset.test_x))
        rows.append(
            {
                "alpha/beta": f"{alpha / beta:g}",
                "AUC": auc(fpr, tpr),
                "sensitivity": rates.sensitivity,
                "specificity": rates.specificity,
                "FNR": rates.fnr,
                "FPR": rates.fpr,
            }
        )

    print(format_markdown_table(rows, precision=3))
    print(
        "\nReading the table: comparable AUC across settings, with the "
        "alpha-heavy model trading specificity for sensitivity — tune per "
        "task as §III-C prescribes."
    )


if __name__ == "__main__":
    main()
