"""Hardware-noise robustness on a simulated noisy edge device (paper §IV-D).

Trains DistHD and a DNN on the same analog, then flips random bits in each
model's quantised memory image at increasing error rates — the paper's fault
model for unreliable IoT memory — and reports the accuracy ("quality") loss.

Run with::

    python examples/edge_robustness.py
"""

from repro import load_dataset, make_model
from repro.noise.robustness import quality_loss_sweep, robustness_ratio
from repro.pipeline.report import format_markdown_table

ERROR_RATES = (0.01, 0.02, 0.05, 0.10, 0.15)


def main() -> None:
    dataset = load_dataset("ucihar", scale=0.10, seed=0)

    disthd = make_model("disthd", dim=1024, iterations=15, seed=0)
    disthd.fit(dataset.train_x, dataset.train_y)
    dnn = make_model("mlp", dim=128, epochs=20, seed=0)
    dnn.fit(dataset.train_x, dataset.train_y)
    print(
        f"clean accuracy — DistHD: {disthd.score(dataset.test_x, dataset.test_y):.3f}, "
        f"DNN: {dnn.score(dataset.test_x, dataset.test_y):.3f}\n"
    )

    rows = []
    sweeps = {}
    for name, model, bits in (
        ("DNN (8-bit)", dnn, 8),
        ("DistHD (8-bit)", disthd, 8),
        ("DistHD (1-bit)", disthd, 1),
    ):
        points = quality_loss_sweep(
            model, dataset.test_x, dataset.test_y,
            bits=bits, error_rates=ERROR_RATES, n_trials=3, seed=0,
        )
        sweeps[name] = [p.quality_loss for p in points]
        rows.append(
            {
                "model": name,
                **{f"{int(r * 100)}% flips": loss
                   for r, loss in zip(ERROR_RATES, sweeps[name])},
            }
        )

    print("quality loss (accuracy percentage points) per bit-flip rate:")
    print(format_markdown_table(rows, precision=2))

    ratio = robustness_ratio(sweeps["DNN (8-bit)"], sweeps["DistHD (1-bit)"])
    print(
        f"\nDistHD (1-bit) is {ratio:.1f}x more robust than the 8-bit DNN "
        f"on this analog (paper reports 12.90x on full datasets): the "
        f"holographic encoding spreads every class pattern across all "
        f"dimensions, so no single flipped bit is load-bearing."
    )


if __name__ == "__main__":
    main()
