"""Anatomy of a dimension-regeneration step (Algorithms 1 + 2, exposed).

Walks one DistHD training iteration by hand through the library's internal
APIs: adaptive learning, top-2 outcome partitioning, distance matrices,
undesired-dimension selection, and encoder regeneration — printing what each
stage sees.  Useful both as a tutorial and as a debugging harness for
encoding research.

Run with::

    python examples/regeneration_anatomy.py
"""

import numpy as np

from repro import load_dataset
from repro.core.adaptive import adaptive_fit_iteration
from repro.core.config import DistHDConfig
from repro.core.regeneration import (
    distance_matrices,
    select_undesired_dimensions,
)
from repro.core.topk import partition_outcomes
from repro.hdc.encoders.rbf import RBFEncoder
from repro.hdc.memory import AssociativeMemory


def main() -> None:
    config = DistHDConfig(dim=256, regen_rate=0.10, seed=7)
    dataset = load_dataset("ucihar", scale=0.08, seed=1)

    encoder = RBFEncoder(
        dataset.n_features, config.dim, bandwidth=config.bandwidth, seed=7
    )
    memory = AssociativeMemory(dataset.n_classes, config.dim)
    encoded = encoder.encode(dataset.train_x)
    labels = dataset.train_y

    # --- step B/G/H: bundling init + one adaptive-learning pass (Alg. 1)
    memory.accumulate(encoded, labels)
    train_acc = adaptive_fit_iteration(memory, encoded, labels, lr=config.lr)
    print(f"[adaptive learning] batch-start train accuracy: {train_acc:.3f}")

    # --- step I/J: top-2 classification and outcome partition
    partition = partition_outcomes(memory, encoded, labels)
    rates = partition.rates()
    print(
        f"[top-2 partition] correct {rates['correct']:.1%}, "
        f"partially-correct {rates['partial']:.1%}, "
        f"incorrect {rates['incorrect']:.1%} "
        f"(top-2 accuracy {partition.top2_accuracy():.3f})"
    )

    # --- step K: distance matrices M (partial) and N (incorrect)
    M, N = distance_matrices(
        encoded, labels, partition, memory,
        alpha=config.alpha, beta=config.beta, theta=config.theta,
        incorrect_rule=config.incorrect_rule,
    )
    print(f"[distance matrices] M: {M.shape}, N: {N.shape}")

    # --- step N: intersection of the top-R% dimensions of both
    dims = select_undesired_dimensions(
        M, N, regen_rate=config.regen_rate, dim=config.dim,
        normalization=config.normalization, selection=config.selection,
    )
    print(
        f"[selection] top-{config.regen_rate:.0%} candidates per matrix, "
        f"intersection -> {dims.size} undesired dimensions: {dims[:12]}..."
        if dims.size > 12 else
        f"[selection] undesired dimensions: {dims}"
    )

    # --- step P/Q: regenerate encoder rows, reset memory columns, re-learn
    if dims.size:
        before_bases = encoder.base_vectors[dims].copy()
        encoder.regenerate(dims)
        memory.reset_dimensions(dims)
        encoded[:, dims] = encoder.encode_dims(dataset.train_x, dims)
        memory.bundle_columns(labels, dims, encoded[:, dims])
        drift = np.linalg.norm(encoder.base_vectors[dims] - before_bases)
        print(f"[regeneration] redrew {dims.size} base vectors (L2 drift {drift:.2f})")

    acc_after = adaptive_fit_iteration(memory, encoded, labels, lr=config.lr)
    print(f"[adaptive learning] next-iteration batch-start accuracy: {acc_after:.3f}")
    print(f"[encoder] effective dimensionality D*: {encoder.effective_dim()}")


if __name__ == "__main__":
    main()
