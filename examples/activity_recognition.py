"""Activity recognition on the edge: the paper's motivating IoT workload.

Compares DistHD against the full comparator zoo on the PAMAP2-like IMU
analog — the scenario from the paper's introduction: a wearable device must
classify activities from inertial sensors with a tiny compute/memory budget.
Every model is addressed by registry name through :func:`repro.compare`.

Run with::

    python examples/activity_recognition.py
"""

from repro import compare
from repro.pipeline.report import format_markdown_table


def main() -> None:
    # The edge budget: 128 hyperdimensions. The static baseline also runs at
    # 8x that budget (the paper's effective-dimensionality comparison).
    results = compare(
        [
            ("DistHD (D=128)", "disthd", {"dim": 128, "iterations": 20}),
            ("NeuralHD (D=128)", "neuralhd", {"dim": 128, "iterations": 20}),
            ("BaselineHD (D=128)", "baselinehd", {"dim": 128, "iterations": 20}),
            ("BaselineHD (D=1024)", "baselinehd", {"dim": 1024, "iterations": 20}),
            ("DNN (MLP-128)", "mlp", {"dim": 128, "epochs": 20}),
            ("SVM (RBF approx)", "rff-svm", {"dim": 512}),
        ],
        dataset="pamap2",
        scale=0.004,
        seed=0,
    )
    first = results[0]
    print(
        f"PAMAP2 analog: {first.dataset_name}, "
        f"{len(results)} models compared\n"
    )

    rows = [
        {
            "model": r.model_name,
            "accuracy": r.test_accuracy,
            "top2": r.top2_accuracy,
            "train (s)": r.train_seconds,
            "infer (s)": r.inference_seconds,
        }
        for r in results
    ]
    print(format_markdown_table(rows, precision=3))

    disthd = rows[0]
    static_lo = rows[2]
    print(
        f"\nDistHD vs same-budget static HDC: "
        f"{(disthd['accuracy'] - static_lo['accuracy']) * 100:+.1f} accuracy points "
        f"at identical dimensionality."
    )


if __name__ == "__main__":
    main()
