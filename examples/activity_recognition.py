"""Activity recognition on the edge: the paper's motivating IoT workload.

Compares DistHD against the full comparator zoo on the PAMAP2-like IMU
analog — the scenario from the paper's introduction: a wearable device must
classify activities from inertial sensors with a tiny compute/memory budget.

Run with::

    python examples/activity_recognition.py
"""

from repro import DistHDClassifier, load_dataset
from repro.baselines import (
    BaselineHDClassifier,
    MLPClassifier,
    NeuralHDClassifier,
    RFFSVMClassifier,
)
from repro.pipeline.experiment import run_experiment
from repro.pipeline.report import format_markdown_table


def main() -> None:
    dataset = load_dataset("pamap2", scale=0.004, seed=0)
    print(
        f"PAMAP2 analog: {dataset.n_train} train / {dataset.n_test} test, "
        f"{dataset.n_features} IMU features, {dataset.n_classes} activities\n"
    )

    # The edge budget: 128 hyperdimensions. The static baseline also runs at
    # 8x that budget (the paper's effective-dimensionality comparison).
    models = [
        ("DistHD (D=128)", DistHDClassifier(dim=128, iterations=20, seed=0)),
        ("NeuralHD (D=128)", NeuralHDClassifier(dim=128, iterations=20, seed=0)),
        ("BaselineHD (D=128)", BaselineHDClassifier(dim=128, iterations=20, seed=0)),
        ("BaselineHD (D=1024)", BaselineHDClassifier(dim=1024, iterations=20, seed=0)),
        ("DNN (MLP-128)", MLPClassifier(hidden_sizes=(128,), epochs=20, seed=0)),
        ("SVM (RBF approx)", RFFSVMClassifier(n_components=512, seed=0)),
    ]

    rows = []
    for name, model in models:
        result = run_experiment(model, dataset, model_name=name)
        rows.append(
            {
                "model": name,
                "accuracy": result.test_accuracy,
                "top2": result.top2_accuracy,
                "train (s)": result.train_seconds,
                "infer (s)": result.inference_seconds,
            }
        )

    print(format_markdown_table(rows, precision=3))
    disthd = rows[0]
    static_lo = rows[2]
    print(
        f"\nDistHD vs same-budget static HDC: "
        f"{(disthd['accuracy'] - static_lo['accuracy']) * 100:+.1f} accuracy points "
        f"at identical dimensionality."
    )


if __name__ == "__main__":
    main()
