"""Fig. 7 — convergence speed of DistHD vs NeuralHD vs BaselineHD.

Paper shapes:

- accuracy-vs-iteration: DistHD climbs fastest and converges at or above the
  others ("Faster Convergence", "Higher Accuracy");
- accuracy-vs-dimension: DistHD reaches a given accuracy at lower physical D
  than the static baseline.
"""

import numpy as np

from common import bench_dataset, make_baselinehd, make_disthd, make_neuralhd
from repro.pipeline.report import format_series

ITER_BUDGET = 30
DIM_SWEEP = (64, 128, 256, 512)

_cache = {}


def _convergence_curves(seeds=(0, 1, 2)):
    if "curves" in _cache:
        return _cache["curves"]
    ds = bench_dataset("isolet")
    factories = {
        "DistHD": lambda s: make_disthd(iterations=ITER_BUDGET, seed=s),
        "NeuralHD": lambda s: make_neuralhd(iterations=ITER_BUDGET, seed=s),
        "BaselineHD": lambda s: make_baselinehd(dim=128, iterations=ITER_BUDGET, seed=s),
    }
    curves = {}
    finals = {}
    for name, factory in factories.items():
        accs = []
        for seed in seeds:
            clf = factory(seed).fit(ds.train_x, ds.train_y)
            if seed == seeds[0]:
                curves[name] = clf.history_.accuracies
            accs.append(clf.score(ds.test_x, ds.test_y))
        finals[name] = float(np.mean(accs))
    _cache["curves"] = (curves, finals)
    return curves, finals


def test_fig7_accuracy_vs_iterations(benchmark):
    (curves, finals) = benchmark.pedantic(
        _convergence_curves, rounds=1, iterations=1
    )
    print("\n=== Fig. 7 (left): train accuracy vs iteration (ISOLET analog) ===")
    for name, curve in curves.items():
        sampled = [f"{curve[i]:.3f}" for i in range(0, len(curve), 5)]
        print(f"  {name:11s}: {' '.join(sampled)}  test={finals[name]:.3f}")

    # Shape: DistHD converges at or above the comparators (seed-averaged).
    assert finals["DistHD"] >= finals["NeuralHD"] - 0.02
    assert finals["DistHD"] >= finals["BaselineHD"] - 0.02

    # Faster convergence: iterations needed to reach a shared milestone.
    milestone = 0.95 * max(max(c) for c in curves.values())
    def first_reach(curve):
        for i, acc in enumerate(curve):
            if acc >= milestone:
                return i
        return len(curve)
    reach = {name: first_reach(curve) for name, curve in curves.items()}
    print(f"  iterations to reach {milestone:.3f}: {reach}")
    assert reach["DistHD"] <= reach["NeuralHD"], (
        "DistHD must converge in no more iterations than NeuralHD"
    )


def test_fig7_accuracy_vs_dimension(benchmark):
    def sweep():
        ds = bench_dataset("isolet")
        out = {"DistHD": [], "BaselineHD": [], "NeuralHD": []}
        for dim in DIM_SWEEP:
            out["DistHD"].append(
                make_disthd(dim=dim).fit(ds.train_x, ds.train_y).score(
                    ds.test_x, ds.test_y
                )
            )
            out["NeuralHD"].append(
                make_neuralhd(dim=dim).fit(ds.train_x, ds.train_y).score(
                    ds.test_x, ds.test_y
                )
            )
            out["BaselineHD"].append(
                make_baselinehd(dim=dim).fit(ds.train_x, ds.train_y).score(
                    ds.test_x, ds.test_y
                )
            )
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n=== Fig. 7 (right): test accuracy vs dimension (ISOLET analog) ===")
    for name, accs in results.items():
        print(format_series(name, DIM_SWEEP, accs, x_label="D", y_label="acc"))

    # Shape: every method improves with D; DistHD dominates the static
    # baseline on average across the sweep.
    for accs in results.values():
        assert accs[-1] >= accs[0] - 0.02
    disthd_mean = np.mean(results["DistHD"])
    baseline_mean = np.mean(results["BaselineHD"])
    assert disthd_mean >= baseline_mean, (
        "DistHD should dominate the static baseline across the D sweep"
    )
