"""Extension benches (not paper figures): streaming training and
fixed-point deployment.

Quantifies the two `repro.deploy` extensions against their batch / float
counterparts so regressions in the edge-lifecycle path are caught:

- streaming DistHD must approach batch DistHD accuracy given equal epochs;
- quantised deployment must trade ≤ a few points of accuracy for its 8–64×
  memory compression at 8→1 bits.
"""

import numpy as np

from common import SEED, bench_dataset, make_disthd
from repro.core.config import DistHDConfig
from repro.deploy import QuantizedHDCModel, StreamingDistHD
from repro.pipeline.report import format_markdown_table


def test_extension_streaming_vs_batch(benchmark):
    def run():
        ds = bench_dataset("pamap2")
        batch = make_disthd(dim=256).fit(ds.train_x, ds.train_y)
        config = DistHDConfig(
            dim=256, regen_rate=0.2, selection="union", seed=SEED
        )
        stream = StreamingDistHD(
            ds.n_features, ds.n_classes, config,
            reservoir_size=400, regen_every=5,
        )
        rng = np.random.default_rng(SEED)
        for _ in range(5):
            order = rng.permutation(ds.n_train)
            for start in range(0, ds.n_train, 64):
                idx = order[start : start + 64]
                stream.partial_fit(ds.train_x[idx], ds.train_y[idx])
        return (
            batch.score(ds.test_x, ds.test_y),
            stream.score(ds.test_x, ds.test_y),
        )

    batch_acc, stream_acc = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Extension: streaming vs batch DistHD (PAMAP2 analog) ===")
    print(f"  batch   : {batch_acc:.4f}")
    print(f"  streaming: {stream_acc:.4f}")
    assert stream_acc > batch_acc - 0.08, (
        "streaming training must approach batch accuracy"
    )


def test_extension_quantized_deployment(benchmark):
    def run():
        ds = bench_dataset("ucihar")
        clf = make_disthd(dim=512).fit(ds.train_x, ds.train_y)
        float_acc = clf.score(ds.test_x, ds.test_y)
        rows = []
        for bits in (8, 4, 2, 1):
            model = QuantizedHDCModel(clf, bits=bits)
            rows.append(
                {
                    "bits": bits,
                    "accuracy": model.score(ds.test_x, ds.test_y),
                    "memory_bytes": model.memory_bytes,
                    "compression_vs_float": model.footprint_report()["compression"],
                }
            )
        packed = QuantizedHDCModel(clf, bits=1, packed=True)
        rows.append(
            {
                "bits": "1 (packed)",
                "accuracy": packed.score(ds.test_x, ds.test_y),
                "memory_bytes": packed.memory_bytes,
                "compression_vs_float": packed.footprint_report()["compression"],
            }
        )
        packed_report = packed.footprint_report()
        return float_acc, rows, packed_report

    float_acc, rows, packed_report = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print("\n=== Extension: fixed-point deployment (UCIHAR analog) ===")
    print(f"  float reference accuracy: {float_acc:.4f}")
    print(format_markdown_table(rows, precision=3))

    by_bits = {r["bits"]: r for r in rows}
    # 8-bit deployment is accuracy-free; 1-bit costs at most a few points
    # while compressing the class memory storage-width x (32x against the
    # float32 hot-path default — the footprint report measures against
    # the base memory's actual dtype, not a hard-coded float64).
    assert by_bits[8]["accuracy"] > float_acc - 0.01
    assert by_bits[1]["accuracy"] > float_acc - 0.06
    assert by_bits[1]["compression_vs_float"] > 30
    assert by_bits[1]["memory_bytes"] < by_bits[8]["memory_bytes"]
    # Bit-packing stores 64 cells per uint64 word: ~64x below the int8
    # artifact (exactly 64x when D % 64 == 0, as here at D=512) and ~64x
    # below the unpacked 1-bit float64 serving image.
    packed_row = by_bits["1 (packed)"]
    assert by_bits[8]["memory_bytes"] / packed_row["memory_bytes"] == 8.0
    assert packed_report["compression_vs_unpacked"] == 64.0
    assert packed_row["accuracy"] > float_acc - 0.10
