"""Fig. 4 — classification accuracy of DistHD vs the full comparator zoo.

Paper shapes this bench must reproduce (averaged over datasets):

- DistHD (D_lo) beats BaselineHD (D_lo) clearly (paper: +6.96%);
- DistHD (D_lo) is at or above BaselineHD (D_hi = 8×D_lo) (paper: +1.82%);
- DistHD (D_lo) is at or above NeuralHD (D_lo) (paper: +1.88%);
- DistHD is comparable to the DNN and at or above the SVM.
"""

import numpy as np
import pytest

from common import ALL_DATASETS, bench_dataset, fig4_model_zoo
from repro.pipeline.report import format_markdown_table

_results_cache = {}


def _accuracy_table(seeds=(0, 1)):
    """Run the Fig. 4 zoo on every dataset analog, averaged over seeds."""
    if "table" in _results_cache:
        return _results_cache["table"]
    table = {}
    for name in ALL_DATASETS:
        ds = bench_dataset(name)
        row = {}
        for model_name, _ in fig4_model_zoo():
            row[model_name] = []
        for seed in seeds:
            for model_name, factory in fig4_model_zoo(seed=seed):
                clf = factory().fit(ds.train_x, ds.train_y)
                row[model_name].append(clf.score(ds.test_x, ds.test_y))
        table[name] = {m: float(np.mean(a)) for m, a in row.items()}
    _results_cache["table"] = table
    return table


def test_fig4_accuracy_comparison(benchmark):
    table = benchmark.pedantic(_accuracy_table, rounds=1, iterations=1)
    rows = [{"dataset": name, **metrics} for name, metrics in table.items()]
    print("\n=== Fig. 4: classification accuracy ===")
    print(format_markdown_table(rows, precision=3))

    means = {
        model: float(np.mean([table[d][model] for d in table]))
        for model in rows[0]
        if model != "dataset"
    }
    print("\naverages:", {m: round(a, 3) for m, a in means.items()})

    # Shape assertions (averaged across datasets, small tolerances for the
    # scaled-down analogs):
    assert means["DistHD"] > means["BaselineHD-lo"] + 0.01, (
        "DistHD at D_lo must clearly beat the static bipolar encoder at D_lo"
    )
    assert means["DistHD"] >= means["BaselineHD-hi"] - 0.05, (
        "DistHD at D_lo must be comparable to BaselineHD at 8x dimensionality "
        "(paper: +1.82%; our analogs land within a few points — see "
        "EXPERIMENTS.md)"
    )
    assert means["DistHD"] >= means["NeuralHD"] - 0.01, (
        "DistHD must match or beat NeuralHD at equal dimensionality"
    )
    assert means["DistHD"] >= means["SVM"] - 0.02
    assert abs(means["DistHD"] - means["DNN"]) < 0.10, (
        "DistHD and the DNN should be in the same accuracy band"
    )
