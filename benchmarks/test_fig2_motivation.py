"""Fig. 2 — motivation for dynamic encoding and top-2 classification.

(a) Static-encoder HDC needs high dimensionality and many iterations to
    approach DNN accuracy: accuracy-vs-D and accuracy-vs-iteration curves for
    BaselineHD with an MLP reference line.
(b) Top-1 accuracy of static HDC is noticeably below top-2, which is itself
    close to top-3 — the observation DistHD's top-2 machinery exploits.
"""

import numpy as np

from common import ITERATIONS, SEED, bench_dataset, make_baselinehd, make_mlp
from repro.metrics.classification import topk_accuracy
from repro.pipeline.report import format_series

DIM_SWEEP = (32, 64, 128, 256, 512, 1024)


def test_fig2a_accuracy_vs_dimension(benchmark):
    """Static HDC accuracy climbs with D toward the DNN reference."""
    ds = bench_dataset("ucihar")

    def sweep():
        accs = []
        for dim in DIM_SWEEP:
            clf = make_baselinehd(dim=dim).fit(ds.train_x, ds.train_y)
            accs.append(clf.score(ds.test_x, ds.test_y))
        mlp = make_mlp().fit(ds.train_x, ds.train_y)
        return accs, mlp.score(ds.test_x, ds.test_y)

    accs, dnn_acc = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n=== Fig. 2(a): BaselineHD accuracy vs dimension (UCIHAR analog) ===")
    print(format_series("BaselineHD", DIM_SWEEP, accs, x_label="D", y_label="acc"))
    print(f"  DNN reference: {dnn_acc:.4f}")
    # Shape: accuracy grows substantially from starved to ample D and the
    # static encoder needs high D to approach the DNN.
    assert accs[-1] > accs[0] + 0.05
    assert max(accs) <= dnn_acc + 0.05


def test_fig2a_accuracy_vs_iterations(benchmark):
    """Static HDC needs many retraining iterations to converge."""
    ds = bench_dataset("ucihar")

    def run():
        clf = make_baselinehd(dim=256, iterations=40).fit(ds.train_x, ds.train_y)
        return clf.history_.accuracies

    curve = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Fig. 2(a): BaselineHD train accuracy vs iteration ===")
    print(format_series("BaselineHD", list(range(len(curve))), curve,
                        x_label="iter", y_label="train acc"))
    assert curve[-1] >= curve[0]


def test_fig2b_topk_classification(benchmark):
    """Top-1 << top-2 ~ top-3 for static HDC (the paper's key observation)."""
    ds = bench_dataset("isolet")

    def run():
        clf = make_baselinehd(dim=256).fit(ds.train_x, ds.train_y)
        scores = clf.decision_scores(ds.test_x)
        dense = np.searchsorted(clf.classes_, ds.test_y)
        return [topk_accuracy(dense, scores, k) for k in (1, 2, 3)]

    top1, top2, top3 = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Fig. 2(b): top-k accuracy of static HDC (ISOLET analog) ===")
    for k, acc in zip((1, 2, 3), (top1, top2, top3)):
        print(f"  top-{k}: {acc:.4f}")
    assert top1 < top2 <= top3
    # The top-2 jump dominates the top-3 jump.
    assert (top2 - top1) > (top3 - top2)
