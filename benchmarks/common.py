"""Shared benchmark configuration.

The paper's evaluation ran on an i9-12900 against the full UCI datasets; the
benchmarks here run the same model zoo against scaled-down synthetic analogs
so the whole suite finishes in minutes.  The *shape* of each figure (who
wins, by roughly what factor, where crossovers fall) is what the assertions
check; EXPERIMENTS.md records paper-vs-measured values.

Scaling conventions (documented per DESIGN.md §5):

- ``DIM_LO`` stands in for the paper's compressed D = 0.5k and ``DIM_HI``
  for the effective D* = 4k — the same 8× ratio;
- per-dataset ``scale`` factors keep every analog around 600–1300 training
  samples;
- every model trains with a fixed iteration budget (no early stop) so
  convergence curves are comparable.
"""

from __future__ import annotations

from functools import lru_cache

from repro.datasets.loaders import Dataset, load_dataset
from repro.models import make_model

# The 8x dimensionality ratio of the paper (0.5k vs 4k), scaled down.
DIM_LO = 128
DIM_HI = 1024

ITERATIONS = 20
SEED = 0

# Analog sizes: published counts × scale, floored per class.
SCALES = {
    "mnist": 0.015,
    "ucihar": 0.12,
    "isolet": 0.12,
    "pamap2": 0.004,
    "diabetes": 0.015,
}

ALL_DATASETS = tuple(SCALES)


@lru_cache(maxsize=None)
def bench_dataset(name: str, seed: int = SEED) -> Dataset:
    """The scaled analog used across benchmarks (cached per session)."""
    return load_dataset(name, scale=SCALES[name], seed=seed)


def make_disthd(dim: int = DIM_LO, seed: int = SEED, **overrides):
    params = dict(
        dim=dim, iterations=ITERATIONS, convergence_patience=None, seed=seed
    )
    params.update(overrides)
    return make_model("disthd", **params)


def make_neuralhd(dim: int = DIM_LO, seed: int = SEED, **overrides):
    params = dict(
        dim=dim, iterations=ITERATIONS, convergence_patience=None, seed=seed
    )
    params.update(overrides)
    return make_model("neuralhd", **params)


def make_onlinehd(dim: int = DIM_LO, seed: int = SEED, **overrides):
    params = dict(
        dim=dim, iterations=ITERATIONS, convergence_patience=None, seed=seed
    )
    params.update(overrides)
    return make_model("onlinehd", **params)


def make_baselinehd(dim: int = DIM_HI, seed: int = SEED, **overrides):
    params = dict(
        dim=dim, iterations=ITERATIONS, convergence_patience=None, seed=seed
    )
    params.update(overrides)
    return make_model("baselinehd", **params)


def make_mlp(seed: int = SEED, **overrides):
    params = dict(dim=128, epochs=ITERATIONS, seed=seed)
    params.update(overrides)
    return make_model("mlp", **params)


def make_svm(seed: int = SEED, **overrides):
    params = dict(epochs=ITERATIONS, seed=seed)
    params.update(overrides)
    return make_model("svm", **params)


def fig4_model_zoo(seed: int = SEED):
    """The Fig. 4 / Fig. 5 comparison set, as (name, factory) pairs."""
    return [
        ("DNN", lambda: make_mlp(seed=seed)),
        ("SVM", lambda: make_svm(seed=seed)),
        ("BaselineHD-lo", lambda: make_baselinehd(dim=DIM_LO, seed=seed)),
        ("BaselineHD-hi", lambda: make_baselinehd(dim=DIM_HI, seed=seed)),
        ("NeuralHD", lambda: make_neuralhd(seed=seed)),
        ("DistHD", lambda: make_disthd(seed=seed)),
    ]
