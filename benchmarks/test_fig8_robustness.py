"""Fig. 8 — quality loss under random memory bit flips.

The paper's grid: error rate ∈ {1, 2, 5, 10, 15}% on
- an 8-bit-quantised DNN, and
- DistHD at D ∈ {0.5k, 1k, 2k, 4k} × precision ∈ {1, 2, 4, 8} bits.

Shapes to reproduce:

- DistHD at 1-bit loses far less quality than the DNN at every error rate
  (paper headline: 12.90× average);
- lower precision → more robust DistHD (1-bit beats 8-bit);
- higher dimensionality → more robust DistHD (holographic redundancy).

The D grid is scaled to {128, 256, 512, 1024} to keep runtime in check.
"""

import numpy as np

from common import SEED, bench_dataset, make_disthd, make_mlp
from repro.noise.robustness import quality_loss_sweep, robustness_ratio
from repro.pipeline.report import format_markdown_table

ERROR_RATES = (0.01, 0.02, 0.05, 0.10, 0.15)
DIM_GRID = (128, 256, 512, 1024)
BIT_GRID = (1, 2, 4, 8)
N_TRIALS = 3

_cache = {}


def _fig8_grid():
    if "grid" in _cache:
        return _cache["grid"]
    ds = bench_dataset("ucihar")
    rows = []

    mlp = make_mlp().fit(ds.train_x, ds.train_y)
    dnn_losses = [
        p.quality_loss
        for p in quality_loss_sweep(
            mlp, ds.test_x, ds.test_y, bits=8, error_rates=ERROR_RATES,
            n_trials=N_TRIALS, seed=SEED,
        )
    ]
    rows.append({"model": "DNN", "bits": 8, "dim": "-",
                 **{f"{int(r*100)}%": l for r, l in zip(ERROR_RATES, dnn_losses)}})

    disthd_losses = {}
    for bits in BIT_GRID:
        for dim in DIM_GRID:
            clf = make_disthd(dim=dim).fit(ds.train_x, ds.train_y)
            losses = [
                p.quality_loss
                for p in quality_loss_sweep(
                    clf, ds.test_x, ds.test_y, bits=bits,
                    error_rates=ERROR_RATES, n_trials=N_TRIALS, seed=SEED,
                )
            ]
            disthd_losses[(bits, dim)] = losses
            rows.append(
                {"model": "DistHD", "bits": bits, "dim": dim,
                 **{f"{int(r*100)}%": l for r, l in zip(ERROR_RATES, losses)}}
            )
    _cache["grid"] = (rows, dnn_losses, disthd_losses)
    return _cache["grid"]


def test_fig8_quality_loss_grid(benchmark):
    rows, dnn_losses, disthd_losses = benchmark.pedantic(
        _fig8_grid, rounds=1, iterations=1
    )
    print("\n=== Fig. 8: quality loss (%) under memory bit flips (UCIHAR analog) ===")
    print(format_markdown_table(rows, precision=2))

    best = disthd_losses[(1, DIM_GRID[-1])]
    ratio = robustness_ratio(dnn_losses, best)
    print(f"\nDistHD (1-bit, D={DIM_GRID[-1]}) vs DNN robustness ratio: {ratio:.2f}x")

    # Shape 1: 1-bit high-D DistHD is far more robust than the 8-bit DNN.
    assert ratio > 2.0, "DistHD must be multiple-fold more robust than the DNN"
    for dnn, dist in zip(dnn_losses[2:], best[2:]):  # from 5% error up
        assert dist <= dnn, "DistHD quality loss must not exceed the DNN's"

    # Shape 2: lower precision is more robust at fixed D (averaged over rates).
    loss_1bit = np.mean(disthd_losses[(1, DIM_GRID[-1])])
    loss_8bit = np.mean(disthd_losses[(8, DIM_GRID[-1])])
    assert loss_1bit <= loss_8bit + 0.5

    # Shape 3: higher dimensionality is more robust at fixed precision.
    loss_small_d = np.mean(disthd_losses[(8, DIM_GRID[0])])
    loss_large_d = np.mean(disthd_losses[(8, DIM_GRID[-1])])
    assert loss_large_d <= loss_small_d + 0.5
