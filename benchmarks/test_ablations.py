"""Ablations — the design choices DESIGN.md §2 calls out.

Not figures from the paper; these quantify the under-specified decisions:

- incorrect-sample scoring rule: §III-C prose vs Algorithm-2 box;
- candidate-set combination: intersection (paper) vs union / single-matrix;
- regeneration rate sweep;
- rebundle-on-regen (our completion of "regenerate for positive impact")
  vs reset-and-heal;
- α/β weight ratio.
"""

import numpy as np

from common import SEED, bench_dataset, make_disthd, make_onlinehd
from repro.pipeline.report import format_markdown_table

_cache = {}


def _fit_score(**overrides):
    ds = bench_dataset("isolet")
    accs = []
    for seed in (0, 1):
        clf = make_disthd(seed=seed, **overrides).fit(ds.train_x, ds.train_y)
        accs.append(clf.score(ds.test_x, ds.test_y))
    return float(np.mean(accs))


def test_ablation_incorrect_rule(benchmark):
    def run():
        return {
            "prose": _fit_score(incorrect_rule="prose"),
            "algorithm-box": _fit_score(incorrect_rule="algorithm-box"),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation: incorrect-sample scoring rule ===")
    for rule, acc in results.items():
        print(f"  {rule:15s} {acc:.4f}")
    # Both are functional; the prose rule (our default) must not lose badly.
    assert results["prose"] >= results["algorithm-box"] - 0.03


def test_ablation_selection_policy(benchmark):
    def run():
        return {
            policy: _fit_score(selection=policy)
            for policy in ("intersection", "union", "m-only", "n-only")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation: candidate-set combination policy ===")
    for policy, acc in results.items():
        print(f"  {policy:14s} {acc:.4f}")
    # The paper's intersection avoids over-elimination: it must be at least
    # as good as the aggressive union.
    assert results["intersection"] >= results["union"] - 0.02


def test_ablation_regen_rate(benchmark):
    rates = (0.0, 0.05, 0.1, 0.2, 0.4)

    def run():
        return [(_fit_score(regen_rate=r), r) for r in rates]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation: regeneration rate R ===")
    rows = [{"R": r, "accuracy": acc} for acc, r in results]
    print(format_markdown_table(rows))
    accs = dict((r, acc) for acc, r in results)
    # Moderate regeneration must not hurt relative to a static encoder, and
    # the paper's default (0.1) should sit at or near the top.
    best = max(accs.values())
    assert accs[0.1] >= best - 0.02


def test_ablation_rebundle_on_regen(benchmark):
    def run():
        return {
            "rebundle": _fit_score(rebundle_on_regen=True),
            "reset-and-heal": _fit_score(rebundle_on_regen=False),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation: regenerated-column initialisation ===")
    for mode, acc in results.items():
        print(f"  {mode:15s} {acc:.4f}")
    assert results["rebundle"] >= results["reset-and-heal"] - 0.02


def test_ablation_adaptive_vs_regeneration(benchmark):
    """Decompose DistHD's gain: adaptive-only (OnlineHD) vs adaptive+regen."""
    def run():
        ds = bench_dataset("isolet")
        accs = {"OnlineHD (no regen)": [], "DistHD": []}
        for seed in (0, 1):
            accs["OnlineHD (no regen)"].append(
                make_onlinehd(seed=seed).fit(ds.train_x, ds.train_y).score(
                    ds.test_x, ds.test_y
                )
            )
            accs["DistHD"].append(
                make_disthd(seed=seed).fit(ds.train_x, ds.train_y).score(
                    ds.test_x, ds.test_y
                )
            )
        return {k: float(np.mean(v)) for k, v in accs.items()}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation: adaptive learning vs + dimension regeneration ===")
    for name, acc in results.items():
        print(f"  {name:22s} {acc:.4f}")
    assert results["DistHD"] >= results["OnlineHD (no regen)"] - 0.01


def test_ablation_alpha_beta_ratio(benchmark):
    def run():
        return {
            "alpha/beta=0.5": _fit_score(alpha=0.5, beta=1.0, theta=0.25),
            "alpha/beta=1": _fit_score(alpha=1.0, beta=1.0, theta=0.25),
            "alpha/beta=2": _fit_score(alpha=2.0, beta=1.0, theta=0.25),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation: alpha/beta weight ratio ===")
    for name, acc in results.items():
        print(f"  {name:15s} {acc:.4f}")
    # All settings must stay in a tight accuracy band (the ratio trades
    # sensitivity vs specificity, not raw accuracy — paper Fig. 6).
    values = list(results.values())
    assert max(values) - min(values) < 0.05
