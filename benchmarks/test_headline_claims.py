"""Headline claims — the abstract's aggregate numbers.

Paper: DistHD achieves on average (i) 2.12% higher accuracy than SOTA HDC
while reducing dimensionality 8.0×, (ii) 5.97× faster training than SOTA
DNNs and 8.09× faster inference than SOTA learning algorithms, (iii) 12.90×
higher robustness against hardware errors than SOTA DNNs.

This bench aggregates the same quantities from our scaled analogs and
prints paper-vs-measured side by side (EXPERIMENTS.md records the history).
"""

import time

import numpy as np

from common import (
    ALL_DATASETS,
    DIM_HI,
    DIM_LO,
    SEED,
    bench_dataset,
    make_baselinehd,
    make_disthd,
    make_mlp,
)
from repro.noise.robustness import quality_loss_sweep, robustness_ratio


def _aggregate():
    acc_gain_vs_static_hi = []
    train_speedup_vs_dnn = []
    infer_speedup_vs_hi = []

    for name in ALL_DATASETS:
        ds = bench_dataset(name)

        disthd = make_disthd()
        start = time.perf_counter()
        disthd.fit(ds.train_x, ds.train_y)
        disthd_train = time.perf_counter() - start
        start = time.perf_counter()
        disthd.predict(ds.test_x)
        disthd_infer = time.perf_counter() - start
        disthd_acc = disthd.score(ds.test_x, ds.test_y)

        static_hi = make_baselinehd(dim=DIM_HI)
        static_hi.fit(ds.train_x, ds.train_y)
        start = time.perf_counter()
        static_hi.predict(ds.test_x)
        hi_infer = time.perf_counter() - start
        acc_gain_vs_static_hi.append(
            disthd_acc - static_hi.score(ds.test_x, ds.test_y)
        )
        infer_speedup_vs_hi.append(hi_infer / max(disthd_infer, 1e-9))

        mlp = make_mlp()
        start = time.perf_counter()
        mlp.fit(ds.train_x, ds.train_y)
        mlp_train = time.perf_counter() - start
        train_speedup_vs_dnn.append(mlp_train / max(disthd_train, 1e-9))

    # Robustness ratio on one dataset (full grid lives in the Fig. 8 bench).
    ds = bench_dataset("ucihar")
    disthd = make_disthd(dim=DIM_HI).fit(ds.train_x, ds.train_y)
    mlp = make_mlp().fit(ds.train_x, ds.train_y)
    # Skip the 1% point: losses there are fractions of a point and the
    # ratio is noise-dominated at bench scale.
    rates = (0.02, 0.05, 0.10, 0.15)
    dnn_losses = [
        p.quality_loss
        for p in quality_loss_sweep(mlp, ds.test_x, ds.test_y, bits=8,
                                    error_rates=rates, n_trials=2, seed=SEED)
    ]
    hdc_losses = [
        p.quality_loss
        for p in quality_loss_sweep(disthd, ds.test_x, ds.test_y, bits=1,
                                    error_rates=rates, n_trials=2, seed=SEED)
    ]
    return {
        "acc_gain_vs_8x_static_pct": float(np.mean(acc_gain_vs_static_hi)) * 100,
        "dim_reduction": DIM_HI / DIM_LO,
        "train_speedup_vs_dnn": float(np.mean(train_speedup_vs_dnn)),
        "infer_speedup_vs_8x_static": float(np.mean(infer_speedup_vs_hi)),
        "robustness_ratio_vs_dnn": robustness_ratio(dnn_losses, hdc_losses),
    }


def test_headline_claims(benchmark):
    measured = benchmark.pedantic(_aggregate, rounds=1, iterations=1)
    paper = {
        "acc_gain_vs_8x_static_pct": 1.82,
        "dim_reduction": 8.0,
        "train_speedup_vs_dnn": 5.97,
        "infer_speedup_vs_8x_static": 8.09,
        "robustness_ratio_vs_dnn": 12.90,
    }
    print("\n=== Headline claims: paper vs measured ===")
    for key in paper:
        print(f"  {key:30s} paper={paper[key]:>6.2f}  measured={measured[key]:>6.2f}")

    # Shape assertions: direction and rough magnitude (EXPERIMENTS.md holds
    # the paper-vs-measured discussion; our analogs land within a few points
    # of the 8x static baseline rather than above it).
    assert measured["acc_gain_vs_8x_static_pct"] > -5.0, (
        "DistHD at D_lo must stay within 5pts of the 8x static baseline"
    )
    assert measured["dim_reduction"] == 8.0
    assert measured["infer_speedup_vs_8x_static"] > 1.5, (
        "compressed dimensionality must deliver a material inference speedup"
    )
    assert measured["robustness_ratio_vs_dnn"] > 1.5
