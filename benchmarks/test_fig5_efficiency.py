"""Fig. 5 — training time and inference latency.

Paper shapes:

- DistHD (D_lo) trains faster than the DNN (paper: 5.97×);
- DistHD (D_lo) infers faster than BaselineHD at D_hi (paper: 8.09× vs SOTA
  HDC at effective dimensionality) because encode+similarity cost scales
  with D;
- DistHD trains faster than NeuralHD (paper: 2.32×) — NeuralHD needs more
  epochs to heal its blind regenerations, modelled here as equal epochs of
  equal cost plus its extra regeneration volume.

Absolute seconds are machine-specific; the assertions check ratios.
"""

import time

from common import bench_dataset, fig4_model_zoo
from repro.pipeline.report import format_markdown_table

_cache = {}


def _efficiency_table():
    if "rows" in _cache:
        return _cache["rows"]
    ds = bench_dataset("ucihar")
    rows = []
    for model_name, factory in fig4_model_zoo():
        clf = factory()
        start = time.perf_counter()
        clf.fit(ds.train_x, ds.train_y)
        train_s = time.perf_counter() - start
        # Best of 3 for latency (noise floor).
        infer_s = min(
            _timed_predict(clf, ds.test_x) for _ in range(3)
        )
        rows.append(
            {"model": model_name, "train_s": train_s, "infer_s": infer_s}
        )
    _cache["rows"] = rows
    return rows


def _timed_predict(clf, X):
    start = time.perf_counter()
    clf.predict(X)
    return time.perf_counter() - start


def test_fig5_training_and_inference_efficiency(benchmark):
    rows = benchmark.pedantic(_efficiency_table, rounds=1, iterations=1)
    print("\n=== Fig. 5: efficiency (UCIHAR analog) ===")
    print(format_markdown_table(rows, precision=4))

    timing = {r["model"]: r for r in rows}
    disthd = timing["DistHD"]
    print(
        f"\nspeedups: train vs DNN {timing['DNN']['train_s']/disthd['train_s']:.2f}x, "
        f"infer vs BaselineHD-hi {timing['BaselineHD-hi']['infer_s']/disthd['infer_s']:.2f}x"
    )

    # Shape: low-D inference beats 8x-D inference by a material factor.
    assert disthd["infer_s"] < timing["BaselineHD-hi"]["infer_s"], (
        "compressed-D DistHD must infer faster than the 8x-D static baseline"
    )
    # DistHD and the DNN train in the same order of magnitude here; the
    # paper's 5.97x is vs a grid-searched TensorFlow MLP on full datasets.
    assert disthd["train_s"] < timing["DNN"]["train_s"] * 5.0
