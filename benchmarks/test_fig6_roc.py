"""Fig. 6 — ROC trade-off between the α and β weight parameters.

The paper trains DistHD with α/β = 0.5 and α/β = 2 and shows both reach
comparable AUC (≈0.91) while trading sensitivity against specificity: the
larger-α model gains sensitivity faster as specificity is relaxed.

We binarise the DIABETES analog (outcome 0 vs rest), train both settings,
sweep the decision threshold over the class-score margin, and report the
ROC points plus AUC.
"""

import numpy as np

from common import SEED, bench_dataset, make_disthd
from repro.metrics.roc import auc, roc_curve
from repro.metrics.sensitivity import binary_rates

_cache = {}


def _binary_problem():
    ds = bench_dataset("diabetes")
    train_y = (ds.train_y > 0).astype(np.int64)  # any adverse outcome
    test_y = (ds.test_y > 0).astype(np.int64)
    return ds.train_x, train_y, ds.test_x, test_y


def _roc_for(alpha, beta):
    key = (alpha, beta)
    if key in _cache:
        return _cache[key]
    train_x, train_y, test_x, test_y = _binary_problem()
    clf = make_disthd(alpha=alpha, beta=beta, theta=beta / 4).fit(train_x, train_y)
    scores = clf.decision_scores(test_x)
    margin = scores[:, 1] - scores[:, 0]  # positive-class margin
    fpr, tpr, _ = roc_curve(test_y, margin)
    preds = clf.predict(test_x)
    rates = binary_rates(test_y, preds)
    result = (fpr, tpr, auc(fpr, tpr), rates)
    _cache[key] = result
    return result


def test_fig6_roc_weight_parameters(benchmark):
    def run():
        return {
            "alpha/beta=0.5": _roc_for(0.5, 1.0),
            "alpha/beta=2": _roc_for(2.0, 1.0),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Fig. 6: ROC / AUC under different weight parameters ===")
    for name, (fpr, tpr, area, rates) in results.items():
        # Print a compact set of ROC points for the figure series.
        idx = np.linspace(0, len(fpr) - 1, min(8, len(fpr))).astype(int)
        points = ", ".join(f"({fpr[i]:.2f},{tpr[i]:.2f})" for i in idx)
        print(f"  {name}: AUC={area:.3f}  sens={rates.sensitivity:.3f} "
              f"spec={rates.specificity:.3f}  ROC: {points}")

    auc_small = results["alpha/beta=0.5"][2]
    auc_large = results["alpha/beta=2"][2]
    # Shape: both parameterisations deliver comparable, well-above-chance AUC.
    assert auc_small > 0.7 and auc_large > 0.7
    assert abs(auc_small - auc_large) < 0.1, (
        "the two weight settings should reach comparable AUC (paper: both 0.91)"
    )
    # Both clearly beat the random-guess diagonal.
    for name, (fpr, tpr, area, _) in results.items():
        assert area > 0.5 + 0.1
