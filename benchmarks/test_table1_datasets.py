"""Table I — dataset registry and analog generation.

Regenerates the paper's dataset table (n, k, train/test sizes, description)
and benchmarks analog generation throughput.
"""

import pytest

from common import SCALES, bench_dataset
from repro.datasets.registry import DATASETS, list_datasets
from repro.pipeline.report import format_markdown_table


def test_table1_registry(benchmark):
    """Print Table I from the registry; verify it matches the paper."""

    def build():
        return [
            {
                "dataset": spec.name.upper(),
                "n": spec.n_features,
                "k": spec.n_classes,
                "train": spec.train_size,
                "test": spec.test_size,
                "description": spec.description,
            }
            for spec in (DATASETS[name] for name in list_datasets())
        ]

    rows = benchmark(build)
    print("\n=== Table I: datasets ===")
    print(format_markdown_table(rows))
    published = {
        "MNIST": (784, 10), "UCIHAR": (561, 12), "ISOLET": (617, 26),
        "PAMAP2": (54, 5), "DIABETES": (49, 3),
    }
    for row in rows:
        n, k = published[row["dataset"]]
        assert row["n"] == n and row["k"] == k


@pytest.mark.parametrize("name", sorted(SCALES))
def test_table1_analog_generation(benchmark, name):
    """Benchmark analog generation and validate the produced signature."""
    bench_dataset.cache_clear()
    ds = benchmark.pedantic(
        bench_dataset, args=(name,), rounds=1, iterations=1
    )
    spec = DATASETS[name]
    assert ds.n_features == spec.n_features
    assert ds.n_classes == spec.n_classes
    assert ds.n_train >= 10
    print(
        f"\n{name}: generated {ds.n_train} train / {ds.n_test} test samples "
        f"(scale {SCALES[name]}, published {spec.train_size}/{spec.test_size})"
    )
