"""Runnable performance harness — ``python benchmarks/perf.py``.

Thin wrapper over :mod:`repro.perf` (the importable harness behind the
``repro bench`` CLI subcommand) so the benchmarks directory has a direct
entry point next to the figure suites::

    PYTHONPATH=src python benchmarks/perf.py --output BENCH_pr2.json
    PYTHONPATH=src python benchmarks/perf.py --smoke        # CI perf-smoke

See ``docs/performance.md`` for how to read the emitted ``BENCH_*.json``.
"""

from __future__ import annotations

import argparse
import sys

from repro.perf import (
    DEFAULT_DATASET,
    DEFAULT_DIM,
    DEFAULT_ITERATIONS,
    DEFAULT_MODELS,
    DEFAULT_SCALE,
    format_bench_table,
    run_bench,
    write_bench,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--models", nargs="+", default=list(DEFAULT_MODELS))
    parser.add_argument("--dataset", default=DEFAULT_DATASET)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--dim", type=int, default=DEFAULT_DIM)
    parser.add_argument("--iterations", type=int, default=DEFAULT_ITERATIONS)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--backend", default=None)
    parser.add_argument("--dtype", default=None)
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument("--no-legacy", action="store_true")
    parser.add_argument("--no-regen-heavy", action="store_true")
    parser.add_argument("--no-sharded", action="store_true")
    parser.add_argument("--no-serving", action="store_true")
    parser.add_argument("--output", default=None, help="JSON output path")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    payload = run_bench(
        models=tuple(args.models),
        dataset=args.dataset,
        scale=args.scale,
        dim=args.dim,
        iterations=args.iterations,
        seed=args.seed,
        repeats=args.repeats,
        backend=args.backend,
        dtype=args.dtype,
        smoke=args.smoke,
        include_legacy=not args.no_legacy,
        include_regen_heavy=not args.no_regen_heavy,
        include_sharded=not args.no_sharded,
        include_serving=not args.no_serving,
    )
    print(format_bench_table(payload))
    if args.output:
        path = write_bench(payload, args.output)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
