"""Perf-smoke regression gate — ``python benchmarks/check_regression.py``.

Compares a freshly generated ``repro bench --smoke`` payload against the
committed baseline (``benchmarks/baselines/bench-smoke-baseline.json``) and
fails when any model's ``fit_s`` or ``predict_s`` slowed down by more than
``--factor`` (default 2.0 — a deliberately generous margin, since CI
runners are noisy and heterogeneous; the gate exists to catch order-of-
magnitude hot-path regressions, not 10% drift)::

    PYTHONPATH=src python -m repro.cli bench --smoke --output bench-smoke.json
    python benchmarks/check_regression.py bench-smoke.json

When both payloads carry the serving scenario (schema 4), the same factor
gates the serving path: batched p95 latency may not grow, and batched
throughput may not shrink, by more than ``--factor``.

When both payloads carry the packed_vs_int8 scenario (schema 5), the gate
additionally enforces the scenario's invariants on the *current* payload —
packed scores bit-identical to the unpacked binary reference (accuracy
delta exactly 0), zero dropped requests across the packed hot-swap, the
artifact still packed afterwards — and fails if the packed scorer-stage
time slowed by more than ``--factor`` against the baseline.

When the current payload carries the fleet_resilience scenario (schema
6), the gate enforces the fleet's resilience invariants on the current
payload alone — zero failed (non-shed) requests across a mid-load worker
SIGKILL, recovery back to all-running under ``MAX_RECOVERY_S``, the
crash-loop circuit breaker tripping, and multi-worker throughput scaling
(``MIN_FLEET_SCALING`` at >= 4 workers) with flat p95 — and additionally
gates n-worker throughput against the baseline when both sides carry the
scenario.

When the current payload carries the encode_latency scenario (schema 7),
the gate enforces the structured-encoding invariants on the current
payload alone — the FWHT kernel bit-identical to the naive Hadamard
matmul at float64 (and within its float32 bound), the dense/structured
accuracy delta inside the scenario's tolerance, and the committed
single-sample encode speedup floor at the headline dimension
(``MIN_ENCODE_SPEEDUP`` at ``D >= ENCODE_GATE_DIM``) — and additionally
gates the structured encode time against the baseline when both sides
carry the scenario.

When the current payload carries the obs_overhead scenario (schema 8),
the gate enforces the observability invariants on the current payload
alone — full tracing (sample rate 1.0) may not cost more than
``MIN_OBS_THROUGHPUT_RATIO`` of untraced throughput (a CI-noise-tolerant
relaxation of the scenario's own committed 0.95 floor), the traced kill
drill must have written at least one schema-valid flight dump, at least
one complete retried trace (client → dispatch/retry → worker score) must
have survived, and no non-shed request may have failed — and additionally
gates the traced throughput against the baseline when both sides carry
the scenario.

Every comparator section is isolated: a malformed section reports itself
as a failure and the remaining sections still run, so one bad record
cannot mask other regressions.

Exit codes: 0 ok, 1 regression detected, 2 malformed input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = (
    Path(__file__).resolve().parent / "baselines" / "bench-smoke-baseline.json"
)

#: Timing fields gated per model record.
TIMING_FIELDS = ("fit_s", "predict_s")

#: Noise floor in seconds.  Smoke timings can be sub-millisecond, where
#: scheduler jitter on a shared runner routinely exceeds any fixed ratio;
#: ratios are therefore taken against max(baseline, floor) and a slowdown
#: only counts when the current time itself clears the floor.  This keeps
#: the gate sensitive to order-of-magnitude hot-path regressions (the
#: thing it exists to catch) while immune to microbenchmark noise.
MIN_GATED_SECONDS = 5e-3


#: Noise floor for serving p95 latency (milliseconds): micro-batched smoke
#: latencies sit near the max-wait deadline, where jitter dominates ratios.
MIN_GATED_LATENCY_MS = 5.0

#: Minimum multi-worker throughput scaling the fleet scenario must show
#: at >= 4 workers (the committed scenario runs 4): anything below means
#: the shared-memory fan-out stopped overlapping service time.
MIN_FLEET_SCALING = 3.0

#: Maximum seconds the fleet may take to restore all workers to RUNNING
#: after a mid-load SIGKILL.
MAX_RECOVERY_S = 2.0

#: Minimum single-sample structured-encode speedup over the dense RBF
#: path, enforced when the scenario's gate point sits at (or above) the
#: headline dimension.  Speedups are same-process ratios of back-to-back
#: measurements, so they stay meaningful even where the absolute
#: microsecond timings sit below MIN_GATED_SECONDS.
MIN_ENCODE_SPEEDUP = 4.0

#: Headline dimension the encode speedup floor is committed at; smaller
#: gate points (ad-hoc runs) record their speedup but are not floored.
ENCODE_GATE_DIM = 4096

#: Minimum fully-traced / untraced throughput ratio the obs scenario must
#: keep in CI.  The committed scenario gate is 0.95 (recorded in the
#: payload, binding only at full scale); this floor is deliberately much
#: looser because smoke-scale runs serve ~microsecond requests where a
#: handful of slow batches swings the ratio by tens of percent — it
#: exists to catch tracing becoming *order-of-magnitude* expensive, not
#: to re-litigate drift.
MIN_OBS_THROUGHPUT_RATIO = 0.5


def _serving_scenario(payload: dict) -> dict:
    return (payload.get("scenarios") or {}).get("serving") or {}


def compare_serving(current: dict, baseline: dict, factor: float) -> list:
    """Gate the serving scenario: p95 latency growth + throughput collapse."""
    problems = []
    now, then = _serving_scenario(current), _serving_scenario(baseline)
    if not now or not then:
        return problems  # scenario absent on either side: nothing to gate
    now_batched, then_batched = now.get("batched", {}), then.get("batched", {})
    now_p95 = ((now_batched.get("latency_ms") or {}).get("p95"))
    then_p95 = ((then_batched.get("latency_ms") or {}).get("p95"))
    # None-checks, not truthiness: a measured 0.0 (e.g. every request
    # failed instantly) is exactly the collapse this gate exists to catch.
    if now_p95 is not None and then_p95 is not None:
        now_p95, then_p95 = float(now_p95), float(then_p95)
        ratio = now_p95 / max(then_p95, MIN_GATED_LATENCY_MS)
        if now_p95 > MIN_GATED_LATENCY_MS and ratio > factor:
            # Report the true growth; the gate ratio is computed against
            # the noise-floored baseline and would understate it.
            growth = now_p95 / max(then_p95, 1e-9)
            problems.append(
                f"serving.batched.p95: {now_p95:.2f}ms vs baseline "
                f"{then_p95:.2f}ms ({growth:.2f}x growth; floored gate "
                f"ratio {ratio:.2f}x > {factor:.1f}x allowed)"
            )
    now_rps = now_batched.get("throughput_rps")
    then_rps = then_batched.get("throughput_rps")
    if (
        now_rps is not None
        and then_rps is not None
        and float(now_rps) < float(then_rps) / factor
    ):
        problems.append(
            f"serving.batched.throughput: {float(now_rps):.0f} rps vs "
            f"baseline {float(then_rps):.0f} rps "
            f"(> {factor:.1f}x slower)"
        )
    swap = now.get("swap")
    if swap is not None:
        if swap.get("failed_requests"):
            problems.append(
                f"serving.swap dropped {swap['failed_requests']} request(s)"
            )
        if swap.get("parity_ok") is False:
            problems.append("serving.swap post-swap parity mismatch")
    return problems


def _packed_scenario(payload: dict) -> dict:
    return (payload.get("scenarios") or {}).get("packed_vs_int8") or {}


def compare_packed(current: dict, baseline: dict, factor: float) -> list:
    """Gate the packed-deploy scenario: exact parity + scorer timing."""
    problems = []
    now = _packed_scenario(current)
    if not now:
        return problems  # scenario absent: nothing to gate
    parity = now.get("parity") or {}
    # Parity and serving invariants are absolute properties of the packed
    # kernels — gated on the current payload alone, no baseline needed.
    if parity.get("scores_bit_identical") is False:
        problems.append(
            "packed_vs_int8.parity: packed scores diverge from the "
            "unpacked binary reference"
        )
    if parity.get("accuracy_delta") not in (None, 0, 0.0):
        problems.append(
            f"packed_vs_int8.parity: accuracy delta "
            f"{parity['accuracy_delta']} != 0"
        )
    serving = now.get("serving") or {}
    if serving.get("failed_requests"):
        problems.append(
            f"packed_vs_int8.serving dropped "
            f"{serving['failed_requests']} request(s)"
        )
    if serving.get("served_packed_after_swap") is False:
        problems.append(
            "packed_vs_int8.serving: hot-swap demoted the artifact to "
            "unpacked storage"
        )
    if serving.get("parity_ok") is False:
        problems.append("packed_vs_int8.serving post-swap parity mismatch")
    then = _packed_scenario(baseline)
    now_s = (now.get("scoring") or {}).get("packed_score_s")
    then_s = (then.get("scoring") or {}).get("packed_score_s")
    if now_s is not None and then_s is not None:
        now_s, then_s = float(now_s), float(then_s)
        ratio = now_s / max(then_s, MIN_GATED_SECONDS)
        if now_s > MIN_GATED_SECONDS and ratio > factor:
            problems.append(
                f"packed_vs_int8.scoring.packed_score_s: {now_s:.4f}s vs "
                f"baseline {then_s:.4f}s ({ratio:.2f}x > {factor:.1f}x "
                f"allowed)"
            )
    return problems


def _fleet_scenario(payload: dict) -> dict:
    return (payload.get("scenarios") or {}).get("fleet_resilience") or {}


def compare_fleet(current: dict, baseline: dict, factor: float) -> list:
    """Gate the fleet scenario: scaling, SIGKILL survival, breaker."""
    problems = []
    now = _fleet_scenario(current)
    if not now:
        return problems  # scenario absent: nothing to gate
    # Resilience and scaling invariants are absolute properties of the
    # fleet — gated on the current payload alone, no baseline needed.
    steady = now.get("steady_state") or {}
    scaling = steady.get("throughput_scaling")
    n_workers = int(now.get("n_workers") or 0)
    if scaling is not None and n_workers >= 4 and (
        float(scaling) < MIN_FLEET_SCALING
    ):
        problems.append(
            f"fleet_resilience.steady_state.throughput_scaling: "
            f"{float(scaling):.2f}x at {n_workers} workers "
            f"(< {MIN_FLEET_SCALING:.1f}x required)"
        )
    p95_ratio = steady.get("p95_ratio_vs_single")
    if p95_ratio is not None and float(p95_ratio) > factor:
        problems.append(
            f"fleet_resilience.steady_state.p95_ratio_vs_single: "
            f"{float(p95_ratio):.2f}x (> {factor:.1f}x allowed — p95 must "
            f"stay flat as workers are added)"
        )
    kill = now.get("chaos_kill") or {}
    outcomes = kill.get("outcomes") or {}
    if outcomes.get("failed"):
        problems.append(
            f"fleet_resilience.chaos_kill: {outcomes['failed']} non-shed "
            f"request(s) failed across a worker SIGKILL"
        )
    if kill and kill.get("survived") is not True:
        problems.append(
            "fleet_resilience.chaos_kill: fleet did not survive the "
            "SIGKILL drill (no recovery or no supervised restart)"
        )
    recovery = kill.get("recovery_s")
    if recovery is not None and float(recovery) > MAX_RECOVERY_S:
        problems.append(
            f"fleet_resilience.chaos_kill.recovery_s: {float(recovery):.2f}s "
            f"(> {MAX_RECOVERY_S:.1f}s allowed)"
        )
    loop = now.get("crash_loop") or {}
    if loop and loop.get("tripped") is not True:
        problems.append(
            "fleet_resilience.crash_loop: circuit breaker did not trip — "
            "supervisor is hot-looping restarts"
        )
    # Baseline-relative: n-worker steady-state throughput collapse.
    then = _fleet_scenario(baseline)
    now_rps = ((steady.get(f"workers_{n_workers}") or {})
               .get("throughput_rps"))
    then_steady = then.get("steady_state") or {}
    then_rps = ((then_steady.get(f"workers_{n_workers}") or {})
                .get("throughput_rps"))
    if (
        now_rps is not None
        and then_rps is not None
        and float(now_rps) < float(then_rps) / factor
    ):
        problems.append(
            f"fleet_resilience.steady_state.workers_{n_workers}."
            f"throughput: {float(now_rps):.0f} rps vs baseline "
            f"{float(then_rps):.0f} rps (> {factor:.1f}x slower)"
        )
    return problems


def _encode_scenario(payload: dict) -> dict:
    return (payload.get("scenarios") or {}).get("encode_latency") or {}


def compare_encode(current: dict, baseline: dict, factor: float) -> list:
    """Gate the encode-latency scenario: exactness, parity, speedup floor."""
    problems = []
    now = _encode_scenario(current)
    if not now:
        return problems  # scenario absent: nothing to gate
    # Exactness and accuracy parity are absolute properties of the FWHT
    # kernel and the structured encoder — gated on the current payload
    # alone, no baseline needed.
    for entry in now.get("fwht_exactness") or []:
        if entry.get("float64_bit_identical") is False:
            problems.append(
                f"encode_latency.fwht_exactness: m={entry.get('m')} float64 "
                f"transform diverges from the naive Hadamard matmul"
            )
        if entry.get("float32_ok") is False:
            problems.append(
                f"encode_latency.fwht_exactness: m={entry.get('m')} float32 "
                f"error {entry.get('float32_max_abs_err')} exceeds bound "
                f"{entry.get('float32_tol')}"
            )
    acc = now.get("accuracy") or {}
    if acc.get("passed") is False:
        problems.append(
            f"encode_latency.accuracy: fastfood vs rbf delta "
            f"{acc.get('delta')} outside ±{acc.get('tolerance')} at "
            f"D={acc.get('dim')}"
        )
    gate = now.get("gate") or {}
    speedup = gate.get("speedup")
    gate_dim = gate.get("dim")
    if (
        speedup is not None
        and gate_dim is not None
        and int(gate_dim) >= ENCODE_GATE_DIM
        and float(speedup) < MIN_ENCODE_SPEEDUP
    ):
        problems.append(
            f"encode_latency.gate: single-sample speedup "
            f"{float(speedup):.2f}x at D={gate_dim} "
            f"(< {MIN_ENCODE_SPEEDUP:.1f}x floor)"
        )
    # Baseline-relative: the structured encode time at the gate point.
    then = _encode_scenario(baseline)

    def _gate_point_fastfood_s(payload_scenario: dict):
        g = payload_scenario.get("gate") or {}
        for entry in payload_scenario.get("timings") or []:
            if entry.get("dim") != g.get("dim"):
                continue
            for row in entry.get("batches") or []:
                if row.get("batch") == g.get("batch"):
                    return row.get("fastfood_s")
        return None

    now_s = _gate_point_fastfood_s(now)
    then_s = _gate_point_fastfood_s(then)
    if now_s is not None and then_s is not None:
        now_s, then_s = float(now_s), float(then_s)
        ratio = now_s / max(then_s, MIN_GATED_SECONDS)
        if now_s > MIN_GATED_SECONDS and ratio > factor:
            problems.append(
                f"encode_latency.fastfood_s: {now_s:.4f}s vs baseline "
                f"{then_s:.4f}s ({ratio:.2f}x > {factor:.1f}x allowed)"
            )
    return problems


def _obs_scenario(payload: dict) -> dict:
    return (payload.get("scenarios") or {}).get("obs_overhead") or {}


def compare_obs(current: dict, baseline: dict, factor: float) -> list:
    """Gate the obs scenario: tracing overhead + crash-path evidence."""
    problems = []
    now = _obs_scenario(current)
    if not now:
        return problems  # scenario absent: nothing to gate
    overhead = now.get("overhead") or {}
    ratio = overhead.get("throughput_ratio")
    if ratio is not None and float(ratio) < MIN_OBS_THROUGHPUT_RATIO:
        problems.append(
            f"obs_overhead.throughput_ratio: {float(ratio):.3f}x traced vs "
            f"untraced (< {MIN_OBS_THROUGHPUT_RATIO:.2f}x floor — full "
            f"tracing became expensive)"
        )
    # The crash path is an absolute property of the obs stack — gated on
    # the current payload alone, no baseline needed.
    chaos = now.get("chaos") or {}
    if chaos:
        if not chaos.get("n_flight_dumps"):
            problems.append(
                "obs_overhead.chaos: traced kill drill wrote no "
                "schema-valid flight dump"
            )
        if not chaos.get("complete_retried_traces"):
            problems.append(
                "obs_overhead.chaos: no complete retried trace (client → "
                "dispatch/retry → worker score) survived the kill drill"
            )
        outcomes = chaos.get("outcomes") or {}
        if outcomes.get("failed"):
            problems.append(
                f"obs_overhead.chaos: {outcomes['failed']} non-shed "
                f"request(s) failed under tracing"
            )
    # Baseline-relative: traced throughput collapse.
    then = _obs_scenario(baseline)
    now_rps = (overhead.get("sampled") or {}).get("throughput_rps")
    then_rps = (
        ((then.get("overhead") or {}).get("sampled") or {})
        .get("throughput_rps")
    )
    if (
        now_rps is not None
        and then_rps is not None
        and float(now_rps) < float(then_rps) / factor
    ):
        problems.append(
            f"obs_overhead.sampled.throughput: {float(now_rps):.0f} rps vs "
            f"baseline {float(then_rps):.0f} rps (> {factor:.1f}x slower)"
        )
    return problems


def compare_models(current: dict, baseline: dict, factor: float,
                   floor: float = MIN_GATED_SECONDS) -> list:
    """Gate per-model fit/predict timings against the baseline records."""
    problems = []
    base_by_model = {r["model"]: r for r in baseline.get("results", [])}
    for record in current.get("results", []):
        name = record["model"]
        base = base_by_model.get(name)
        if base is None:
            continue  # new model: nothing to gate against yet
        for field in TIMING_FIELDS:
            now, then = record.get(field), base.get(field)
            if not now or not then:
                continue
            now, then = float(now), float(then)
            ratio = now / max(then, floor)
            if now > floor and ratio > factor:
                problems.append(
                    f"{name}.{field}: {now:.4f}s vs baseline {then:.4f}s "
                    f"({ratio:.2f}x > {factor:.1f}x allowed)"
                )
    return problems


#: Comparator sections, run in order.  Each is isolated so a malformed
#: record in one section cannot abort the run and mask failures in the
#: others — all gate failures surface in a single invocation.
SECTIONS = (
    ("models", compare_models),
    ("serving", compare_serving),
    ("packed_vs_int8", compare_packed),
    ("fleet_resilience", compare_fleet),
    ("encode_latency", compare_encode),
    ("obs_overhead", compare_obs),
)


def compare(current: dict, baseline: dict, factor: float) -> list:
    """Return a list of human-readable regression messages (empty = ok)."""
    problems = []
    for section, comparator in SECTIONS:
        try:
            problems.extend(comparator(current, baseline, factor))
        except Exception as exc:  # noqa: BLE001 - a broken section is itself
            # a gate failure; keep checking the remaining sections.
            problems.append(
                f"{section}: comparator crashed on malformed payload "
                f"({type(exc).__name__}: {exc})"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly generated smoke JSON")
    parser.add_argument(
        "baseline", nargs="?", default=str(DEFAULT_BASELINE),
        help="committed baseline JSON (default: benchmarks/baselines/)",
    )
    parser.add_argument(
        "--factor", type=float, default=2.0,
        help="max allowed slowdown ratio per timing field (default 2.0)",
    )
    args = parser.parse_args(argv)
    try:
        current = json.loads(Path(args.current).read_text())
        baseline = json.loads(Path(args.baseline).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"check_regression: cannot read payloads: {exc}", file=sys.stderr)
        return 2
    # Scenario-only payloads (e.g. a standalone fleet_resilience bench)
    # are valid input; a payload with *neither* results nor scenarios is
    # malformed.
    for label, payload in (("current", current), ("baseline", baseline)):
        if not payload.get("results") and not payload.get("scenarios"):
            print(
                f"check_regression: {label} payload has neither 'results' "
                f"nor 'scenarios'",
                file=sys.stderr,
            )
            return 2
    problems = compare(current, baseline, args.factor)
    if problems:
        print("perf-smoke regression detected:")
        for p in problems:
            print(f"  - {p}")
        return 1
    compared = sum(
        1 for r in current.get("results", [])
        if r["model"] in {b["model"] for b in baseline.get("results", [])}
    )
    gated_scenarios = sorted(
        s for s in (current.get("scenarios") or {})
        if any(s == name for name, _ in SECTIONS)
    )
    print(
        f"perf-smoke ok: {compared} model(s) within {args.factor:.1f}x "
        f"of the committed baseline"
        + (f"; scenarios gated: {', '.join(gated_scenarios)}"
           if gated_scenarios else "")
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
