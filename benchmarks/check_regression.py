"""Perf-smoke regression gate — ``python benchmarks/check_regression.py``.

Compares a freshly generated ``repro bench --smoke`` payload against the
committed baseline (``benchmarks/baselines/bench-smoke-baseline.json``) and
fails when any model's ``fit_s`` or ``predict_s`` slowed down by more than
``--factor`` (default 2.0 — a deliberately generous margin, since CI
runners are noisy and heterogeneous; the gate exists to catch order-of-
magnitude hot-path regressions, not 10% drift)::

    PYTHONPATH=src python -m repro.cli bench --smoke --output bench-smoke.json
    python benchmarks/check_regression.py bench-smoke.json

Exit codes: 0 ok, 1 regression detected, 2 malformed input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = (
    Path(__file__).resolve().parent / "baselines" / "bench-smoke-baseline.json"
)

#: Timing fields gated per model record.
TIMING_FIELDS = ("fit_s", "predict_s")

#: Noise floor in seconds.  Smoke timings can be sub-millisecond, where
#: scheduler jitter on a shared runner routinely exceeds any fixed ratio;
#: ratios are therefore taken against max(baseline, floor) and a slowdown
#: only counts when the current time itself clears the floor.  This keeps
#: the gate sensitive to order-of-magnitude hot-path regressions (the
#: thing it exists to catch) while immune to microbenchmark noise.
MIN_GATED_SECONDS = 5e-3


def compare(current: dict, baseline: dict, factor: float,
            floor: float = MIN_GATED_SECONDS) -> list:
    """Return a list of human-readable regression messages (empty = ok)."""
    problems = []
    base_by_model = {r["model"]: r for r in baseline.get("results", [])}
    for record in current.get("results", []):
        name = record["model"]
        base = base_by_model.get(name)
        if base is None:
            continue  # new model: nothing to gate against yet
        for field in TIMING_FIELDS:
            now, then = record.get(field), base.get(field)
            if not now or not then:
                continue
            now, then = float(now), float(then)
            ratio = now / max(then, floor)
            if now > floor and ratio > factor:
                problems.append(
                    f"{name}.{field}: {now:.4f}s vs baseline {then:.4f}s "
                    f"({ratio:.2f}x > {factor:.1f}x allowed)"
                )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly generated smoke JSON")
    parser.add_argument(
        "baseline", nargs="?", default=str(DEFAULT_BASELINE),
        help="committed baseline JSON (default: benchmarks/baselines/)",
    )
    parser.add_argument(
        "--factor", type=float, default=2.0,
        help="max allowed slowdown ratio per timing field (default 2.0)",
    )
    args = parser.parse_args(argv)
    try:
        current = json.loads(Path(args.current).read_text())
        baseline = json.loads(Path(args.baseline).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"check_regression: cannot read payloads: {exc}", file=sys.stderr)
        return 2
    if not current.get("results") or not baseline.get("results"):
        print("check_regression: payload missing 'results'", file=sys.stderr)
        return 2
    problems = compare(current, baseline, args.factor)
    if problems:
        print("perf-smoke regression detected:")
        for p in problems:
            print(f"  - {p}")
        return 1
    compared = sum(
        1 for r in current["results"]
        if r["model"] in {b["model"] for b in baseline["results"]}
    )
    print(
        f"perf-smoke ok: {compared} model(s) within {args.factor:.1f}x "
        f"of the committed baseline"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
