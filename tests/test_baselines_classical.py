"""Tests for the classical baselines: MLP, SVMs, kNN."""

import numpy as np
import pytest

from repro.baselines.knn import KNNClassifier
from repro.baselines.mlp import MLPClassifier, cross_entropy, relu, softmax
from repro.baselines.svm import LinearSVMClassifier, RFFSVMClassifier


class TestMLPPrimitives:
    def test_relu(self):
        assert np.array_equal(relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])

    def test_softmax_rows_sum_to_one(self):
        probs = softmax(np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_softmax_stable_for_large_logits(self):
        probs = softmax(np.array([[1000.0, 1000.0]]))
        assert np.allclose(probs, 0.5)

    def test_cross_entropy_perfect_prediction(self):
        probs = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert cross_entropy(probs, np.array([0, 1])) == pytest.approx(0.0, abs=1e-9)

    def test_cross_entropy_clips_zeros(self):
        probs = np.array([[0.0, 1.0]])
        assert np.isfinite(cross_entropy(probs, np.array([0])))


class TestMLPClassifier:
    def test_learns(self, small_problem):
        train_x, train_y, test_x, test_y = small_problem
        clf = MLPClassifier(hidden_sizes=(32,), epochs=30, seed=0).fit(train_x, train_y)
        assert clf.score(test_x, test_y) > 0.85

    def test_two_hidden_layers(self, small_problem):
        train_x, train_y, test_x, test_y = small_problem
        clf = MLPClassifier(hidden_sizes=(32, 16), epochs=30, seed=0).fit(
            train_x, train_y
        )
        assert clf.score(test_x, test_y) > 0.8

    def test_loss_decreases(self, small_problem):
        train_x, train_y, _, _ = small_problem
        clf = MLPClassifier(hidden_sizes=(32,), epochs=15, seed=0).fit(train_x, train_y)
        assert clf.loss_history_[-1] < clf.loss_history_[0]

    def test_probabilities(self, small_problem):
        train_x, train_y, test_x, _ = small_problem
        clf = MLPClassifier(hidden_sizes=(16,), epochs=5, seed=0).fit(train_x, train_y)
        probs = clf.decision_scores(test_x)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert probs.min() >= 0.0

    def test_reproducible(self, small_problem):
        train_x, train_y, test_x, _ = small_problem
        a = MLPClassifier(hidden_sizes=(16,), epochs=5, seed=3).fit(train_x, train_y)
        b = MLPClassifier(hidden_sizes=(16,), epochs=5, seed=3).fit(train_x, train_y)
        assert np.array_equal(a.predict(test_x), b.predict(test_x))

    def test_parameters_roundtrip(self, small_problem):
        train_x, train_y, test_x, _ = small_problem
        clf = MLPClassifier(hidden_sizes=(16,), epochs=5, seed=0).fit(train_x, train_y)
        before = clf.predict(test_x)
        params = [p.copy() for p in clf.parameters()]
        clf.set_parameters(params)
        assert np.array_equal(clf.predict(test_x), before)

    def test_set_parameters_shape_check(self, small_problem):
        train_x, train_y, _, _ = small_problem
        clf = MLPClassifier(hidden_sizes=(16,), epochs=2, seed=0).fit(train_x, train_y)
        bad = [np.zeros((1, 1))] * len(clf.parameters())
        with pytest.raises(ValueError, match="shape mismatch"):
            clf.set_parameters(bad)

    def test_set_parameters_count_check(self, small_problem):
        train_x, train_y, _, _ = small_problem
        clf = MLPClassifier(hidden_sizes=(16,), epochs=2, seed=0).fit(train_x, train_y)
        with pytest.raises(ValueError, match="parameter arrays"):
            clf.set_parameters([np.zeros((2, 2))])

    def test_weight_decay_shrinks_weights(self, small_problem):
        train_x, train_y, _, _ = small_problem
        free = MLPClassifier(hidden_sizes=(32,), epochs=20, seed=0).fit(train_x, train_y)
        decayed = MLPClassifier(
            hidden_sizes=(32,), epochs=20, weight_decay=0.1, seed=0
        ).fit(train_x, train_y)
        assert np.linalg.norm(decayed.weights_[0]) < np.linalg.norm(free.weights_[0])

    @pytest.mark.parametrize(
        "kwargs", [{"hidden_sizes": ()}, {"hidden_sizes": (0,)}, {"lr": 0},
                   {"epochs": 0}, {"batch_size": 0}, {"weight_decay": -1}],
    )
    def test_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            MLPClassifier(**kwargs)


class TestLinearSVM:
    def test_learns(self, small_problem):
        train_x, train_y, test_x, test_y = small_problem
        clf = LinearSVMClassifier(epochs=30, seed=0).fit(train_x, train_y)
        assert clf.score(test_x, test_y) > 0.8

    def test_coef_shapes(self, small_problem):
        train_x, train_y, _, _ = small_problem
        clf = LinearSVMClassifier(epochs=3, seed=0).fit(train_x, train_y)
        assert clf.coef_.shape == (3, train_x.shape[1])
        assert clf.intercept_.shape == (3,)

    def test_decision_is_linear(self, small_problem):
        train_x, train_y, test_x, _ = small_problem
        clf = LinearSVMClassifier(epochs=3, seed=0).fit(train_x, train_y)
        scores = clf.decision_scores(test_x)
        assert np.allclose(scores, test_x @ clf.coef_.T + clf.intercept_)

    def test_no_intercept(self, small_problem):
        train_x, train_y, _, _ = small_problem
        clf = LinearSVMClassifier(epochs=3, fit_intercept=False, seed=0).fit(
            train_x, train_y
        )
        assert not clf.intercept_.any()

    @pytest.mark.parametrize("kwargs", [{"C": 0}, {"epochs": 0}, {"lr": 0}, {"batch_size": 0}])
    def test_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            LinearSVMClassifier(**kwargs)


class TestRFFSVM:
    def test_learns(self, small_problem):
        train_x, train_y, test_x, test_y = small_problem
        clf = RFFSVMClassifier(n_components=128, epochs=20, seed=0).fit(
            train_x, train_y
        )
        assert clf.score(test_x, test_y) > 0.8

    def test_default_gamma_scales_with_features(self, small_problem):
        train_x, train_y, _, _ = small_problem
        clf = RFFSVMClassifier(n_components=64, epochs=2, seed=0).fit(train_x, train_y)
        expected_std = 1.0 / np.sqrt(train_x.shape[1])
        assert clf.frequencies_.std() == pytest.approx(expected_std, rel=0.15)

    def test_explicit_gamma(self, small_problem):
        train_x, train_y, _, _ = small_problem
        clf = RFFSVMClassifier(n_components=64, gamma=0.5, epochs=2, seed=0).fit(
            train_x, train_y
        )
        assert clf.frequencies_.std() == pytest.approx(0.5, rel=0.15)

    @pytest.mark.parametrize("kwargs", [{"n_components": 0}, {"gamma": 0.0}])
    def test_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            RFFSVMClassifier(**kwargs)


class TestKNN:
    def test_learns(self, small_problem):
        train_x, train_y, test_x, test_y = small_problem
        clf = KNNClassifier(k=3).fit(train_x, train_y)
        assert clf.score(test_x, test_y) > 0.85

    def test_k1_memorises_training(self, small_problem):
        train_x, train_y, _, _ = small_problem
        clf = KNNClassifier(k=1).fit(train_x, train_y)
        assert clf.score(train_x, train_y) == 1.0

    def test_k_larger_than_train_clamped(self):
        X = np.array([[0.0], [1.0], [10.0]])
        y = np.array([0, 0, 1])
        clf = KNNClassifier(k=100).fit(X, y)
        # All three neighbours vote; class 0 has majority.
        assert clf.predict(np.array([[5.0]]))[0] == 0

    def test_distance_weighting(self):
        X = np.array([[0.0], [0.1], [10.0], [10.1], [10.2]])
        y = np.array([0, 0, 1, 1, 1])
        query = np.array([[0.5]])
        uniform = KNNClassifier(k=5, weights="uniform").fit(X, y)
        weighted = KNNClassifier(k=5, weights="distance").fit(X, y)
        assert uniform.predict(query)[0] == 1  # majority of 5 is class 1
        assert weighted.predict(query)[0] == 0  # near neighbours dominate

    @pytest.mark.parametrize("kwargs", [{"k": 0}, {"weights": "bogus"}])
    def test_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            KNNClassifier(**kwargs)
