"""Tests for repro.datasets.preprocessing."""

import numpy as np
import pytest

from repro.datasets.preprocessing import MinMaxScaler, StandardScaler, l2_normalize


class TestStandardScaler:
    def test_zero_mean_unit_std(self, rng):
        X = rng.normal(3.0, 5.0, size=(200, 4))
        out = StandardScaler().fit_transform(X)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_safe(self):
        X = np.ones((10, 2))
        out = StandardScaler().fit_transform(X)
        assert np.allclose(out, 0.0)

    def test_transform_uses_train_stats(self, rng):
        train = rng.normal(size=(100, 3))
        test = rng.normal(10.0, 1.0, size=(50, 3))
        scaler = StandardScaler().fit(train)
        out = scaler.transform(test)
        assert out.mean() > 5.0  # test shift preserved relative to train stats

    def test_inverse_roundtrip(self, rng):
        X = rng.normal(2.0, 3.0, size=(50, 4))
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            StandardScaler().transform(np.ones((2, 2)))

    def test_feature_mismatch(self, rng):
        scaler = StandardScaler().fit(rng.normal(size=(10, 3)))
        with pytest.raises(ValueError, match="features"):
            scaler.transform(np.ones((2, 4)))


class TestMinMaxScaler:
    def test_range(self, rng):
        X = rng.normal(size=(100, 3))
        out = MinMaxScaler().fit_transform(X)
        assert out.min() == pytest.approx(0.0)
        assert out.max() == pytest.approx(1.0)

    def test_custom_range(self, rng):
        X = rng.normal(size=(100, 3))
        out = MinMaxScaler(feature_range=(-1.0, 1.0)).fit_transform(X)
        assert out.min() == pytest.approx(-1.0)
        assert out.max() == pytest.approx(1.0)

    def test_constant_feature_maps_to_low(self):
        X = np.full((10, 1), 7.0)
        out = MinMaxScaler(feature_range=(0.0, 1.0)).fit_transform(X)
        assert np.allclose(out, 0.0)

    def test_bad_range(self):
        with pytest.raises(ValueError, match="feature_range"):
            MinMaxScaler(feature_range=(1.0, 0.0))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            MinMaxScaler().transform(np.ones((2, 2)))


class TestL2Normalize:
    def test_unit_rows(self, rng):
        out = l2_normalize(rng.normal(size=(20, 5)))
        assert np.allclose(np.linalg.norm(out, axis=1), 1.0)

    def test_zero_rows_pass(self):
        out = l2_normalize(np.zeros((2, 3)))
        assert np.array_equal(out, np.zeros((2, 3)))
