"""Property-based tests for metric invariants."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.classification import accuracy, confusion_matrix, topk_accuracy
from repro.metrics.roc import auc, roc_curve
from repro.metrics.sensitivity import sensitivity_specificity


def labeled_scores():
    """(labels, score matrix) with at least two classes represented."""
    return st.tuples(
        st.integers(3, 40),   # n samples
        st.integers(2, 6),    # k classes
        st.integers(0, 2**31),
    )


class TestAccuracyProperties:
    @given(labeled_scores())
    def test_accuracy_in_unit_interval(self, params):
        n, k, seed = params
        rng = np.random.default_rng(seed)
        y = rng.integers(0, k, n)
        p = rng.integers(0, k, n)
        assert 0.0 <= accuracy(y, p) <= 1.0

    @given(labeled_scores())
    def test_self_accuracy_is_one(self, params):
        n, k, seed = params
        y = np.random.default_rng(seed).integers(0, k, n)
        assert accuracy(y, y) == 1.0

    @given(labeled_scores())
    def test_topk_monotone(self, params):
        n, k, seed = params
        rng = np.random.default_rng(seed)
        y = rng.integers(0, k, n)
        scores = rng.normal(size=(n, k))
        accs = [topk_accuracy(y, scores, j) for j in range(1, k + 1)]
        assert all(a <= b + 1e-12 for a, b in zip(accs, accs[1:]))
        assert accs[-1] == 1.0


class TestConfusionProperties:
    @given(labeled_scores())
    def test_total_preserved(self, params):
        n, k, seed = params
        rng = np.random.default_rng(seed)
        y = rng.integers(0, k, n)
        p = rng.integers(0, k, n)
        assert confusion_matrix(y, p, k).sum() == n

    @given(labeled_scores())
    def test_trace_equals_correct_count(self, params):
        n, k, seed = params
        rng = np.random.default_rng(seed)
        y = rng.integers(0, k, n)
        p = rng.integers(0, k, n)
        cm = confusion_matrix(y, p, k)
        assert np.trace(cm) == np.sum(y == p)


class TestRocProperties:
    @given(st.integers(4, 200), st.integers(0, 2**31))
    def test_auc_in_unit_interval(self, n, seed):
        rng = np.random.default_rng(seed)
        y = np.r_[0, 1, rng.integers(0, 2, n - 2)]  # both classes guaranteed
        scores = rng.normal(size=n)
        fpr, tpr, _ = roc_curve(y, scores)
        assert 0.0 <= auc(fpr, tpr) <= 1.0

    @given(st.integers(4, 200), st.integers(0, 2**31))
    def test_score_negation_flips_auc(self, n, seed):
        rng = np.random.default_rng(seed)
        y = np.r_[0, 1, rng.integers(0, 2, n - 2)]
        scores = rng.normal(size=n)
        a = auc(*roc_curve(y, scores)[:2])
        b = auc(*roc_curve(y, -scores)[:2])
        assert a + b == np.float64(1.0) or abs(a + b - 1.0) < 1e-9


class TestSensitivityProperties:
    @given(labeled_scores())
    def test_rates_in_unit_interval(self, params):
        n, k, seed = params
        rng = np.random.default_rng(seed)
        y = rng.integers(0, k, n)
        p = rng.integers(0, k, n)
        out = sensitivity_specificity(y, p)
        assert 0.0 <= out["sensitivity"] <= 1.0
        assert 0.0 <= out["specificity"] <= 1.0

    @given(labeled_scores())
    def test_perfect_prediction_maximises_both(self, params):
        n, k, seed = params
        rng = np.random.default_rng(seed)
        # Guarantee at least two classes so specificity is defined.
        y = np.r_[0, 1, rng.integers(0, k, n - 2)]
        out = sensitivity_specificity(y, y)
        assert out["sensitivity"] == 1.0
        assert out["specificity"] == 1.0
