"""Tests for repro.core.disthd.DistHDClassifier — the full training loop."""

import numpy as np
import pytest

from repro.core.config import DistHDConfig
from repro.core.disthd import DistHDClassifier


def _small_clf(**overrides):
    defaults = dict(dim=96, iterations=6, seed=0)
    defaults.update(overrides)
    return DistHDClassifier(**defaults)


class TestFitPredict:
    def test_learns_separable_problem(self, small_problem):
        train_x, train_y, test_x, test_y = small_problem
        clf = _small_clf().fit(train_x, train_y)
        assert clf.score(test_x, test_y) > 0.85

    def test_predict_labels_in_classes(self, small_problem):
        train_x, train_y, test_x, _ = small_problem
        clf = _small_clf().fit(train_x, train_y)
        assert set(np.unique(clf.predict(test_x))) <= set(clf.classes_)

    def test_reproducible(self, small_problem):
        train_x, train_y, test_x, _ = small_problem
        a = _small_clf().fit(train_x, train_y).predict(test_x)
        b = _small_clf().fit(train_x, train_y).predict(test_x)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self, small_problem):
        train_x, train_y, _, _ = small_problem
        a = _small_clf(seed=0).fit(train_x, train_y)
        b = _small_clf(seed=1).fit(train_x, train_y)
        assert not np.allclose(a.memory_.vectors, b.memory_.vectors)

    def test_noncontiguous_labels(self, small_problem):
        train_x, train_y, test_x, test_y = small_problem
        remapped = np.array([10, 20, 35])[train_y]
        clf = _small_clf().fit(train_x, remapped)
        assert set(np.unique(clf.predict(test_x))) <= {10, 20, 35}
        assert clf.score(test_x, np.array([10, 20, 35])[test_y]) > 0.85

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            _small_clf().predict(np.ones((1, 4)))

    def test_single_class_rejected(self):
        with pytest.raises(ValueError, match="at least 2 classes"):
            _small_clf().fit(np.ones((5, 3)), [1] * 5)

    def test_feature_mismatch_at_predict(self, small_problem):
        train_x, train_y, _, _ = small_problem
        clf = _small_clf().fit(train_x, train_y)
        with pytest.raises(ValueError, match="features"):
            clf.predict(np.ones((1, train_x.shape[1] + 1)))


class TestFailedFitState:
    def test_n_iterations_consistent_when_step_raises(
        self, small_problem, monkeypatch
    ):
        # A refit that blows up mid-run must leave n_iterations_ equal to
        # the iterations actually completed (and recorded in history_),
        # not the previous fit's stale count.
        import repro.core.disthd as disthd_mod

        train_x, train_y, _, _ = small_problem
        clf = _small_clf(convergence_patience=None).fit(train_x, train_y)
        assert clf.n_iterations_ == 6

        real = disthd_mod.adaptive_fit_iteration
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("mid-fit failure")
            return real(*args, **kwargs)

        monkeypatch.setattr(disthd_mod, "adaptive_fit_iteration", flaky)
        with pytest.raises(RuntimeError, match="mid-fit failure"):
            clf.fit(train_x, train_y)
        assert clf.n_iterations_ == 1
        assert len(clf.history_) == 1


class TestTopK:
    def test_predict_topk_shape(self, small_problem):
        train_x, train_y, test_x, _ = small_problem
        clf = _small_clf().fit(train_x, train_y)
        topk = clf.predict_topk(test_x, k=2)
        assert topk.shape == (test_x.shape[0], 2)

    def test_topk_first_column_is_predict(self, small_problem):
        train_x, train_y, test_x, _ = small_problem
        clf = _small_clf().fit(train_x, train_y)
        assert np.array_equal(clf.predict_topk(test_x, 2)[:, 0], clf.predict(test_x))

    def test_topk_k_bounds(self, small_problem):
        train_x, train_y, test_x, _ = small_problem
        clf = _small_clf().fit(train_x, train_y)
        with pytest.raises(ValueError, match="k must lie"):
            clf.predict_topk(test_x, k=99)


class TestDynamicEncoding:
    def test_history_recorded(self, small_problem):
        train_x, train_y, _, _ = small_problem
        clf = _small_clf(convergence_patience=None).fit(train_x, train_y)
        assert len(clf.history_) == clf.n_iterations_ == 6
        record = clf.history_[0]
        assert 0.0 <= record.train_accuracy <= 1.0
        assert record.top2_accuracy >= record.train_accuracy

    def test_effective_dim_tracks_regeneration(self, medium_problem):
        train_x, train_y, _, _ = medium_problem
        clf = _small_clf(
            dim=64, iterations=8, regen_rate=0.3, selection="union",
            convergence_patience=None,
        ).fit(train_x, train_y)
        assert clf.effective_dim_ == 64 + clf.history_.total_regenerated

    def test_zero_regen_rate_is_static(self, small_problem):
        train_x, train_y, _, _ = small_problem
        clf = _small_clf(regen_rate=0.0).fit(train_x, train_y)
        assert clf.effective_dim_ == clf.config.dim
        assert clf.history_.total_regenerated == 0

    def test_last_iteration_never_regenerates(self, medium_problem):
        train_x, train_y, _, _ = medium_problem
        clf = _small_clf(
            iterations=4, regen_rate=0.5, selection="union",
            convergence_patience=None,
        ).fit(train_x, train_y)
        assert clf.history_[-1].regenerated == 0

    def test_early_stopping_trims_iterations(self, small_problem):
        train_x, train_y, _, _ = small_problem
        clf = _small_clf(
            iterations=50, convergence_patience=2, convergence_tol=0.0
        ).fit(train_x, train_y)
        assert clf.n_iterations_ < 50

    def test_regenerated_columns_refresh_cache(self, medium_problem):
        """After fit, decision scores from re-encoding must match training state."""
        train_x, train_y, _, _ = medium_problem
        clf = _small_clf(
            dim=48, iterations=5, regen_rate=0.4, selection="union",
            convergence_patience=None,
        ).fit(train_x, train_y)
        # Re-encoding training data with the final encoder and comparing with
        # memory must give the same predictions as the public API.
        direct = clf.memory_.predict(clf.encoder_.encode(train_x))
        assert np.array_equal(clf.classes_[direct], clf.predict(train_x))


class TestConfigPlumbing:
    def test_accepts_config_object(self):
        cfg = DistHDConfig(dim=32, iterations=2)
        clf = DistHDClassifier(cfg)
        assert clf.config.dim == 32

    def test_overrides_on_config(self):
        cfg = DistHDConfig(dim=32, iterations=2)
        clf = DistHDClassifier(cfg, dim=64)
        assert clf.config.dim == 64
        assert cfg.dim == 32  # original untouched

    def test_incorrect_rule_variants_both_train(self, medium_problem):
        train_x, train_y, test_x, test_y = medium_problem
        for rule in ("prose", "algorithm-box"):
            clf = _small_clf(incorrect_rule=rule, iterations=4).fit(train_x, train_y)
            assert clf.score(test_x, test_y) > 0.5

    def test_decision_scores_are_cosine(self, small_problem):
        train_x, train_y, test_x, _ = small_problem
        clf = _small_clf().fit(train_x, train_y)
        scores = clf.decision_scores(test_x)
        assert scores.shape == (test_x.shape[0], 3)
        assert np.all(scores >= -1.0 - 1e-9) and np.all(scores <= 1.0 + 1e-9)
