"""Tests for repro.datasets.generators — per-dataset analogs."""

import numpy as np
import pytest

from repro.datasets.generators import (
    _smooth_rows,
    generate,
    make_audio_like,
    make_image_like,
    make_imu_like,
    make_tabular_like,
)
from repro.datasets.registry import get_spec


class TestSmoothRows:
    def test_window_one_identity(self):
        X = np.random.default_rng(0).normal(size=(3, 10))
        assert np.array_equal(_smooth_rows(X, 1), X)

    def test_reduces_roughness(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(2, 100))
        smoothed = _smooth_rows(X, 5)
        rough = np.abs(np.diff(X, axis=1)).mean()
        smooth = np.abs(np.diff(smoothed, axis=1)).mean()
        assert smooth < rough

    def test_preserves_shape(self):
        X = np.ones((4, 17))
        assert _smooth_rows(X, 4).shape == (4, 17)


class TestImageLike:
    def test_shape_matches_spec(self):
        spec = get_spec("mnist")
        X, y = make_image_like(spec, 50, seed=0)
        assert X.shape == (50, spec.n_features)
        assert y.max() < spec.n_classes

    def test_nonnegative_and_bounded(self):
        X, _ = make_image_like(get_spec("mnist"), 50, seed=0)
        assert X.min() >= 0.0
        assert X.max() <= 1.0

    def test_sparse_background(self):
        """Most 'pixels' are exactly zero, like digit images."""
        X, _ = make_image_like(get_spec("mnist"), 50, seed=0)
        assert (X == 0.0).mean() > 0.4


class TestImuLike:
    def test_shape(self):
        spec = get_spec("ucihar")
        X, y = make_imu_like(spec, 40, seed=0)
        assert X.shape == (40, 561)

    def test_adjacent_feature_correlation(self):
        """Smoothing induces higher adjacent-column correlation than random."""
        X, _ = make_imu_like(get_spec("ucihar"), 300, seed=1)
        Xc = X - X.mean(axis=0)
        adjacent = np.mean(
            [np.corrcoef(Xc[:, i], Xc[:, i + 1])[0, 1] for i in range(0, 60, 3)]
        )
        distant = np.mean(
            [np.corrcoef(Xc[:, i], Xc[:, i + 250])[0, 1] for i in range(0, 60, 3)]
        )
        assert adjacent > distant


class TestAudioLike:
    def test_shape(self):
        spec = get_spec("isolet")
        X, y = make_audio_like(spec, 60, seed=0)
        assert X.shape == (60, 617)
        assert y.max() < 26

    def test_gain_variation(self):
        """Per-sample loudness variation: row norms vary multiplicatively."""
        X, _ = make_audio_like(get_spec("isolet"), 200, seed=2)
        norms = np.linalg.norm(X, axis=1)
        assert norms.std() / norms.mean() > 0.02


class TestTabularLike:
    def test_shape(self):
        spec = get_spec("diabetes")
        X, y = make_tabular_like(spec, 100, seed=0)
        assert X.shape == (100, 49)
        assert y.max() < 3

    def test_quantised_columns_exist(self):
        X, _ = make_tabular_like(get_spec("diabetes"), 500, seed=0)
        # At least a third of columns take few distinct half-integer values.
        n_quantised = sum(
            1 for col in X.T if np.allclose(col * 2, np.round(col * 2))
        )
        assert n_quantised >= 49 // 3

    def test_class_imbalance(self):
        """DIABETES analog mimics skewed clinical outcome rates."""
        _, y = make_tabular_like(get_spec("diabetes"), 4000, seed=1)
        counts = np.bincount(y, minlength=3) / y.size
        assert counts[0] > counts[2]


class TestGenerateDispatch:
    @pytest.mark.parametrize("name", ["mnist", "ucihar", "isolet", "pamap2", "diabetes"])
    def test_all_structures_dispatch(self, name):
        spec = get_spec(name)
        X, y = generate(spec, 30, seed=0)
        assert X.shape == (30, spec.n_features)
        assert y.shape == (30,)

    def test_deterministic(self):
        spec = get_spec("ucihar")
        a = generate(spec, 25, seed=3)
        b = generate(spec, 25, seed=3)
        assert np.array_equal(a[0], b[0])

    def test_bad_sample_count(self):
        with pytest.raises(ValueError, match="n_samples"):
            generate(get_spec("mnist"), 0)

    def test_unknown_structure(self):
        from dataclasses import replace

        bad_spec = replace(get_spec("mnist"), structure="video")
        with pytest.raises(ValueError, match="unknown structure"):
            generate(bad_spec, 10)
