"""Tests for repro.core.config.DistHDConfig."""

import pytest

from repro.core.config import DistHDConfig


class TestDefaults:
    def test_paper_defaults(self):
        cfg = DistHDConfig()
        assert cfg.dim == 500
        assert cfg.regen_rate == pytest.approx(0.10)
        assert cfg.theta < cfg.beta
        assert cfg.selection == "intersection"
        assert cfg.incorrect_rule == "prose"

    def test_with_overrides_returns_copy(self):
        cfg = DistHDConfig()
        other = cfg.with_overrides(dim=1000)
        assert other.dim == 1000
        assert cfg.dim == 500

    def test_with_overrides_validates(self):
        with pytest.raises(ValueError, match="dim"):
            DistHDConfig().with_overrides(dim=-1)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"dim": 0}, "dim"),
            ({"lr": 0.0}, "lr"),
            ({"alpha": -1.0}, "non-negative"),
            ({"theta": 2.0, "beta": 1.0}, "theta < beta"),
            ({"regen_rate": 1.5}, "regen_rate"),
            ({"iterations": 0}, "iterations"),
            ({"batch_size": 0}, "batch_size"),
            ({"bandwidth": 0.0}, "bandwidth"),
            ({"incorrect_rule": "bogus"}, "incorrect_rule"),
            ({"normalization": "bogus"}, "normalization"),
            ({"selection": "bogus"}, "selection"),
            ({"convergence_patience": 0}, "convergence_patience"),
            ({"convergence_tol": -0.1}, "convergence_tol"),
        ],
    )
    def test_rejects(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            DistHDConfig(**kwargs)

    def test_theta_equal_beta_rejected(self):
        """Paper requires strict theta < beta."""
        with pytest.raises(ValueError):
            DistHDConfig(beta=0.5, theta=0.5)

    def test_patience_none_allowed(self):
        assert DistHDConfig(convergence_patience=None).convergence_patience is None

    def test_zero_regen_allowed(self):
        assert DistHDConfig(regen_rate=0.0).regen_rate == 0.0


class TestEffectiveDim:
    def test_paper_formula(self):
        """D* = D + D·R%·iterations: 0.5k at R=10% over 70 iters gives 4k."""
        cfg = DistHDConfig(dim=500, regen_rate=0.10, iterations=70)
        assert cfg.effective_dim() == pytest.approx(4000.0)

    def test_custom_iterations(self):
        cfg = DistHDConfig(dim=100, regen_rate=0.5)
        assert cfg.effective_dim(iterations=4) == pytest.approx(300.0)
