"""Integration tests: full workflows across modules."""

import numpy as np
import pytest

from repro import DistHDClassifier, load_dataset
from repro.baselines import (
    BaselineHDClassifier,
    KNNClassifier,
    MLPClassifier,
    NeuralHDClassifier,
    OnlineHDClassifier,
)
from repro.metrics.roc import auc, roc_curve_ovr
from repro.noise.robustness import evaluate_quality_loss
from repro.pipeline.experiment import run_experiment
from repro.pipeline.grid import grid_search


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("ucihar", scale=0.05, seed=0)


class TestEndToEndTraining:
    def test_disthd_full_pipeline(self, dataset):
        """Load → fit → predict → top-2 → robustness, all through public API."""
        clf = DistHDClassifier(dim=256, iterations=10, seed=0)
        clf.fit(dataset.train_x, dataset.train_y)
        accuracy = clf.score(dataset.test_x, dataset.test_y)
        assert accuracy > 0.6

        top2 = clf.predict_topk(dataset.test_x, 2)
        top2_acc = np.mean(np.any(top2 == dataset.test_y[:, None], axis=1))
        assert top2_acc >= accuracy

        point = evaluate_quality_loss(
            clf, dataset.test_x, dataset.test_y,
            bits=1, error_rate=0.02, n_trials=2, seed=0,
        )
        assert point.quality_loss < 20.0

    def test_every_classifier_trains_on_analog(self, dataset):
        small = dataset.subset(150, 50)
        models = [
            DistHDClassifier(dim=96, iterations=3, seed=0),
            BaselineHDClassifier(dim=96, iterations=3, seed=0),
            NeuralHDClassifier(dim=96, iterations=3, seed=0),
            OnlineHDClassifier(dim=96, iterations=3, seed=0),
            MLPClassifier(hidden_sizes=(32,), epochs=5, seed=0),
            KNNClassifier(k=3),
        ]
        for model in models:
            result = run_experiment(model, small)
            assert result.test_accuracy > 1.0 / 12  # above chance

    def test_grid_search_on_disthd(self, dataset):
        small = dataset.subset(150, 50)
        result = grid_search(
            lambda **p: DistHDClassifier(dim=64, iterations=3, seed=0, **p),
            {"regen_rate": [0.0, 0.2]},
            small.train_x,
            small.train_y,
            seed=0,
        )
        assert result.best_params["regen_rate"] in (0.0, 0.2)


class TestRocWorkflow:
    def test_multiclass_roc_from_decision_scores(self, dataset):
        clf = DistHDClassifier(dim=128, iterations=5, seed=0)
        clf.fit(dataset.train_x, dataset.train_y)
        scores = clf.decision_scores(dataset.test_x)
        dense = np.searchsorted(clf.classes_, dataset.test_y)
        curves = roc_curve_ovr(dense, scores)
        micro_auc = auc(*curves["micro"])
        assert micro_auc > 0.75


class TestDimensionRegenerationEffect:
    def test_regeneration_grows_effective_dim_without_memory_blowup(self, dataset):
        small = dataset.subset(200, 50)
        clf = DistHDClassifier(
            dim=128, iterations=10, regen_rate=0.2, selection="union",
            convergence_patience=None, seed=0,
        )
        clf.fit(small.train_x, small.train_y)
        assert clf.effective_dim_ > 128
        # Physical memory stays (k, D) regardless of D*.
        assert clf.memory_.vectors.shape == (12, 128)

    def test_effective_dim_bounded_by_paper_formula(self, dataset):
        small = dataset.subset(200, 50)
        cfg_iters, rate, dim = 8, 0.25, 96
        clf = DistHDClassifier(
            dim=dim, iterations=cfg_iters, regen_rate=rate, selection="union",
            convergence_patience=None, seed=0,
        )
        clf.fit(small.train_x, small.train_y)
        # Union selection can pick up to R%·D per matrix per iteration.
        upper = dim + 2 * dim * rate * cfg_iters
        assert clf.effective_dim_ <= upper + 1e-9


class TestSerializationSurface:
    def test_memory_copy_supports_snapshotting(self, dataset):
        small = dataset.subset(150, 40)
        clf = DistHDClassifier(dim=96, iterations=3, seed=0)
        clf.fit(small.train_x, small.train_y)
        snapshot = clf.memory_.copy()
        clf.memory_.vectors[:] = 0.0
        assert snapshot.vectors.any()
        clf.memory_.vectors[:] = snapshot.vectors
        assert clf.score(small.test_x, small.test_y) > 0.3
