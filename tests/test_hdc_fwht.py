"""Tests for the fast Walsh–Hadamard transform kernel (repro.hdc.fwht)."""

import numpy as np
import pytest

from repro.backend import get_backend, torch_is_available
from repro.hdc.fwht import (
    fwht_rows,
    fwht_rows_inplace,
    hadamard_matrix,
    is_pow2,
    next_pow2,
)

torch_required = pytest.mark.skipif(
    not torch_is_available(), reason="torch is not installed"
)


class TestPow2Helpers:
    def test_is_pow2(self):
        assert [n for n in range(1, 20) if is_pow2(n)] == [1, 2, 4, 8, 16]
        assert not is_pow2(0)
        assert not is_pow2(-4)

    def test_next_pow2(self):
        assert next_pow2(1) == 1
        assert next_pow2(2) == 2
        assert next_pow2(3) == 4
        assert next_pow2(561) == 1024
        assert next_pow2(1024) == 1024

    def test_next_pow2_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            next_pow2(0)


class TestHadamardMatrix:
    def test_sylvester_structure(self):
        H = hadamard_matrix(4)
        expected = np.array(
            [
                [1, 1, 1, 1],
                [1, -1, 1, -1],
                [1, 1, -1, -1],
                [1, -1, -1, 1],
            ],
            dtype=np.float64,
        )
        assert np.array_equal(H, expected)

    def test_orthogonality(self):
        H = hadamard_matrix(16)
        assert np.array_equal(H @ H, 16 * np.eye(16))

    def test_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            hadamard_matrix(12)


class TestFWHTExactness:
    @pytest.mark.parametrize(
        "m", [1, 2, 4, 8, 16, 64, 128, 256, 512, 1024, 4096]
    )
    def test_bit_identical_to_naive_on_integers(self, m, rng):
        """Integer-valued float64 inputs: every intermediate is an integer,
        so the fast transform must equal x @ H bit for bit."""
        x = rng.integers(-8, 9, size=(7, m)).astype(np.float64)
        H = hadamard_matrix(m)
        assert np.array_equal(fwht_rows(x), x @ H)

    @pytest.mark.parametrize("m", [8, 128, 1024])
    def test_float32_within_scale_aware_bound(self, m, rng):
        x = rng.normal(size=(9, m)).astype(np.float32)
        ref = x.astype(np.float64) @ hadamard_matrix(m)
        err = np.max(np.abs(fwht_rows(x).astype(np.float64) - ref))
        tol = np.finfo(np.float32).eps * m * max(1.0, np.max(np.abs(ref)))
        assert err <= tol

    def test_involution_up_to_m(self, rng):
        """H @ H == m·I, so transforming twice recovers m·x exactly on
        integer inputs."""
        m = 256
        x = rng.integers(-4, 5, size=(5, m)).astype(np.float64)
        assert np.array_equal(fwht_rows(fwht_rows(x)), m * x)

    def test_one_dimensional_input(self, rng):
        x = rng.integers(-4, 5, size=64).astype(np.float64)
        out = fwht_rows(x)
        assert out.shape == (64,)
        assert np.array_equal(out, x @ hadamard_matrix(64))

    def test_integer_dtype_promoted_to_float64(self, rng):
        x = rng.integers(-4, 5, size=(3, 32))
        out = fwht_rows(x)
        assert out.dtype == np.float64
        assert np.array_equal(out, x.astype(np.float64) @ hadamard_matrix(32))


class TestRowCountInvariance:
    @pytest.mark.parametrize("m", [64, 1024, 4096])
    def test_single_row_matches_batch(self, m, rng):
        """BLAS must not round a lone row differently than the same row
        inside a batch — the chunked-encode / shard-determinism invariant."""
        x = rng.normal(size=(17, m)).astype(np.float32)
        whole = fwht_rows(x)
        for i in (0, 7, 16):
            assert np.array_equal(fwht_rows(x[i]), whole[i])

    def test_arbitrary_chunking_matches(self, rng):
        m = 512
        x = rng.normal(size=(13, m)).astype(np.float32)
        whole = fwht_rows(x)
        for chunk in (1, 2, 3, 5, 13):
            assert np.array_equal(fwht_rows(x, chunk_rows=chunk), whole)


class TestInPlace:
    def test_overwrites_and_returns_input(self, rng):
        x = rng.integers(-4, 5, size=(4, 64)).astype(np.float64)
        expected = x @ hadamard_matrix(64)
        out = fwht_rows_inplace(x)
        assert out is x
        assert np.array_equal(x, expected)

    def test_trivial_sizes(self):
        x = np.ones((3, 1))
        assert fwht_rows_inplace(x) is x
        empty = np.empty((0, 8))
        assert fwht_rows_inplace(empty) is empty

    def test_rejects_non_pow2_columns(self):
        with pytest.raises(ValueError, match="power-of-two"):
            fwht_rows_inplace(np.zeros((2, 6)))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            fwht_rows_inplace(np.zeros(8))

    def test_rejects_non_contiguous(self):
        x = np.zeros((4, 16))[:, ::2]
        with pytest.raises(ValueError, match="contiguous"):
            fwht_rows_inplace(x)

    def test_out_of_place_leaves_input_untouched(self, rng):
        x = rng.normal(size=(3, 32))
        before = x.copy()
        fwht_rows(x)
        assert np.array_equal(x, before)


class TestBackendSeam:
    def test_numpy_backend_fwht_rows(self, rng):
        b = get_backend("numpy")
        x = rng.integers(-4, 5, size=(5, 128)).astype(np.float32)
        out = b.fwht_rows(x.copy())
        # Small integers: exact in float32 too, so the dtypes can be
        # compared value-for-value.
        ref = x.astype(np.float64) @ hadamard_matrix(128)
        assert np.array_equal(out, ref)

    def test_numpy_backend_transforms_native_input_in_place(self, rng):
        b = get_backend("numpy")
        x = rng.normal(size=(4, 64)).astype(np.float32)
        out = b.fwht_rows(x)
        assert out is x  # documented MAY-transform-in-place contract

    def test_backend_empty_shape_and_dtype(self):
        b = get_backend("numpy")
        out = b.empty((3, 5), dtype=np.float32)
        assert out.shape == (3, 5) and out.dtype == np.float32

    @torch_required
    def test_torch_backend_matches_numpy(self, rng):
        nb, tb = get_backend("numpy"), get_backend("torch")
        x = rng.normal(size=(6, 256)).astype(np.float32)
        expected = nb.fwht_rows(x.copy())
        out = tb.to_numpy(tb.fwht_rows(tb.asarray(x.copy())))
        assert np.array_equal(out, expected)
