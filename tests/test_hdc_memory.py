"""Tests for repro.hdc.memory.AssociativeMemory."""

import numpy as np
import pytest

from repro.hdc.memory import AssociativeMemory


@pytest.fixture
def memory():
    mem = AssociativeMemory(3, 8)
    mem.vectors = np.eye(3, 8)
    return mem


class TestConstruction:
    def test_zero_init(self):
        mem = AssociativeMemory(4, 16)
        assert mem.vectors.shape == (4, 16)
        assert not mem.vectors.any()

    @pytest.mark.parametrize("k,d", [(0, 8), (3, 0), (-1, 8)])
    def test_bad_shape(self, k, d):
        with pytest.raises(ValueError):
            AssociativeMemory(k, d)

    def test_bad_metric(self):
        with pytest.raises(ValueError, match="metric"):
            AssociativeMemory(2, 4, metric="euclid")


class TestAccumulate:
    def test_bundles_per_class(self):
        mem = AssociativeMemory(2, 3)
        mem.accumulate(np.array([[1.0, 0, 0], [0, 1.0, 0], [1.0, 1.0, 0]]), [0, 1, 0])
        assert np.array_equal(mem.vectors[0], [2.0, 1.0, 0.0])
        assert np.array_equal(mem.vectors[1], [0.0, 1.0, 0.0])

    def test_duplicate_labels_accumulate(self):
        mem = AssociativeMemory(2, 2)
        mem.accumulate(np.ones((5, 2)), [0] * 5)
        assert np.array_equal(mem.vectors[0], [5.0, 5.0])

    def test_label_out_of_range(self):
        mem = AssociativeMemory(2, 2)
        with pytest.raises(ValueError, match="labels must lie"):
            mem.accumulate(np.ones((1, 2)), [5])

    def test_dim_mismatch(self):
        mem = AssociativeMemory(2, 2)
        with pytest.raises(ValueError, match="dimensionality"):
            mem.accumulate(np.ones((1, 3)), [0])

    def test_count_mismatch(self):
        mem = AssociativeMemory(2, 2)
        with pytest.raises(ValueError, match="sample count"):
            mem.accumulate(np.ones((2, 2)), [0])


class TestQueries:
    def test_predict_matches_nearest(self, memory):
        queries = np.array([[1.0, 0, 0, 0, 0, 0, 0, 0], [0, 0, 1.0, 0, 0, 0, 0, 0]])
        assert np.array_equal(memory.predict(queries), [0, 2])

    def test_similarity_shape(self, memory):
        assert memory.similarities(np.ones((5, 8))).shape == (5, 3)

    def test_topk_ordering(self, memory):
        q = np.array([[1.0, 0.5, 0.1, 0, 0, 0, 0, 0]])
        labels, scores = memory.topk(q, k=3)
        assert np.array_equal(labels[0], [0, 1, 2])
        assert scores[0, 0] >= scores[0, 1] >= scores[0, 2]

    def test_topk_bad_k(self, memory):
        with pytest.raises(ValueError, match="k must lie"):
            memory.topk(np.ones((1, 8)), k=4)
        with pytest.raises(ValueError, match="k must lie"):
            memory.topk(np.ones((1, 8)), k=0)

    def test_dot_metric(self):
        mem = AssociativeMemory(2, 2, metric="dot")
        mem.vectors = np.array([[10.0, 0.0], [0.0, 1.0]])
        # Dot favours the large-magnitude class even at equal angle spread.
        assert mem.predict(np.array([[1.0, 1.0]]))[0] == 0

    def test_normalized_rows(self, memory):
        norms = np.linalg.norm(memory.normalized(), axis=1)
        assert np.allclose(norms, 1.0)


class TestMutation:
    def test_add_to_class(self, memory):
        memory.add_to_class(1, np.full(8, 0.5))
        assert memory.vectors[1, 0] == pytest.approx(0.5)
        assert memory.vectors[1, 1] == pytest.approx(1.5)

    def test_add_to_class_range(self, memory):
        with pytest.raises(ValueError, match="class_index"):
            memory.add_to_class(3, np.zeros(8))

    def test_reset(self, memory):
        memory.reset()
        assert not memory.vectors.any()

    def test_reset_dimensions(self, memory):
        memory.reset_dimensions(np.array([0, 1]))
        assert not memory.vectors[:, :2].any()
        assert memory.vectors[2, 2] == 1.0

    def test_reset_dimensions_empty_noop(self, memory):
        before = memory.vectors.copy()
        memory.reset_dimensions(np.array([], dtype=np.int64))
        assert np.array_equal(memory.vectors, before)

    def test_reset_dimensions_out_of_range(self, memory):
        with pytest.raises(ValueError, match="dimension indices"):
            memory.reset_dimensions(np.array([8]))

    def test_copy_is_deep(self, memory):
        clone = memory.copy()
        clone.vectors[0, 0] = 99.0
        assert memory.vectors[0, 0] == 1.0


class TestNormCaching:
    """The versioned norm caches: hits while unchanged, fresh after EVERY
    mutator (the PR-3 cache-invalidation acceptance criterion)."""

    def _fresh(self):
        mem = AssociativeMemory(3, 8, dtype="float32")
        rng = np.random.default_rng(0)
        mem.set_vectors(rng.normal(size=(3, 8)).astype(np.float32))
        return mem, rng

    def test_cache_hit_while_unchanged(self):
        mem, _ = self._fresh()
        assert mem.class_norms() is mem.class_norms()
        assert mem.normalized() is mem.normalized()
        assert mem.normalized_native() is mem.normalized_native()

    def test_every_mutator_invalidates(self):
        mem, rng = self._fresh()
        H = rng.normal(size=(4, 8)).astype(np.float32)
        y = np.array([0, 1, 2, 0])
        mutators = [
            lambda: mem.accumulate(H, y),
            lambda: mem.update_misclassified(
                H[:2], np.array([1, 2]), np.array([0, 1]),
                np.array([0.2, 0.3]), np.array([0.6, 0.7]), 0.05,
            ),
            lambda: mem.add_to_class(1, np.ones(8, np.float32)),
            lambda: mem.bundle_columns(
                y, np.array([2, 5]),
                rng.normal(size=(4, 2)).astype(np.float32),
            ),
            lambda: mem.reset_dimensions(np.array([3])),
            lambda: mem.set_vectors(
                rng.normal(size=(3, 8)).astype(np.float32)
            ),
            lambda: mem.reset(),
            lambda: setattr(
                mem, "vectors", rng.normal(size=(3, 8)).astype(np.float32)
            ),
        ]
        for mutate in mutators:
            before = mem.version
            stale_norms = np.array(mem.class_norms(), copy=True)
            mem.normalized()
            mutate()
            assert mem.version > before
            fresh = np.linalg.norm(np.asarray(mem.vectors), axis=1,
                                   keepdims=True)
            np.testing.assert_allclose(
                np.asarray(mem.class_norms()), fresh, rtol=1e-6, atol=1e-7
            )
            expect_changed = not np.allclose(stale_norms, fresh)
            if expect_changed:
                assert not np.allclose(np.asarray(mem.class_norms()),
                                       stale_norms)

    def test_no_stale_predictions_after_mutation(self):
        mem, rng = self._fresh()
        H = rng.normal(size=(6, 8)).astype(np.float32)
        mem.similarities(H)  # warm the cache
        mem.set_vectors(rng.normal(size=(3, 8)).astype(np.float32))
        ref = AssociativeMemory(3, 8, dtype="float32")
        ref.set_vectors(np.asarray(mem.vectors))
        np.testing.assert_allclose(
            mem.similarities(H), ref.similarities(H), rtol=1e-6, atol=1e-7
        )

    def test_caching_kill_switch(self):
        mem, _ = self._fresh()
        try:
            AssociativeMemory.caching_enabled = False
            assert mem.class_norms() is not mem.class_norms()
        finally:
            AssociativeMemory.caching_enabled = True


class TestScoreDtypeContract:
    """Scores leave as float64 *containers* computed at the storage dtype."""

    def _pair(self):
        rng = np.random.default_rng(7)
        V = rng.normal(size=(4, 16))
        H = rng.normal(size=(5, 16))
        return V, H

    def test_container_is_float64(self):
        V, H = self._pair()
        for dtype in ("float32", "float64"):
            mem = AssociativeMemory(4, 16, dtype=dtype)
            mem.set_vectors(V)
            assert mem.similarities(H).dtype == np.float64

    def test_values_computed_at_storage_dtype(self):
        V, H = self._pair()
        mem32 = AssociativeMemory(4, 16, dtype="float32")
        mem32.set_vectors(V)
        mem64 = AssociativeMemory(4, 16, dtype="float64")
        mem64.set_vectors(V)
        s32, s64 = mem32.similarities(H), mem64.similarities(H)
        # float32 memories give float32-precision values: close to the
        # float64 reference, but not bitwise equal to it.
        np.testing.assert_allclose(s32, s64, rtol=1e-5, atol=1e-6)
        assert not np.array_equal(s32, s64)
