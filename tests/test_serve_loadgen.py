"""Tests for repro.serve.loadgen.run_load."""

import numpy as np
import pytest

from repro.core.disthd import DistHDClassifier
from repro.serve.loadgen import run_load
from repro.serve.server import ModelServer


class TestCallableTarget:
    def test_round_robin_predictions_recorded(self):
        X = np.arange(12, dtype=float).reshape(4, 3)
        report = run_load(
            lambda row: float(row.sum()), X, n_requests=8, concurrency=2
        )
        assert report.n_requests == 8
        assert report.n_failed == 0
        assert report.throughput_rps > 0
        # request i carries row i % 4
        for i in range(8):
            assert report.predictions[i] == pytest.approx(X[i % 4].sum())

    def test_failures_counted_per_request(self):
        X = np.ones((4, 3))
        calls = []

        def flaky(row):
            calls.append(1)
            if len(calls) % 3 == 0:
                raise RuntimeError("transient")
            return 1

        report = run_load(flaky, X, n_requests=9, concurrency=1)
        assert report.n_failed == 3
        assert report.n_ok == 6
        failed = [p for p in report.predictions if isinstance(p, Exception)]
        assert len(failed) == 3

    def test_latency_summary(self):
        X = np.ones((2, 3))
        report = run_load(lambda row: 0, X, n_requests=16, concurrency=4)
        latency = report.latency_ms()
        for key in ("p50", "p95", "p99", "mean", "max"):
            assert key in latency
        record = report.as_record()
        assert record["n_ok"] == 16
        assert record["throughput_rps"] == pytest.approx(
            report.throughput_rps
        )

    def test_on_request_hook_runs_per_request(self):
        X = np.ones((2, 3))
        seen = []
        run_load(
            lambda row: 0, X, n_requests=6, concurrency=2,
            on_request=seen.append,
        )
        assert sorted(seen) == list(range(6))

    def test_hook_errors_surface_instead_of_killing_workers(self):
        X = np.ones((2, 3))

        def bad_hook(i):
            if i == 1:
                raise RuntimeError("hook boom")

        with pytest.raises(RuntimeError, match="on_request hook failed"):
            run_load(
                lambda row: 0, X, n_requests=6, concurrency=2,
                on_request=bad_hook,
            )

    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            run_load(lambda row: 0, np.empty((0, 3)), n_requests=4)
        with pytest.raises(ValueError, match="mode"):
            run_load(
                lambda row: 0, np.ones((2, 3)), n_requests=4, mode="delete"
            )


class TestServerTarget:
    def test_scores_mode_against_server(self, small_problem):
        train_x, train_y, test_x, _ = small_problem
        model = DistHDClassifier(dim=64, iterations=3, seed=0)
        model.fit(train_x, train_y)
        with ModelServer(model, max_wait_ms=1.0) as server:
            report = run_load(
                server, test_x[:8], n_requests=24, concurrency=4,
                mode="scores",
            )
            assert report.n_failed == 0
            reference = model.decision_scores(test_x[:8])
            for i, scores in enumerate(report.predictions):
                np.testing.assert_allclose(
                    np.asarray(scores)[0], reference[i % 8],
                    rtol=1e-6, atol=1e-7,
                )
