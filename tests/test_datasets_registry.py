"""Tests for repro.datasets.registry — Table I fidelity."""

import pytest

from repro.datasets.registry import DATASETS, get_spec, list_datasets

# Published Table-I values (n, k, train size, test size).
TABLE_I = {
    "mnist": (784, 10, 60_000, 10_000),
    "ucihar": (561, 12, 6_213, 1_554),
    "isolet": (617, 26, 6_238, 1_559),
    "pamap2": (54, 5, 233_687, 115_101),
    "diabetes": (49, 3, 66_000, 34_000),
}


class TestTableI:
    def test_all_five_datasets_registered(self):
        assert set(list_datasets()) == set(TABLE_I)

    @pytest.mark.parametrize("name", sorted(TABLE_I))
    def test_signature_matches_paper(self, name):
        n, k, train, test = TABLE_I[name]
        spec = get_spec(name)
        assert spec.n_features == n
        assert spec.n_classes == k
        assert spec.train_size == train
        assert spec.test_size == test

    def test_order_matches_table(self):
        assert list_datasets() == ("mnist", "ucihar", "isolet", "pamap2", "diabetes")


class TestGetSpec:
    def test_case_insensitive(self):
        assert get_spec("MNIST").name == "mnist"
        assert get_spec("  UciHar ").name == "ucihar"

    def test_unknown_raises_with_choices(self):
        with pytest.raises(KeyError, match="available"):
            get_spec("cifar10")

    def test_difficulty_in_range(self):
        for spec in DATASETS.values():
            assert 0.0 < spec.difficulty <= 1.0

    def test_structures_valid(self):
        assert {s.structure for s in DATASETS.values()} <= {
            "image", "imu", "audio", "tabular",
        }

    def test_specs_frozen(self):
        spec = get_spec("mnist")
        with pytest.raises(AttributeError):
            spec.n_features = 1  # type: ignore[misc]
