"""Property-based tests for encoder and regeneration invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.regeneration import _top_fraction, select_undesired_dimensions
from repro.hdc.encoders.rbf import RBFEncoder
from repro.hdc.memory import AssociativeMemory


def problems():
    """(n_features, dim, seed) triples for encoder construction."""
    return st.tuples(
        st.integers(1, 12), st.integers(2, 48), st.integers(0, 2**31)
    )


class TestRBFEncoderProperties:
    @given(problems())
    @settings(max_examples=30, deadline=None)
    def test_output_bounded(self, params):
        q, dim, seed = params
        rng = np.random.default_rng(seed)
        enc = RBFEncoder(q, dim, seed=seed)
        out = enc.encode(rng.normal(size=(5, q)))
        assert np.all(out >= -1.0) and np.all(out <= 1.0)

    @given(problems(), st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_regeneration_preserves_untouched_columns(self, params, dims_seed):
        q, dim, seed = params
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(4, q))
        enc = RBFEncoder(q, dim, seed=seed)
        before = enc.encode(X)
        dims_rng = np.random.default_rng(dims_seed)
        n_regen = int(dims_rng.integers(0, dim))
        dims = dims_rng.choice(dim, size=n_regen, replace=False)
        enc.regenerate(dims)
        after = enc.encode(X)
        untouched = np.setdiff1d(np.arange(dim), dims)
        assert np.array_equal(before[:, untouched], after[:, untouched])
        assert enc.regenerated_count == n_regen

    @given(problems())
    @settings(max_examples=30, deadline=None)
    def test_encode_dims_consistent_with_full(self, params):
        q, dim, seed = params
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(3, q))
        enc = RBFEncoder(q, dim, seed=seed)
        dims = np.arange(0, dim, 2)
        assert np.allclose(enc.encode_dims(X, dims), enc.encode(X)[:, dims])

    @given(problems())
    @settings(max_examples=20, deadline=None)
    def test_deterministic_given_seed(self, params):
        q, dim, seed = params
        rng = np.random.default_rng(0)
        X = rng.normal(size=(3, q))
        assert np.array_equal(
            RBFEncoder(q, dim, seed=seed).encode(X),
            RBFEncoder(q, dim, seed=seed).encode(X),
        )


class TestSelectionProperties:
    @given(
        st.integers(4, 40),
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(0, 2**31),
    )
    @settings(max_examples=50, deadline=None)
    def test_selection_size_bounded_by_rate(self, dim, rate, seed):
        rng = np.random.default_rng(seed)
        M = rng.normal(size=(5, dim))
        N = rng.normal(size=(3, dim))
        target = int(round(rate * dim))
        inter = select_undesired_dimensions(M, N, regen_rate=rate, dim=dim)
        union = select_undesired_dimensions(
            M, N, regen_rate=rate, dim=dim, selection="union"
        )
        assert inter.size <= target
        assert union.size <= 2 * target
        # Intersection is always a subset of union.
        assert set(inter.tolist()) <= set(union.tolist())

    @given(st.integers(4, 40), st.integers(0, 2**31))
    @settings(max_examples=50, deadline=None)
    def test_selected_dims_valid_and_sorted(self, dim, seed):
        rng = np.random.default_rng(seed)
        M = rng.normal(size=(4, dim))
        N = rng.normal(size=(4, dim))
        dims = select_undesired_dimensions(M, N, regen_rate=0.5, dim=dim)
        if dims.size:
            assert dims.min() >= 0 and dims.max() < dim
            assert np.all(np.diff(dims) > 0)  # sorted, unique

    @given(
        st.lists(st.floats(-100, 100), min_size=2, max_size=50),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_top_fraction_selects_maxima(self, scores, fraction):
        scores = np.asarray(scores)
        selected = _top_fraction(scores, fraction)
        if selected.size and selected.size < scores.size:
            worst_selected = scores[selected].min()
            best_unselected = np.delete(scores, selected).max()
            assert worst_selected >= best_unselected


class TestMemoryProperties:
    @given(
        st.integers(2, 6), st.integers(2, 32),
        st.integers(1, 40), st.integers(0, 2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_accumulate_order_invariant(self, k, dim, n, seed):
        """Bundling is commutative: sample order can't change the memory."""
        rng = np.random.default_rng(seed)
        encoded = rng.normal(size=(n, dim))
        labels = rng.integers(0, k, n)
        forward = AssociativeMemory(k, dim)
        forward.accumulate(encoded, labels)
        perm = rng.permutation(n)
        shuffled = AssociativeMemory(k, dim)
        shuffled.accumulate(encoded[perm], labels[perm])
        assert np.allclose(forward.vectors, shuffled.vectors)

    @given(
        st.integers(2, 6), st.integers(2, 32), st.integers(0, 2**31)
    )
    @settings(max_examples=40, deadline=None)
    def test_topk_first_equals_predict(self, k, dim, seed):
        rng = np.random.default_rng(seed)
        mem = AssociativeMemory(k, dim)
        mem.vectors = rng.normal(size=(k, dim))
        queries = rng.normal(size=(7, dim))
        top1, _ = mem.topk(queries, k=1)
        assert np.array_equal(top1[:, 0], mem.predict(queries))
