"""Estimator-protocol battery: every classifier honours the shared contract.

One parametrized suite runs the same checks over every classifier in the
library (sklearn's ``check_estimator`` in miniature): shapes, label
remapping, reproducibility, error behaviour, decision-score consistency.
"""

import numpy as np
import pytest

from repro.baselines.baselinehd import BaselineHDClassifier
from repro.baselines.knn import KNNClassifier
from repro.baselines.mlp import MLPClassifier
from repro.baselines.neuralhd import NeuralHDClassifier
from repro.baselines.onlinehd import OnlineHDClassifier
from repro.baselines.svm import LinearSVMClassifier, RFFSVMClassifier
from repro.core.disthd import DistHDClassifier

FACTORIES = {
    "disthd": lambda: DistHDClassifier(dim=64, iterations=3, seed=0),
    "baselinehd": lambda: BaselineHDClassifier(dim=64, iterations=3, seed=0),
    "neuralhd": lambda: NeuralHDClassifier(dim=64, iterations=3, seed=0),
    "onlinehd": lambda: OnlineHDClassifier(dim=64, iterations=3, seed=0),
    "mlp": lambda: MLPClassifier(hidden_sizes=(16,), epochs=5, seed=0),
    "linear-svm": lambda: LinearSVMClassifier(epochs=5, seed=0),
    "rff-svm": lambda: RFFSVMClassifier(n_components=64, epochs=5, seed=0),
    "knn": lambda: KNNClassifier(k=3),
}


@pytest.fixture(params=sorted(FACTORIES), scope="module")
def name(request):
    return request.param


@pytest.fixture(scope="module")
def fitted(name, small_problem):
    train_x, train_y, _, _ = small_problem
    return FACTORIES[name]().fit(train_x, train_y)


class TestProtocol:
    def test_fit_returns_self(self, name, small_problem):
        train_x, train_y, _, _ = small_problem
        model = FACTORIES[name]()
        assert model.fit(train_x, train_y) is model

    def test_predict_shape_and_dtype(self, fitted, small_problem):
        _, _, test_x, _ = small_problem
        preds = fitted.predict(test_x)
        assert preds.shape == (test_x.shape[0],)
        assert preds.dtype.kind in "iu"

    def test_predictions_are_known_classes(self, fitted, small_problem):
        _, _, test_x, _ = small_problem
        assert set(np.unique(fitted.predict(test_x))) <= set(fitted.classes_)

    def test_decision_scores_shape(self, fitted, small_problem):
        _, _, test_x, _ = small_problem
        scores = fitted.decision_scores(test_x)
        assert scores.shape == (test_x.shape[0], fitted.n_classes_)
        assert np.all(np.isfinite(scores))

    def test_argmax_consistency(self, fitted, small_problem):
        """predict == classes_[argmax(decision_scores)] for every model."""
        _, _, test_x, _ = small_problem
        scores = fitted.decision_scores(test_x)
        expected = fitted.classes_[np.argmax(scores, axis=1)]
        assert np.array_equal(fitted.predict(test_x), expected)

    def test_predict_topk_contains_predict(self, fitted, small_problem):
        _, _, test_x, _ = small_problem
        topk = fitted.predict_topk(test_x, k=2)
        assert np.array_equal(topk[:, 0], fitted.predict(test_x))

    def test_score_between_zero_and_one(self, fitted, small_problem):
        _, _, test_x, test_y = small_problem
        assert 0.0 <= fitted.score(test_x, test_y) <= 1.0

    def test_learns_above_chance(self, fitted, small_problem):
        _, _, test_x, test_y = small_problem
        assert fitted.score(test_x, test_y) > 1.0 / 3 + 0.1

    def test_unfitted_predict_raises(self, name):
        with pytest.raises(RuntimeError, match="not fitted"):
            FACTORIES[name]().predict(np.ones((1, 4)))

    def test_single_class_rejected(self, name):
        with pytest.raises(ValueError, match="at least 2 classes"):
            FACTORIES[name]().fit(np.ones((4, 3)), [2, 2, 2, 2])

    def test_sample_count_mismatch_rejected(self, name):
        with pytest.raises(ValueError, match="sample count"):
            FACTORIES[name]().fit(np.ones((4, 3)), [0, 1])

    def test_nan_features_rejected(self, name):
        X = np.ones((4, 3))
        X[0, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            FACTORIES[name]().fit(X, [0, 1, 0, 1])

    def test_noncontiguous_labels_roundtrip(self, name, small_problem):
        train_x, train_y, test_x, _ = small_problem
        remapped = np.array([-5, 100, 7])[train_y]
        model = FACTORIES[name]().fit(train_x, remapped)
        assert set(np.unique(model.predict(test_x))) <= {-5, 100, 7}

    def test_reproducible_with_seed(self, name, small_problem):
        train_x, train_y, test_x, _ = small_problem
        a = FACTORIES[name]().fit(train_x, train_y).predict(test_x)
        b = FACTORIES[name]().fit(train_x, train_y).predict(test_x)
        assert np.array_equal(a, b)

    def test_refit_overwrites_cleanly(self, name, small_problem):
        """Fitting twice must behave like fitting once on the second data."""
        train_x, train_y, test_x, _ = small_problem
        once = FACTORIES[name]().fit(train_x, train_y)
        twice = FACTORIES[name]()
        twice.fit(train_x[: len(train_x) // 2], train_y[: len(train_y) // 2])
        twice.fit(train_x, train_y)
        assert np.array_equal(once.predict(test_x), twice.predict(test_x))

    def test_feature_count_enforced_at_predict(self, fitted, small_problem):
        train_x, _, _, _ = small_problem
        with pytest.raises(ValueError, match="features"):
            fitted.predict(np.ones((1, train_x.shape[1] + 3)))
