"""Tests for the disthd-repro command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.model == "disthd"
        assert args.dataset == "ucihar"

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--model", "transformer"])

    def test_robustness_bits_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["robustness", "--bits", "3"])

    def test_n_jobs_flags_parse(self):
        assert build_parser().parse_args(["train"]).n_jobs is None
        args = build_parser().parse_args(["grid", "--n-jobs", "2"])
        assert args.n_jobs == 2


class TestGridCommand:
    _FAST = ["--dataset", "diabetes", "--scale", "0.005"]

    def test_grid_with_space(self, capsys):
        code = main(
            ["grid", "--model", "onlinehd", "--space", '{"dim": [32, 48]}']
            + self._FAST
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "best:" in out and "score" in out

    def test_grid_parallel_matches_serial(self, capsys):
        argv = (
            ["grid", "--model", "onlinehd",
             "--space", '{"dim": [32, 48], "seed": [0]}'] + self._FAST
        )
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--n-jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial.splitlines()[:-1] == parallel.splitlines()[:-1]

    def test_grid_invalid_json_space(self, capsys):
        code = main(["grid", "--space", "{bad"] + self._FAST)
        assert code == 2
        assert "not valid JSON" in capsys.readouterr().out

    def test_grid_non_object_space(self, capsys):
        code = main(["grid", "--space", "[1, 2]"] + self._FAST)
        assert code == 2
        assert "JSON object" in capsys.readouterr().out


class TestCommands:
    def test_datasets_lists_table1(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("mnist", "ucihar", "isolet", "pamap2", "diabetes"):
            assert name in out

    def test_train_prints_metrics(self, capsys):
        code = main(
            ["train", "--dataset", "diabetes", "--scale", "0.005",
             "--dim", "48", "--seed", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "test_acc" in out

    def test_compare_prints_all_models(self, capsys):
        code = main(
            ["compare", "--dataset", "diabetes", "--scale", "0.005",
             "--dim", "48", "--models", "disthd", "knn"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "disthd" in out and "knn" in out

    def test_robustness_prints_sweep(self, capsys):
        code = main(
            ["robustness", "--dataset", "diabetes", "--scale", "0.005",
             "--dim", "48", "--bits", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "quality_loss_pct" in out
