"""Tests for the disthd-repro command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.model == "disthd"
        assert args.dataset == "ucihar"

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--model", "transformer"])

    def test_robustness_bits_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["robustness", "--bits", "3"])


class TestCommands:
    def test_datasets_lists_table1(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("mnist", "ucihar", "isolet", "pamap2", "diabetes"):
            assert name in out

    def test_train_prints_metrics(self, capsys):
        code = main(
            ["train", "--dataset", "diabetes", "--scale", "0.005",
             "--dim", "48", "--seed", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "test_acc" in out

    def test_compare_prints_all_models(self, capsys):
        code = main(
            ["compare", "--dataset", "diabetes", "--scale", "0.005",
             "--dim", "48", "--models", "disthd", "knn"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "disthd" in out and "knn" in out

    def test_robustness_prints_sweep(self, capsys):
        code = main(
            ["robustness", "--dataset", "diabetes", "--scale", "0.005",
             "--dim", "48", "--bits", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "quality_loss_pct" in out
