"""Tests for the disthd-repro command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.model == "disthd"
        assert args.dataset == "ucihar"

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--model", "transformer"])

    def test_robustness_bits_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["robustness", "--bits", "3"])

    def test_n_jobs_flags_parse(self):
        assert build_parser().parse_args(["train"]).n_jobs is None
        args = build_parser().parse_args(["grid", "--n-jobs", "2"])
        assert args.n_jobs == 2

    def test_bench_no_fleet_flag(self):
        assert build_parser().parse_args(["bench"]).no_fleet is False
        assert build_parser().parse_args(["bench", "--no-fleet"]).no_fleet

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.dataset == "pamap2"
        assert args.scale == 0.004
        assert args.dim == 256
        assert args.workers == 4
        assert args.queue_depth == 32
        assert args.faults == ["kill"]
        assert args.packed is True and args.bits == 1
        assert args.no_crash_loop is False

    def test_chaos_fault_choices(self):
        args = build_parser().parse_args(["chaos", "--faults", "kill", "hang"])
        assert args.faults == ["kill", "hang"]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--faults", "meteor"])


class TestGridCommand:
    _FAST = ["--dataset", "diabetes", "--scale", "0.005"]

    def test_grid_with_space(self, capsys):
        code = main(
            ["grid", "--model", "onlinehd", "--space", '{"dim": [32, 48]}']
            + self._FAST
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "best:" in out and "score" in out

    def test_grid_parallel_matches_serial(self, capsys):
        argv = (
            ["grid", "--model", "onlinehd",
             "--space", '{"dim": [32, 48], "seed": [0]}'] + self._FAST
        )
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--n-jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial.splitlines()[:-1] == parallel.splitlines()[:-1]

    def test_grid_invalid_json_space(self, capsys):
        code = main(["grid", "--space", "{bad"] + self._FAST)
        assert code == 2
        assert "not valid JSON" in capsys.readouterr().out

    def test_grid_non_object_space(self, capsys):
        code = main(["grid", "--space", "[1, 2]"] + self._FAST)
        assert code == 2
        assert "JSON object" in capsys.readouterr().out


class TestCommands:
    def test_datasets_lists_table1(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("mnist", "ucihar", "isolet", "pamap2", "diabetes"):
            assert name in out

    def test_train_prints_metrics(self, capsys):
        code = main(
            ["train", "--dataset", "diabetes", "--scale", "0.005",
             "--dim", "48", "--seed", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "test_acc" in out

    def test_compare_prints_all_models(self, capsys):
        code = main(
            ["compare", "--dataset", "diabetes", "--scale", "0.005",
             "--dim", "48", "--models", "disthd", "knn"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "disthd" in out and "knn" in out

    def test_robustness_prints_sweep(self, capsys):
        code = main(
            ["robustness", "--dataset", "diabetes", "--scale", "0.005",
             "--dim", "48", "--bits", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "quality_loss_pct" in out


class TestPredictCommand:
    @pytest.fixture
    def saved_model(self, tmp_path):
        import numpy as np

        from repro.core.disthd import DistHDClassifier
        from repro.persistence import save_model

        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 8))
        y = np.arange(60) % 3
        clf = DistHDClassifier(dim=48, iterations=2, seed=0).fit(X, y)
        return save_model(clf, tmp_path / "model.npz"), clf, X

    def test_predict_from_npy(self, saved_model, tmp_path, capsys):
        import numpy as np

        path, clf, X = saved_model
        features = tmp_path / "X.npy"
        np.save(features, X[:5])
        code = main(
            ["predict", "--model-path", str(path), "--input", str(features)]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines == [str(v) for v in clf.predict(X[:5])]

    def test_predict_from_csv_with_scores(self, saved_model, tmp_path, capsys):
        import numpy as np

        path, clf, X = saved_model
        features = tmp_path / "X.csv"
        np.savetxt(features, X[:3], delimiter=",")
        code = main(
            ["predict", "--model-path", str(path), "--input", str(features),
             "--scores"]
        )
        assert code == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 3
        assert len(out[0].split(",")) == clf.classes_.size

    def test_predict_writes_npy_output(self, saved_model, tmp_path, capsys):
        import numpy as np

        path, clf, X = saved_model
        features = tmp_path / "X.npy"
        np.save(features, X[:4])
        out_path = tmp_path / "preds.npy"
        code = main(
            ["predict", "--model-path", str(path), "--input", str(features),
             "--output", str(out_path)]
        )
        assert code == 0
        np.testing.assert_array_equal(np.load(out_path), clf.predict(X[:4]))


class TestServeCommand:
    def test_serve_session_smoke(self, tmp_path, capsys):
        import json

        out = tmp_path / "serve.json"
        code = main(
            ["serve", "--dim", "64", "--scale", "0.004", "--requests", "48",
             "--concurrency", "4", "--seed", "0", "--output", str(out)]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        serving = payload["serving"]
        assert serving["batched"]["n_failed"] == 0
        assert serving["swap"]["n_swaps"] >= 1
        assert serving["swap"]["parity_ok"] is True
        assert serving["direct"]["throughput_rps"] > 0

    def test_serve_model_path_requires_input(self, tmp_path, capsys):
        import numpy as np

        from repro.core.disthd import DistHDClassifier
        from repro.persistence import save_model

        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 8))
        y = np.arange(60) % 3
        clf = DistHDClassifier(dim=32, iterations=2, seed=0).fit(X, y)
        path = save_model(clf, tmp_path / "m.npz")
        code = main(["serve", "--model-path", str(path)])
        assert code == 2
        assert "--input" in capsys.readouterr().err

    def test_serve_model_path_session(self, tmp_path, capsys):
        import json

        import numpy as np

        from repro.core.disthd import DistHDClassifier
        from repro.persistence import save_model

        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 8))
        y = np.arange(60) % 3
        clf = DistHDClassifier(dim=32, iterations=2, seed=0).fit(X, y)
        path = save_model(clf, tmp_path / "m.npz")
        features = tmp_path / "X.npy"
        np.save(features, X[:16])
        out = tmp_path / "serve.json"
        code = main(
            ["serve", "--model-path", str(path), "--input", str(features),
             "--requests", "32", "--concurrency", "4",
             "--output", str(out)]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["load"]["n_failed"] == 0
        assert payload["stats"]["n_requests"] >= 32


class TestChaosCommand:
    def test_chaos_packed_requires_one_bit(self, capsys):
        code = main(["chaos", "--bits", "8"])  # --packed defaults on
        assert code == 2
        assert "--bits 1" in capsys.readouterr().err

    def test_chaos_session_smoke(self, tmp_path, capsys):
        import json

        out = tmp_path / "chaos.json"
        code = main(
            ["chaos", "--dataset", "diabetes", "--scale", "0.005",
             "--dim", "64", "--iterations", "2", "--workers", "2",
             "--requests", "32", "--concurrency", "4",
             "--service-floor-ms", "1.0", "--faults", "kill",
             "--no-crash-loop", "--output", str(out)]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["config"]["workers"] == 2
        kill = payload["drills"]["kill"]
        assert kill["outcomes"]["failed"] == 0
        assert kill["outcomes"]["ok"] + kill["outcomes"]["shed"] == 32
        assert "crash_loop" not in payload["drills"]
