"""Property-based tests for the quantisation / bit-flip substrate."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.noise.bitflip import flip_bits
from repro.noise.quantization import dequantize, quantize

reasonable_floats = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
)


def float_arrays(max_size=64):
    return arrays(
        np.float64,
        st.integers(1, max_size).map(lambda n: (n,)),
        elements=reasonable_floats,
    )


class TestQuantizationProperties:
    @given(float_arrays(), st.sampled_from([2, 4, 8]))
    def test_roundtrip_within_one_step(self, arr, bits):
        restored = dequantize(quantize(arr, bits))
        q_max = 2 ** (bits - 1) - 1
        step = np.abs(arr).max() / q_max if np.abs(arr).max() > 0 else 0.0
        assert np.abs(arr - restored).max() <= step + 1e-9

    @given(float_arrays(), st.sampled_from([1, 2, 4, 8]))
    def test_shape_preserved(self, arr, bits):
        assert dequantize(quantize(arr, bits)).shape == arr.shape

    @given(float_arrays(), st.sampled_from([1, 2, 4, 8]))
    def test_codes_within_width(self, arr, bits):
        qt = quantize(arr, bits)
        assert int(qt.codes.max(initial=0)) < (1 << bits)

    @given(float_arrays(), st.sampled_from([2, 4, 8]))
    def test_deterministic(self, arr, bits):
        a = quantize(arr, bits)
        b = quantize(arr, bits)
        assert np.array_equal(a.codes, b.codes)
        assert a.scale == b.scale

    @given(float_arrays())
    def test_one_bit_decodes_to_two_values(self, arr):
        restored = dequantize(quantize(arr, 1))
        assert len(np.unique(restored)) <= 2


class TestBitflipProperties:
    @given(
        float_arrays(),
        st.sampled_from([1, 2, 4, 8]),
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(0, 2**31),
    )
    def test_flip_count_exact(self, arr, bits, rate, seed):
        qt = quantize(arr, bits)
        flipped = flip_bits(qt, rate, seed=seed)
        diff_bits = sum(
            bin(int(a) ^ int(b)).count("1")
            for a, b in zip(qt.codes, flipped.codes)
        )
        assert diff_bits == round(rate * qt.n_bits_total)

    @given(float_arrays(), st.sampled_from([2, 8]), st.integers(0, 2**31))
    def test_double_flip_restores(self, arr, bits, seed):
        """Flipping the same positions twice is the identity."""
        qt = quantize(arr, bits)
        once = flip_bits(qt, 0.5, seed=seed)
        twice = flip_bits(once, 0.5, seed=seed)
        assert np.array_equal(twice.codes, qt.codes)

    @given(float_arrays(), st.sampled_from([1, 2, 4, 8]), st.integers(0, 2**31))
    def test_flipped_still_decodable(self, arr, bits, seed):
        flipped = flip_bits(quantize(arr, bits), 0.3, seed=seed)
        decoded = dequantize(flipped)
        assert np.all(np.isfinite(decoded))
        assert decoded.shape == arr.shape
