"""Tests for repro.core.history."""

import pytest

from repro.core.history import IterationRecord, TrainingHistory


def _history(accs, regens=None):
    history = TrainingHistory()
    regens = regens or [0] * len(accs)
    for i, (acc, reg) in enumerate(zip(accs, regens)):
        history.append(IterationRecord(iteration=i, train_accuracy=acc, regenerated=reg))
    return history


class TestTrainingHistory:
    def test_len_and_indexing(self):
        history = _history([0.5, 0.7])
        assert len(history) == 2
        assert history[1].train_accuracy == 0.7

    def test_accuracies(self):
        assert _history([0.1, 0.2]).accuracies == [0.1, 0.2]

    def test_total_regenerated(self):
        assert _history([0.5, 0.6, 0.7], regens=[3, 0, 2]).total_regenerated == 5

    def test_final_accuracy(self):
        assert _history([0.4, 0.9]).final_accuracy == 0.9

    def test_final_accuracy_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            TrainingHistory().final_accuracy

    def test_iterations_to_reach(self):
        history = _history([0.5, 0.8, 0.95])
        assert history.iterations_to_reach(0.8) == 1
        assert history.iterations_to_reach(0.99) is None
        assert history.iterations_to_reach(0.0) == 0

    def test_as_dict_columns(self):
        columns = _history([0.5]).as_dict()
        assert columns["iteration"] == [0]
        assert columns["train_accuracy"] == [0.5]
        assert set(columns) == {
            "iteration",
            "train_accuracy",
            "top2_accuracy",
            "regenerated",
            "effective_dim",
            "partial_rate",
            "incorrect_rate",
        }
