"""Tests for repro.utils.logging."""

import logging

from repro.utils.logging import enable_console_logging, get_logger


def test_get_logger_namespaced():
    assert get_logger().name == "repro"
    assert get_logger("core").name == "repro.core"


def test_enable_console_logging_idempotent():
    logger = enable_console_logging(logging.DEBUG)
    n_handlers = len(logger.handlers)
    enable_console_logging(logging.DEBUG)
    assert len(logger.handlers) == n_handlers


def test_enable_console_sets_level():
    logger = enable_console_logging(logging.WARNING)
    assert logger.level == logging.WARNING
