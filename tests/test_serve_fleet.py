"""Tests for repro.serve.fleet.server.FleetServer — supervised workers,
admission control, fault tolerance, and all-or-nothing hot-swap.

Fleets here are deliberately tiny (1–2 workers, small dims) so each test
spawns, exercises one behaviour, and tears down in well under a second of
wall clock per worker.
"""

import time

import numpy as np
import pytest

from repro.deploy.quantized import QuantizedHDCModel
from repro.models.registry import make_model
from repro.serve.fleet import (
    DeadlineExceeded,
    FleetClosed,
    FleetServer,
    Overloaded,
    as_quantized_artifact,
    resolve_worker_count,
)
from repro.serve.fleet.server import BROKEN, RUNNING


@pytest.fixture(scope="module")
def fitted(small_problem):
    train_x, train_y, test_x, test_y = small_problem
    model = make_model("disthd", dim=128, iterations=2, seed=3)
    model.fit(train_x, train_y)
    return model, test_x


@pytest.fixture(scope="module")
def artifact(fitted):
    model, _ = fitted
    return QuantizedHDCModel(model, bits=1, packed=True)


def _wait_for(predicate, timeout_s=10.0, poll_s=0.01):
    deadline = time.perf_counter() + timeout_s
    while time.perf_counter() < deadline:
        if predicate():
            return True
        time.sleep(poll_s)
    return predicate()


class TestLifecycle:
    def test_start_predict_parity_close(self, artifact, fitted):
        _, test_x = fitted
        with FleetServer(artifact, n_workers=2) as fleet:
            assert fleet.worker_states() == [RUNNING, RUNNING]
            pids = fleet.worker_pids()
            assert len(set(pids)) == 2 and all(p for p in pids)
            np.testing.assert_array_equal(
                fleet.predict(test_x), artifact.predict(test_x)
            )
            np.testing.assert_allclose(
                fleet.decision_scores(test_x[:8]),
                artifact.decision_scores(test_x[:8]),
            )
        # Context exit closed the fleet: further submits are rejected.
        with pytest.raises(FleetClosed):
            fleet.predict(test_x[:1])

    def test_close_idempotent(self, artifact):
        fleet = FleetServer(artifact, n_workers=1)
        fleet.close()
        fleet.close()  # second close is a no-op
        assert all(s != RUNNING for s in fleet.worker_states())

    def test_stats_shape(self, artifact, fitted):
        _, test_x = fitted
        with FleetServer(artifact, n_workers=1) as fleet:
            fleet.predict(test_x[:4])
            stats = fleet.stats()
            assert stats["n_requests"] >= 1
            info = stats["fleet"]
            assert info["n_workers"] == 1
            assert info["n_running"] == 1
            assert info["epoch"] == 1
            assert info["workers"][0]["state"] == RUNNING
            assert info["workers"][0]["restarts"] == 0

    def test_validates_request_shape(self, artifact, fitted):
        _, test_x = fitted
        with FleetServer(artifact, n_workers=1) as fleet:
            assert fleet.predict(test_x[:2]).shape == (2,)
            with pytest.raises(ValueError, match="features"):
                fleet.predict(np.zeros((2, test_x.shape[1] + 1)))
            with pytest.raises(ValueError, match="non-empty"):
                fleet.predict(np.zeros((0, test_x.shape[1])))


class TestAdmission:
    def test_full_queues_shed_with_overloaded(self, artifact, fitted):
        _, test_x = fitted
        with FleetServer(
            artifact, n_workers=1, queue_depth=1, hang_timeout_s=60.0
        ) as fleet:
            # Wedge the only worker so nothing drains the queue, then
            # fill the single slot; the next admission must shed.
            assert fleet.inject_chaos(0, {"kind": "hang"})
            time.sleep(0.3)  # the hang directive is consumed off the queue
            fleet.submit_predict(test_x[:1])
            with pytest.raises(Overloaded, match="admission control"):
                for _ in range(4):
                    fleet.submit_predict(test_x[:1])
            assert fleet.metrics.n_shed >= 1
            fleet.close(timeout_s=0.5)

    def test_deadline_expired_in_queue(self, artifact, fitted):
        _, test_x = fitted
        with FleetServer(
            artifact, n_workers=1, queue_depth=4, hang_timeout_s=60.0
        ) as fleet:
            assert fleet.inject_chaos(0, {"kind": "slow", "delay_s": 0.4})
            time.sleep(0.2)
            slow = fleet.submit_predict(test_x[:1], timeout=5.0)
            doomed = fleet.submit_predict(test_x[:1], timeout=0.05)
            with pytest.raises(DeadlineExceeded):
                doomed.result(timeout=5.0)
            assert slow.result(timeout=5.0) is not None
            assert fleet.metrics.problem_counts().get(
                "deadline-expired", 0
            ) >= 1


class TestFaultTolerance:
    def test_sigkill_worker_is_restarted(self, artifact, fitted):
        _, test_x = fitted
        with FleetServer(artifact, n_workers=2) as fleet:
            pid = fleet.kill_worker(0)
            assert pid is not None
            assert _wait_for(
                lambda: fleet.wait_all_running(timeout=0.1)
                and fleet.stats()["fleet"]["workers"][0]["restarts"] >= 1
            )
            # The restarted fleet still serves correctly.
            np.testing.assert_array_equal(
                fleet.predict(test_x[:8]), artifact.predict(test_x[:8])
            )
            counts = fleet.metrics.problem_counts()
            assert counts.get("worker-crashed", 0) >= 1

    def test_rapid_crashes_trip_circuit_breaker(self, artifact):
        with FleetServer(
            artifact, n_workers=2, max_restarts=2, restart_window_s=30.0,
            restart_backoff_s=0.02,
        ) as fleet:
            deaths = 0
            deadline = time.perf_counter() + 20.0
            while deaths < 2 and time.perf_counter() < deadline:
                if fleet.worker_states()[0] == RUNNING:
                    fleet.kill_worker(0)
                    assert _wait_for(
                        lambda: fleet.worker_states()[0] != RUNNING
                    )
                    deaths += 1
                else:
                    time.sleep(0.01)
            assert _wait_for(lambda: fleet.worker_states()[0] == BROKEN)
            counts = fleet.metrics.problem_counts()
            assert counts.get("circuit-open", 0) >= 1
            # The surviving worker keeps the fleet serving.
            assert fleet.running_indices() == [1]


class TestDeploy:
    def test_all_or_nothing_success(self, small_problem, artifact):
        train_x, train_y, test_x, _ = small_problem
        retrained = make_model("disthd", dim=128, iterations=3, seed=9)
        retrained.fit(train_x, train_y)
        v2 = QuantizedHDCModel(retrained, bits=1, packed=True)
        with FleetServer(artifact, n_workers=2) as fleet:
            outcome = fleet.deploy(v2)
            assert outcome == {"ok": True, "epoch": 2, "workers": 2}
            assert fleet.active_epoch == 2
            np.testing.assert_array_equal(
                fleet.predict(test_x[:8]), v2.predict(test_x[:8])
            )
            assert fleet.metrics.n_swaps == 1

    def test_partial_failure_rolls_back_to_last_good(
        self, small_problem, artifact
    ):
        train_x, train_y, test_x, _ = small_problem
        retrained = make_model("disthd", dim=128, iterations=3, seed=9)
        retrained.fit(train_x, train_y)
        v2 = QuantizedHDCModel(retrained, bits=1, packed=True)
        with FleetServer(
            artifact, n_workers=2, hang_timeout_s=60.0
        ) as fleet:
            # Worker 1 is wedged: it can never ack the reload, so the
            # epoch flip must not happen and the acked worker must be
            # rolled back to the last-good artifact.
            assert fleet.inject_chaos(1, {"kind": "hang"})
            time.sleep(0.3)
            outcome = fleet.deploy(v2, timeout_s=1.0)
            assert outcome["ok"] is False
            assert outcome["epoch"] == 1
            assert outcome["rejected_epoch"] == 2
            assert 1 in outcome["unacked"]
            assert fleet.active_epoch == 1
            assert fleet.metrics.n_swaps == 0
            assert fleet.metrics.problem_counts().get(
                "swap-rollback", 0
            ) == 1
            # The healthy worker still serves the last-good model.
            np.testing.assert_array_equal(
                fleet.predict(test_x[:8]), artifact.predict(test_x[:8])
            )
            fleet.close(timeout_s=0.5)

    def test_feature_mismatch_rejected(self, small_problem, artifact):
        train_x, train_y, _, _ = small_problem
        other = make_model("disthd", dim=64, iterations=1, seed=1)
        other.fit(train_x[:, :10], train_y)
        wrong = QuantizedHDCModel(other, bits=1, packed=True)
        with FleetServer(artifact, n_workers=1) as fleet:
            with pytest.raises(ValueError, match="hot-swap"):
                fleet.deploy(wrong)


class TestSupervisorRaces:
    """Regressions for collector/watchdog races around worker death."""

    def test_retry_skips_victim_already_resolved_by_collector(
        self, artifact, fitted
    ):
        # A worker can answer a request and then die: the collector may
        # resolve the future before the watchdog's retry bookkeeping
        # runs.  _retry_or_fail must treat the settled request as done —
        # a second set_exception would raise InvalidStateError and kill
        # the watchdog thread for the rest of the fleet's life.
        from repro.serve.fleet.server import _Pending

        _, test_x = fitted
        with FleetServer(artifact, n_workers=1) as fleet:
            resolved = _Pending("predict", test_x[:1], time.time() + 5.0)
            resolved.rid = 10_000
            resolved.future.set_result("answered before death")
            fleet._retry_or_fail([resolved])  # retryable branch
            assert resolved.future.result() == "answered before death"

            scores = _Pending("scores", test_x[:1], time.time() + 5.0)
            scores.rid = 10_001
            scores.future.set_result("answered too")
            fleet._retry_or_fail([scores])  # non-retryable branch
            assert scores.future.result() == "answered too"

            assert fleet.metrics.problem_counts().get(
                "request-lost", 0
            ) == 0
            assert fleet._watchdog.is_alive()

    def test_watchdog_survives_tick_error(self, artifact, monkeypatch):
        # One bad tick (a single request's bookkeeping error) must never
        # take down the supervisor thread: no more restarts, hang
        # detection, or parked-request expiry would be fatal.
        with FleetServer(artifact, n_workers=1) as fleet:
            calls = {"n": 0}
            original = fleet._watch_tick

            def flaky():
                calls["n"] += 1
                if calls["n"] == 1:
                    raise RuntimeError("boom")
                return original()

            monkeypatch.setattr(fleet, "_watch_tick", flaky)
            assert _wait_for(lambda: calls["n"] >= 2)
            assert fleet._watchdog.is_alive()
            assert fleet.metrics.problem_counts().get(
                "watchdog-error", 0
            ) >= 1

    def test_stale_sender_response_leaves_redispatched_pending(
        self, artifact, fitted
    ):
        # A dead worker's late answer (already in the pipe when it died)
        # must not settle a request that was re-dispatched to a
        # survivor: the survivor owns the answer, and accepting the
        # stale one would leak the survivor's ``assigned`` slot forever.
        from repro.serve.fleet.server import _Pending

        _, test_x = fitted
        with FleetServer(artifact, n_workers=2) as fleet:
            stale_sender, owner = fleet._workers
            pending = _Pending("predict", test_x[:1], time.time() + 5.0)
            pending.rid = 20_000
            with fleet._lock:
                pending.worker = owner
                owner.assigned += 1
                fleet._pending[pending.rid] = pending
                before = owner.assigned

            fleet._on_response(
                stale_sender, ("res", pending.rid, "ok", "stale", None)
            )
            assert not pending.future.done()
            with fleet._lock:
                assert pending.rid in fleet._pending
                assert owner.assigned == before

            fleet._on_response(owner, ("res", pending.rid, "ok", "fresh", None))
            assert pending.future.result() == "fresh"
            with fleet._lock:
                assert pending.rid not in fleet._pending
                assert owner.assigned == before - 1


class TestHelpers:
    def test_as_quantized_artifact_passthrough(self, artifact):
        assert as_quantized_artifact(artifact) is artifact

    def test_as_quantized_artifact_rejects_bare_model(self, fitted):
        model, _ = fitted
        with pytest.raises(TypeError, match="QuantizedHDCModel"):
            as_quantized_artifact(model)
        with pytest.raises(TypeError):
            as_quantized_artifact(object())

    def test_resolve_worker_count(self):
        assert resolve_worker_count(3) == 3
        assert resolve_worker_count(None) >= 1
        assert resolve_worker_count(-1) >= 1
        with pytest.raises(ValueError):
            resolve_worker_count(0)
