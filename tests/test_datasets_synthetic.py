"""Tests for repro.datasets.synthetic.make_classification."""

import numpy as np
import pytest

from repro.baselines.knn import KNNClassifier
from repro.datasets.splits import stratified_split
from repro.datasets.synthetic import make_classification


class TestShapes:
    def test_output_shapes(self):
        X, y = make_classification(100, 20, 4, seed=0)
        assert X.shape == (100, 20)
        assert y.shape == (100,)
        assert y.dtype == np.int64

    def test_labels_in_range(self):
        _, y = make_classification(200, 10, 5, seed=0)
        assert y.min() >= 0 and y.max() < 5

    def test_all_classes_present(self):
        _, y = make_classification(400, 10, 4, seed=0)
        assert set(np.unique(y)) == {0, 1, 2, 3}

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_samples": 0},
            {"n_features": 0},
            {"n_classes": 1},
            {"difficulty": 0.0},
            {"difficulty": 1.5},
            {"n_prototypes": 0},
            {"label_noise": 1.5},
            {"latent_dim": 0},
            {"latent_dim": 100},
        ],
    )
    def test_bad_params(self, kwargs):
        defaults = dict(n_samples=50, n_features=10, n_classes=3, seed=0)
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            make_classification(**defaults)


class TestDeterminism:
    def test_same_seed_identical(self):
        a = make_classification(50, 10, 3, seed=9)
        b = make_classification(50, 10, 3, seed=9)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_different_seed_differs(self):
        a = make_classification(50, 10, 3, seed=1)
        b = make_classification(50, 10, 3, seed=2)
        assert not np.allclose(a[0], b[0])


class TestDifficulty:
    def test_monotone_learnability(self):
        """Higher difficulty -> lower held-out accuracy for a fixed learner."""
        accs = []
        for difficulty in (0.2, 0.9):
            X, y = make_classification(
                900, 30, 12, difficulty=difficulty, latent_dim=8, seed=4
            )
            tx, ty, vx, vy = stratified_split(X, y, test_fraction=0.25, seed=0)
            accs.append(KNNClassifier(k=5).fit(tx, ty).score(vx, vy))
        assert accs[0] > accs[1] + 0.05

    def test_easy_problem_highly_learnable(self):
        X, y = make_classification(400, 20, 3, difficulty=0.2, seed=5)
        tx, ty, vx, vy = stratified_split(X, y, test_fraction=0.25, seed=0)
        assert KNNClassifier(k=3).fit(tx, ty).score(vx, vy) > 0.9


class TestLabelNoise:
    def test_noise_flips_labels(self):
        X_clean, y_clean = make_classification(500, 10, 4, label_noise=0.0, seed=6)
        X_noisy, y_noisy = make_classification(500, 10, 4, label_noise=0.3, seed=6)
        assert np.array_equal(X_clean, X_noisy)  # features unaffected
        assert (y_clean != y_noisy).mean() > 0.1


class TestClassWeights:
    def test_imbalance_respected(self):
        _, y = make_classification(
            3000, 10, 3, class_weights=np.array([0.8, 0.15, 0.05]), seed=7
        )
        counts = np.bincount(y, minlength=3) / y.size
        assert counts[0] > 0.7
        assert counts[2] < 0.12

    def test_bad_weights_shape(self):
        with pytest.raises(ValueError, match="class_weights"):
            make_classification(50, 10, 3, class_weights=np.ones(2), seed=0)

    def test_negative_weights(self):
        with pytest.raises(ValueError, match="non-negative"):
            make_classification(
                50, 10, 3, class_weights=np.array([1.0, -1.0, 1.0]), seed=0
            )


class TestTopKGapStructure:
    def test_top1_lower_than_top2(self):
        """Multi-prototype classes create the paper's Fig. 2(b) top-k gaps."""
        from repro.core.disthd import DistHDClassifier
        from repro.datasets.preprocessing import StandardScaler
        from repro.metrics.classification import topk_accuracy

        X, y = make_classification(
            800, 40, 8, difficulty=0.6, n_prototypes=3, seed=8
        )
        tx, ty, vx, vy = stratified_split(X, y, test_fraction=0.25, seed=0)
        scaler = StandardScaler().fit(tx)
        clf = DistHDClassifier(dim=128, iterations=8, seed=0).fit(
            scaler.transform(tx), ty
        )
        scores = clf.decision_scores(scaler.transform(vx))
        dense = np.searchsorted(clf.classes_, vy)
        top1 = topk_accuracy(dense, scores, 1)
        top2 = topk_accuracy(dense, scores, 2)
        top3 = topk_accuracy(dense, scores, 3)
        assert top1 < top2 <= top3
        # The top-2 jump dominates the top-3 jump (paper's motivation).
        assert (top2 - top1) > (top3 - top2)
