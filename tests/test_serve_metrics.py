"""Tests for repro.serve.metrics.ServerMetrics."""

import pytest

from repro.serve.metrics import PROBLEM_LOG_LIMIT, ServerMetrics


class TestSnapshot:
    def test_empty_snapshot(self):
        snap = ServerMetrics().snapshot()
        assert snap["n_requests"] == 0
        assert snap["n_errors"] == 0
        assert snap["n_swaps"] == 0
        assert snap["latency_ms"] is None
        assert snap["mean_batch_size"] is None
        assert snap["batch_sizes"] == {}
        assert snap["uptime_s"] > 0

    def test_latency_percentiles(self):
        metrics = ServerMetrics()
        for ms in range(1, 101):  # 1..100 ms
            metrics.record_request(ms / 1e3)
        latency = metrics.snapshot()["latency_ms"]
        assert latency["p50"] == pytest.approx(50.5, abs=1.0)
        assert latency["p95"] == pytest.approx(95.05, abs=1.0)
        assert latency["p99"] == pytest.approx(99.01, abs=1.0)
        assert latency["mean"] == pytest.approx(50.5, abs=0.5)
        assert latency["max"] == pytest.approx(100.0)

    def test_window_ages_out_old_samples(self):
        metrics = ServerMetrics(window=4)
        for _ in range(10):
            metrics.record_request(1.0)  # 1000 ms
        for _ in range(4):
            metrics.record_request(0.001)  # the window is now all 1 ms
        snap = metrics.snapshot()
        assert snap["n_requests"] == 14  # lifetime count is not windowed
        assert snap["latency_ms"]["max"] == pytest.approx(1.0)

    def test_batch_histogram_and_mean(self):
        metrics = ServerMetrics()
        for size in (4, 4, 8):
            metrics.record_batch(size)
        snap = metrics.snapshot()
        assert snap["batch_sizes"] == {"4": 2, "8": 1}
        assert snap["mean_batch_size"] == pytest.approx(16 / 3)

    def test_counters(self):
        metrics = ServerMetrics()
        metrics.record_error()
        metrics.record_swap()
        metrics.record_swap()
        assert metrics.n_errors == 1
        assert metrics.n_swaps == 2

    def test_throughput_uses_lifetime_count(self):
        metrics = ServerMetrics()
        for _ in range(5):
            metrics.record_request(0.001)
        assert metrics.snapshot()["throughput_rps"] > 0

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError, match="window"):
            ServerMetrics(window=0)


class TestFleetCounters:
    def test_shed_and_retry_counters(self):
        metrics = ServerMetrics()
        metrics.record_shed()
        metrics.record_shed()
        metrics.record_retry()
        assert metrics.n_shed == 2
        assert metrics.n_retries == 1
        snap = metrics.snapshot()
        assert snap["n_shed"] == 2
        assert snap["n_retries"] == 1

    def test_empty_snapshot_has_fleet_keys(self):
        snap = ServerMetrics().snapshot()
        assert snap["n_shed"] == 0
        assert snap["n_retries"] == 0
        assert snap["problems"] == {"counts": {}, "recent": []}


class TestProblemLog:
    def test_record_and_read_back(self):
        metrics = ServerMetrics()
        metrics.record_problem("worker-crashed", "index=0 exitcode=-9")
        metrics.record_problem("worker-crashed", "index=1 exitcode=-9")
        metrics.record_problem("request-lost")
        events = metrics.problems()
        assert [e["kind"] for e in events] == [
            "worker-crashed", "worker-crashed", "request-lost",
        ]
        assert events[0]["detail"] == "index=0 exitcode=-9"
        assert all(e["ts"] > 0 for e in events)
        assert metrics.problem_counts() == {
            "worker-crashed": 2, "request-lost": 1,
        }

    def test_log_is_bounded(self):
        metrics = ServerMetrics()
        for i in range(PROBLEM_LOG_LIMIT + 50):
            metrics.record_problem("deadline-expired", str(i))
        events = metrics.problems()
        assert len(events) == PROBLEM_LOG_LIMIT
        # Oldest events aged out; the newest survive.
        assert events[-1]["detail"] == str(PROBLEM_LOG_LIMIT + 49)

    def test_snapshot_exposes_counts_and_recent_tail(self):
        metrics = ServerMetrics()
        for i in range(40):
            metrics.record_problem("worker-hung", str(i))
        problems = metrics.snapshot()["problems"]
        assert problems["counts"] == {"worker-hung": 40}
        assert len(problems["recent"]) == 32  # bounded tail, newest last
        assert problems["recent"][-1]["detail"] == "39"

    def test_problems_returns_a_copy(self):
        metrics = ServerMetrics()
        metrics.record_problem("circuit-open")
        metrics.problems().clear()
        assert metrics.problem_counts() == {"circuit-open": 1}
