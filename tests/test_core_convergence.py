"""Tests for repro.core.convergence.ConvergenceTracker."""

import pytest

from repro.core.convergence import ConvergenceTracker


class TestConvergenceTracker:
    def test_converges_after_patience(self):
        tracker = ConvergenceTracker(patience=2, tol=0.01)
        assert not tracker.update(0.5)
        assert not tracker.update(0.505)   # stale 1
        assert tracker.update(0.507)       # stale 2 -> converged

    def test_improvement_resets_patience(self):
        tracker = ConvergenceTracker(patience=2, tol=0.01)
        tracker.update(0.5)
        tracker.update(0.505)              # stale 1
        assert not tracker.update(0.6)     # big improvement resets
        assert not tracker.update(0.605)   # stale 1 again
        assert tracker.update(0.606)

    def test_none_patience_never_converges(self):
        tracker = ConvergenceTracker(patience=None)
        assert not any(tracker.update(0.5) for _ in range(100))

    def test_decreasing_values_count_as_stale(self):
        tracker = ConvergenceTracker(patience=3, tol=0.0)
        tracker.update(0.9)
        assert not tracker.update(0.5)
        assert not tracker.update(0.4)
        assert tracker.update(0.3)

    def test_best_tracks_maximum(self):
        tracker = ConvergenceTracker(patience=10, tol=0.0)
        for value in (0.2, 0.8, 0.5):
            tracker.update(value)
        assert tracker.best == pytest.approx(0.8)

    def test_reset(self):
        tracker = ConvergenceTracker(patience=1, tol=0.0)
        tracker.update(0.9)
        tracker.update(0.9)
        assert tracker.converged
        tracker.reset()
        assert not tracker.converged
        assert tracker.best is None
        assert not tracker.update(0.1)

    def test_bad_patience(self):
        with pytest.raises(ValueError, match="patience"):
            ConvergenceTracker(patience=0)

    def test_bad_tol(self):
        with pytest.raises(ValueError, match="tol"):
            ConvergenceTracker(tol=-1.0)

    def test_stays_converged(self):
        tracker = ConvergenceTracker(patience=1, tol=0.0)
        tracker.update(0.5)
        tracker.update(0.5)
        assert tracker.converged
        assert tracker.update(0.99)  # once converged, stays converged
