"""Tests for repro.hdc.spaces."""

import numpy as np
import pytest

from repro.hdc.spaces import (
    expected_orthogonality_bound,
    random_binary,
    random_bipolar,
    random_gaussian,
    random_level_hypervectors,
)


class TestRandomBipolar:
    def test_values(self):
        hv = random_bipolar(4, 100, seed=0)
        assert set(np.unique(hv)) <= {-1, 1}
        assert hv.shape == (4, 100)
        assert hv.dtype == np.int8

    def test_deterministic(self):
        assert np.array_equal(random_bipolar(2, 50, seed=7), random_bipolar(2, 50, seed=7))

    def test_balanced(self):
        hv = random_bipolar(1, 10000, seed=1)[0]
        assert abs(hv.mean()) < 0.05

    @pytest.mark.parametrize("n,dim", [(0, 10), (10, 0), (-1, 5)])
    def test_bad_shapes(self, n, dim):
        with pytest.raises(ValueError):
            random_bipolar(n, dim)

    def test_near_orthogonality(self):
        """Independent random bipolar hypervectors have |cos| within the Hoeffding bound."""
        dim = 4096
        hvs = random_bipolar(2, dim, seed=3).astype(float)
        cos = float(hvs[0] @ hvs[1]) / dim
        assert abs(cos) <= expected_orthogonality_bound(dim)


class TestRandomBinary:
    def test_values(self):
        hv = random_binary(3, 64, seed=0)
        assert set(np.unique(hv)) <= {0, 1}

    def test_shape(self):
        assert random_binary(3, 64, seed=0).shape == (3, 64)


class TestRandomGaussian:
    def test_moments(self):
        hv = random_gaussian(1, 100_000, seed=0)[0]
        assert abs(hv.mean()) < 0.02
        assert abs(hv.std() - 1.0) < 0.02

    def test_scale(self):
        hv = random_gaussian(1, 100_000, seed=0, scale=2.0)[0]
        assert abs(hv.std() - 2.0) < 0.05

    def test_bad_scale(self):
        with pytest.raises(ValueError, match="scale"):
            random_gaussian(1, 10, scale=0.0)


class TestLevelHypervectors:
    def test_shape_and_dtype(self):
        levels = random_level_hypervectors(8, 256, seed=0)
        assert levels.shape == (8, 256)
        assert set(np.unique(levels)) <= {-1, 1}

    def test_single_level(self):
        assert random_level_hypervectors(1, 64, seed=0).shape == (1, 64)

    def test_similarity_decreases_with_level_distance(self):
        levels = random_level_hypervectors(16, 4096, seed=1).astype(float)
        dim = levels.shape[1]
        sim_adjacent = float(levels[0] @ levels[1]) / dim
        sim_mid = float(levels[0] @ levels[8]) / dim
        sim_far = float(levels[0] @ levels[15]) / dim
        assert sim_adjacent > sim_mid > sim_far

    def test_extremes_near_orthogonal(self):
        levels = random_level_hypervectors(16, 4096, seed=2).astype(float)
        dim = levels.shape[1]
        assert abs(float(levels[0] @ levels[-1]) / dim) < 0.1

    def test_zero_levels_rejected(self):
        with pytest.raises(ValueError):
            random_level_hypervectors(0, 16)


class TestOrthogonalityBound:
    def test_decreases_with_dim(self):
        assert expected_orthogonality_bound(10_000) < expected_orthogonality_bound(100)

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            expected_orthogonality_bound(0)
        with pytest.raises(ValueError):
            expected_orthogonality_bound(100, confidence=1.0)
