"""Tests for repro.serve.server.ModelServer (incl. the hot-swap protocol)."""

import threading

import numpy as np
import pytest

from repro.api import serve_model
from repro.core.disthd import DistHDClassifier
from repro.deploy.quantized import QuantizedHDCModel
from repro.persistence import save_model
from repro.serve.server import ModelServer


@pytest.fixture(scope="module")
def fitted(small_problem):
    train_x, train_y, _, _ = small_problem
    return DistHDClassifier(dim=96, iterations=5, seed=0).fit(train_x, train_y)


@pytest.fixture(scope="module")
def fitted_v2(small_problem):
    train_x, train_y, _, _ = small_problem
    return DistHDClassifier(dim=96, iterations=5, seed=1).fit(train_x, train_y)


@pytest.fixture
def server(fitted):
    with ModelServer(fitted, max_batch_size=16, max_wait_ms=2.0) as srv:
        yield srv


class TestInference:
    def test_predict_matches_direct(self, server, fitted, small_problem):
        _, _, test_x, _ = small_problem
        np.testing.assert_array_equal(
            server.predict(test_x[:20]), fitted.predict(test_x[:20])
        )

    def test_single_row_predict(self, server, fitted, small_problem):
        _, _, test_x, _ = small_problem
        out = server.predict(test_x[0])
        assert out.shape == (1,)
        assert out[0] == fitted.predict(test_x[:1])[0]

    def test_decision_scores_match_direct(self, server, fitted, small_problem):
        _, _, test_x, _ = small_problem
        np.testing.assert_allclose(
            server.decision_scores(test_x[:10]),
            fitted.decision_scores(test_x[:10]),
            rtol=1e-6, atol=1e-7,
        )

    def test_concurrent_predict_parity(self, server, fitted, small_problem):
        _, _, test_x, _ = small_problem
        reference = fitted.predict(test_x)
        results = {}

        def fire(i):
            results[i] = server.predict(test_x[i])[0]

        threads = [
            threading.Thread(target=fire, args=(i,))
            for i in range(min(40, test_x.shape[0]))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i, label in results.items():
            assert label == reference[i]

    def test_feature_mismatch_fails_fast(self, server):
        with pytest.raises(ValueError, match="features"):
            server.submit_predict(np.ones((2, 3)))

    def test_non_finite_rejected(self, server, small_problem):
        _, _, test_x, _ = small_problem
        bad = test_x[:2].copy()
        bad[0, 0] = np.nan
        with pytest.raises(ValueError):
            server.submit_predict(bad)

    def test_unservable_model_rejected(self):
        with pytest.raises(TypeError, match="not servable"):
            ModelServer(object())


class TestHotSwap:
    def test_deploy_switches_predictions(
        self, fitted, fitted_v2, small_problem
    ):
        _, _, test_x, _ = small_problem
        with ModelServer(fitted, max_wait_ms=1.0) as server:
            server.predict(test_x[:4])  # seed the warm-up row
            version = server.deploy(fitted_v2)
            assert version.version == 2
            assert server.active_version is version
            np.testing.assert_array_equal(
                server.predict(test_x[:20]), fitted_v2.predict(test_x[:20])
            )
            stats = server.stats()
            assert stats["n_swaps"] == 1
            assert stats["active_version"] == 2
            assert [v["version"] for v in stats["versions"]] == [1, 2]
            assert stats["versions"][0]["retired_unix"] is not None

    def test_deploy_from_archive_path(self, fitted, small_problem, tmp_path):
        _, _, test_x, _ = small_problem
        path = save_model(fitted, tmp_path / "v2.npz")
        with ModelServer(fitted, max_wait_ms=1.0) as server:
            version = server.deploy(str(path))
            assert version.source == str(path)
            # The archive loads as an inference-only view of the same state.
            np.testing.assert_array_equal(
                server.predict(test_x[:20]), fitted.predict(test_x[:20])
            )

    def test_deploy_feature_mismatch_rejected(self, fitted, small_problem):
        train_x, train_y, _, _ = small_problem
        other = DistHDClassifier(dim=32, iterations=2, seed=0).fit(
            train_x[:, :5], train_y
        )
        with ModelServer(fitted, max_wait_ms=1.0) as server:
            with pytest.raises(ValueError, match="hot-swap"):
                server.deploy(other)
            assert server.active_version.version == 1
            # With warm rows stashed, the guarded error (not a shape
            # error from the warm-up call) must still surface.
            server.predict(train_x[:2])
            with pytest.raises(ValueError, match="hot-swap"):
                server.deploy(other, warm=True)

    def test_swap_under_load_drops_nothing(
        self, fitted, fitted_v2, small_problem
    ):
        _, _, test_x, _ = small_problem
        n_requests = 120
        errors = []
        with ModelServer(fitted, max_batch_size=8, max_wait_ms=1.0) as server:
            swapped = threading.Event()

            def fire(i):
                try:
                    server.predict(test_x[i % test_x.shape[0]])
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)
                if i == n_requests // 2 and not swapped.is_set():
                    swapped.set()
                    server.deploy(fitted_v2)

            threads = [
                threading.Thread(target=fire, args=(i,))
                for i in range(n_requests)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert errors == []
            assert server.metrics.n_errors == 0
            assert server.stats()["n_swaps"] == 1
            # Post-swap, the batched path serves v2 exactly.
            np.testing.assert_array_equal(
                server.predict(test_x[:20]), fitted_v2.predict(test_x[:20])
            )

    def test_retired_version_drains(self, fitted, fitted_v2):
        with ModelServer(fitted, max_wait_ms=1.0) as server:
            old = server.active_version
            server.deploy(fitted_v2)
            assert server.wait_drained(old, timeout=5.0)
            assert old.in_flight == 0
            # default: the retired model reference is released
            assert old.model is None

    def test_concurrent_deploys_retire_every_loser(
        self, fitted, small_problem
    ):
        import copy

        train_x, train_y, _, _ = small_problem
        with ModelServer(fitted, max_wait_ms=1.0) as server:
            contenders = [copy.deepcopy(fitted) for _ in range(6)]
            threads = [
                threading.Thread(target=server.deploy, args=(m,))
                for m in contenders
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = server.stats()
            records = stats["versions"]
            assert len(records) == 7  # initial + 6 deploys
            active = stats["active_version"]
            # Exactly the active version is unretired; every loser was
            # retired (and, by default, released) exactly once.
            for record in records:
                if record["version"] == active:
                    assert record["retired_unix"] is None
                else:
                    assert record["retired_unix"] is not None
                    assert record["model"] is None
            assert stats["n_swaps"] == 6

    def test_release_refuses_while_in_flight(self, fitted):
        from repro.serve.server import ModelVersion

        version = ModelVersion(1, fitted, None)
        assert version._try_enter()
        # An in-flight batch blocks the release; the reference survives.
        assert version.release_model(timeout=0.05) is False
        assert version.model is fitted
        version._exit()
        assert version.release_model(timeout=1.0) is True
        assert version.model is None
        # A released version can no longer be entered — the handler must
        # re-read the active pointer instead of scoring against None.
        assert version._try_enter() is False

    def test_retain_retired_keeps_model(self, fitted, fitted_v2):
        with ModelServer(
            fitted, max_wait_ms=1.0, retain_retired=True
        ) as server:
            old = server.active_version
            server.deploy(fitted_v2)
            assert old.model is fitted


class TestQuantizedArtifact:
    def test_serves_quantized_deploy_artifact(self, fitted, small_problem):
        _, _, test_x, _ = small_problem
        artifact = QuantizedHDCModel(fitted, bits=8)
        with ModelServer(artifact, max_wait_ms=1.0) as server:
            np.testing.assert_array_equal(
                server.predict(test_x[:20]), artifact.predict(test_x[:20])
            )


class TestLifecycle:
    def test_predict_after_close_raises(self, fitted):
        server = ModelServer(fitted, max_wait_ms=1.0)
        server.close()
        with pytest.raises(RuntimeError, match="closed"):
            server.predict(np.zeros((1, fitted.n_features_)))

    def test_stats_fields(self, server, small_problem):
        _, _, test_x, _ = small_problem
        server.predict(test_x[:4])
        stats = server.stats()
        for key in (
            "uptime_s", "n_requests", "n_errors", "n_swaps",
            "throughput_rps", "latency_ms", "batch_sizes",
            "mean_batch_size", "active_version", "versions",
        ):
            assert key in stats
        assert stats["n_requests"] >= 1


class TestServeModelFacade:
    def test_serve_model_with_object(self, fitted, small_problem):
        _, _, test_x, _ = small_problem
        with serve_model(fitted, max_wait_ms=1.0) as server:
            np.testing.assert_array_equal(
                server.predict(test_x[:8]), fitted.predict(test_x[:8])
            )

    def test_serve_model_with_path(self, fitted, small_problem, tmp_path):
        _, _, test_x, _ = small_problem
        path = save_model(fitted, tmp_path / "m.npz")
        with serve_model(path=path, max_wait_ms=1.0) as server:
            np.testing.assert_array_equal(
                server.predict(test_x[:8]), fitted.predict(test_x[:8])
            )

    def test_serve_model_needs_exactly_one_source(self, fitted):
        with pytest.raises(TypeError, match="exactly one"):
            serve_model()
        with pytest.raises(TypeError, match="exactly one"):
            serve_model(fitted, path="x.npz")
