"""Tests for repro.pipeline.crossval."""

import numpy as np
import pytest

from repro.baselines.knn import KNNClassifier
from repro.pipeline.crossval import (
    CrossValResult,
    cross_validate,
    stratified_kfold_indices,
)


@pytest.fixture
def labels():
    return np.repeat(np.arange(3), 30)


class TestKFoldIndices:
    def test_folds_partition_everything(self, labels):
        seen = []
        for _, test_idx in stratified_kfold_indices(labels, 5, seed=0):
            seen.extend(test_idx.tolist())
        assert sorted(seen) == list(range(90))

    def test_folds_disjoint(self, labels):
        folds = [t for _, t in stratified_kfold_indices(labels, 5, seed=0)]
        for i, a in enumerate(folds):
            for b in folds[i + 1:]:
                assert not set(a.tolist()) & set(b.tolist())

    def test_train_test_disjoint(self, labels):
        for train_idx, test_idx in stratified_kfold_indices(labels, 3, seed=0):
            assert not set(train_idx.tolist()) & set(test_idx.tolist())

    def test_stratification(self, labels):
        for _, test_idx in stratified_kfold_indices(labels, 5, seed=0):
            counts = np.bincount(labels[test_idx], minlength=3)
            assert counts.min() >= 5  # 30/5 per class, evenly dealt
            assert counts.max() <= 7

    def test_deterministic(self, labels):
        a = [t.tolist() for _, t in stratified_kfold_indices(labels, 4, seed=2)]
        b = [t.tolist() for _, t in stratified_kfold_indices(labels, 4, seed=2)]
        assert a == b

    def test_bad_splits(self, labels):
        with pytest.raises(ValueError, match="n_splits"):
            list(stratified_kfold_indices(labels, 1))


class TestCrossValidate:
    def test_scores_per_fold(self, small_problem):
        train_x, train_y, _, _ = small_problem
        result = cross_validate(
            lambda: KNNClassifier(k=3), train_x, train_y, n_splits=4, seed=0
        )
        assert len(result.scores) == 4
        assert all(0.0 <= s <= 1.0 for s in result.scores)
        assert result.mean > 0.8  # easy problem

    def test_mean_and_std(self):
        result = CrossValResult(scores=[0.8, 1.0])
        assert result.mean == pytest.approx(0.9)
        assert result.std == pytest.approx(0.1)

    def test_fresh_model_per_fold(self, small_problem):
        """Factory must be invoked once per fold (no state leakage)."""
        train_x, train_y, _, _ = small_problem
        built = []

        def factory():
            model = KNNClassifier(k=1)
            built.append(model)
            return model

        cross_validate(factory, train_x, train_y, n_splits=3, seed=0)
        assert len(built) == 3
        assert len(set(map(id, built))) == 3
