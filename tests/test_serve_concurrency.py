"""Concurrent predict-while-adapt: the versioned-cache invariant under threads.

The PR 3 norm caches are stamped per mutation version; the locking
contract (see :mod:`repro.hdc.memory`) promises that **no stale cache
survives a mutation** even when readers race a writer.  These tests pin
that contract:

- a deterministic unit test of the stamping order (a mutation landing
  *during* a cached compute must leave the entry stale, not file the
  pre-mutation value under the post-mutation version);
- a threaded stress test interleaving ``partial_fit`` mutation with
  concurrent ``predict`` / ``decision_scores`` readers, then verifying
  the settled caches against fresh recomputation;
- the serving-level variant: a ModelServer under concurrent load while an
  OnlineAdapter promotes adapted versions — zero failed requests, exact
  post-swap parity.
"""

import threading

import numpy as np

from repro.core.disthd import DistHDClassifier
from repro.hdc.memory import AssociativeMemory
from repro.serve.adapter import OnlineAdapter
from repro.serve.server import ModelServer


class TestCacheStampOrder:
    def test_mutation_during_compute_leaves_entry_stale(self):
        memory = AssociativeMemory(3, 8)
        calls = []

        def compute_with_interleaved_mutation():
            calls.append("first")
            # A writer lands mid-compute: version bumps under our feet.
            memory.invalidate_caches()
            return "computed-from-pre-mutation-state"

        value = memory._cached("k", compute_with_interleaved_mutation)
        assert value == "computed-from-pre-mutation-state"
        # The entry must be stamped with the *pre*-compute version, so the
        # next query at the current version recomputes instead of serving
        # the torn value.
        value = memory._cached("k", lambda: calls.append("second") or "fresh")
        assert value == "fresh"
        assert calls == ["first", "second"]

    def test_unchanged_version_still_caches(self):
        memory = AssociativeMemory(3, 8)
        calls = []
        memory._cached("k", lambda: calls.append(1) or "v")
        assert memory._cached("k", lambda: calls.append(2) or "v2") == "v"
        assert calls == [1]

    def test_every_mutator_invalidates_norms(self, rng):
        memory = AssociativeMemory(4, 16)
        memory.set_vectors(rng.normal(size=(4, 16)))
        before = memory.class_norms().copy()
        memory.add_to_class(0, np.ones(16))
        after = memory.class_norms()
        assert not np.allclose(before[0], after[0])


class TestPredictWhileAdaptStress:
    def test_interleaved_partial_fit_and_predict(self, small_problem):
        """Reader threads hammer predict/decision_scores while one writer
        streams partial_fit batches; afterwards the caches must equal
        fresh recomputation (no stale entry survived)."""
        train_x, train_y, test_x, _ = small_problem
        model = DistHDClassifier(dim=64, iterations=3, seed=0)
        model.fit(train_x, train_y)

        stop = threading.Event()
        errors = []

        def writer():
            rng = np.random.default_rng(1)
            while not stop.is_set():
                idx = rng.choice(train_x.shape[0], size=16, replace=False)
                try:
                    model.partial_fit(train_x[idx], train_y[idx])
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)
                    return

        def reader():
            rng = np.random.default_rng(2)
            while not stop.is_set():
                idx = rng.choice(test_x.shape[0], size=4, replace=False)
                try:
                    scores = model.decision_scores(test_x[idx])
                    assert scores.shape == (4, model.classes_.size)
                    model.predict(test_x[idx])
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for t in threads:
            t.start()
        import time

        time.sleep(0.5)
        stop.set()
        for t in threads:
            t.join(timeout=10)
        assert errors == [], errors

        # Settled state: every cached entry at the current version must
        # equal fresh recomputation — the no-stale-cache invariant.
        memory = model.memory_
        version = memory.version
        cached_norms = memory.class_norms()
        fresh_norms = memory.backend.norm(
            memory.vectors, axis=1, keepdims=True
        )
        np.testing.assert_allclose(cached_norms, fresh_norms)
        for key, (stamp, _) in memory._cache.items():
            assert stamp <= version, (key, stamp, version)
        # And inference agrees with a cache-free pass.
        scores_cached = model.decision_scores(test_x[:8])
        try:
            AssociativeMemory.caching_enabled = False
            scores_fresh = model.decision_scores(test_x[:8])
        finally:
            AssociativeMemory.caching_enabled = True
        np.testing.assert_allclose(scores_cached, scores_fresh)

    def test_server_load_with_adaptation_swaps(self, small_problem):
        """Serving-level stress: concurrent load + background promotions
        must drop zero requests and end in exact parity."""
        import copy

        train_x, train_y, test_x, _ = small_problem
        base = DistHDClassifier(dim=64, iterations=3, seed=0)
        base.fit(train_x, train_y)
        served = copy.deepcopy(base)

        with ModelServer(served, max_batch_size=8, max_wait_ms=1.0) as server:
            adapter = OnlineAdapter(server, base, min_adapt_samples=16)
            adapter.feedback(train_x[:32], train_y[:32])
            errors = []

            def fire(i):
                try:
                    server.predict(test_x[i % test_x.shape[0]])
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)
                if i == 30:
                    adapter.adapt_now(wait=False)

            threads = [
                threading.Thread(target=fire, args=(i,)) for i in range(80)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            adapter.join(timeout=30)
            assert errors == []
            assert server.metrics.n_errors == 0
            assert adapter.n_adaptations == 1
            np.testing.assert_array_equal(
                server.predict(test_x[:16]),
                server.model.predict(test_x[:16]),
            )


class TestPackedHotSwap:
    def test_packed_artifact_swaps_under_load(self, small_problem):
        """A bit-packed 1-bit artifact served under concurrent load: the
        mid-run promotion re-quantizes *and re-packs*, drops zero
        requests, and the post-swap artifact is still packed."""
        from repro.deploy.quantized import QuantizedHDCModel

        train_x, train_y, test_x, _ = small_problem
        base = DistHDClassifier(dim=128, iterations=3, seed=0)
        base.fit(train_x, train_y)
        served = QuantizedHDCModel(base, bits=1, packed=True)
        pristine = served.packed_words.copy()

        with ModelServer(served, max_batch_size=8, max_wait_ms=1.0) as server:
            adapter = OnlineAdapter(server, base, min_adapt_samples=16)
            adapter.feedback(train_x[:32], train_y[:32])
            errors = []

            def fire(i):
                try:
                    server.predict(test_x[i % test_x.shape[0]])
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)
                if i == 30:
                    adapter.adapt_now(wait=False)

            threads = [
                threading.Thread(target=fire, args=(i,)) for i in range(80)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            adapter.join(timeout=30)
            assert errors == []
            assert server.metrics.n_errors == 0
            assert adapter.n_adaptations == 1
            assert server.stats()["n_swaps"] >= 1
            # Promotion produced a *packed* artifact again (re-quantized
            # and re-packed, not a float or unpacked fallback) whose words
            # reflect the adaptation, and batched serving agrees with it
            # exactly.
            active = server.model
            assert isinstance(active, QuantizedHDCModel)
            assert active.packed is True
            assert active.bits == 1
            assert active.packed_words.shape == pristine.shape
            np.testing.assert_array_equal(
                server.predict(test_x[:16]),
                active.predict(test_x[:16]),
            )
