"""Tests for repro.pipeline — experiment runner, grid search, reporting."""

import pytest

from repro.baselines.knn import KNNClassifier
from repro.core.disthd import DistHDClassifier
from repro.datasets.loaders import load_dataset
from repro.pipeline.experiment import run_experiment, run_suite
from repro.pipeline.grid import grid_search, parameter_grid
from repro.pipeline.report import (
    format_comparison,
    format_markdown_table,
    format_series,
)


@pytest.fixture(scope="module")
def tiny_dataset():
    return load_dataset("diabetes", scale=0.005, seed=0)


class TestRunExperiment:
    def test_result_fields(self, tiny_dataset):
        clf = DistHDClassifier(dim=64, iterations=3, seed=0)
        result = run_experiment(clf, tiny_dataset, model_name="disthd")
        assert result.model_name == "disthd"
        assert result.dataset_name == "diabetes"
        assert 0.0 <= result.test_accuracy <= 1.0
        assert result.top2_accuracy >= result.test_accuracy
        assert result.train_seconds > 0
        assert result.inference_seconds > 0

    def test_extras_for_hdc(self, tiny_dataset):
        clf = DistHDClassifier(dim=64, iterations=3, seed=0)
        result = run_experiment(clf, tiny_dataset)
        assert "n_iterations" in result.extras
        assert "effective_dim" in result.extras
        assert result.extras["physical_dim"] == 64.0

    def test_default_name_is_class(self, tiny_dataset):
        clf = KNNClassifier(k=3)
        result = run_experiment(clf, tiny_dataset)
        assert result.model_name == "KNNClassifier"

    def test_top3_none_for_3class_is_computed(self, tiny_dataset):
        clf = KNNClassifier(k=3)
        result = run_experiment(clf, tiny_dataset)
        assert result.top3_accuracy == pytest.approx(1.0)  # 3-class top-3

    def test_as_row_flattens(self, tiny_dataset):
        result = run_experiment(KNNClassifier(k=3), tiny_dataset)
        row = result.as_row()
        assert row["model"] == "KNNClassifier"
        assert "test_acc" in row

    def test_bad_repeats(self, tiny_dataset):
        with pytest.raises(ValueError, match="inference_repeats"):
            run_experiment(KNNClassifier(), tiny_dataset, inference_repeats=0)

    def test_run_suite(self, tiny_dataset):
        results = run_suite(
            {
                "knn": lambda: KNNClassifier(k=3),
                "disthd": lambda: DistHDClassifier(dim=48, iterations=2, seed=0),
            },
            tiny_dataset,
        )
        assert set(results) == {"knn", "disthd"}
        assert results["knn"].model_name == "knn"


class TestParameterGrid:
    def test_cartesian_product(self):
        grid = list(parameter_grid({"a": [1, 2], "b": ["x", "y"]}))
        assert len(grid) == 4
        assert {"a": 2, "b": "y"} in grid

    def test_empty_space(self):
        assert list(parameter_grid({})) == [{}]

    def test_deterministic_order(self):
        a = list(parameter_grid({"b": [1, 2], "a": [3]}))
        b = list(parameter_grid({"a": [3], "b": [1, 2]}))
        assert a == b


class TestGridSearch:
    def test_finds_better_k(self, medium_problem):
        train_x, train_y, _, _ = medium_problem
        result = grid_search(
            lambda **p: KNNClassifier(**p),
            {"k": [1, 50]},
            train_x,
            train_y,
            seed=0,
        )
        assert result.best_params["k"] in (1, 50)
        assert len(result.all_results) == 2
        assert result.best_score == max(r["score"] for r in result.all_results)

    def test_all_results_carry_params(self, small_problem):
        train_x, train_y, _, _ = small_problem
        result = grid_search(
            lambda **p: KNNClassifier(**p), {"k": [1, 3]}, train_x, train_y, seed=0
        )
        assert all("k" in row and "score" in row for row in result.all_results)


class TestReport:
    def test_markdown_table(self):
        table = format_markdown_table(
            [{"model": "a", "acc": 0.51234}], precision=3
        )
        assert "| model | acc |" in table
        assert "0.512" in table

    def test_missing_cells_dash(self):
        table = format_markdown_table(
            [{"a": 1}, {"b": 2}], columns=["a", "b"]
        )
        assert "-" in table

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            format_markdown_table([])

    def test_series(self):
        text = format_series("acc vs D", [500, 1000], [0.9, 0.95], x_label="D")
        assert "acc vs D" in text
        assert "500" in text

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError, match="lengths"):
            format_series("s", [1, 2], [1.0])

    def test_comparison_block(self):
        text = format_comparison(
            "Fig 4", {"disthd": {"acc": 0.9}}, columns=["acc"]
        )
        assert text.startswith("### Fig 4")
        assert "disthd" in text
