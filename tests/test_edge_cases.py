"""Edge-case and failure-injection tests across the library.

Degenerate inputs a downstream user will eventually feed the library:
constant features, duplicated samples, heavy class imbalance, binary
problems (where "incorrect" top-2 outcomes cannot exist), pure label noise,
and single-feature data.
"""

import numpy as np
import pytest

from repro.baselines.baselinehd import BaselineHDClassifier
from repro.baselines.mlp import MLPClassifier
from repro.core.disthd import DistHDClassifier
from repro.core.topk import partition_outcomes
from repro.datasets.preprocessing import StandardScaler
from repro.datasets.synthetic import make_classification


class TestBinaryProblems:
    """With k=2, every mistake is 'partially correct' — N is always empty."""

    @pytest.fixture(scope="class")
    def binary(self):
        X, y = make_classification(200, 10, 2, difficulty=0.5, seed=0)
        scaler = StandardScaler().fit(X)
        return scaler.transform(X), y

    def test_disthd_trains_on_binary(self, binary):
        X, y = binary
        clf = DistHDClassifier(dim=64, iterations=5, seed=0).fit(X, y)
        assert clf.score(X, y) > 0.7

    def test_incorrect_set_always_empty(self, binary):
        X, y = binary
        clf = DistHDClassifier(dim=64, iterations=3, seed=0).fit(X, y)
        encoded = clf.encode(X)
        dense = np.searchsorted(clf.classes_, y)
        part = partition_outcomes(clf.memory_, encoded, dense)
        assert part.incorrect.size == 0
        assert part.top2_accuracy() == 1.0

    def test_intersection_regen_is_noop_on_binary(self, binary):
        """Empty N -> empty intersection -> regeneration never fires."""
        X, y = binary
        clf = DistHDClassifier(
            dim=64, iterations=5, regen_rate=0.3, seed=0,
            convergence_patience=None,
        ).fit(X, y)
        assert clf.history_.total_regenerated == 0

    def test_union_regen_still_works_on_binary(self, binary):
        X, y = binary
        clf = DistHDClassifier(
            dim=64, iterations=5, regen_rate=0.3, selection="union", seed=0,
            convergence_patience=None,
        ).fit(X, y)
        # M alone can drive regeneration when samples are mispredicted.
        assert clf.score(X, y) > 0.7


class TestDegenerateFeatures:
    def test_constant_feature_column(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(120, 6))
        X[:, 2] = 7.0  # constant column
        y = (X[:, 0] > 0).astype(int)
        clf = DistHDClassifier(dim=64, iterations=4, seed=0).fit(X, y)
        assert clf.score(X, y) > 0.8

    def test_single_feature(self):
        rng = np.random.default_rng(1)
        X = np.concatenate([rng.normal(-2, 0.5, 60), rng.normal(2, 0.5, 60)])
        y = np.repeat([0, 1], 60)
        clf = DistHDClassifier(dim=64, iterations=4, seed=0).fit(
            X.reshape(-1, 1), y
        )
        assert clf.score(X.reshape(-1, 1), y) > 0.9

    def test_duplicated_samples(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(20, 5))
        X = np.repeat(X, 5, axis=0)
        y = np.repeat(rng.integers(0, 2, 20), 5)
        clf = DistHDClassifier(dim=256, iterations=8, seed=0).fit(X, y)
        # Labels are random w.r.t. features, so this is pure memorisation;
        # a centroid model recalls most but not all arbitrary labelings.
        assert clf.score(X, y) > 0.75


class TestClassImbalance:
    def test_rare_class_still_predicted(self):
        X, y = make_classification(
            600, 15, 3, difficulty=0.3,
            class_weights=np.array([0.85, 0.10, 0.05]), seed=3,
        )
        scaler = StandardScaler().fit(X)
        X = scaler.transform(X)
        clf = DistHDClassifier(dim=128, iterations=8, seed=0).fit(X, y)
        preds = clf.predict(X)
        # The rare class must not be drowned out of the prediction space.
        assert 2 in preds
        rare_mask = y == 2
        assert np.mean(preds[rare_mask] == 2) > 0.5


class TestLabelNoiseResilience:
    def test_moderate_label_noise_tolerated(self):
        X, y = make_classification(
            500, 20, 4, difficulty=0.3, label_noise=0.15, seed=4
        )
        scaler = StandardScaler().fit(X)
        X = scaler.transform(X)
        clf = DistHDClassifier(dim=128, iterations=8, seed=0).fit(X, y)
        # Accuracy against the noisy labels is bounded by the noise itself,
        # so just require well above the 4-class chance floor.
        assert clf.score(X, y) > 0.6


class TestExtremeSizes:
    def test_two_samples_per_class(self):
        X = np.array([[0.0, 0], [0.1, 0], [5.0, 5], [5.1, 5]])
        y = np.array([0, 0, 1, 1])
        clf = DistHDClassifier(dim=32, iterations=2, seed=0).fit(X, y)
        assert clf.predict(np.array([[0.05, 0.0]]))[0] == 0

    def test_many_classes_few_samples(self):
        rng = np.random.default_rng(5)
        centres = rng.normal(0, 4, size=(10, 8))
        X = np.repeat(centres, 3, axis=0) + rng.normal(0, 0.1, (30, 8))
        y = np.repeat(np.arange(10), 3)
        clf = DistHDClassifier(dim=128, iterations=3, seed=0).fit(X, y)
        assert clf.score(X, y) > 0.9

    def test_dim_smaller_than_classes(self):
        """D < k is unusual but must not crash."""
        rng = np.random.default_rng(6)
        centres = rng.normal(0, 4, size=(8, 10))
        X = np.repeat(centres, 5, axis=0) + rng.normal(0, 0.1, (40, 10))
        y = np.repeat(np.arange(8), 5)
        clf = DistHDClassifier(dim=4, iterations=2, seed=0).fit(X, y)
        assert clf.predict(X).shape == (40,)


class TestMLPEdgeCases:
    def test_wide_network_on_tiny_data(self):
        X = np.array([[-1.5], [-0.5], [0.5], [1.5]])  # standardised-ish
        y = np.array([0, 0, 1, 1])
        clf = MLPClassifier(hidden_sizes=(256,), epochs=200, seed=0).fit(X, y)
        assert clf.score(X, y) == 1.0

    def test_batch_larger_than_dataset(self):
        X = np.random.default_rng(7).normal(size=(10, 4))
        y = np.arange(10) % 2
        clf = MLPClassifier(
            hidden_sizes=(8,), epochs=5, batch_size=1000, seed=0
        ).fit(X, y)
        assert clf.predict(X).shape == (10,)


class TestBaselineHDEdgeCases:
    def test_n_levels_two(self, small_problem):
        train_x, train_y, test_x, test_y = small_problem
        clf = BaselineHDClassifier(
            dim=128, iterations=4, n_levels=2, seed=0
        ).fit(train_x, train_y)
        assert clf.score(test_x, test_y) > 0.4

    def test_bad_n_levels(self):
        with pytest.raises(ValueError, match="n_levels"):
            BaselineHDClassifier(n_levels=1)
