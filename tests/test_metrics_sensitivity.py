"""Tests for repro.metrics.sensitivity."""

import pytest

from repro.metrics.sensitivity import BinaryRates, binary_rates, sensitivity_specificity


class TestBinaryRates:
    def test_counts(self):
        rates = binary_rates([1, 1, 0, 0], [1, 0, 1, 0])
        assert (rates.tp, rates.fn, rates.fp, rates.tn) == (1, 1, 1, 1)

    def test_sensitivity_is_one_minus_fnr(self):
        """Paper §III: sensitivity = 1 - FNR."""
        rates = binary_rates([1, 1, 1, 0], [1, 1, 0, 0])
        assert rates.sensitivity == pytest.approx(1.0 - rates.fnr)
        assert rates.sensitivity == pytest.approx(2 / 3)

    def test_specificity_is_one_minus_fpr(self):
        rates = binary_rates([0, 0, 0, 1], [0, 0, 1, 1])
        assert rates.specificity == pytest.approx(1.0 - rates.fpr)
        assert rates.specificity == pytest.approx(2 / 3)

    def test_custom_positive_label(self):
        rates = binary_rates([2, 2, 0], [2, 0, 0], positive_label=2)
        assert rates.tp == 1
        assert rates.fn == 1

    def test_degenerate_no_positives(self):
        rates = BinaryRates(tp=0, fp=0, tn=5, fn=0)
        assert rates.sensitivity == 0.0
        assert rates.specificity == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            binary_rates([1], [1, 0])


class TestSensitivitySpecificity:
    def test_perfect_predictions(self):
        out = sensitivity_specificity([0, 1, 2], [0, 1, 2])
        assert out["sensitivity"] == pytest.approx(1.0)
        assert out["specificity"] == pytest.approx(1.0)

    def test_always_wrong(self):
        out = sensitivity_specificity([0, 1], [1, 0])
        assert out["sensitivity"] == pytest.approx(0.0)

    def test_macro_average(self):
        # class 0: recall 1.0; class 1: recall 0.0  -> macro sensitivity 0.5
        out = sensitivity_specificity([0, 0, 1, 1], [0, 0, 0, 0])
        assert out["sensitivity"] == pytest.approx(0.5)

    def test_values_in_unit_interval(self, rng):
        y = rng.integers(0, 4, 100)
        p = rng.integers(0, 4, 100)
        out = sensitivity_specificity(y, p)
        assert 0.0 <= out["sensitivity"] <= 1.0
        assert 0.0 <= out["specificity"] <= 1.0
