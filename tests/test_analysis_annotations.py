"""Tests for repro.analysis.annotations — guarded_by metadata, LOCK_ORDER
and the TrackedLock runtime shim (the dynamic half of lock-discipline)."""

import threading

import pytest

from repro.analysis.annotations import (
    GUARDED_ATTR,
    LOCK_ORDER,
    LockOrderError,
    TrackedLock,
    enable_runtime_lock_checks,
    guarded_by,
    guarded_fields,
    lock_rank,
    make_lock,
    runtime_lock_checks_enabled,
)


# ----------------------------------------------------------- declarations


class TestGuardedBy:
    def test_decorator_records_metadata(self):
        @guarded_by("_lock", "_a", "_b", aliases=("_cond",))
        class Thing:
            pass

        fields = guarded_fields(Thing)
        assert fields == {
            "_a": {"lock": "_lock", "aliases": ("_cond",)},
            "_b": {"lock": "_lock", "aliases": ("_cond",)},
        }

    def test_stacked_decorators_merge(self):
        @guarded_by("_other", "_c")
        @guarded_by("_lock", "_a")
        class Thing:
            pass

        fields = guarded_fields(Thing)
        assert fields["_a"]["lock"] == "_lock"
        assert fields["_c"]["lock"] == "_other"

    def test_subclass_does_not_mutate_base(self):
        @guarded_by("_lock", "_a")
        class Base:
            pass

        @guarded_by("_lock", "_b")
        class Sub(Base):
            pass

        assert "_b" not in guarded_fields(Base)
        assert set(guarded_fields(Sub)) == {"_a", "_b"}

    def test_requires_fields(self):
        with pytest.raises(ValueError):
            guarded_by("_lock")

    def test_runtime_behaviour_unchanged(self):
        @guarded_by("_lock", "_x")
        class Thing:
            def __init__(self):
                self._x = 1

        assert Thing()._x == 1
        assert getattr(Thing, GUARDED_ATTR)


class TestLockOrder:
    def test_serving_stack_order_declared(self):
        assert LOCK_ORDER == (
            "OnlineAdapter._lock",
            "FleetServer._lock",
            "ModelServer._swap_lock",
            "MicroBatcher._drain_lock",
            "ModelVersion._lock",
            "ServerMetrics._lock",
            "Tracer._shard_lock",
            "MetricsRegistry._lock",
            "FlightRecorder._shard_lock",
        )

    def test_lock_rank(self):
        assert lock_rank("OnlineAdapter._lock") == 0
        assert lock_rank("FlightRecorder._shard_lock") == len(LOCK_ORDER) - 1
        assert lock_rank("Nobody._lock") is None


# ----------------------------------------------------------- runtime shim


class TestTrackedLock:
    def test_in_order_acquisition_passes(self):
        outer = TrackedLock("ModelServer._swap_lock")
        inner = TrackedLock("ModelVersion._lock")
        with outer:
            with inner:
                assert inner.locked()
        assert not outer.locked() and not inner.locked()

    def test_inverted_acquisition_raises(self):
        outer = TrackedLock("ModelVersion._lock")
        inner = TrackedLock("ModelServer._swap_lock")
        with outer:
            with pytest.raises(LockOrderError, match="declared lock order"):
                inner.acquire()
        assert not inner.locked()

    def test_same_rank_reacquisition_raises(self):
        a = TrackedLock("ModelVersion._lock")
        b = TrackedLock("ModelVersion._lock")
        with a:
            with pytest.raises(LockOrderError):
                b.acquire()

    def test_release_unwinds_held_stack(self):
        lower = TrackedLock("OnlineAdapter._lock")
        higher = TrackedLock("ServerMetrics._lock")
        with higher:
            pass
        # higher was released; acquiring the lowest rank must now succeed.
        with lower:
            pass

    def test_unknown_name_untracked(self):
        mystery = TrackedLock("Nobody._lock")
        high = TrackedLock("ServerMetrics._lock")
        with high:
            with mystery:  # unranked locks bypass order tracking
                pass

    def test_nonblocking_acquire_skips_order_check(self):
        held = TrackedLock("ServerMetrics._lock")
        probe = TrackedLock("OnlineAdapter._lock")
        with held:
            # A try-lock cannot deadlock, so it is exempt from ordering.
            assert probe.acquire(blocking=False)
            probe.release()

    def test_condition_integration(self):
        lock = TrackedLock("ModelVersion._lock")
        cond = threading.Condition(lock)
        state = {"ready": False}

        def producer():
            with cond:
                state["ready"] = True
                cond.notify_all()

        with cond:
            threading.Thread(target=producer).start()
            assert cond.wait_for(lambda: state["ready"], timeout=5.0)
        assert not lock.locked()

    def test_cross_thread_stacks_independent(self):
        # Thread A holding a high-rank lock must not poison thread B.
        high = TrackedLock("ServerMetrics._lock")
        low = TrackedLock("OnlineAdapter._lock")
        errors = []
        acquired = threading.Event()
        release = threading.Event()

        def holder():
            with high:
                acquired.set()
                release.wait(timeout=5.0)

        t = threading.Thread(target=holder)
        t.start()
        assert acquired.wait(timeout=5.0)
        try:
            with low:  # different thread: its held-stack is empty
                pass
        except LockOrderError as exc:  # pragma: no cover - failure path
            errors.append(exc)
        finally:
            release.set()
            t.join(timeout=5.0)
        assert errors == []


class TestMakeLock:
    def test_checks_enabled_in_test_suite(self):
        # conftest.py turns the shim on for the whole suite.
        assert runtime_lock_checks_enabled()
        assert isinstance(make_lock("ModelVersion._lock"), TrackedLock)

    def test_disabled_returns_plain_lock(self):
        enable_runtime_lock_checks(False)
        try:
            lock = make_lock("ModelVersion._lock")
            assert not isinstance(lock, TrackedLock)
            with lock:
                pass
        finally:
            enable_runtime_lock_checks(True)
