"""Tests for the incremental-learning protocol (BaseClassifier.partial_fit)."""

import numpy as np
import pytest

from repro.baselines.baselinehd import BaselineHDClassifier
from repro.baselines.knn import KNNClassifier
from repro.baselines.mlp import MLPClassifier
from repro.baselines.onlinehd import OnlineHDClassifier
from repro.core.disthd import DistHDClassifier


def _batches(X, y, batch_size=32):
    for start in range(0, X.shape[0], batch_size):
        yield X[start : start + batch_size], y[start : start + batch_size]


STREAMERS = {
    "disthd": lambda: DistHDClassifier(
        dim=96, regen_rate=0.2, selection="union", seed=0,
        reservoir_size=120, regen_every=2,
    ),
    "onlinehd": lambda: OnlineHDClassifier(dim=96, seed=0),
    "baselinehd": lambda: BaselineHDClassifier(dim=256, seed=0),
}


class TestProtocol:
    def test_capability_flags(self):
        assert DistHDClassifier.supports_streaming
        assert OnlineHDClassifier.supports_streaming
        assert BaselineHDClassifier.supports_streaming
        assert not MLPClassifier.supports_streaming
        assert not KNNClassifier.supports_streaming

    def test_non_streaming_model_raises(self, small_problem):
        train_x, train_y, _, _ = small_problem
        with pytest.raises(NotImplementedError, match="supports_streaming"):
            KNNClassifier().partial_fit(train_x[:8], train_y[:8])

    def test_classes_fixed_by_first_call(self, small_problem):
        train_x, train_y, _, _ = small_problem
        model = OnlineHDClassifier(dim=32, seed=0)
        model.partial_fit(train_x[:32], train_y[:32], classes=[0, 1, 2])
        assert np.array_equal(model.classes_, [0, 1, 2])
        with pytest.raises(ValueError, match="must lie in"):
            model.partial_fit(train_x[:4], [0, 1, 2, 9])

    def test_first_batch_must_cover_declared_classes(self, small_problem):
        train_x, train_y, _, _ = small_problem
        model = OnlineHDClassifier(dim=32, seed=0)
        with pytest.raises(ValueError, match="not in the declared classes"):
            model.partial_fit(train_x[:8], train_y[:8], classes=[0, 1])

    def test_single_class_first_batch_needs_classes(self, small_problem):
        train_x, train_y, _, _ = small_problem
        idx = np.flatnonzero(train_y == 0)[:8]
        model = OnlineHDClassifier(dim=32, seed=0)
        with pytest.raises(ValueError, match="at least 2 classes"):
            model.partial_fit(train_x[idx], train_y[idx])
        # Same batch works once the full class set is declared.
        model.partial_fit(train_x[idx], train_y[idx], classes=[0, 1, 2])
        assert model.n_batches_ == 1

    def test_feature_mismatch_rejected(self, small_problem):
        train_x, train_y, _, _ = small_problem
        model = OnlineHDClassifier(dim=32, seed=0)
        model.partial_fit(train_x[:32], train_y[:32])
        with pytest.raises(ValueError, match="features"):
            model.partial_fit(np.ones((2, train_x.shape[1] + 1)), [0, 1])

    @pytest.mark.parametrize("name", sorted(STREAMERS))
    def test_streamed_training_learns(self, name, small_problem):
        train_x, train_y, test_x, test_y = small_problem
        model = STREAMERS[name]()
        for _ in range(2):
            for xb, yb in _batches(train_x, train_y):
                model.partial_fit(xb, yb, classes=[0, 1, 2])
        assert model.score(test_x, test_y) > 0.75, name
        assert model.n_samples_seen_ == 2 * train_x.shape[0]

    def test_noncontiguous_labels_remap(self, small_problem):
        train_x, train_y, test_x, test_y = small_problem
        remapped = np.array([5, 17, 42])[train_y]
        model = OnlineHDClassifier(dim=64, seed=0)
        for xb, yb in _batches(train_x, remapped):
            model.partial_fit(xb, yb, classes=[5, 17, 42])
        preds = model.predict(test_x)
        assert set(np.unique(preds)) <= {5, 17, 42}
        acc = float(np.mean(preds == np.array([5, 17, 42])[test_y]))
        assert acc > 0.75


class TestParityWithBatch:
    def test_onlinehd_stream_approaches_batch(self, small_problem):
        """Satellite: streamed batches ≈ batch fit on OnlineHD."""
        train_x, train_y, test_x, test_y = small_problem
        epochs = 4
        batch = OnlineHDClassifier(
            dim=96, iterations=epochs, convergence_patience=None, seed=0
        ).fit(train_x, train_y)
        stream = OnlineHDClassifier(dim=96, seed=0)
        for _ in range(epochs):
            for xb, yb in _batches(train_x, train_y):
                stream.partial_fit(xb, yb)
        batch_acc = batch.score(test_x, test_y)
        stream_acc = stream.score(test_x, test_y)
        assert stream_acc > batch_acc - 0.1

    def test_disthd_stream_approaches_batch(self, small_problem):
        train_x, train_y, test_x, test_y = small_problem
        batch = DistHDClassifier(dim=96, iterations=4, seed=0).fit(
            train_x, train_y
        )
        stream = DistHDClassifier(dim=96, seed=0)
        for _ in range(4):
            for xb, yb in _batches(train_x, train_y):
                stream.partial_fit(xb, yb)
        assert stream.score(test_x, test_y) > batch.score(test_x, test_y) - 0.1

    def test_disthd_regenerates_on_stream(self, small_problem):
        train_x, train_y, _, _ = small_problem
        model = STREAMERS["disthd"]()
        for _ in range(3):
            for xb, yb in _batches(train_x, train_y):
                model.partial_fit(xb, yb)
        assert model.total_regenerated_ > 0
        assert model.effective_dim_ == 96 + model.total_regenerated_
        assert model._reservoir_x.shape[0] <= model.config.reservoir_size

    def test_partial_fit_refines_batch_fitted_model(self, small_problem):
        """fit() then partial_fit() continues training the same model."""
        train_x, train_y, test_x, test_y = small_problem
        model = OnlineHDClassifier(dim=96, iterations=2, seed=0)
        model.fit(train_x, train_y)
        memory_before = model.memory_.vectors.copy()
        model.partial_fit(train_x[:64], train_y[:64])
        assert not np.array_equal(model.memory_.vectors, memory_before)
        assert model.score(test_x, test_y) > 0.75

    def test_fit_resets_stream_counters(self, small_problem):
        train_x, train_y, _, _ = small_problem
        model = DistHDClassifier(dim=48, iterations=2, seed=0)
        model.partial_fit(train_x[:32], train_y[:32], classes=[0, 1, 2])
        assert model.n_batches_ == 1
        model.fit(train_x, train_y)
        assert model.n_batches_ == 0
        assert model.n_samples_seen_ == 0
