"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_rng, bootstrap_indices, child_rngs, spawn_seed


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_rng(42).integers(0, 1000, 10)
        b = as_rng(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_rng(1).integers(0, 10**9)
        b = as_rng(2).integers(0, 10**9)
        assert a != b

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_numpy_integer_accepted(self):
        assert isinstance(as_rng(np.int64(7)), np.random.Generator)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            as_rng(-1)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError, match="seed must be"):
            as_rng("seed")  # type: ignore[arg-type]


class TestSpawnSeed:
    def test_in_range(self):
        rng = as_rng(0)
        for _ in range(100):
            seed = spawn_seed(rng)
            assert 0 <= seed < 2**63

    def test_deterministic_sequence(self):
        a = [spawn_seed(as_rng(3)) for _ in range(1)]
        b = [spawn_seed(as_rng(3)) for _ in range(1)]
        assert a == b


class TestChildRngs:
    def test_count(self):
        assert len(list(child_rngs(0, 5))) == 5

    def test_children_independent_of_sibling_count(self):
        first_of_two = next(iter(child_rngs(9, 2)))
        first_of_five = next(iter(child_rngs(9, 5)))
        assert first_of_two.integers(0, 10**9) == first_of_five.integers(0, 10**9)

    def test_children_distinct(self):
        kids = list(child_rngs(1, 3))
        draws = {int(k.integers(0, 10**12)) for k in kids}
        assert len(draws) == 3

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            list(child_rngs(0, -1))

    def test_zero_count_empty(self):
        assert list(child_rngs(0, 0)) == []


class TestBootstrapIndices:
    def test_shape_and_range(self):
        idx = bootstrap_indices(as_rng(0), 10)
        assert idx.shape == (10,)
        assert idx.min() >= 0 and idx.max() < 10

    def test_custom_size(self):
        assert bootstrap_indices(as_rng(0), 10, size=4).shape == (4,)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            bootstrap_indices(as_rng(0), 0)
