"""Tests for repro.deploy.streaming.StreamingDistHD."""

import warnings

import numpy as np
import pytest

from repro.core.config import DistHDConfig
from repro.deploy.streaming import StreamingDistHD, _reset_deprecation_warning


def _stream(problem, batch_size=32):
    train_x, train_y, _, _ = problem
    for start in range(0, train_x.shape[0], batch_size):
        yield train_x[start : start + batch_size], train_y[start : start + batch_size]


@pytest.fixture
def model(small_problem):
    train_x, _, _, _ = small_problem
    config = DistHDConfig(dim=96, regen_rate=0.2, selection="union", seed=0)
    return StreamingDistHD(
        train_x.shape[1], 3, config, reservoir_size=120, regen_every=2
    )


class TestDeprecationWarning:
    def test_warns_once_per_process(self):
        """The adapter announces its deprecation on first construction only —
        streaming deployments build many short-lived adapters and must not
        flood their logs."""
        _reset_deprecation_warning()
        with pytest.warns(DeprecationWarning, match="StreamingDistHD"):
            StreamingDistHD(4, 2)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            StreamingDistHD(4, 2)  # second construction: silent

    def test_reset_rearms(self):
        _reset_deprecation_warning()
        with pytest.warns(DeprecationWarning):
            StreamingDistHD(4, 2)
        _reset_deprecation_warning()
        with pytest.warns(DeprecationWarning):
            StreamingDistHD(4, 2)


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"n_features": 0, "n_classes": 3}, "n_features"),
            ({"n_features": 4, "n_classes": 1}, "n_classes"),
            ({"n_features": 4, "n_classes": 2, "reservoir_size": 0}, "reservoir"),
            ({"n_features": 4, "n_classes": 2, "regen_every": 0}, "regen_every"),
        ],
    )
    def test_bad_params(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            StreamingDistHD(**kwargs)


class TestPartialFit:
    def test_learns_incrementally(self, model, small_problem):
        _, _, test_x, test_y = small_problem
        for xb, yb in _stream(small_problem):
            model.partial_fit(xb, yb)
        # Second epoch over the stream refines further.
        for xb, yb in _stream(small_problem):
            model.partial_fit(xb, yb)
        assert model.score(test_x, test_y) > 0.75

    def test_counters(self, model, small_problem):
        batches = list(_stream(small_problem))
        for xb, yb in batches:
            model.partial_fit(xb, yb)
        assert model.n_batches_ == len(batches)
        assert model.n_samples_seen_ == sum(len(yb) for _, yb in batches)

    def test_regeneration_happens(self, model, small_problem):
        for _ in range(3):
            for xb, yb in _stream(small_problem):
                model.partial_fit(xb, yb)
        assert model.total_regenerated_ > 0
        assert model.effective_dim_ == 96 + model.total_regenerated_

    def test_reservoir_bounded(self, model, small_problem):
        for _ in range(3):
            for xb, yb in _stream(small_problem):
                model.partial_fit(xb, yb)
        assert model._reservoir_x.shape[0] <= model.reservoir_size

    def test_label_out_of_range_rejected(self, model):
        with pytest.raises(ValueError, match="must lie in"):
            model.partial_fit(np.ones((2, 20)), [0, 7])

    def test_feature_mismatch_rejected(self, model):
        with pytest.raises(ValueError, match="features"):
            model.partial_fit(np.ones((2, 5)), [0, 1])


class TestInference:
    def test_predict_before_training_is_chance(self, model, small_problem):
        _, _, test_x, _ = small_problem
        # No partial_fit yet: memory is all zeros, predictions default to 0.
        preds = model.predict(test_x)
        assert preds.shape == (test_x.shape[0],)

    def test_decision_scores_shape(self, model, small_problem):
        train_x, train_y, test_x, _ = small_problem
        model.partial_fit(train_x[:50], train_y[:50])
        assert model.decision_scores(test_x).shape == (test_x.shape[0], 3)

    def test_matches_batch_training_ballpark(self, small_problem):
        """Streaming over the full set approaches batch-trained accuracy."""
        from repro.core.disthd import DistHDClassifier

        train_x, train_y, test_x, test_y = small_problem
        batch = DistHDClassifier(dim=96, iterations=4, seed=0).fit(train_x, train_y)
        stream = StreamingDistHD(
            train_x.shape[1], 3, DistHDConfig(dim=96, seed=0)
        )
        for _ in range(4):
            for xb, yb in _stream(small_problem):
                stream.partial_fit(xb, yb)
        assert stream.score(test_x, test_y) > batch.score(test_x, test_y) - 0.1
