"""Property tests for the dtype policy of the HDC substrate.

Satellite guarantees of the backend refactor:

- every ``hdc.ops`` operation preserves the (floating) input dtype instead
  of silently inflating to float64;
- every op accepts any mix of ``(D,)`` vectors and ``(n, D)`` batches;
- the grouped scatter-add form of Algorithm 1 is numerically equivalent to
  the original per-sample update loop.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.adaptive import adaptive_fit_iteration
from repro.hdc.memory import AssociativeMemory
from repro.hdc.ops import (
    bind,
    bundle,
    cosine_similarity,
    dot_similarity,
    normalize_rows,
    permute,
)

float_dtypes = st.sampled_from([np.float32, np.float64])

finite_floats = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False,
    width=32,
)


def hv_arrays(dtype, shape):
    return arrays(dtype, shape, elements=finite_floats)


@st.composite
def vector_or_batch_pairs(draw):
    """Two same-D operands, each independently (D,) or (n, D).

    When both operands are batches they share the same ``n`` — element-wise
    ops broadcast ``(D,)`` against ``(n, D)`` but not across sample counts.
    """
    dtype = draw(float_dtypes)
    d = draw(st.integers(2, 24))
    n = draw(st.integers(1, 5))
    shapes = [
        (d,) if draw(st.booleans()) else (n, d) for _ in range(2)
    ]
    a = draw(hv_arrays(dtype, shapes[0]))
    b = draw(hv_arrays(dtype, shapes[1]))
    return a, b


class TestDtypePreservation:
    @given(float_dtypes, st.integers(2, 32))
    def test_bundle_preserves_float_dtype(self, dtype, d):
        v = np.ones(d, dtype=dtype)
        batch = np.ones((3, d), dtype=dtype)
        assert bundle(v).dtype == dtype
        assert bundle(v, batch).dtype == dtype

    @given(float_dtypes, st.integers(2, 32))
    def test_bind_preserves_float_dtype(self, dtype, d):
        v = np.ones(d, dtype=dtype)
        assert bind(v, v).dtype == dtype

    def test_bind_preserves_int8(self):
        v = np.ones(8, dtype=np.int8)
        assert bind(v, v).dtype == np.int8

    @given(float_dtypes, st.integers(2, 32), st.integers(-5, 5))
    def test_permute_preserves_dtype(self, dtype, d, shift):
        v = np.ones(d, dtype=dtype)
        assert permute(v, shift).dtype == dtype

    def test_permute_preserves_int8(self):
        v = np.arange(6, dtype=np.int8)
        out = permute(v, 2)
        assert out.dtype == np.int8
        assert np.array_equal(out, np.roll(v, 2))

    @given(float_dtypes, st.integers(2, 32))
    def test_normalize_rows_preserves_float_dtype(self, dtype, d):
        v = np.ones((3, d), dtype=dtype)
        assert normalize_rows(v).dtype == dtype

    @given(float_dtypes, st.integers(2, 16))
    def test_similarity_preserves_float_dtype(self, dtype, d):
        Q = np.ones((2, d), dtype=dtype)
        M = np.ones((3, d), dtype=dtype)
        assert dot_similarity(Q, M).dtype == dtype
        assert cosine_similarity(Q, M).dtype == dtype

    def test_bundle_int8_batch_promotes_safely(self):
        """Integer bundling must follow NumPy sum promotion, not overflow."""
        batch = np.full((200, 4), 1, dtype=np.int8)
        out = bundle(batch)
        assert out.dtype.kind == "i"
        assert np.array_equal(out, np.full(4, 200))

    def test_bundle_many_int8_vectors_promote_safely(self):
        """The 1-D accumulation path must promote too (int8 wraps at 127)."""
        out = bundle(*[np.ones(4, dtype=np.int8) for _ in range(130)])
        assert np.array_equal(out, np.full(4, 130))

    def test_bundle_never_aliases_its_input(self):
        h = np.ones(4, dtype=np.float32)
        out = bundle(h)
        out[0] = 99.0
        assert h[0] == 1.0


class TestShapeMixes:
    @settings(max_examples=60)
    @given(vector_or_batch_pairs())
    def test_bind_accepts_mixes(self, pair):
        a, b = pair
        out = bind(a, b)
        expected = np.asarray(a) * np.asarray(b)
        assert np.allclose(out, expected, atol=1e-4)
        assert out.shape == expected.shape

    @settings(max_examples=60)
    @given(vector_or_batch_pairs())
    def test_bundle_accepts_mixes(self, pair):
        a, b = pair
        out = bundle(a, b)
        ar = a if a.ndim == 1 else a.sum(axis=0)
        br = b if b.ndim == 1 else b.sum(axis=0)
        assert np.allclose(out, ar + br, atol=1e-3)
        assert out.ndim == 1

    @settings(max_examples=60)
    @given(vector_or_batch_pairs())
    def test_similarities_accept_mixes(self, pair):
        a, b = pair
        out = cosine_similarity(a, b)
        n = 1 if a.ndim == 1 else a.shape[0]
        k = 1 if b.ndim == 1 else b.shape[0]
        assert out.shape == (n, k)
        assert np.all(np.abs(out) <= 1.0 + 1e-5)

    @given(float_dtypes)
    def test_permute_batch_rolls_rows(self, dtype):
        batch = np.arange(12, dtype=dtype).reshape(3, 4)
        out = permute(batch, 1)
        assert out.shape == batch.shape
        assert np.array_equal(out[0], np.roll(batch[0], 1))


class TestGroupedUpdateEquivalence:
    def _legacy_iteration(self, memory, encoded, labels, lr):
        sims = memory.similarities(encoded)
        predicted = np.argmax(sims, axis=1)
        for j in np.flatnonzero(predicted != labels):
            hv = encoded[j]
            lbl, pred = int(labels[j]), int(predicted[j])
            memory.add_to_class(pred, -lr * (1.0 - sims[j, pred]) * hv)
            memory.add_to_class(lbl, lr * (1.0 - sims[j, lbl]) * hv)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_scatter_add_matches_sequential_loop(self, seed, dtype):
        rng = np.random.default_rng(seed)
        n, d, k = 80, 24, 4
        encoded = rng.normal(size=(n, d)).astype(dtype)
        labels = rng.integers(0, k, size=n)
        loop_mem = AssociativeMemory(k, d, dtype=dtype)
        vec_mem = AssociativeMemory(k, d, dtype=dtype)
        init = rng.normal(size=(k, d))
        loop_mem.set_vectors(init)
        vec_mem.set_vectors(init)
        self._legacy_iteration(loop_mem, encoded, labels, lr=0.1)
        adaptive_fit_iteration(vec_mem, encoded, labels, lr=0.1)
        # Same coefficients (batch-start similarities), different summation
        # order → equal up to fp accumulation noise.
        atol = 1e-5 if dtype == "float32" else 1e-12
        assert np.allclose(vec_mem.vectors, loop_mem.vectors, atol=atol)

    def test_batched_path_matches_full_batch_totals(self):
        """Mini-batched updates remain sequential *between* batches."""
        rng = np.random.default_rng(5)
        n, d, k = 60, 16, 3
        encoded = rng.normal(size=(n, d))
        labels = rng.integers(0, k, size=n)
        a = AssociativeMemory(k, d)
        b = AssociativeMemory(k, d)
        # batch_size=n in one call == batch_size=None
        acc_a = adaptive_fit_iteration(a, encoded, labels, lr=0.2)
        acc_b = adaptive_fit_iteration(b, encoded, labels, lr=0.2, batch_size=n)
        assert acc_a == acc_b
        assert np.allclose(a.vectors, b.vectors)
