"""Tests for repro.obs.recorder and the HTTP exporter — the flight
recorder's ring semantics, dump schema, validation failures, and the
/metrics + /healthz endpoints."""

import json
import os
import urllib.error
import urllib.request

import pytest

from repro.obs import Observability
from repro.obs.exporter import MetricsExporter
from repro.obs.recorder import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    find_dumps,
    validate_dump,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import TraceContext, span_record


def _span(i=0):
    ctx = TraceContext(f"t-{i}", None, True)
    return span_record("score", "worker", ctx, 0.0, 0.001)


class TestRing:
    def test_capacity_bound_and_lifetime_counts(self):
        recorder = FlightRecorder("server", capacity=3)
        for i in range(5):
            recorder.record_span(_span(i))
        recorder.record_event("breaker-trip", "3 deaths")
        retained = recorder.snapshot()
        assert len(retained) == 3
        # Ring keeps the newest records; counts are lifetime totals.
        assert retained[-1]["type"] == "event"
        assert recorder.counts() == (5, 1)

    def test_event_fields(self):
        recorder = FlightRecorder("supervisor")
        recorder.record_event("worker-death", "pid 123", index=2)
        (event,) = recorder.snapshot()
        assert event["kind"] == "worker-death"
        assert event["role"] == "supervisor"
        assert event["pid"] == os.getpid()
        assert event["attrs"] == {"index": 2}

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestDump:
    def test_dump_to_directory_and_validate(self, tmp_path):
        recorder = FlightRecorder("worker-1", capacity=8)
        recorder.record_span(_span())
        recorder.record_event("chaos", "kill")
        path = recorder.dump(tmp_path, reason="worker death!")
        # Reason is sanitised into the filename.
        assert path.name == f"flight-worker-1-{os.getpid()}-worker-death-.jsonl"
        parsed = validate_dump(path)
        assert parsed["header"]["schema"] == FLIGHT_SCHEMA
        assert parsed["header"]["role"] == "worker-1"
        assert parsed["header"]["reason"] == "worker death!"
        assert len(parsed["spans"]) == 1
        assert len(parsed["events"]) == 1

    def test_dump_to_explicit_file(self, tmp_path):
        recorder = FlightRecorder("server")
        target = tmp_path / "exact.jsonl"
        assert recorder.dump(target, "shutdown") == target
        assert validate_dump(target)["header"]["reason"] == "shutdown"

    def test_find_dumps(self, tmp_path):
        recorder = FlightRecorder("server")
        recorder.dump(tmp_path, "b-reason")
        recorder.dump(tmp_path, "a-reason")
        (tmp_path / "unrelated.jsonl").write_text("{}\n")
        names = [p.name for p in find_dumps(tmp_path)]
        assert len(names) == 2
        assert names == sorted(names)
        assert find_dumps(tmp_path / "missing") == []


class TestValidateFailures:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            validate_dump(path)

    def test_not_jsonl(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="unparseable"):
            validate_dump(path)

    def test_missing_header(self, tmp_path):
        path = tmp_path / "headerless.jsonl"
        path.write_text(json.dumps({"type": "span"}) + "\n")
        with pytest.raises(ValueError, match="not a header"):
            validate_dump(path)

    def test_schema_mismatch(self, tmp_path):
        recorder = FlightRecorder("server")
        path = recorder.dump(tmp_path, "ok")
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["schema"] = FLIGHT_SCHEMA + 1
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(ValueError, match="schema"):
            validate_dump(path)

    def test_span_missing_fields(self, tmp_path):
        recorder = FlightRecorder("server")
        path = recorder.dump(tmp_path, "ok")
        bad = {"type": "span", "trace_id": "t"}
        path.write_text(
            path.read_text() + json.dumps(bad) + "\n"
        )
        with pytest.raises(ValueError, match="missing fields"):
            validate_dump(path)

    def test_unknown_record_type(self, tmp_path):
        recorder = FlightRecorder("server")
        path = recorder.dump(tmp_path, "ok")
        path.write_text(
            path.read_text() + json.dumps({"type": "mystery"}) + "\n"
        )
        with pytest.raises(ValueError, match="unknown record type"):
            validate_dump(path)


class TestObservabilityBundle:
    def test_dump_flight_without_dir_is_none(self):
        obs = Observability(sample_rate=1.0)
        obs.tracer.start("request").end()
        assert obs.dump_flight("shutdown") is None

    def test_dump_flight_writes_and_validates(self, tmp_path):
        obs = Observability(
            sample_rate=1.0, flight_dir=tmp_path, role="supervisor"
        )
        obs.tracer.start("request").end()
        path = obs.dump_flight("breaker-trip")
        assert path is not None
        parsed = validate_dump(path)
        assert parsed["header"]["role"] == "supervisor"
        assert len(parsed["spans"]) == 1

    def test_shared_registry(self):
        registry = MetricsRegistry()
        obs = Observability(registry=registry)
        assert obs.registry is registry
        assert Observability().registry is not registry


class TestExporter:
    def _get(self, url):
        try:
            with urllib.request.urlopen(url, timeout=5.0) as resp:
                return resp.status, resp.read().decode()
        except urllib.error.HTTPError as err:
            return err.code, err.read().decode()

    def test_metrics_and_healthz(self):
        registry = MetricsRegistry()
        registry.counter("up_total").inc()
        with MetricsExporter(registry, port=0) as exporter:
            status, body = self._get(exporter.url + "/metrics")
            assert status == 200
            assert "up_total 1" in body
            status, body = self._get(exporter.url + "/healthz")
            assert status == 200 and body == "ok\n"
            status, _ = self._get(exporter.url + "/nope")
            assert status == 404

    def test_unhealthy_and_raising_probe(self):
        registry = MetricsRegistry()
        flags = {"ok": False}
        with MetricsExporter(
            registry, port=0, healthy=lambda: flags["ok"]
        ) as exporter:
            status, body = self._get(exporter.url + "/healthz")
            assert status == 503 and body == "unhealthy\n"
            flags["ok"] = True
            status, _ = self._get(exporter.url + "/healthz")
            assert status == 200

        def boom():
            raise RuntimeError("probe crashed")

        with MetricsExporter(registry, port=0, healthy=boom) as exporter:
            status, _ = self._get(exporter.url + "/healthz")
            assert status == 503

    def test_bundle_serve_metrics_and_close_idempotent(self):
        obs = Observability()
        exporter = obs.serve_metrics(port=0)
        try:
            status, _ = self._get(exporter.url + "/metrics")
            assert status == 200
        finally:
            exporter.close()
            exporter.close()
