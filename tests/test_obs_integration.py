"""End-to-end observability tests: trace propagation through the
ModelServer pipeline and across a FleetServer worker SIGKILL + retry,
plus the flight dumps the serving classes write on notable exits.

The kill-drill test is the satellite acceptance check for tracing: a
request whose first attempt died with the killed worker must keep its
trace id across the re-dispatch and gain a ``retry`` span, ending in a
complete client → supervisor → worker span tree."""

import numpy as np
import pytest

from repro.deploy.quantized import QuantizedHDCModel
from repro.models.registry import make_model
from repro.obs import Observability, complete_retried_traces
from repro.obs.recorder import find_dumps, validate_dump
from repro.serve.chaos import run_chaos_drill
from repro.serve.fleet import FleetServer
from repro.serve.server import ModelServer


@pytest.fixture(scope="module")
def fitted(small_problem):
    train_x, train_y, test_x, _ = small_problem
    model = make_model("disthd", dim=128, iterations=2, seed=3)
    model.fit(train_x, train_y)
    return model, test_x


@pytest.fixture(scope="module")
def artifact(fitted):
    model, _ = fitted
    return QuantizedHDCModel(model, bits=1, packed=True)


class TestModelServerTracing:
    def test_request_pipeline_spans(self, fitted):
        # A quantized artifact has the clean encode/score split that the
        # staged scorer times (a raw model without one falls back to a
        # single opaque predict and records no stage spans).
        model, test_x = fitted
        obs = Observability(sample_rate=1.0)
        artifact = QuantizedHDCModel(model, bits=8)
        with ModelServer(artifact, max_wait_ms=1.0, obs=obs) as server:
            root = obs.tracer.start("request", role="client")
            prediction = server.submit_predict(
                test_x[:4], ctx=root.context
            ).result(timeout=10.0)
            root.end()
        assert prediction.shape == (4,)
        spans = obs.tracer.spans_for(root.trace_id)
        names = {s["name"] for s in spans}
        # The whole pipeline landed on the client's trace: queue+batch
        # (serve), then the model stages.
        assert {"request", "serve", "encode", "score"} <= names
        assert all(s["trace_id"] == root.trace_id for s in spans)

    def test_disabled_sampling_records_nothing(self, fitted):
        model, test_x = fitted
        obs = Observability(sample_rate=0.0)
        with ModelServer(model, max_wait_ms=1.0, obs=obs) as server:
            span = obs.tracer.start("request", role="client")
            server.submit_predict(test_x[:2], ctx=span.context).result(
                timeout=10.0
            )
            span.end()
        assert obs.tracer.finished() == []

    def test_close_dumps_flight_once(self, fitted, tmp_path):
        model, test_x = fitted
        obs = Observability(sample_rate=1.0, flight_dir=tmp_path)
        server = ModelServer(model, max_wait_ms=1.0, obs=obs)
        try:
            span = obs.tracer.start("request", role="client")
            server.submit_predict(test_x[:2], ctx=span.context).result(
                timeout=10.0
            )
            span.end()
        finally:
            server.close()
            server.close()  # idempotent: must not write a second dump
        (dump,) = find_dumps(tmp_path)
        parsed = validate_dump(dump)
        assert parsed["header"]["reason"] == "shutdown"
        assert parsed["spans"], "shutdown dump should carry recent spans"


class TestFleetTracingAcrossWorkerDeath:
    def test_retried_request_keeps_trace_and_gains_retry_span(
        self, artifact, fitted, tmp_path
    ):
        _, test_x = fitted
        obs = Observability(
            sample_rate=1.0, flight_dir=tmp_path, role="supervisor",
            max_spans=8192,
        )
        with FleetServer(
            artifact, n_workers=2, queue_depth=32, obs=obs
        ) as fleet:
            # A mid-load SIGKILL does not always catch a request in
            # flight on the victim; drill until one retried (bounded).
            complete = []
            for _ in range(3):
                report = run_chaos_drill(
                    fleet, np.asarray(test_x),
                    n_requests=96, concurrency=8, fault="kill",
                    recovery_timeout_s=20.0, tracer=obs.tracer,
                )
                assert report["outcomes"]["failed"] == 0
                assert report["flight_dumps"], (
                    "disruptive drill must leave a schema-valid dump"
                )
                complete = complete_retried_traces(obs.tracer.finished())
                if complete:
                    break
            assert complete, "no request was retried across three drills"

            spans = obs.tracer.spans_for(complete[0])
            names = [s["name"] for s in spans]
            roles = {s["role"] for s in spans}
            # Same trace id end to end (spans_for guarantees it), one
            # client root, a dispatch per attempt, the retry marker, and
            # the surviving attempt's worker stages.
            assert {"client", "supervisor", "worker"} <= roles
            assert "retry" in names
            assert names.count("dispatch") >= 2
            assert "score" in names
            client_roots = [
                s for s in spans
                if s["role"] == "client" and s["parent_id"] is None
            ]
            assert len(client_roots) == 1

        # Closing wrote the supervisor's shutdown dump next to the
        # worker-death dumps; every artifact must satisfy the schema.
        dumps = find_dumps(tmp_path)
        reasons = set()
        for dump in dumps:
            reasons.add(str(validate_dump(dump)["header"]["reason"]))
        assert any(r.startswith("worker-") for r in reasons)
        assert "shutdown" in reasons

    def test_worker_stage_spans_report_stage_stats(self, artifact, fitted):
        _, test_x = fitted
        obs = Observability(sample_rate=1.0)
        with FleetServer(artifact, n_workers=1, obs=obs) as fleet:
            root = obs.tracer.start("request", role="client")
            fleet.submit_predict(
                np.asarray(test_x[:4]), ctx=root.context
            ).result(timeout=10.0)
            root.end()
            stages = fleet.stats()["stages"]
        spans = obs.tracer.spans_for(root.trace_id)
        names = {s["name"] for s in spans}
        assert {"request", "dispatch", "worker", "score"} <= names
        # The worker-reported stage times feed the supervisor's stats.
        assert stages is not None
        assert stages["n_batches"] >= 1
        assert stages["score_s"] > 0.0
