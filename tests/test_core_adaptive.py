"""Tests for repro.core.adaptive — Algorithm 1."""

import numpy as np
import pytest

from repro.core.adaptive import (
    adaptive_fit_iteration,
    adaptive_update_sample,
    singlepass_fit,
)
from repro.hdc.memory import AssociativeMemory


def _separable_memory_and_data():
    """Two classes along orthogonal axes plus a third distractor axis."""
    rng = np.random.default_rng(0)
    n = 40
    encoded = np.zeros((n, 6))
    labels = np.array([0, 1] * (n // 2))
    encoded[labels == 0, 0] = 1.0
    encoded[labels == 1, 1] = 1.0
    encoded += rng.normal(0, 0.05, size=encoded.shape)
    return encoded, labels


class TestAdaptiveUpdateSample:
    def test_correct_prediction_no_update(self):
        mem = AssociativeMemory(2, 4)
        mem.vectors = np.array([[1.0, 0, 0, 0], [0, 1.0, 0, 0]])
        before = mem.vectors.copy()
        was_correct = adaptive_update_sample(mem, np.array([0.9, 0.1, 0, 0]), 0, lr=0.1)
        assert was_correct
        assert np.array_equal(mem.vectors, before)

    def test_wrong_prediction_moves_both_classes(self):
        mem = AssociativeMemory(2, 4)
        mem.vectors = np.array([[1.0, 0, 0, 0], [0, 1.0, 0, 0]])
        sample = np.array([0.9, 0.1, 0.0, 0.0])
        was_correct = adaptive_update_sample(mem, sample, 1, lr=0.5)
        assert not was_correct
        # True class (1) moved toward the sample, predicted class (0) away.
        assert mem.vectors[1, 0] > 0.0
        assert mem.vectors[0, 0] < 1.0

    def test_update_scaled_by_one_minus_similarity(self):
        """A sample nearly identical to its (wrong) match barely updates (1-δ≈0)."""
        mem = AssociativeMemory(2, 4)
        mem.vectors = np.array([[1.0, 0, 0, 0], [0, 1.0, 0, 0]])
        near_dup = np.array([1.0, 0.0, 0.0, 0.0])
        adaptive_update_sample(mem, near_dup, 1, lr=1.0)
        # Predicted class 0 had δ=1, so it moved by (1-1)*sample = 0.
        assert mem.vectors[0, 0] == pytest.approx(1.0)


class TestAdaptiveFitIteration:
    def test_improves_from_zero(self):
        encoded, labels = _separable_memory_and_data()
        mem = AssociativeMemory(2, 6)
        for _ in range(5):
            adaptive_fit_iteration(mem, encoded, labels, lr=0.5)
        assert np.mean(mem.predict(encoded) == labels) > 0.95

    def test_returns_batch_start_accuracy(self):
        encoded, labels = _separable_memory_and_data()
        mem = AssociativeMemory(2, 6)
        first = adaptive_fit_iteration(mem, encoded, labels, lr=0.5)
        assert 0.0 <= first <= 1.0
        later = adaptive_fit_iteration(mem, encoded, labels, lr=0.5)
        assert later >= first

    def test_batched_equivalent_coverage(self):
        encoded, labels = _separable_memory_and_data()
        mem = AssociativeMemory(2, 6)
        acc = adaptive_fit_iteration(mem, encoded, labels, lr=0.5, batch_size=7)
        assert 0.0 <= acc <= 1.0
        assert mem.vectors.any()

    def test_shuffle_changes_order_not_coverage(self):
        encoded, labels = _separable_memory_and_data()
        m1 = AssociativeMemory(2, 6)
        m2 = AssociativeMemory(2, 6)
        adaptive_fit_iteration(m1, encoded, labels, lr=0.5)
        adaptive_fit_iteration(
            m2, encoded, labels, lr=0.5, shuffle_rng=np.random.default_rng(1)
        )
        # Different update order, but both learn the separable problem.
        for mem in (m1, m2):
            for _ in range(4):
                adaptive_fit_iteration(mem, encoded, labels, lr=0.5)
            assert np.mean(mem.predict(encoded) == labels) > 0.9

    def test_bad_lr(self):
        encoded, labels = _separable_memory_and_data()
        with pytest.raises(ValueError, match="lr"):
            adaptive_fit_iteration(AssociativeMemory(2, 6), encoded, labels, lr=0.0)

    def test_bad_batch_size(self):
        encoded, labels = _separable_memory_and_data()
        with pytest.raises(ValueError, match="batch_size"):
            adaptive_fit_iteration(
                AssociativeMemory(2, 6), encoded, labels, batch_size=0
            )

    def test_count_mismatch(self):
        with pytest.raises(ValueError, match="sample count"):
            adaptive_fit_iteration(AssociativeMemory(2, 4), np.ones((3, 4)), [0, 1])

    def test_perfect_model_untouched(self):
        encoded, labels = _separable_memory_and_data()
        mem = AssociativeMemory(2, 6)
        singlepass_fit(mem, encoded, labels)
        for _ in range(3):
            adaptive_fit_iteration(mem, encoded, labels, lr=0.5)
        before = mem.vectors.copy()
        acc = adaptive_fit_iteration(mem, encoded, labels, lr=0.5)
        if acc == 1.0:
            assert np.array_equal(mem.vectors, before)


class TestSinglepassFit:
    def test_accumulates(self):
        mem = AssociativeMemory(2, 3)
        singlepass_fit(mem, np.array([[1.0, 0, 0], [0, 1.0, 0]]), [0, 1])
        assert mem.vectors[0, 0] == 1.0
        assert mem.vectors[1, 1] == 1.0
