"""Tests for repro.noise.quantization."""

import numpy as np
import pytest

from repro.noise.quantization import (
    dequantize,
    quantization_error,
    quantize,
)


class TestQuantizeRoundtrip:
    @pytest.mark.parametrize("bits", [2, 4, 8])
    def test_roundtrip_error_bounded(self, bits, rng):
        arr = rng.normal(size=(20, 30))
        restored = dequantize(quantize(arr, bits))
        q_max = 2 ** (bits - 1) - 1
        max_err = np.abs(arr).max() / q_max  # one quantisation step
        assert np.abs(arr - restored).max() <= max_err + 1e-12

    def test_higher_precision_lower_error(self, rng):
        arr = rng.normal(size=(50, 50))
        errors = [quantization_error(arr, b) for b in (2, 4, 8)]
        assert errors[0] > errors[1] > errors[2]

    def test_shape_preserved(self, rng):
        arr = rng.normal(size=(3, 4, 1)).reshape(3, 4)
        assert dequantize(quantize(arr, 4)).shape == (3, 4)

    def test_zeros_roundtrip_exact(self):
        arr = np.zeros((5, 5))
        assert np.array_equal(dequantize(quantize(arr, 8)), arr)

    def test_extremes_preserved(self):
        arr = np.array([[-2.0, 2.0, 0.0]])
        restored = dequantize(quantize(arr, 8))
        assert restored[0, 0] == pytest.approx(-2.0, rel=0.02)
        assert restored[0, 1] == pytest.approx(2.0, rel=0.02)


class TestOneBit:
    def test_codes_binary(self, rng):
        qt = quantize(rng.normal(size=(10, 10)), 1)
        assert set(np.unique(qt.codes)) <= {0, 1}

    def test_sign_preserved(self, rng):
        arr = rng.normal(size=(10, 10))
        arr[np.abs(arr) < 0.1] += 0.2  # avoid near-zero sign ambiguity
        restored = dequantize(quantize(arr, 1))
        assert np.array_equal(np.sign(restored), np.sign(arr))

    def test_magnitude_is_mean_abs(self, rng):
        arr = rng.normal(size=(100,))
        qt = quantize(arr, 1)
        assert qt.scale == pytest.approx(np.mean(np.abs(arr)))


class TestValidation:
    def test_bad_bits(self):
        with pytest.raises(ValueError, match="bits"):
            quantize(np.ones(4), 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            quantize(np.empty(0), 8)

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            quantize(np.array([np.nan]), 8)


class TestQuantizedTensor:
    def test_total_bits(self, rng):
        qt = quantize(rng.normal(size=(4, 5)), 4)
        assert qt.n_bits_total == 20 * 4

    def test_copy_independent(self, rng):
        qt = quantize(rng.normal(size=(4,)), 8)
        clone = qt.copy()
        clone.codes[0] ^= 0xFF
        assert not np.array_equal(clone.codes, qt.codes)

    def test_codes_fit_in_bits(self, rng):
        for bits in (1, 2, 4, 8):
            qt = quantize(rng.normal(size=(50,)), bits)
            assert qt.codes.max() < (1 << bits)
