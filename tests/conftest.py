"""Shared fixtures: small, fast, deterministic datasets and models."""

import numpy as np
import pytest

from repro.analysis.annotations import enable_runtime_lock_checks
from repro.datasets.preprocessing import StandardScaler
from repro.datasets.splits import stratified_split
from repro.datasets.synthetic import make_classification

# Under pytest every serve-stack lock is an order-asserting TrackedLock:
# an acquisition that inverts repro.analysis.annotations.LOCK_ORDER —
# a would-be fleet deadlock — raises LockOrderError in the test that
# exercises it instead of hanging a production worker.
enable_runtime_lock_checks(True)


@pytest.fixture(scope="session")
def small_problem():
    """A tiny, easily-separable 3-class problem: (train_x, train_y, test_x, test_y)."""
    X, y = make_classification(
        240, 20, 3, difficulty=0.3, n_prototypes=2, latent_dim=8, seed=11
    )
    train_x, train_y, test_x, test_y = stratified_split(
        X, y, test_fraction=0.25, seed=5
    )
    scaler = StandardScaler().fit(train_x)
    return scaler.transform(train_x), train_y, scaler.transform(test_x), test_y


@pytest.fixture(scope="session")
def medium_problem():
    """A moderately hard 6-class problem for accuracy-sensitive tests."""
    X, y = make_classification(
        600, 40, 6, difficulty=0.5, n_prototypes=3, latent_dim=10, seed=23
    )
    train_x, train_y, test_x, test_y = stratified_split(
        X, y, test_fraction=0.25, seed=7
    )
    scaler = StandardScaler().fit(train_x)
    return scaler.transform(train_x), train_y, scaler.transform(test_x), test_y


@pytest.fixture
def rng():
    return np.random.default_rng(0)
