"""Tests for repro.obs.registry — typed instruments, rendering, and
concurrent mutation under a live scraper (the registry's whole job is
staying exact while the serving hot path and /metrics hammer it)."""

import threading

import pytest

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_S,
    MetricsRegistry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestInstruments:
    def test_counter(self, registry):
        c = registry.counter("reqs_total", "Requests.")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_gauge(self, registry):
        g = registry.gauge("depth")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value() == 3.0

    def test_histogram_snapshot(self, registry):
        h = registry.histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["buckets"] == {"0.1": 1, "1": 2, "+Inf": 3}
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(5.55)

    def test_bad_buckets_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("h2", buckets=(1.0, 1.0))

    def test_reregistration_is_idempotent(self, registry):
        a = registry.counter("reqs_total")
        b = registry.counter("reqs_total")
        assert a is b
        with pytest.raises(ValueError):
            registry.gauge("reqs_total")
        with pytest.raises(ValueError):
            registry.counter("reqs_total", labelnames=("kind",))

    def test_labels(self, registry):
        family = registry.counter("errs_total", labelnames=("kind",))
        family.labels(kind="timeout").inc()
        family.labels(kind="timeout").inc()
        family.labels(kind="crash").inc()
        assert family.labels(kind="timeout").value() == 2.0
        with pytest.raises(ValueError):
            family.labels(wrong="x")
        with pytest.raises(ValueError):
            family._unlabelled()


class TestRendering:
    def test_prometheus_text(self, registry):
        registry.counter("reqs_total", "Total requests.").inc(3)
        registry.counter(
            "errs_total", labelnames=("kind",)
        ).labels(kind='a"b\n').inc()
        registry.histogram("lat_seconds", buckets=(0.5,)).observe(0.1)
        text = registry.render_prometheus()
        assert "# HELP reqs_total Total requests." in text
        assert "# TYPE reqs_total counter" in text
        assert "reqs_total 3" in text
        # Label values are escaped per the exposition format.
        assert 'errs_total{kind="a\\"b\\n"} 1' in text
        assert 'lat_seconds_bucket{le="0.5"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text

    def test_json(self, registry):
        registry.gauge("depth").set(2)
        out = registry.render_json()
        assert out["depth"]["type"] == "gauge"
        (sample,) = out["depth"]["samples"]
        assert sample == {"labels": {}, "value": 2.0}

    def test_collector_runs_at_render(self, registry):
        g = registry.gauge("pending")
        state = {"n": 0}
        registry.add_collector(lambda: g.set(state["n"]))
        state["n"] = 7
        assert 'pending 7' in registry.render_prometheus()
        state["n"] = 9
        (sample,) = registry.render_json()["pending"]["samples"]
        assert sample["value"] == 9.0

    def test_default_latency_buckets_increasing(self):
        assert list(DEFAULT_LATENCY_BUCKETS_S) == sorted(
            DEFAULT_LATENCY_BUCKETS_S
        )


class TestConcurrentMutation:
    def test_exact_counts_under_threads_and_scraper(self, registry):
        """N writer threads hammer a counter, a labelled family, and a
        histogram while a scraper renders both formats continuously; the
        totals must come out exact and every render internally valid."""
        n_threads, n_iter = 8, 400
        counter = registry.counter("hits_total")
        family = registry.counter("kinds_total", labelnames=("kind",))
        hist = registry.histogram("obs_seconds", buckets=(0.5, 1.0))
        stop = threading.Event()
        render_errors = []

        def scrape():
            while not stop.is_set():
                try:
                    text = registry.render_prometheus()
                    assert "hits_total" in text
                    registry.render_json()
                except Exception as exc:  # noqa: BLE001 - report in-test
                    render_errors.append(exc)
                    return

        def hammer(index):
            # Each thread also creates "its" labelled child, exercising
            # concurrent family registration and child memoisation.
            child = family.labels(kind=f"k{index % 2}")
            for i in range(n_iter):
                counter.inc()
                child.inc()
                hist.observe((i % 3) * 0.4)

        scraper = threading.Thread(target=scrape)
        writers = [
            threading.Thread(target=hammer, args=(t,))
            for t in range(n_threads)
        ]
        scraper.start()
        for w in writers:
            w.start()
        for w in writers:
            w.join()
        stop.set()
        scraper.join(timeout=10.0)

        assert render_errors == []
        assert counter.value() == n_threads * n_iter
        assert (
            family.labels(kind="k0").value()
            + family.labels(kind="k1").value()
        ) == n_threads * n_iter
        snap = hist.snapshot()
        assert snap["count"] == n_threads * n_iter
        assert snap["buckets"]["+Inf"] == n_threads * n_iter

    def test_concurrent_registration_yields_one_instrument(self, registry):
        """Racing creations of the same name must converge on a single
        instrument (idempotent registration under contention)."""
        results = []
        barrier = threading.Barrier(8)

        def create():
            barrier.wait()
            results.append(registry.counter("raced_total"))

        threads = [threading.Thread(target=create) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(r is results[0] for r in results)
        results[0].inc()
        assert registry.counter("raced_total").value() == 1.0
