"""Tests for repro.core.topk — top-2 classification and outcome partitioning."""

import numpy as np
import pytest

from repro.core.topk import (
    OutcomePartition,
    partition_outcomes,
    top2_labels,
    topk_accuracy_from_memory,
)
from repro.hdc.memory import AssociativeMemory


@pytest.fixture
def memory():
    """Three classes along the first three axes of an 4-dim space."""
    mem = AssociativeMemory(3, 4)
    mem.vectors = np.eye(3, 4)
    return mem


@pytest.fixture
def encoded():
    # Sample 0: closest to class 0, then class 1      -> top2 = (0, 1)
    # Sample 1: closest to class 1, then class 2      -> top2 = (1, 2)
    # Sample 2: closest to class 2, then class 0      -> top2 = (2, 0)
    return np.array(
        [
            [1.0, 0.5, 0.1, 0.0],
            [0.1, 1.0, 0.5, 0.0],
            [0.5, 0.1, 1.0, 0.0],
        ]
    )


class TestTop2Labels:
    def test_pairs(self, memory, encoded):
        pairs = top2_labels(memory, encoded)
        assert np.array_equal(pairs, [[0, 1], [1, 2], [2, 0]])

    def test_requires_two_classes(self):
        mem = AssociativeMemory(1, 4)
        with pytest.raises(ValueError, match="at least 2"):
            top2_labels(mem, np.ones((1, 4)))


class TestPartitionOutcomes:
    def test_three_outcomes(self, memory, encoded):
        # labels: sample0 true=0 (correct), sample1 true=2 (partial),
        # sample2 true=1 (incorrect: top2 = (2, 0)).
        part = partition_outcomes(memory, encoded, np.array([0, 2, 1]))
        assert np.array_equal(part.correct, [0])
        assert np.array_equal(part.partial, [1])
        assert np.array_equal(part.incorrect, [2])

    def test_partition_covers_all_samples(self, memory, encoded):
        part = partition_outcomes(memory, encoded, np.array([0, 1, 2]))
        union = np.sort(np.concatenate([part.correct, part.partial, part.incorrect]))
        assert np.array_equal(union, [0, 1, 2])

    def test_rates_sum_to_one(self, memory, encoded):
        part = partition_outcomes(memory, encoded, np.array([0, 2, 1]))
        assert sum(part.rates().values()) == pytest.approx(1.0)

    def test_top2_accuracy(self, memory, encoded):
        part = partition_outcomes(memory, encoded, np.array([0, 2, 1]))
        assert part.top2_accuracy() == pytest.approx(2 / 3)

    def test_count_mismatch(self, memory, encoded):
        with pytest.raises(ValueError, match="sample count"):
            partition_outcomes(memory, encoded, np.array([0, 1]))

    def test_all_correct(self, memory, encoded):
        part = partition_outcomes(memory, encoded, np.array([0, 1, 2]))
        assert part.correct.size == 3
        assert part.partial.size == 0
        assert part.incorrect.size == 0


class TestTopkAccuracy:
    def test_k1_equals_plain_accuracy(self, memory, encoded):
        labels = np.array([0, 2, 1])
        acc1 = topk_accuracy_from_memory(memory, encoded, labels, 1)
        plain = float(np.mean(memory.predict(encoded) == labels))
        assert acc1 == pytest.approx(plain)

    def test_monotone_in_k(self, memory, encoded):
        labels = np.array([0, 2, 1])
        accs = [
            topk_accuracy_from_memory(memory, encoded, labels, k) for k in (1, 2, 3)
        ]
        assert accs[0] <= accs[1] <= accs[2]
        assert accs[2] == pytest.approx(1.0)

    def test_paper_definition(self, memory, encoded):
        """Correct iff the true label is among the k most similar (paper §I)."""
        labels = np.array([1, 2, 0])  # each true label is exactly 2nd
        assert topk_accuracy_from_memory(memory, encoded, labels, 1) == 0.0
        assert topk_accuracy_from_memory(memory, encoded, labels, 2) == 1.0


class TestOutcomePartitionDataclass:
    def test_n_samples(self):
        part = OutcomePartition(
            correct=np.array([0]),
            partial=np.array([], dtype=np.int64),
            incorrect=np.array([1]),
            top1=np.array([0, 1]),
            top2=np.array([1, 0]),
        )
        assert part.n_samples == 2
        assert part.rates()["correct"] == pytest.approx(0.5)
