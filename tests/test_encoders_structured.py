"""Tests for the structured O(D log D) encoders and the encoder registry."""

import numpy as np
import pytest

from repro.backend import get_backend, torch_is_available
from repro.hdc.encoders import (
    DEFAULT_ENCODER,
    FastfoodRBFEncoder,
    RBFEncoder,
    StructuredProjectionEncoder,
    list_encoders,
    make_encoder,
    register_encoder,
)
from repro.hdc.fwht import next_pow2

torch_required = pytest.mark.skipif(
    not torch_is_available(), reason="torch is not installed"
)

#: Padding / block-stacking edge widths: below, at and above a power of
#: two, plus the degenerate single-feature case.
EDGE_WIDTHS = (1, 63, 64, 65)


@pytest.fixture
def features(rng):
    return rng.normal(size=(12, 20))


class TestStructuredProjectionEncoder:
    def test_shape_and_determinism(self, features):
        a = StructuredProjectionEncoder(20, 96, seed=3).encode(features)
        b = StructuredProjectionEncoder(20, 96, seed=3).encode(features)
        assert a.shape == (12, 96)
        assert np.array_equal(a, b)
        c = StructuredProjectionEncoder(20, 96, seed=4).encode(features)
        assert not np.array_equal(a, c)

    @pytest.mark.parametrize("q", EDGE_WIDTHS)
    @pytest.mark.parametrize("dim", [100, 4096])
    def test_padding_and_block_stacking_edges(self, q, dim, rng):
        """Feature widths straddling a power of two, output dims that do
        not divide the block size."""
        X = rng.normal(size=(5, q))
        enc = StructuredProjectionEncoder(q, dim, seed=0)
        assert enc.block == next_pow2(q)
        assert enc.n_blocks == -(-dim // enc.block)
        out = enc.encode(X)
        assert out.shape == (5, dim)
        assert np.all(np.isfinite(out))

    def test_matches_dense_projection_distribution(self, rng):
        """Output statistics mimic the dense 1/sqrt(q) Gaussian projection."""
        q, dim = 48, 8192
        X = rng.normal(size=(20, q))
        structured = StructuredProjectionEncoder(q, dim, seed=1).encode(X)
        row_norms = np.linalg.norm(X, axis=1)
        # Per-row std of a dense projection row is ‖x‖/√q.
        expected = row_norms / np.sqrt(q)
        observed = structured.std(axis=1)
        assert np.allclose(observed, expected, rtol=0.15)

    def test_activations(self, features):
        sign = StructuredProjectionEncoder(
            20, 64, activation="sign", seed=0
        ).encode(features)
        assert set(np.unique(sign)) <= {-1.0, 1.0}
        tanh = StructuredProjectionEncoder(
            20, 64, activation="tanh", seed=0
        ).encode(features)
        assert np.all(np.abs(tanh) <= 1.0)
        with pytest.raises(ValueError, match="activation"):
            StructuredProjectionEncoder(20, 64, activation="relu")

    def test_chunked_encode_is_bit_identical(self, rng):
        X = rng.normal(size=(11, 37))
        enc = StructuredProjectionEncoder(37, 100, seed=2)
        whole = enc.encode(X)
        for chunk in (1, 2, 3, 5, 11):
            assert np.array_equal(enc.encode(X, chunk_size=chunk), whole)

    def test_encode_dims_matches_full_columns(self, features):
        enc = StructuredProjectionEncoder(20, 96, seed=5)
        full = enc.encode(features)
        dims = np.array([0, 17, 63, 64, 95])
        assert np.array_equal(enc.encode_dims(features, dims), full[:, dims])

    def test_encode_dims_after_regeneration(self, features):
        enc = StructuredProjectionEncoder(20, 96, seed=5)
        dims = np.array([3, 64, 90])
        enc.regenerate(dims)
        full = enc.encode(features)
        probe = np.array([2, 3, 64, 91])
        assert np.array_equal(enc.encode_dims(features, probe), full[:, probe])

    def test_regenerate_changes_only_selected(self, features):
        enc = StructuredProjectionEncoder(20, 96, seed=6)
        before = enc.encode(features)
        dims = np.array([1, 40, 95])
        enc.regenerate(dims)
        after = enc.encode(features)
        unchanged = np.setdiff1d(np.arange(96), dims)
        assert np.array_equal(before[:, unchanged], after[:, unchanged])
        assert not np.allclose(before[:, dims], after[:, dims])
        assert enc.regenerated_count == 3
        assert enc.effective_dim() == 99

    def test_regenerate_is_seed_deterministic(self, features):
        outs = []
        for _ in range(2):
            enc = StructuredProjectionEncoder(20, 96, seed=7)
            enc.regenerate(np.array([2, 30]))
            enc.regenerate(np.array([64]))
            outs.append(enc.encode(features))
        assert np.array_equal(outs[0], outs[1])

    def test_rejects_non_integer_dims(self, features):
        enc = StructuredProjectionEncoder(20, 96, seed=0)
        with pytest.raises(ValueError, match="integer"):
            enc.regenerate(np.array([1.5, 2.0]))
        with pytest.raises(ValueError, match="integer"):
            enc.encode_dims(features, np.array([0.0, 1.0]))

    def test_parameter_memory_is_linear_in_dim(self):
        q, dim = 561, 8192
        enc = StructuredProjectionEncoder(q, dim, seed=0)
        n_floats = enc.signs.size + enc.scales.size
        assert n_floats < q * dim / 10  # O(D), nowhere near O(q·D)


class TestFastfoodRBFEncoder:
    def test_output_range_and_determinism(self, features):
        a = FastfoodRBFEncoder(20, 128, seed=1).encode(features)
        b = FastfoodRBFEncoder(20, 128, seed=1).encode(features)
        assert np.array_equal(a, b)
        # cos(y+c)·sin(y) ∈ [-1, 1]
        assert np.all(np.abs(a) <= 1.0)

    def test_activation_identity(self, features):
        """encode == cos(proj + phase) · sin(proj), the RBF form the
        sin-difference implementation must reproduce."""
        enc = FastfoodRBFEncoder(20, 64, seed=2, dtype="float64")
        proj = np.asarray(enc._project(enc._check_input(features)))
        expected = np.cos(proj + enc.phases) * np.sin(proj)
        assert np.allclose(enc.encode(features), expected, atol=1e-12)

    def test_distribution_matches_dense_rbf(self, rng):
        """Same feature scale → same output dispersion as the dense RBF
        encoder, so bandwidth transfers between the two families."""
        q, dim = 64, 8192
        X = rng.normal(size=(64, q))
        dense = RBFEncoder(q, dim, seed=3, dtype="float64").encode(X)
        fast = FastfoodRBFEncoder(q, dim, seed=3, dtype="float64").encode(X)
        assert abs(dense.std() - fast.std()) < 0.05

    def test_regenerate_redraws_phases(self, features):
        enc = FastfoodRBFEncoder(20, 96, seed=4)
        dims = np.array([0, 50])
        phases_before = np.asarray(enc.phases).copy()
        enc.regenerate(dims)
        phases_after = np.asarray(enc.phases)
        assert not np.allclose(phases_before[dims], phases_after[dims])
        unchanged = np.setdiff1d(np.arange(96), dims)
        assert np.array_equal(phases_before[unchanged], phases_after[unchanged])
        assert np.allclose(np.sin(phases_after), np.asarray(enc._sin_phases))

    def test_bandwidth_validation(self):
        with pytest.raises(ValueError):
            FastfoodRBFEncoder(20, 64, bandwidth=0.0)

    @pytest.mark.parametrize("q", EDGE_WIDTHS)
    def test_edge_feature_widths(self, q, rng):
        X = rng.normal(size=(4, q))
        out = FastfoodRBFEncoder(q, 100, seed=0).encode(X)
        assert out.shape == (4, 100)
        assert np.all(np.isfinite(out))


class TestChunkedEncodeTorch:
    @torch_required
    def test_chunked_encode_parity_on_torch_tensors(self, rng):
        """Satellite: encode(chunk_size=...) must be bit-identical on the
        torch backend too (b.empty + set_rows path)."""
        tb = get_backend("torch")
        X = tb.asarray(rng.normal(size=(9, 33)).astype(np.float32))
        for enc in (
            StructuredProjectionEncoder(33, 80, seed=1, backend=tb),
            FastfoodRBFEncoder(33, 80, seed=1, backend=tb),
            RBFEncoder(33, 80, seed=1, backend=tb),
        ):
            whole = tb.to_numpy(enc.encode(X))
            for chunk in (1, 4, 9):
                chunked = tb.to_numpy(enc.encode(X, chunk_size=chunk))
                assert np.array_equal(chunked, whole)

    @torch_required
    def test_structured_torch_matches_numpy(self, rng):
        tb = get_backend("torch")
        X = rng.normal(size=(6, 40)).astype(np.float32)
        cpu = StructuredProjectionEncoder(40, 96, seed=9).encode(X)
        gpu = StructuredProjectionEncoder(40, 96, seed=9, backend=tb).encode(
            tb.asarray(X)
        )
        assert np.allclose(cpu, tb.to_numpy(gpu), atol=1e-5)


class TestRegistry:
    def test_default_and_listing(self):
        specs = list_encoders()
        assert DEFAULT_ENCODER == "rbf"
        for spec in ("rbf", "fastfood-rbf", "projection-sign",
                     "structured-cos", "projection", "structured"):
            assert spec in specs

    def test_make_encoder_kinds(self):
        assert isinstance(make_encoder("rbf", 8, 32, seed=0), RBFEncoder)
        assert isinstance(
            make_encoder("fastfood-rbf", 8, 32, seed=0), FastfoodRBFEncoder
        )
        structured = make_encoder("structured-sign", 8, 32, seed=0)
        assert isinstance(structured, StructuredProjectionEncoder)
        assert structured.activation == "sign"

    def test_spec_is_case_insensitive(self):
        enc = make_encoder("Fastfood-RBF", 8, 32, seed=0)
        assert isinstance(enc, FastfoodRBFEncoder)

    def test_unknown_spec_lists_registered(self):
        with pytest.raises(ValueError, match="rbf"):
            make_encoder("no-such-encoder", 8, 32)

    def test_register_rejects_empty_name(self):
        with pytest.raises(ValueError):
            register_encoder("", lambda *a, **k: None)

    def test_bandwidth_threads_to_rbf_families(self):
        rbf = make_encoder("rbf", 8, 32, bandwidth=2.0, seed=0)
        fast = make_encoder("fastfood-rbf", 8, 32, bandwidth=2.0, seed=0)
        assert rbf.bandwidth == 2.0
        assert fast.bandwidth == 2.0
        # projection families accept and ignore it
        make_encoder("projection-linear", 8, 32, bandwidth=2.0, seed=0)


class TestModelThreading:
    def test_disthd_config_validates_encoder(self):
        from repro.core.config import DistHDConfig

        cfg = DistHDConfig(encoder="fastfood-rbf")
        assert cfg.encoder == "fastfood-rbf"
        with pytest.raises(ValueError, match="encoder"):
            DistHDConfig(encoder="bogus")

    def test_disthd_trains_with_structured_encoder(self, small_problem):
        from repro.core.config import DistHDConfig
        from repro.core.disthd import DistHDClassifier

        train_x, train_y, test_x, test_y = small_problem
        cfg = DistHDConfig(
            dim=256, iterations=5, seed=0, encoder="fastfood-rbf"
        )
        model = DistHDClassifier(cfg).fit(train_x, train_y)
        assert isinstance(model.encoder_, FastfoodRBFEncoder)
        assert model.score(test_x, test_y) > 0.6

    @pytest.mark.parametrize("name", ["onlinehd", "neuralhd", "baselinehd"])
    def test_baselines_accept_registry_specs(self, name, small_problem):
        from repro.models.registry import make_model

        train_x, train_y, test_x, test_y = small_problem
        model = make_model(
            name, dim=128, encoder="fastfood-rbf", seed=0
        )
        model.fit(train_x, train_y)
        assert model.score(test_x, test_y) > 0.5

    def test_catalog_declares_encoder(self):
        from repro.models.registry import get_model_spec

        for name in ("disthd", "onlinehd", "neuralhd", "baselinehd"):
            assert "encoder" in get_model_spec(name).param_names()

    def test_api_spec_threads_encoder(self):
        from repro.api import run_experiment

        result = run_experiment(
            model="disthd", dataset="diabetes", scale=0.005,
            encoder="fastfood-rbf",
            model_params={"dim": 64, "iterations": 2},
        )
        assert result.test_accuracy >= 0.0  # ran end to end with the knob applied
        # The knob must not apply to models without an encoder parameter.
        run_experiment(
            model="knn", dataset="diabetes", scale=0.005,
            encoder="fastfood-rbf",
        )

    def test_shard_fit_deterministic_with_structured_encoder(
        self, small_problem
    ):
        """Pool and serial shard_fit must agree bit for bit — the
        identical-encoder invariant extended to the SORF family."""
        from repro.core.config import DistHDConfig
        from repro.core.disthd import DistHDClassifier
        from repro.engine import SerialExecutor

        train_x, train_y, _, _ = small_problem
        cfg = DistHDConfig(
            dim=128, iterations=4, seed=13, encoder="fastfood-rbf",
            convergence_patience=None,
        )
        serial = DistHDClassifier(cfg)
        serial.shard_fit(train_x, train_y, n_jobs=2, executor=SerialExecutor())
        pooled = DistHDClassifier(cfg)
        pooled.shard_fit(train_x, train_y, n_jobs=2)
        assert np.array_equal(
            serial.memory_.numpy_vectors(), pooled.memory_.numpy_vectors()
        )


class TestPersistenceFormat5:
    @pytest.mark.parametrize("encoder", ["fastfood-rbf", "structured-tanh"])
    def test_round_trip_structured_model(self, encoder, small_problem, tmp_path):
        from repro.core.config import DistHDConfig
        from repro.core.disthd import DistHDClassifier
        from repro.persistence import load_model, save_model

        train_x, train_y, test_x, _ = small_problem
        cfg = DistHDConfig(dim=128, iterations=3, seed=2, encoder=encoder)
        model = DistHDClassifier(cfg).fit(train_x, train_y)
        path = save_model(model, tmp_path / "m.npz")
        loaded = load_model(path)
        assert np.array_equal(model.predict(test_x), loaded.predict(test_x))
        assert np.allclose(
            model.decision_scores(test_x),
            loaded.decision_scores(test_x),
            atol=1e-6,
        )

    def test_round_trip_preserves_regenerated_slots(self, small_problem, tmp_path):
        from repro.core.config import DistHDConfig
        from repro.core.disthd import DistHDClassifier
        from repro.persistence import load_model, save_model

        train_x, train_y, test_x, _ = small_problem
        cfg = DistHDConfig(
            dim=128, iterations=6, seed=3, encoder="fastfood-rbf",
            regen_rate=0.2, convergence_patience=None,
        )
        model = DistHDClassifier(cfg).fit(train_x, train_y)
        assert model.encoder_.regenerated_count > 0  # regeneration happened
        loaded = load_model(save_model(model, tmp_path / "m.npz"))
        restored = loaded.encoder_
        assert restored.regenerated_count == model.encoder_.regenerated_count
        assert np.array_equal(restored.src_slots, model.encoder_.src_slots)
        assert restored._identity_slots is False
        assert np.array_equal(
            np.asarray(restored.encode(test_x[:8])),
            np.asarray(model.encoder_.encode(test_x[:8])),
        )

    def test_structured_archive_is_servable(self, small_problem, tmp_path):
        from repro.core.config import DistHDConfig
        from repro.core.disthd import DistHDClassifier
        from repro.persistence import save_model
        from repro.serve.server import ModelServer

        train_x, train_y, test_x, _ = small_problem
        cfg = DistHDConfig(dim=128, iterations=3, seed=4, encoder="fastfood-rbf")
        model = DistHDClassifier(cfg).fit(train_x, train_y)
        path = save_model(model, tmp_path / "m.npz")
        with ModelServer(str(path), max_wait_ms=1.0) as server:
            served = server.predict(test_x[:16])
            assert np.array_equal(served, model.predict(test_x[:16]))
            stats = server.stats()
        # LoadedHDCModel takes the staged encode/score path, so the
        # stats endpoint reports the per-stage split.
        stages = stats["stages"]
        assert stages is not None
        assert stages["n_batches"] >= 1
        assert stages["encode_s"] >= 0.0 and stages["score_s"] >= 0.0
        assert 0.0 <= stages["encode_fraction"] <= 1.0


class TestStageMetrics:
    def test_record_stage_times_snapshot(self):
        from repro.serve.metrics import ServerMetrics

        metrics = ServerMetrics()
        assert metrics.snapshot()["stages"] is None
        metrics.record_stage_times(0.002, 0.001)
        metrics.record_stage_times(0.004, 0.001)
        stages = metrics.snapshot()["stages"]
        assert stages["n_batches"] == 2
        assert stages["encode_s"] == pytest.approx(0.006)
        assert stages["score_s"] == pytest.approx(0.002)
        assert stages["encode_fraction"] == pytest.approx(0.75)
