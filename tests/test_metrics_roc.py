"""Tests for repro.metrics.roc."""

import numpy as np
import pytest

from repro.metrics.roc import auc, roc_auc_score, roc_curve, roc_curve_ovr


class TestRocCurve:
    def test_perfect_separation(self):
        fpr, tpr, _ = roc_curve([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9])
        assert auc(fpr, tpr) == pytest.approx(1.0)

    def test_inverted_scores_auc_zero(self):
        fpr, tpr, _ = roc_curve([1, 1, 0, 0], [0.1, 0.2, 0.8, 0.9])
        assert auc(fpr, tpr) == pytest.approx(0.0)

    def test_random_scores_auc_near_half(self, rng):
        y = rng.integers(0, 2, 2000)
        scores = rng.normal(size=2000)
        assert roc_auc_score(y, scores) == pytest.approx(0.5, abs=0.05)

    def test_endpoints(self):
        fpr, tpr, _ = roc_curve([0, 1, 0, 1], [0.3, 0.6, 0.5, 0.9])
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0

    def test_monotone(self, rng):
        y = rng.integers(0, 2, 100)
        scores = rng.normal(size=100)
        fpr, tpr, _ = roc_curve(y, scores)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)

    def test_tied_scores_collapse(self):
        fpr, tpr, thresholds = roc_curve([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5])
        # One distinct score -> origin plus a single (1,1) point.
        assert len(fpr) == 2

    def test_single_class_rejected(self):
        with pytest.raises(ValueError, match="positive and negative"):
            roc_curve([1, 1, 1], [0.1, 0.2, 0.3])

    def test_nonbinary_rejected(self):
        with pytest.raises(ValueError, match="binary"):
            roc_curve([0, 1, 2], [0.1, 0.2, 0.3])

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            roc_curve([0, 1], [0.5])


class TestAuc:
    def test_unit_square_diagonal(self):
        assert auc([0.0, 1.0], [0.0, 1.0]) == pytest.approx(0.5)

    def test_requires_sorted(self):
        with pytest.raises(ValueError, match="sorted"):
            auc([1.0, 0.0], [0.0, 1.0])

    def test_needs_two_points(self):
        with pytest.raises(ValueError, match="2 points"):
            auc([0.5], [0.5])


class TestRocOvr:
    def test_micro_curve_present(self, rng):
        y = rng.integers(0, 3, 120)
        scores = rng.normal(size=(120, 3))
        scores[np.arange(120), y] += 1.5  # informative scores
        curves = roc_curve_ovr(y, scores)
        assert "micro" in curves
        assert {"class_0", "class_1", "class_2"} <= set(curves)

    def test_informative_scores_beat_chance(self, rng):
        y = rng.integers(0, 3, 300)
        scores = rng.normal(size=(300, 3))
        scores[np.arange(300), y] += 2.0
        fpr, tpr = roc_curve_ovr(y, scores)["micro"]
        assert auc(fpr, tpr) > 0.8

    def test_absent_class_skipped(self):
        y = np.array([0, 0, 1, 1])
        scores = np.random.default_rng(0).normal(size=(4, 3))
        curves = roc_curve_ovr(y, scores)
        assert "class_2" not in curves
        assert "micro" in curves

    def test_label_out_of_range(self):
        with pytest.raises(ValueError, match="index score columns"):
            roc_curve_ovr([5], np.ones((1, 3)))
