"""Tests for repro.deploy.quantized.QuantizedHDCModel."""

import numpy as np
import pytest

from repro.baselines.knn import KNNClassifier
from repro.core.disthd import DistHDClassifier
from repro.deploy.quantized import QuantizedHDCModel


@pytest.fixture(scope="module")
def fitted(small_problem):
    train_x, train_y, _, _ = small_problem
    return DistHDClassifier(dim=128, iterations=6, seed=0).fit(train_x, train_y)


class TestConstruction:
    def test_requires_fitted_hdc(self, small_problem):
        train_x, train_y, _, _ = small_problem
        knn = KNNClassifier(k=3).fit(train_x, train_y)
        with pytest.raises(TypeError, match="fitted HDC classifier"):
            QuantizedHDCModel(knn)

    def test_requires_fit(self):
        with pytest.raises(TypeError):
            QuantizedHDCModel(DistHDClassifier(dim=32))

    @pytest.mark.parametrize("bits", [1, 2, 4, 8])
    def test_all_precisions(self, fitted, bits):
        model = QuantizedHDCModel(fitted, bits=bits)
        assert model.bits == bits


class TestInference:
    def test_8bit_matches_float_closely(self, fitted, small_problem):
        _, _, test_x, test_y = small_problem
        model = QuantizedHDCModel(fitted, bits=8)
        agreement = np.mean(model.predict(test_x) == fitted.predict(test_x))
        assert agreement > 0.95

    def test_1bit_still_functional(self, fitted, small_problem):
        _, _, test_x, test_y = small_problem
        model = QuantizedHDCModel(fitted, bits=1)
        assert model.score(test_x, test_y) > 0.6

    def test_labels_are_original_classes(self, fitted, small_problem):
        _, _, test_x, _ = small_problem
        model = QuantizedHDCModel(fitted, bits=4)
        assert set(np.unique(model.predict(test_x))) <= set(fitted.classes_)

    def test_feature_mismatch(self, fitted):
        model = QuantizedHDCModel(fitted, bits=8)
        with pytest.raises(ValueError, match="features"):
            model.predict(np.ones((1, 3)))


class TestFootprint:
    def test_memory_shrinks_with_bits(self, fitted):
        sizes = [QuantizedHDCModel(fitted, bits=b).memory_bytes for b in (1, 2, 4, 8)]
        assert sizes[0] < sizes[1] < sizes[2] < sizes[3]

    def test_1bit_is_itemsize_x8_smaller_than_float(self, fitted):
        # One bit per cell vs the training dtype's full width: 32x for the
        # float32 hot-path default, 64x for float64-trained models.
        model = QuantizedHDCModel(fitted, bits=1)
        vectors = fitted.memory_.numpy_vectors()
        expected = vectors.itemsize * 8
        assert vectors.nbytes / model.memory_bytes == pytest.approx(
            expected, rel=0.1
        )

    def test_report_fields(self, fitted):
        report = QuantizedHDCModel(fitted, bits=2).footprint_report()
        assert report["bits"] == 2
        # Compression is measured against the base memory's *actual*
        # storage dtype (float32 hot-path default → 32 bits / 2 bits);
        # an earlier revision hard-coded a float64 reference and claimed
        # 32x here.
        assert report["compression"] == pytest.approx(16.0, rel=0.1)
        assert report["encoder_parameters"] > 0
        assert report["refresh_count"] == 0

    def test_float_reference_uses_base_dtype(self, small_problem):
        train_x, train_y, _, _ = small_problem
        f64 = DistHDClassifier(
            dim=64, iterations=2, seed=0, dtype="float64"
        ).fit(train_x, train_y)
        report = QuantizedHDCModel(f64, bits=2).footprint_report()
        assert report["compression"] == pytest.approx(32.0, rel=0.1)


class TestFaultInjection:
    def test_flip_count(self, fitted):
        model = QuantizedHDCModel(fitted, bits=8)
        total = model._quantized.n_bits_total
        n = model.inject_faults(0.1, seed=0)
        assert n == round(0.1 * total)

    def test_faults_degrade_or_hold(self, fitted, small_problem):
        _, _, test_x, test_y = small_problem
        clean = QuantizedHDCModel(fitted, bits=8)
        clean_acc = clean.score(test_x, test_y)
        noisy = QuantizedHDCModel(fitted, bits=8)
        noisy.inject_faults(0.4, seed=1)
        assert noisy.score(test_x, test_y) <= clean_acc + 0.05

    def test_faults_accumulate(self, fitted):
        model = QuantizedHDCModel(fitted, bits=8)
        before = model._quantized.codes.copy()
        model.inject_faults(0.05, seed=0)
        first = model._quantized.codes.copy()
        model.inject_faults(0.05, seed=1)
        assert not np.array_equal(before, first)
        assert not np.array_equal(first, model._quantized.codes)

    def test_original_classifier_untouched(self, fitted, small_problem):
        _, _, test_x, test_y = small_problem
        before = fitted.memory_.vectors.copy()
        model = QuantizedHDCModel(fitted, bits=1)
        model.inject_faults(0.5, seed=0)
        assert np.array_equal(fitted.memory_.vectors, before)


class TestRefresh:
    """QuantizedHDCModel.refresh(): re-quantize from the live base in place."""

    def _fresh(self, small_problem, **overrides):
        train_x, train_y, _, _ = small_problem
        params = dict(dim=96, iterations=4, seed=0)
        params.update(overrides)
        return (
            DistHDClassifier(**params).fit(train_x, train_y),
            train_x, train_y,
        )

    def test_refresh_tracks_partial_fit_updates(self, small_problem):
        base, train_x, train_y = self._fresh(small_problem)
        model = QuantizedHDCModel(base, bits=8)
        stale = model.class_vectors.copy()
        base.partial_fit(train_x[:64], train_y[:64])
        # Before refresh the frozen image is unchanged.
        np.testing.assert_array_equal(model.class_vectors, stale)
        out = model.refresh()
        assert out is model  # in place, chainable
        assert model.refresh_count == 1
        assert not np.array_equal(model.class_vectors, stale)
        # The refreshed image equals a freshly built wrapper's.
        rebuilt = QuantizedHDCModel(base, bits=8)
        np.testing.assert_array_equal(
            model.class_vectors, rebuilt.class_vectors
        )

    def test_refresh_discards_injected_faults(self, small_problem):
        base, _, _ = self._fresh(small_problem)
        model = QuantizedHDCModel(base, bits=8)
        clean = model.class_vectors.copy()
        model.inject_faults(0.3, seed=0)
        assert not np.array_equal(model.class_vectors, clean)
        model.refresh()
        np.testing.assert_array_equal(model.class_vectors, clean)

    def test_footprint_reflects_post_refresh_state(self, small_problem):
        base, train_x, train_y = self._fresh(small_problem)
        model = QuantizedHDCModel(base, bits=8)
        base.partial_fit(train_x[:32], train_y[:32])
        report = model.refresh().footprint_report()
        assert report["refresh_count"] == 1
        # float32 hot-path default: 4-byte reference per cell.
        assert report["float_memory_bytes"] == model._quantized.codes.size * 4
        assert report["compression"] == pytest.approx(4.0, rel=0.1)

    def test_frozen_encoder_is_independent_of_live_base(self, small_problem):
        base, train_x, train_y = self._fresh(
            small_problem, regen_rate=0.2, selection="union",
            reservoir_size=64, regen_every=1,
        )
        model = QuantizedHDCModel(base, bits=8)
        assert model.encoder is not base.encoder_
        before = model.decision_scores(train_x[:8]).copy()
        # Stream enough batches to force regeneration on the live base.
        for start in range(0, 192, 32):
            base.partial_fit(train_x[start:start + 32],
                             train_y[start:start + 32])
        assert base.encoder_.regenerated_count > 0
        # The frozen artifact is unaffected until an explicit refresh.
        np.testing.assert_array_equal(
            model.decision_scores(train_x[:8]), before
        )
        model.refresh()
        assert model.encoder is not base.encoder_

    def test_retain_base_false_is_self_contained(self, small_problem):
        base, _, _ = self._fresh(small_problem)
        model = QuantizedHDCModel(base, bits=8, retain_base=False)
        assert model.classifier is None
        with pytest.raises(RuntimeError, match="retain_base=False"):
            model.refresh()
        # Inference and footprint still work without the back-reference.
        assert model.footprint_report()["bits"] == 8

    def test_loaded_artifact_does_not_retain_base(
        self, small_problem, tmp_path
    ):
        from repro.deploy.quantized import QuantizedTrainer
        from repro.persistence import load_model, save_model

        train_x, train_y, _, _ = small_problem
        trainer = QuantizedTrainer(
            DistHDClassifier(dim=64, iterations=2, seed=0), bits=8
        ).fit(train_x, train_y)
        path = save_model(trainer, tmp_path / "q.npz")
        loaded = load_model(path)
        assert isinstance(loaded, QuantizedHDCModel)
        assert loaded.classifier is None

    def test_refresh_requires_fitted_base(self, small_problem):
        base, _, _ = self._fresh(small_problem)
        model = QuantizedHDCModel(base, bits=8)
        model.classifier = DistHDClassifier(dim=16)  # unfitted
        with pytest.raises(RuntimeError, match="cannot refresh"):
            model.refresh()

    def test_trainer_partial_fit_refreshes_deployment(self, small_problem):
        from repro.deploy.quantized import QuantizedTrainer

        train_x, train_y, test_x, _ = small_problem
        trainer = QuantizedTrainer(
            DistHDClassifier(dim=96, iterations=4, seed=0), bits=8
        )
        trainer.fit(train_x, train_y)
        stale = trainer.deployed_.class_vectors.copy()
        trainer.partial_fit(train_x[:64], train_y[:64])
        assert trainer.deployed_.refresh_count == 1
        assert not np.array_equal(trainer.deployed_.class_vectors, stale)
        # refresh() delegation with no intervening training is a no-op
        # on the image but still counts.
        image = trainer.deployed_.class_vectors.copy()
        trainer.refresh()
        assert trainer.deployed_.refresh_count == 2
        np.testing.assert_array_equal(trainer.deployed_.class_vectors, image)

    def test_trainer_partial_fit_from_scratch(self, small_problem):
        from repro.deploy.quantized import QuantizedTrainer

        train_x, train_y, test_x, test_y = small_problem
        trainer = QuantizedTrainer(
            DistHDClassifier(dim=96, iterations=4, seed=0), bits=8
        )
        classes = np.unique(train_y)
        for start in range(0, 128, 32):
            trainer.partial_fit(
                train_x[start:start + 32], train_y[start:start + 32],
                classes=classes,
            )
        assert trainer.deployed_ is not None
        assert trainer.score(test_x, test_y) > 0.4


class TestPacked:
    """Bit-packed 1-bit deployment: exact parity, footprint, faults,
    refresh and persistence."""

    @pytest.fixture()
    def artifact(self, fitted):
        return QuantizedHDCModel(fitted, bits=1, packed=True)

    def test_requires_one_bit(self, fitted):
        with pytest.raises(ValueError, match="bits=1"):
            QuantizedHDCModel(fitted, bits=8, packed=True)
        from repro.deploy.quantized import QuantizedTrainer

        with pytest.raises(ValueError, match="bits=1"):
            QuantizedTrainer(DistHDClassifier(dim=32), bits=4, packed=True)

    def test_scores_bit_identical_to_unpacked_binary(
        self, fitted, artifact, small_problem
    ):
        """Packed XOR+popcount must reproduce the unpacked binary scorer
        exactly — scores and predictions, not approximately."""
        from repro.hdc.packed import unpack_rows

        _, _, test_x, _ = small_problem
        encoded = artifact.encoder.encode(test_x)
        encoded_np = artifact.encoder.backend.to_numpy(encoded)
        dim = encoded_np.shape[1]
        q = (encoded_np >= 0).astype(np.int64)
        m = unpack_rows(artifact.packed_words, dim).astype(np.int64)
        counts = (
            q.sum(axis=1)[:, None]
            + m.sum(axis=1)[None, :]
            - 2 * (q @ m.T)
        )
        scale = np.float64(dim)
        reference = (scale - 2.0 * counts.astype(np.float64)) / scale
        scores = artifact.decision_scores(test_x)
        np.testing.assert_array_equal(scores, reference)
        np.testing.assert_array_equal(
            artifact.predict(test_x),
            artifact.classes_[np.argmax(reference, axis=1)],
        )

    def test_still_functional(self, artifact, small_problem):
        _, _, test_x, test_y = small_problem
        assert artifact.score(test_x, test_y) > 0.6

    def test_chunk_size_invariance(self, fitted, small_problem):
        _, _, test_x, _ = small_problem
        full = QuantizedHDCModel(fitted, bits=1, packed=True)
        chunked = QuantizedHDCModel(
            fitted, bits=1, packed=True, chunk_size=7
        )
        np.testing.assert_array_equal(
            full.decision_scores(test_x), chunked.decision_scores(test_x)
        )

    def test_memory_is_word_storage(self, fitted, artifact):
        k = fitted.classes_.size
        dim = fitted.memory_.dim
        words = (dim + 63) // 64
        assert artifact.packed_words.shape == (k, words)
        assert artifact.packed_words.dtype == np.uint64
        assert artifact.memory_bytes == k * words * 8
        unpacked = QuantizedHDCModel(fitted, bits=1)
        assert artifact.memory_bytes <= unpacked.memory_bytes

    def test_footprint_report_packed_rows(self, fitted, artifact):
        report = artifact.footprint_report()
        assert report["packed"] is True
        assert report["packed_bytes"] == artifact.memory_bytes
        assert report["words_per_class"] == (fitted.memory_.dim + 63) // 64
        assert (
            report["unpacked_1bit_serving_bytes"]
            == report["unpacked_1bit_bytes"] * 8
        )
        assert report["compression_vs_unpacked"] == pytest.approx(
            report["unpacked_1bit_serving_bytes"] / report["packed_bytes"]
        )
        assert QuantizedHDCModel(fitted, bits=1).footprint_report()[
            "packed"
        ] is False

    def test_inject_faults_exact_and_degrading(self, fitted, small_problem):
        _, _, test_x, _ = small_problem
        artifact = QuantizedHDCModel(fitted, bits=1, packed=True)
        before = artifact.packed_words.copy()
        rate = 0.05
        total = fitted.classes_.size * fitted.memory_.dim
        artifact.inject_faults(rate, seed=0)
        from repro.hdc.packed import unpack_rows

        dim = fitted.memory_.dim
        flipped = int(
            (
                unpack_rows(before, dim)
                != unpack_rows(artifact.packed_words, dim)
            ).sum()
        )
        assert flipped == round(rate * total)

    def test_fault_parity_with_unpacked(self, fitted, small_problem):
        """Same seed, same rate: packed and unpacked fault injection flip
        the same *number* of cells and both artifacts keep predicting."""
        _, _, test_x, _ = small_problem
        packed_m = QuantizedHDCModel(fitted, bits=1, packed=True)
        unpacked_m = QuantizedHDCModel(fitted, bits=1)
        packed_m.inject_faults(0.02, seed=3)
        unpacked_m.inject_faults(0.02, seed=3)
        assert packed_m.predict(test_x).shape == unpacked_m.predict(test_x).shape

    def test_refresh_discards_faults_and_repacks(self, small_problem):
        train_x, train_y, _, _ = small_problem
        base = DistHDClassifier(dim=64, iterations=2, seed=0).fit(
            train_x, train_y
        )
        artifact = QuantizedHDCModel(base, bits=1, packed=True)
        pristine = artifact.packed_words.copy()
        artifact.inject_faults(0.2, seed=1)
        assert not np.array_equal(artifact.packed_words, pristine)
        artifact.refresh()
        np.testing.assert_array_equal(artifact.packed_words, pristine)
        assert artifact.packed is True

    def test_persistence_roundtrip(self, small_problem, tmp_path):
        from repro.deploy.quantized import QuantizedTrainer
        from repro.persistence import load_model, save_model

        train_x, train_y, test_x, _ = small_problem
        trainer = QuantizedTrainer(
            DistHDClassifier(dim=100, iterations=3, seed=0),
            bits=1, packed=True,
        ).fit(train_x, train_y)
        path = save_model(trainer, tmp_path / "packed.npz")
        loaded = load_model(path)
        assert isinstance(loaded, QuantizedHDCModel)
        assert loaded.packed is True
        np.testing.assert_array_equal(
            loaded.packed_words, trainer.deployed_.packed_words
        )
        np.testing.assert_array_equal(
            loaded.predict(test_x), trainer.predict(test_x)
        )

    def test_persistence_roundtrip_preserves_faults(
        self, small_problem, tmp_path
    ):
        """Faulted packed artifacts survive save/load: the decoded image
        re-quantizes (and re-packs) to the exact faulted words."""
        from repro.deploy.quantized import QuantizedTrainer
        from repro.persistence import load_model, save_model

        train_x, train_y, test_x, _ = small_problem
        trainer = QuantizedTrainer(
            DistHDClassifier(dim=100, iterations=3, seed=0),
            bits=1, packed=True,
        ).fit(train_x, train_y)
        trainer.deployed_.inject_faults(0.1, seed=7)
        faulted = trainer.deployed_.packed_words.copy()
        loaded = load_model(save_model(trainer, tmp_path / "faulted.npz"))
        np.testing.assert_array_equal(loaded.packed_words, faulted)
        np.testing.assert_array_equal(
            loaded.predict(test_x), trainer.predict(test_x)
        )

    def test_trainer_partial_fit_stays_packed(self, small_problem):
        from repro.deploy.quantized import QuantizedTrainer

        train_x, train_y, test_x, test_y = small_problem
        trainer = QuantizedTrainer(
            DistHDClassifier(dim=96, iterations=4, seed=0),
            bits=1, packed=True,
        )
        trainer.fit(train_x, train_y)
        assert trainer.deployed_.packed is True
        trainer.partial_fit(train_x[:64], train_y[:64])
        assert trainer.deployed_.packed is True
        assert trainer.score(test_x, test_y) > 0.4

    def test_catalog_variant(self, small_problem):
        from repro.models.registry import make_model

        train_x, train_y, test_x, test_y = small_problem
        trainer = make_model(
            "disthd-quantized", bits=1, packed=True,
            dim=64, iterations=2, seed=0,
        )
        trainer.fit(train_x, train_y)
        assert trainer.deployed_.packed is True
        assert trainer.score(test_x, test_y) > 0.4
