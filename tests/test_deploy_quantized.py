"""Tests for repro.deploy.quantized.QuantizedHDCModel."""

import numpy as np
import pytest

from repro.baselines.knn import KNNClassifier
from repro.core.disthd import DistHDClassifier
from repro.deploy.quantized import QuantizedHDCModel


@pytest.fixture(scope="module")
def fitted(small_problem):
    train_x, train_y, _, _ = small_problem
    return DistHDClassifier(dim=128, iterations=6, seed=0).fit(train_x, train_y)


class TestConstruction:
    def test_requires_fitted_hdc(self, small_problem):
        train_x, train_y, _, _ = small_problem
        knn = KNNClassifier(k=3).fit(train_x, train_y)
        with pytest.raises(TypeError, match="fitted HDC classifier"):
            QuantizedHDCModel(knn)

    def test_requires_fit(self):
        with pytest.raises(TypeError):
            QuantizedHDCModel(DistHDClassifier(dim=32))

    @pytest.mark.parametrize("bits", [1, 2, 4, 8])
    def test_all_precisions(self, fitted, bits):
        model = QuantizedHDCModel(fitted, bits=bits)
        assert model.bits == bits


class TestInference:
    def test_8bit_matches_float_closely(self, fitted, small_problem):
        _, _, test_x, test_y = small_problem
        model = QuantizedHDCModel(fitted, bits=8)
        agreement = np.mean(model.predict(test_x) == fitted.predict(test_x))
        assert agreement > 0.95

    def test_1bit_still_functional(self, fitted, small_problem):
        _, _, test_x, test_y = small_problem
        model = QuantizedHDCModel(fitted, bits=1)
        assert model.score(test_x, test_y) > 0.6

    def test_labels_are_original_classes(self, fitted, small_problem):
        _, _, test_x, _ = small_problem
        model = QuantizedHDCModel(fitted, bits=4)
        assert set(np.unique(model.predict(test_x))) <= set(fitted.classes_)

    def test_feature_mismatch(self, fitted):
        model = QuantizedHDCModel(fitted, bits=8)
        with pytest.raises(ValueError, match="features"):
            model.predict(np.ones((1, 3)))


class TestFootprint:
    def test_memory_shrinks_with_bits(self, fitted):
        sizes = [QuantizedHDCModel(fitted, bits=b).memory_bytes for b in (1, 2, 4, 8)]
        assert sizes[0] < sizes[1] < sizes[2] < sizes[3]

    def test_1bit_is_itemsize_x8_smaller_than_float(self, fitted):
        # One bit per cell vs the training dtype's full width: 32x for the
        # float32 hot-path default, 64x for float64-trained models.
        model = QuantizedHDCModel(fitted, bits=1)
        vectors = fitted.memory_.numpy_vectors()
        expected = vectors.itemsize * 8
        assert vectors.nbytes / model.memory_bytes == pytest.approx(
            expected, rel=0.1
        )

    def test_report_fields(self, fitted):
        report = QuantizedHDCModel(fitted, bits=2).footprint_report()
        assert report["bits"] == 2
        assert report["compression"] == pytest.approx(32.0, rel=0.1)
        assert report["encoder_parameters"] > 0


class TestFaultInjection:
    def test_flip_count(self, fitted):
        model = QuantizedHDCModel(fitted, bits=8)
        total = model._quantized.n_bits_total
        n = model.inject_faults(0.1, seed=0)
        assert n == round(0.1 * total)

    def test_faults_degrade_or_hold(self, fitted, small_problem):
        _, _, test_x, test_y = small_problem
        clean = QuantizedHDCModel(fitted, bits=8)
        clean_acc = clean.score(test_x, test_y)
        noisy = QuantizedHDCModel(fitted, bits=8)
        noisy.inject_faults(0.4, seed=1)
        assert noisy.score(test_x, test_y) <= clean_acc + 0.05

    def test_faults_accumulate(self, fitted):
        model = QuantizedHDCModel(fitted, bits=8)
        before = model._quantized.codes.copy()
        model.inject_faults(0.05, seed=0)
        first = model._quantized.codes.copy()
        model.inject_faults(0.05, seed=1)
        assert not np.array_equal(before, first)
        assert not np.array_equal(first, model._quantized.codes)

    def test_original_classifier_untouched(self, fitted, small_problem):
        _, _, test_x, test_y = small_problem
        before = fitted.memory_.vectors.copy()
        model = QuantizedHDCModel(fitted, bits=1)
        model.inject_faults(0.5, seed=0)
        assert np.array_equal(fitted.memory_.vectors, before)
