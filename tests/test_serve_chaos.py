"""Tests for repro.serve.chaos — fault injection and resilience drills.

The full-size drills live in the ``fleet_resilience`` perf scenario and
the ``repro chaos`` CLI; here each fault kind runs once at small scale against
a 2-worker fleet, asserting the invariants the chaos harness exists to
check: zero failed (non-shed) requests, observed disruption, recovery.
"""

import time

import numpy as np
import pytest

from repro.deploy.quantized import QuantizedHDCModel
from repro.models.registry import make_model
from repro.serve.chaos import (
    FAULTS,
    classify_outcomes,
    inject_fault,
    run_chaos_drill,
    run_crash_loop_drill,
)
from repro.serve.fleet import FleetServer, Overloaded
from repro.serve.fleet.server import BROKEN, RUNNING


@pytest.fixture(scope="module")
def artifact(small_problem):
    train_x, train_y, _, _ = small_problem
    model = make_model("disthd", dim=128, iterations=2, seed=3)
    model.fit(train_x, train_y)
    return QuantizedHDCModel(model, bits=1, packed=True)


@pytest.fixture
def fleet(artifact):
    with FleetServer(
        artifact, n_workers=2, queue_depth=16, service_floor_s=0.002,
        hang_timeout_s=0.5, crc_check_every=8,
    ) as server:
        yield server


class TestClassifyOutcomes:
    def test_split(self):
        predictions = [
            np.array([1]), Overloaded("full"), ValueError("boom"),
            np.array([2]), Overloaded("full"),
        ]
        assert classify_outcomes(predictions) == {
            "ok": 2, "shed": 2, "failed": 1,
        }

    def test_empty(self):
        assert classify_outcomes([]) == {"ok": 0, "shed": 0, "failed": 0}


class TestInjectFault:
    def test_unknown_fault_rejected(self, fleet):
        with pytest.raises(ValueError, match="unknown fault"):
            inject_fault(fleet, "meteor")

    def test_corrupt_prefers_class_memory(self, fleet):
        record = inject_fault(fleet, "corrupt")
        assert record["array"] == "words"
        assert not fleet.shared_artifact.verify()
        fleet.shared_artifact.restore_pristine()
        assert fleet.shared_artifact.verify()


class TestDrills:
    @pytest.mark.parametrize("fault", FAULTS)
    def test_fault_survived_under_load(self, fleet, small_problem, fault):
        _, _, test_x, _ = small_problem
        drill = run_chaos_drill(
            fleet, test_x,
            n_requests=64, concurrency=8, fault=fault,
            slow_delay_s=0.05, recovery_timeout_s=15.0,
        )
        assert drill["fault"] == fault
        outcomes = drill["outcomes"]
        # The resilience contract: every accepted request succeeds.
        assert outcomes["failed"] == 0, drill
        assert outcomes["ok"] + outcomes["shed"] == 64
        if fault in ("kill", "hang", "corrupt"):
            assert drill["disrupted"], drill
            assert drill["recovery_s"] is not None, drill
            assert sum(drill["restarts"]) >= 1, drill
        assert all(s == RUNNING for s in fleet.worker_states())
        # Post-drill the fleet still serves correct answers.
        assert fleet.predict(test_x[:4]).shape == (4,)

    def test_kill_drill_reports_retries_and_problems(
        self, fleet, small_problem
    ):
        _, _, test_x, _ = small_problem
        drill = run_chaos_drill(
            fleet, test_x, n_requests=64, concurrency=8, fault="kill",
        )
        assert drill["outcomes"]["failed"] == 0
        assert drill["problem_counts"].get("worker-crashed", 0) >= 1
        assert drill["injected"]["pid"] is not None

    def test_unknown_fault_in_drill_rejected(self, fleet, small_problem):
        _, _, test_x, _ = small_problem
        with pytest.raises(ValueError, match="unknown fault"):
            run_chaos_drill(fleet, test_x, fault="meteor")


class TestCrashLoop:
    def test_breaker_trips(self, artifact):
        with FleetServer(
            artifact, n_workers=2, max_restarts=3, restart_window_s=30.0,
            restart_backoff_s=0.02,
        ) as fleet:
            drill = run_crash_loop_drill(fleet, index=0, timeout_s=30.0)
            assert drill["tripped"] is True
            assert drill["deaths"] == 3  # max_restarts strikes, no more
            assert drill["worker_states"][0] == BROKEN
            assert drill["problem_counts"].get("circuit-open", 0) >= 1
