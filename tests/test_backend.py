"""Tests for repro.backend — the pluggable array-compute layer."""

import numpy as np
import pytest

from repro.backend import (
    NumpyBackend,
    get_backend,
    list_backends,
    register_backend,
    resolve_dtype,
    torch_is_available,
)
from repro.hdc.memory import AssociativeMemory


class TestRegistry:
    def test_numpy_always_registered(self):
        assert "numpy" in list_backends()

    def test_default_is_numpy(self):
        assert get_backend(None).name == "numpy"
        assert get_backend("numpy") is get_backend(None)

    def test_case_insensitive_lookup(self):
        assert get_backend("NumPy") is get_backend("numpy")

    def test_instance_passthrough(self):
        b = NumpyBackend()
        assert get_backend(b) is b

    def test_unknown_backend(self):
        with pytest.raises(KeyError, match="unknown backend"):
            get_backend("tensorflow")

    def test_bad_spec_type(self):
        with pytest.raises(TypeError, match="backend"):
            get_backend(42)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(NumpyBackend())

    def test_torch_registered_iff_importable(self):
        assert ("torch" in list_backends()) == torch_is_available()


class TestResolveDtype:
    @pytest.mark.parametrize(
        "spec,expected",
        [
            ("float32", np.float32),
            ("Float64", np.float64),
            ("f32", np.float32),
            (np.float32, np.float32),
            (None, np.float64),
        ],
    )
    def test_aliases(self, spec, expected):
        assert resolve_dtype(spec) == np.dtype(expected)

    def test_unknown_string(self):
        with pytest.raises(ValueError, match="unknown dtype"):
            resolve_dtype("float16ish")


class TestNumpyBackendOps:
    @pytest.fixture
    def b(self):
        return get_backend("numpy")

    def test_matmul_and_transpose(self, b):
        a = np.arange(6.0).reshape(2, 3)
        c = np.arange(12.0).reshape(4, 3)
        assert np.allclose(b.matmul(a, b.transpose(c)), a @ c.T)

    def test_cosine_matches_reference(self, b):
        rng = np.random.default_rng(0)
        Q = rng.normal(size=(5, 16))
        M = rng.normal(size=(3, 16))
        ref = (Q @ M.T) / np.outer(
            np.linalg.norm(Q, axis=1), np.linalg.norm(M, axis=1)
        )
        assert np.allclose(b.cosine_similarity(Q, M), ref)

    def test_cosine_zero_vector_convention(self, b):
        Q = np.zeros((1, 4))
        M = np.eye(2, 4)
        assert np.array_equal(b.cosine_similarity(Q, M), np.zeros((1, 2)))

    def test_roll(self, b):
        v = np.array([1.0, 2.0, 3.0])
        assert np.array_equal(b.roll(v, 1), [3.0, 1.0, 2.0])

    def test_scatter_add_rows_duplicates(self, b):
        target = np.zeros((3, 2))
        b.scatter_add_rows(
            target, np.array([0, 0, 2]), np.ones((3, 2))
        )
        assert np.array_equal(target, [[2.0, 2.0], [0.0, 0.0], [1.0, 1.0]])

    def test_scatter_add_rows_matmul_path_matches_ufunc(self, b):
        """The one-hot fast path must equal np.add.at up to fp tolerance."""
        rng = np.random.default_rng(1)
        idx = rng.integers(0, 4, size=100)
        values = rng.normal(size=(100, 8))
        fast = np.zeros((4, 8))
        ref = np.zeros((4, 8))
        b.scatter_add_rows(fast, idx, values)  # idx.size > rows → matmul
        np.add.at(ref, idx, values)
        assert np.allclose(fast, ref)

    def test_scatter_add_cells(self, b):
        target = np.zeros((3, 4))
        rows = np.array([0, 2, 0])
        cols = np.array([1, 3])
        values = np.ones((3, 2))
        b.scatter_add_cells(target, rows, cols, values)
        assert target[0, 1] == 2.0 and target[0, 3] == 2.0
        assert target[2, 1] == 1.0 and target[2, 3] == 1.0
        assert target.sum() == 6.0

    def test_topk_desc_sorted(self, b):
        scores = np.array([[0.1, 0.9, 0.5, 0.3]])
        idx, vals = b.topk_desc(scores, 3)
        assert np.array_equal(idx[0], [1, 2, 3])
        assert np.array_equal(vals[0], [0.9, 0.5, 0.3])

    def test_topk_desc_matches_argsort(self, b):
        rng = np.random.default_rng(2)
        scores = rng.normal(size=(20, 11))
        idx, _ = b.topk_desc(scores, 4)
        ref = np.argsort(-scores, axis=1)[:, :4]
        assert np.array_equal(idx, ref)

    def test_rng_draws_match_numpy(self, b):
        a = b.draw_normal(np.random.default_rng(7), 0.0, 1.0, (3, 4), np.float32)
        ref = np.random.default_rng(7).normal(0.0, 1.0, size=(3, 4))
        assert a.dtype == np.float32
        assert np.allclose(a, ref.astype(np.float32))

    def test_to_numpy_zero_copy(self, b):
        x = np.ones(3)
        assert b.to_numpy(x) is x


class TestMemoryBackendThreading:
    def test_memory_dtype(self):
        mem = AssociativeMemory(3, 8, dtype="float32")
        assert mem.vectors.dtype == np.float32
        mem.accumulate(np.ones((2, 8)), [0, 1])
        assert mem.vectors.dtype == np.float32

    def test_default_dtype_stays_float64(self):
        assert AssociativeMemory(2, 4).vectors.dtype == np.float64

    def test_set_vectors_casts(self):
        mem = AssociativeMemory(2, 4, dtype="float32")
        mem.set_vectors(np.ones((2, 4), dtype=np.float64))
        assert mem.vectors.dtype == np.float32

    def test_set_vectors_shape_checked(self):
        with pytest.raises(ValueError, match="shape"):
            AssociativeMemory(2, 4).set_vectors(np.ones((3, 4)))

    def test_similarities_always_float64(self):
        mem = AssociativeMemory(2, 4, dtype="float32")
        mem.accumulate(np.eye(2, 4, dtype=np.float32), [0, 1])
        sims = mem.similarities(np.ones((3, 4), dtype=np.float32))
        assert sims.dtype == np.float64

    def test_custom_backend_threads_through(self):
        class Tagged(NumpyBackend):
            name = "tagged-test"

        b = Tagged()
        mem = AssociativeMemory(2, 4, backend=b)
        assert mem.backend is b
        assert mem.copy().backend is b


class TestModelBackendThreading:
    def test_disthd_defaults_to_float32(self):
        from repro import make_model

        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 5))
        y = np.arange(60) % 3
        clf = make_model("disthd", dim=64, iterations=3, seed=0)
        clf.fit(X, y)
        assert clf.encoder_.base_vectors.dtype == np.float32
        assert clf.memory_.vectors.dtype == np.float32
        assert clf.predict(X).dtype.kind in "iu"

    def test_disthd_float64_opt_in(self):
        from repro import make_model

        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 5))
        y = np.arange(60) % 3
        clf = make_model("disthd", dim=64, iterations=3, seed=0, dtype="float64")
        clf.fit(X, y)
        assert clf.memory_.vectors.dtype == np.float64

    def test_dtype_does_not_change_predictions_here(self):
        from repro import make_model

        rng = np.random.default_rng(1)
        X = rng.normal(size=(90, 6))
        y = np.arange(90) % 3
        a = make_model("disthd", dim=128, iterations=4, seed=0).fit(X, y)
        b = make_model(
            "disthd", dim=128, iterations=4, seed=0, dtype="float64"
        ).fit(X, y)
        # Same seeds → same encoder parameters (up to rounding); on a
        # well-separated problem the precision change must not flip labels.
        agree = np.mean(a.predict(X) == b.predict(X))
        assert agree > 0.95

    def test_config_rejects_unknown_backend(self):
        from repro.core.config import DistHDConfig

        with pytest.raises(KeyError, match="unknown backend"):
            DistHDConfig(backend="not-a-backend")

    def test_config_rejects_unknown_dtype(self):
        from repro.core.config import DistHDConfig

        with pytest.raises(ValueError, match="unknown dtype"):
            DistHDConfig(dtype="float7")

    def test_experiment_spec_threads_backend_dtype(self):
        from repro.api import run_experiment

        result = run_experiment(
            model="disthd", dataset="diabetes", scale=0.01, seed=0,
            model_params={"dim": 32, "iterations": 2},
            dtype="float64", backend="numpy",
        )
        assert result.test_accuracy >= 0.0

    def test_baselines_default_float32(self):
        from repro import make_model

        rng = np.random.default_rng(3)
        X = rng.normal(size=(40, 4))
        y = np.arange(40) % 2
        for name in ("onlinehd", "neuralhd"):
            clf = make_model(name, dim=32, iterations=2, seed=0)
            clf.fit(X, y)
            assert clf.memory_.vectors.dtype == np.float32, name
