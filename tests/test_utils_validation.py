"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_features_match,
    check_labels,
    check_matrix,
    check_paired,
    check_probability,
    check_vector,
)


class TestCheckMatrix:
    def test_passthrough(self):
        X = np.ones((3, 4))
        out = check_matrix(X)
        assert out.shape == (3, 4)
        assert out.dtype == np.float64

    def test_1d_promoted_to_row(self):
        assert check_matrix([1.0, 2.0, 3.0]).shape == (1, 3)

    def test_list_coerced(self):
        assert check_matrix([[1, 2], [3, 4]]).shape == (2, 2)

    def test_3d_rejected(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            check_matrix(np.zeros((2, 2, 2)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            check_matrix(np.zeros((0, 3)))

    def test_empty_allowed_when_requested(self):
        assert check_matrix(np.zeros((0, 3)), allow_empty=True).shape == (0, 3)

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN or infinity"):
            check_matrix([[1.0, np.nan]])

    def test_inf_rejected(self):
        with pytest.raises(ValueError, match="NaN or infinity"):
            check_matrix([[np.inf, 0.0]])

    def test_nonfinite_allowed_when_disabled(self):
        out = check_matrix([[np.nan, 1.0]], ensure_finite=False)
        assert np.isnan(out[0, 0])

    def test_custom_name_in_error(self):
        with pytest.raises(ValueError, match="features"):
            check_matrix(np.zeros((0, 1)), name="features")


class TestCheckVector:
    def test_flattens(self):
        assert check_vector([[1], [2]]).shape == (2,)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            check_vector([])

    def test_empty_allowed(self):
        assert check_vector([], allow_empty=True).shape == (0,)


class TestCheckPaired:
    def test_match(self):
        X, y = check_paired([[1, 2], [3, 4]], [0, 1])
        assert X.shape == (2, 2)
        assert y.shape == (2,)

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError, match="disagree on sample count"):
            check_paired([[1, 2], [3, 4]], [0, 1, 2])


class TestCheckLabels:
    def test_returns_classes(self):
        labels, classes = check_labels([2, 0, 2, 1])
        assert np.array_equal(classes, [0, 1, 2])
        assert labels.dtype == np.int64

    def test_float_integers_accepted(self):
        labels, _ = check_labels([0.0, 1.0, 2.0])
        assert np.array_equal(labels, [0, 1, 2])

    def test_fractional_rejected(self):
        with pytest.raises(ValueError, match="integer class labels"):
            check_labels([0.5, 1.0])

    def test_range_enforced(self):
        with pytest.raises(ValueError, match="must lie in"):
            check_labels([0, 5], n_classes=3)

    def test_negative_rejected_with_range(self):
        with pytest.raises(ValueError, match="must lie in"):
            check_labels([-1, 0], n_classes=2)


class TestCheckProbability:
    @pytest.mark.parametrize("p", [0.0, 0.5, 1.0])
    def test_valid(self, p):
        assert check_probability(p) == p

    @pytest.mark.parametrize("p", [-0.01, 1.01, 5])
    def test_invalid(self, p):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            check_probability(p)


class TestCheckFeaturesMatch:
    def test_ok(self):
        check_features_match(5, 5)

    def test_mismatch(self):
        with pytest.raises(ValueError, match="fit with 5 features but received 4"):
            check_features_match(5, 4)
