"""Property tests for repro.hdc.packed and the packed backend kernels.

The packed path promises *exact* equivalence, not approximation: every
packed Hamming score must be bit-identical to the unpacked binary scorer
it replaces, across dimensions that exercise the padding contract
(D % 64 == 0, D % 64 != 0, D < 64), input dtypes, chunk sizes, both
popcount implementations and every registered backend.
"""

import numpy as np
import pytest

from repro.backend import default_backend, get_backend, supports_packed, torch_is_available
from repro.hdc import packed
from repro.hdc.ops import (
    hamming_similarity,
    pack_hypervectors,
    packed_hamming_similarity,
    unpack_hypervectors,
)

torch_required = pytest.mark.skipif(
    not torch_is_available(), reason="torch is not installed"
)

DIMS = (64, 100, 4096)


def _rand_bipolar(rng, n, dim, dtype=np.float64):
    return rng.choice(np.asarray([-1.0, 1.0], dtype=dtype), size=(n, dim))


def _reference_scores(q, m):
    """Unpacked binary scorer: (D - 2*hamming) / D on the >= 0 signs."""
    qb = (np.asarray(q) >= 0).astype(np.int64)
    mb = (np.asarray(m) >= 0).astype(np.int64)
    counts = (qb[:, None, :] != mb[None, :, :]).sum(axis=2)
    dim = np.float64(q.shape[-1])
    return (dim - 2.0 * counts.astype(np.float64)) / dim


# ---------------------------------------------------------------- primitives


class TestPackUnpack:
    @pytest.mark.parametrize("dim", (1, 63, 64, 65, 100, 4096))
    def test_roundtrip(self, dim):
        rng = np.random.default_rng(dim)
        x = _rand_bipolar(rng, 7, dim)
        words = packed.pack_sign_rows(x)
        assert words.dtype == np.uint64
        assert words.shape == (7, packed.words_per_row(dim))
        bits = unpack_hypervectors(words, dim)
        np.testing.assert_array_equal(bits, (x >= 0).astype(np.uint8))

    @pytest.mark.parametrize("dim", (1, 63, 65, 100))
    def test_pad_bits_are_zero(self, dim):
        rng = np.random.default_rng(dim)
        words = packed.pack_sign_rows(_rand_bipolar(rng, 5, dim))
        # Zero out the payload; any surviving set bit lives in the pad.
        payload = packed.pack_bool_rows(np.ones((5, dim), dtype=bool))
        assert not np.any(words & ~payload)

    def test_packed_nbytes(self):
        assert packed.packed_nbytes(3, 100) == 3 * 2 * 8
        assert packed.packed_nbytes(1, 64) == 8

    @pytest.mark.parametrize(
        "dtype", (np.float32, np.float64, np.int8, np.int64)
    )
    def test_dtype_invariance(self, dtype):
        rng = np.random.default_rng(3)
        x = _rand_bipolar(rng, 4, 100).astype(dtype)
        np.testing.assert_array_equal(
            packed.pack_sign_rows(x),
            packed.pack_sign_rows(x.astype(np.float64)),
        )

    def test_code_rows_match_sign_rows(self):
        rng = np.random.default_rng(4)
        x = _rand_bipolar(rng, 6, 100)
        codes = (x >= 0).astype(np.uint8)
        np.testing.assert_array_equal(
            packed.pack_code_rows(codes), packed.pack_sign_rows(x)
        )


class TestPopcount:
    def test_lut_matches_native(self):
        rng = np.random.default_rng(0)
        words = rng.integers(0, 2**64, size=(5, 7), dtype=np.uint64)
        np.testing.assert_array_equal(
            packed.popcount_words_lut(words),
            packed.popcount_words_native(words),
        )

    def test_import_time_selection(self):
        expected = (
            packed.popcount_words_native
            if packed.HAS_BITWISE_COUNT
            else packed.popcount_words_lut
        )
        assert packed.popcount_words is expected

    @pytest.mark.parametrize("dim", DIMS)
    def test_forced_lut_fallback_scores_identical(self, monkeypatch, dim):
        """NumPy<2.0 regression stand-in: force the LUT and require
        bit-identical scores from every packed entry point."""
        rng = np.random.default_rng(dim)
        q, m = _rand_bipolar(rng, 9, dim), _rand_bipolar(rng, 4, dim)
        qw, mw = packed.pack_sign_rows(q), packed.pack_sign_rows(m)
        native = packed.hamming_scores_packed(qw, mw, dim)
        native_tuned = get_backend("numpy").hamming_scores_packed(qw, mw, dim)
        monkeypatch.setattr(packed, "popcount_words", packed.popcount_words_lut)
        np.testing.assert_array_equal(
            packed.hamming_scores_packed(qw, mw, dim), native
        )
        np.testing.assert_array_equal(
            get_backend("numpy").hamming_scores_packed(qw, mw, dim),
            native_tuned,
        )
        np.testing.assert_array_equal(native, native_tuned)


# ------------------------------------------------------------------ scoring


class TestPackedScores:
    @pytest.mark.parametrize("dim", DIMS)
    @pytest.mark.parametrize("dtype", (np.float32, np.float64))
    def test_matches_unpacked_reference(self, dim, dtype):
        rng = np.random.default_rng(dim)
        q = _rand_bipolar(rng, 11, dim, dtype)
        m = _rand_bipolar(rng, 5, dim, dtype)
        scores = packed_hamming_similarity(
            pack_hypervectors(q), pack_hypervectors(m), dim
        )
        np.testing.assert_array_equal(scores, _reference_scores(q, m))

    @pytest.mark.parametrize("dim", DIMS)
    @pytest.mark.parametrize("chunk_size", (1, 3, 64, None))
    def test_chunk_size_invariance(self, dim, chunk_size):
        rng = np.random.default_rng(dim + 1)
        qw = packed.pack_sign_rows(_rand_bipolar(rng, 10, dim))
        mw = packed.pack_sign_rows(_rand_bipolar(rng, 4, dim))
        full = packed.hamming_scores_packed(qw, mw, dim)
        np.testing.assert_array_equal(
            packed.hamming_scores_packed(qw, mw, dim, chunk_size=chunk_size),
            full,
        )
        np.testing.assert_array_equal(
            get_backend("numpy").hamming_scores_packed(
                qw, mw, dim, chunk_size=chunk_size
            ),
            full,
        )

    def test_matches_dense_hamming_similarity(self):
        """Packed scores relate affinely to the routed dense op:
        sim_packed = 2 * hamming_similarity - 1 on binarised inputs."""
        rng = np.random.default_rng(9)
        q, m = _rand_bipolar(rng, 8, 100), _rand_bipolar(rng, 3, 100)
        dense = hamming_similarity((q >= 0).astype(np.int8), (m >= 0).astype(np.int8))
        scores = packed_hamming_similarity(
            pack_hypervectors(q), pack_hypervectors(m), 100
        )
        np.testing.assert_allclose(scores, 2.0 * dense - 1.0, atol=1e-12)

    def test_identical_rows_score_one(self):
        rng = np.random.default_rng(2)
        x = _rand_bipolar(rng, 3, 100)
        scores = packed_hamming_similarity(
            pack_hypervectors(x), pack_hypervectors(x), 100
        )
        np.testing.assert_array_equal(np.diag(scores), np.ones(3))
        opposite = packed_hamming_similarity(
            pack_hypervectors(x), pack_hypervectors(-x), 100
        )
        np.testing.assert_array_equal(np.diag(opposite), -np.ones(3))

    def test_word_count_mismatch_raises(self):
        qw = np.zeros((2, 2), dtype=np.uint64)
        mw = np.zeros((3, 3), dtype=np.uint64)
        with pytest.raises(ValueError, match="word"):
            get_backend("numpy").hamming_scores_packed(qw, mw, 100)


# ------------------------------------------------------------------ backends


class TestBackendCapability:
    def test_capability_flag(self):
        assert supports_packed() is True
        assert supports_packed("numpy") is True
        assert default_backend().supports_packed is True

    @pytest.mark.parametrize("dim", DIMS)
    def test_generic_equals_tuned(self, dim):
        from repro.backend.base import ArrayBackend

        rng = np.random.default_rng(dim + 2)
        q, m = _rand_bipolar(rng, 7, dim), _rand_bipolar(rng, 3, dim)
        backend = get_backend("numpy")
        qw, mw = backend.packbits_rows(q), backend.packbits_rows(m)
        np.testing.assert_array_equal(
            ArrayBackend.hamming_scores_packed(backend, qw, mw, dim),
            backend.hamming_scores_packed(qw, mw, dim),
        )

    @torch_required
    @pytest.mark.parametrize("dim", DIMS)
    def test_torch_matches_numpy(self, dim):
        rng = np.random.default_rng(dim + 3)
        q, m = _rand_bipolar(rng, 7, dim), _rand_bipolar(rng, 3, dim)
        np_b, t_b = get_backend("numpy"), get_backend("torch")
        assert supports_packed("torch") is True
        qw = t_b.packbits_rows(t_b.asarray(q, dtype=np.float32))
        mw = t_b.packbits_rows(t_b.asarray(m, dtype=np.float32))
        np.testing.assert_array_equal(qw, np_b.packbits_rows(q))
        np.testing.assert_array_equal(
            t_b.hamming_scores_packed(qw, mw, dim),
            np_b.hamming_scores_packed(qw, mw, dim),
        )


# -------------------------------------------------------------- bit flipping


class TestFlipPackedBits:
    @pytest.mark.parametrize("dim", (63, 64, 100))
    def test_exact_flip_count(self, dim):
        rng = np.random.default_rng(dim)
        words = packed.pack_sign_rows(_rand_bipolar(rng, 6, dim))
        before = unpack_hypervectors(words, dim).copy()
        n = packed.flip_packed_bits(words, 17, dim, np.random.default_rng(0))
        assert n == 17
        after = unpack_hypervectors(words, dim)
        assert int((before != after).sum()) == 17

    def test_pad_bits_survive_flips(self):
        dim = 100
        rng = np.random.default_rng(5)
        words = packed.pack_sign_rows(_rand_bipolar(rng, 4, dim))
        packed.flip_packed_bits(words, 150, dim, np.random.default_rng(1))
        payload = packed.pack_bool_rows(np.ones((4, dim), dtype=bool))
        assert not np.any(words & ~payload)

    def test_zero_flips_is_identity(self):
        words = packed.pack_sign_rows(np.ones((2, 64)))
        before = words.copy()
        assert packed.flip_packed_bits(
            words, 0, 64, np.random.default_rng(0)
        ) == 0
        np.testing.assert_array_equal(words, before)

    def test_flips_are_distinct_cells(self):
        # Flipping all cells once turns every bit; XOR twice would not.
        dim = 64
        words = packed.pack_sign_rows(np.ones((1, dim)))
        before = unpack_hypervectors(words, dim).copy()
        packed.flip_packed_bits(words, dim, dim, np.random.default_rng(2))
        np.testing.assert_array_equal(
            unpack_hypervectors(words, dim), 1 - before
        )
