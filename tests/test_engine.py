"""Tests for the training engine: loop, callbacks, executors."""

import numpy as np
import pytest

from repro.core.history import IterationRecord, TrainingHistory
from repro.engine import (
    Callback,
    CheckpointCallback,
    ConvergenceCallback,
    EngineState,
    HistoryCallback,
    ProcessExecutor,
    SerialExecutor,
    TimingCallback,
    TrainingEngine,
    get_executor,
    resolve_n_jobs,
)
from repro.engine.executor import executor_map, is_picklable
from repro.utils.validation import check_n_jobs


def _record(ctx, acc=1.0):
    return IterationRecord(iteration=ctx.iteration, train_accuracy=acc)


class TestTrainingEngine:
    def test_runs_budget(self):
        seen = []
        engine = TrainingEngine(4)
        state = engine.run(lambda ctx: (seen.append(ctx.iteration), _record(ctx))[1])
        assert seen == [0, 1, 2, 3]
        assert state.n_iterations == 4
        assert state.max_iterations == 4

    def test_is_last_flag(self):
        flags = []
        TrainingEngine(3).run(lambda ctx: (flags.append(ctx.is_last), _record(ctx))[1])
        assert flags == [False, False, True]

    def test_stop_via_callback(self):
        class StopAfterTwo(Callback):
            def on_iteration_end(self, state, record):
                if state.n_iterations == 2:
                    state.stop = True

        state = TrainingEngine(10, callbacks=[StopAfterTwo()]).run(_record)
        assert state.n_iterations == 2

    def test_rejects_bad_iterations(self):
        with pytest.raises(ValueError, match="iterations"):
            TrainingEngine(0)

    def test_rejects_non_callback(self):
        with pytest.raises(TypeError, match="Callback"):
            TrainingEngine(2, callbacks=[object()])

    def test_rejects_non_record_step(self):
        with pytest.raises(TypeError, match="IterationRecord"):
            TrainingEngine(2).run(lambda ctx: 0.5)

    def test_reused_state_resets_run_flags(self):
        # Continued training may hand the previous run's state back in;
        # stale stop/converged/failed flags must not truncate the new
        # run or mislabel it as crashed.
        stale = EngineState(stop=True, converged=True, failed=True, n_iterations=7)
        seen_converged = []

        def step(ctx):
            seen_converged.append(ctx.converged)
            return _record(ctx)

        state = TrainingEngine(3).run(step, state=stale)
        assert state.n_iterations == 3
        assert seen_converged == [False, False, False]
        assert not state.stop and not state.failed

    def test_on_fit_end_runs_when_step_raises(self):
        # Teardown callbacks must fire even when the step function blows
        # up mid-run, and they must see state.failed so they can release
        # resources without treating the run as complete.
        class Recorder(Callback):
            def __init__(self):
                self.fit_ended = False
                self.saw_failed = None

            def on_fit_end(self, state):
                self.fit_ended = True
                self.saw_failed = state.failed

        recorder = Recorder()

        def exploding_step(ctx):
            if ctx.iteration == 1:
                raise RuntimeError("step failure")
            return _record(ctx)

        engine = TrainingEngine(4, callbacks=[recorder])
        with pytest.raises(RuntimeError, match="step failure"):
            engine.run(exploding_step)
        assert recorder.fit_ended
        assert recorder.saw_failed is True

    def test_no_final_checkpoint_on_step_exception(self):
        # A raising step leaves the model half-mutated; the checkpoint
        # callback must not snapshot that state as the last iteration.
        checkpoints = CheckpointCallback(lambda: "snap", every=5)

        def exploding_step(ctx):
            if ctx.iteration == 2:
                raise RuntimeError("boom")
            return _record(ctx)

        engine = TrainingEngine(4, callbacks=[checkpoints])
        with pytest.raises(RuntimeError, match="boom"):
            engine.run(exploding_step)
        assert checkpoints.checkpoints == []

    def test_on_fit_end_runs_when_on_fit_begin_raises(self):
        # A callback whose setup completed gets its teardown even when a
        # later callback's on_fit_begin raises.
        class Resource(Callback):
            def __init__(self):
                self.open = False

            def on_fit_begin(self, state):
                self.open = True

            def on_fit_end(self, state):
                self.open = False

        class Broken(Callback):
            def on_fit_begin(self, state):
                raise RuntimeError("setup failure")

        resource = Resource()
        engine = TrainingEngine(3, callbacks=[resource, Broken()])
        with pytest.raises(RuntimeError, match="setup failure"):
            engine.run(_record)
        assert not resource.open

    def test_callback_order(self):
        calls = []

        class Tracer(Callback):
            def on_fit_begin(self, state):
                calls.append("begin")

            def on_iteration_begin(self, state):
                calls.append(f"it{state.iteration}")

            def on_iteration_end(self, state, record):
                calls.append(f"end{state.iteration}")

            def on_fit_end(self, state):
                calls.append("done")

        TrainingEngine(2, callbacks=[Tracer()]).run(_record)
        assert calls == ["begin", "it0", "end0", "it1", "end1", "done"]


class TestHistoryCallback:
    def test_appends_and_publishes(self):
        cb = HistoryCallback()
        state = TrainingEngine(3, callbacks=[cb]).run(_record)
        assert state.history is cb.history
        assert len(cb.history) == 3
        assert cb.history.accuracies == [1.0, 1.0, 1.0]

    def test_existing_history_reused(self):
        history = TrainingHistory()
        TrainingEngine(2, callbacks=[HistoryCallback(history)]).run(_record)
        assert len(history) == 2


class TestConvergenceCallback:
    def test_stops_on_plateau(self):
        accs = iter([0.5, 0.6, 0.605, 0.606, 0.9, 0.9])
        state = TrainingEngine(
            6, callbacks=[ConvergenceCallback(patience=2, tol=0.01)]
        ).run(lambda ctx: _record(ctx, next(accs)))
        assert state.converged and state.stop
        assert state.n_iterations == 4  # matches ConvergenceTracker doctest

    def test_patience_none_never_stops(self):
        state = TrainingEngine(
            5, callbacks=[ConvergenceCallback(patience=None)]
        ).run(lambda ctx: _record(ctx, 0.5))
        assert not state.converged
        assert state.n_iterations == 5


class TestTimingCallback:
    def test_records_per_iteration(self):
        state = TrainingEngine(3, callbacks=[TimingCallback()]).run(_record)
        assert len(state.iteration_seconds) == 3
        assert all(s >= 0 for s in state.iteration_seconds)


class TestCheckpointCallback:
    def test_snapshots_every_k_and_final(self):
        counter = iter(range(100))
        cb = CheckpointCallback(lambda: next(counter), every=2)
        TrainingEngine(5, callbacks=[cb]).run(_record)
        iterations = [it for it, _ in cb.checkpoints]
        assert iterations == [1, 3, 4]  # every 2nd, plus the final state

    def test_rejects_bad_every(self):
        with pytest.raises(ValueError, match="every"):
            CheckpointCallback(lambda: None, every=0)


class TestNJobsResolution:
    def test_serial_specs(self):
        assert resolve_n_jobs(None) == 1
        assert resolve_n_jobs(1) == 1

    def test_explicit_count(self):
        assert resolve_n_jobs(3) == 3

    def test_all_cores(self):
        assert resolve_n_jobs(-1) >= 1

    @pytest.mark.parametrize("bad", [0, -2, 1.5])
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(ValueError, match="n_jobs"):
            resolve_n_jobs(bad)

    def test_check_n_jobs_passthrough(self):
        assert check_n_jobs(None) is None
        assert check_n_jobs(-1) == -1
        assert check_n_jobs(4) == 4


def _square(x):
    return x * x


def _type_name(x):
    return type(x).__name__


def _raise_type_error(x):
    raise TypeError("task-level failure")


def _apply_factory(factory, _item):
    return factory()


class TestExecutors:
    def test_serial_map_order(self):
        assert SerialExecutor().map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_process_map_order(self):
        with ProcessExecutor(2) as pool:
            assert pool.map(_square, list(range(6))) == [0, 1, 4, 9, 16, 25]

    def test_process_requires_two_workers(self):
        with pytest.raises(ValueError, match="at least 2"):
            ProcessExecutor(1)

    def test_get_executor_types(self):
        assert isinstance(get_executor(None), SerialExecutor)
        assert isinstance(get_executor(1), SerialExecutor)
        pool = get_executor(2)
        assert isinstance(pool, ProcessExecutor)
        pool.close()

    def test_get_executor_explicit_wins(self):
        serial = SerialExecutor()
        assert get_executor(4, executor=serial) is serial

    def test_empty_map(self):
        with ProcessExecutor(2) as pool:
            assert pool.map(_square, []) == []

    def test_executor_map_serial(self):
        assert executor_map(_square, [2, 3], n_jobs=1) == [4, 9]

    def test_executor_map_parallel(self):
        assert executor_map(_square, [2, 3], n_jobs=2) == [4, 9]

    def test_executor_map_unpicklable_falls_back(self):
        # Local closures cannot cross a process boundary; the map must
        # silently run serial instead of crashing.
        offset = 10
        fn = lambda x: x + offset  # noqa: E731
        assert not is_picklable(fn)
        assert executor_map(fn, [1, 2], n_jobs=2) == [11, 12]

    def test_executor_map_heterogeneous_unpicklable_falls_back(self):
        # The cheap probe only checks the first item; a later unpicklable
        # item raises mid-run from the pool and must still fall back to
        # serial execution rather than surface a transport error.
        import threading

        items = [1, threading.Lock()]
        assert is_picklable(items[0]) and not is_picklable(items[1])
        assert executor_map(_type_name, items, n_jobs=2) == ["int", "lock"]

    def test_partial_probe_skips_arrays_but_catches_lambdas(self):
        # The fn probe must not serialize data arrays bound into a
        # partial (grid/crossval bind whole datasets), yet still detect
        # an unpicklable callable anywhere in the partial.
        from functools import partial

        from repro.engine.executor import _fn_probably_picklable

        data = np.zeros((4, 3))
        assert _fn_probably_picklable(partial(_square, data))
        assert not _fn_probably_picklable(partial(lambda x: x, data))
        assert not _fn_probably_picklable(
            partial(_type_name, lambda: None)  # lambda bound as an arg
        )

    def test_executor_map_partial_bound_lambda_falls_back(self):
        # A partial binding an unpicklable factory (the cross_validate
        # lambda case) must run serially instead of crashing.
        from functools import partial

        fn = partial(_apply_factory, lambda: 7)
        assert executor_map(fn, [0, 1], n_jobs=2) == [7, 7]

    def test_executor_map_task_errors_propagate(self):
        # A TypeError raised by the task itself (picklable inputs) is a
        # real failure, not a transport problem — no serial retry.
        with pytest.raises(TypeError, match="task-level failure"):
            executor_map(_raise_type_error, [1, 2], n_jobs=2)
