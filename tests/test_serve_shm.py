"""Tests for repro.serve.fleet.shm — shared-memory artifact publication.

Everything runs in-process: publish on the "supervisor" side, attach a
second mapping to stand in for a worker, and exercise the CRC integrity
and pristine-repair paths without spawning any fleet.
"""

import numpy as np
import pytest

from repro.deploy.quantized import QuantizedHDCModel
from repro.models.registry import make_model
from repro.serve.fleet.shm import EXIT_CORRUPT, SharedArtifact


@pytest.fixture(scope="module")
def fitted(small_problem):
    train_x, train_y, test_x, test_y = small_problem
    model = make_model("disthd", dim=128, iterations=2, seed=3)
    model.fit(train_x, train_y)
    return model, test_x


def _published(fitted, *, packed, bits=1, epoch=1):
    model, test_x = fitted
    artifact = QuantizedHDCModel(model, bits=bits, packed=packed)
    shared = SharedArtifact.publish(artifact, epoch=epoch)
    return artifact, shared, test_x


class TestPublishAttach:
    @pytest.mark.parametrize("packed,bits", [(True, 1), (False, 8)])
    def test_rebuild_parity(self, fitted, packed, bits):
        artifact, shared, test_x = _published(fitted, packed=packed, bits=bits)
        try:
            attached = SharedArtifact.attach(shared.name)
            try:
                rebuilt = attached.rebuild_model()
                np.testing.assert_array_equal(
                    rebuilt.predict(test_x), artifact.predict(test_x)
                )
                np.testing.assert_allclose(
                    rebuilt.decision_scores(test_x),
                    artifact.decision_scores(test_x),
                )
            finally:
                attached.close()
        finally:
            shared.close()
            shared.unlink()

    def test_rebuild_is_zero_copy_for_packed_words(self, fitted):
        artifact, shared, _ = _published(fitted, packed=True)
        try:
            rebuilt = shared.rebuild_model()
            words = rebuilt.packed_words
            assert words is not None
            # The class memory aliases the segment, not a copy.
            assert words.base is not None
            del rebuilt, words
        finally:
            shared.close()
            shared.unlink()

    def test_header_metadata(self, fitted):
        artifact, shared, _ = _published(fitted, packed=True, epoch=7)
        try:
            assert shared.epoch == 7
            header = shared.header
            assert header["format"] == "repro-fleet-artifact-1"
            assert header["model"]["packed"] is True
            assert {e["name"] for e in header["arrays"]} >= {
                "classes", "words",
            }
            assert shared.nbytes > 0
        finally:
            shared.close()
            shared.unlink()

    def test_publish_rejects_non_artifact(self, fitted):
        model, _ = fitted
        with pytest.raises(TypeError, match="QuantizedHDCModel"):
            SharedArtifact.publish(model, epoch=1)

    def test_unlink_idempotent(self, fitted):
        _, shared, _ = _published(fitted, packed=True)
        shared.close()
        shared.unlink()
        shared.unlink()  # second call is a no-op, not an error


class TestIntegrity:
    def test_fresh_segment_verifies(self, fitted):
        _, shared, _ = _published(fitted, packed=True)
        try:
            assert shared.verify()
        finally:
            shared.close()
            shared.unlink()

    def test_corruption_detected_and_repaired(self, fitted):
        artifact, shared, test_x = _published(fitted, packed=True)
        try:
            reference = artifact.predict(test_x)
            view = shared.array_view("words")
            view[0] ^= np.uint64(1)
            assert not shared.verify()
            shared.restore_pristine()
            assert shared.verify()
            rebuilt = shared.rebuild_model()
            np.testing.assert_array_equal(rebuilt.predict(test_x), reference)
            del view, rebuilt
        finally:
            shared.close()
            shared.unlink()

    def test_attached_side_cannot_repair(self, fitted):
        _, shared, _ = _published(fitted, packed=True)
        try:
            attached = SharedArtifact.attach(shared.name)
            try:
                with pytest.raises(RuntimeError, match="publishing side"):
                    attached.restore_pristine()
            finally:
                attached.close()
        finally:
            shared.close()
            shared.unlink()

    def test_unknown_array_view_raises(self, fitted):
        _, shared, _ = _published(fitted, packed=True)
        try:
            with pytest.raises(KeyError, match="nonsense"):
                shared.array_view("nonsense")
        finally:
            shared.close()
            shared.unlink()

    def test_exit_corrupt_is_distinct_status(self):
        # The supervisor keys corruption repair off this exact status; it
        # must stay clear of the shell/signal exit-code ranges.
        assert EXIT_CORRUPT == 64
