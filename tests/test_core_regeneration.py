"""Tests for repro.core.regeneration — Algorithm 2."""

import numpy as np
import pytest

from repro.core.config import DistHDConfig
from repro.core.regeneration import (
    _normalize_matrix,
    _top_fraction,
    distance_matrices,
    regenerate_step,
    select_undesired_dimensions,
)
from repro.core.topk import partition_outcomes
from repro.hdc.encoders.rbf import RBFEncoder
from repro.hdc.memory import AssociativeMemory


def _setup(dim=16, n=30, seed=0):
    """A memory + encoded batch with a mix of top-2 outcomes."""
    rng = np.random.default_rng(seed)
    mem = AssociativeMemory(4, dim)
    mem.vectors = rng.normal(size=(4, dim))
    encoded = rng.normal(size=(n, dim))
    labels = rng.integers(0, 4, size=n)
    part = partition_outcomes(mem, encoded, labels)
    return mem, encoded, labels, part


class TestDistanceMatrices:
    def test_shapes(self):
        mem, encoded, labels, part = _setup()
        M, N = distance_matrices(encoded, labels, part, mem)
        assert M.shape == (part.partial.size, 16)
        assert N.shape == (part.incorrect.size, 16)

    def test_correct_samples_excluded(self):
        """Only partial+incorrect rows enter the matrices (Alg. 2 line 4-5)."""
        mem, encoded, labels, part = _setup()
        M, N = distance_matrices(encoded, labels, part, mem)
        assert M.shape[0] + N.shape[0] == (
            part.n_samples - part.correct.size
        )

    def test_m_row_formula(self):
        """M_i = α|H−C_true| − β|H−C_pred| with normalised class vectors."""
        mem, encoded, labels, part = _setup()
        if part.partial.size == 0:
            pytest.skip("no partial samples in this draw")
        alpha, beta = 1.5, 0.5
        M, _ = distance_matrices(
            encoded, labels, part, mem, alpha=alpha, beta=beta
        )
        i = part.partial[0]
        C = mem.normalized()
        expected = alpha * np.abs(encoded[i] - C[labels[i]]) - beta * np.abs(
            encoded[i] - C[part.top1[i]]
        )
        assert np.allclose(M[0], expected)

    def test_incorrect_rules_differ(self):
        mem, encoded, labels, part = _setup()
        if part.incorrect.size == 0:
            pytest.skip("no incorrect samples in this draw")
        _, n_prose = distance_matrices(
            encoded, labels, part, mem, incorrect_rule="prose"
        )
        _, n_box = distance_matrices(
            encoded, labels, part, mem, incorrect_rule="algorithm-box"
        )
        assert not np.allclose(n_prose, n_box)

    def test_unknown_rule_rejected(self):
        mem, encoded, labels, part = _setup()
        if part.incorrect.size == 0:
            pytest.skip("no incorrect samples in this draw")
        with pytest.raises(ValueError, match="incorrect_rule"):
            distance_matrices(encoded, labels, part, mem, incorrect_rule="bogus")

    def test_empty_outcome_sets(self):
        """All-correct batch yields two empty matrices."""
        mem = AssociativeMemory(2, 4)
        mem.vectors = np.eye(2, 4)
        encoded = np.eye(2, 4)
        labels = np.array([0, 1])
        part = partition_outcomes(mem, encoded, labels)
        M, N = distance_matrices(encoded, labels, part, mem)
        assert M.shape == (0, 4)
        assert N.shape == (0, 4)


class TestNormalizeMatrix:
    def test_l2_rows(self):
        m = np.array([[3.0, 4.0], [1.0, 0.0]])
        out = _normalize_matrix(m, "l2")
        assert np.allclose(np.linalg.norm(out, axis=1), 1.0)

    def test_l1_rows(self):
        out = _normalize_matrix(np.array([[2.0, -2.0]]), "l1")
        assert np.abs(out).sum() == pytest.approx(1.0)

    def test_minmax_rows(self):
        out = _normalize_matrix(np.array([[1.0, 3.0, 5.0]]), "minmax")
        assert out.min() == 0.0 and out.max() == 1.0

    def test_none_passthrough(self):
        m = np.array([[1.0, 2.0]])
        assert _normalize_matrix(m, "none") is m

    def test_zero_row_safe(self):
        out = _normalize_matrix(np.zeros((1, 3)), "l2")
        assert not np.isnan(out).any()

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="normalization"):
            _normalize_matrix(np.ones((1, 2)), "bogus")


class TestTopFraction:
    def test_selects_highest(self):
        scores = np.array([0.1, 0.9, 0.5, 0.7])
        assert np.array_equal(_top_fraction(scores, 0.5), [1, 3])

    def test_zero_fraction(self):
        assert _top_fraction(np.ones(10), 0.0).size == 0

    def test_full_fraction(self):
        assert _top_fraction(np.ones(10), 1.0).size == 10

    def test_deterministic_under_ties(self):
        scores = np.ones(10)
        a = _top_fraction(scores, 0.3)
        b = _top_fraction(scores, 0.3)
        assert np.array_equal(a, b)

    def test_all_tied_picks_lowest_indices(self):
        # With every score equal, the stable contract is: lowest indices win.
        assert np.array_equal(_top_fraction(np.ones(10), 0.3), [0, 1, 2])

    def test_tie_heavy_matches_stable_argsort_reference(self):
        """The argpartition fast path must reproduce the old stable-argsort
        selection exactly, including boundary ties (PR-3 regression)."""

        def reference(scores, fraction):
            dim = scores.shape[0]
            count = max(0, min(int(round(fraction * dim)), dim))
            if count == 0:
                return np.empty(0, dtype=np.int64)
            order = np.argsort(-scores, kind="stable")
            return np.sort(order[:count])

        rng = np.random.default_rng(0)
        for trial in range(200):
            dim = int(rng.integers(1, 60))
            # Few distinct values → boundary ties on almost every draw.
            scores = rng.integers(0, 4, size=dim).astype(np.float64)
            fraction = float(rng.uniform(0, 1))
            got = _top_fraction(scores, fraction)
            want = reference(scores, fraction)
            assert np.array_equal(got, want), (trial, dim, fraction, scores)

    def test_tied_at_threshold_mixed_values(self):
        # above-threshold dims all selected; tied dims fill by lowest index.
        scores = np.array([5.0, 1.0, 3.0, 3.0, 3.0, 0.0])
        assert np.array_equal(_top_fraction(scores, 0.5), [0, 2, 3])


class TestSelectUndesired:
    def test_intersection_semantics(self):
        """Only dims in both top sets are selected (Alg. 2 line 15)."""
        D = 10
        M = np.zeros((1, D))
        N = np.zeros((1, D))
        M[0, [0, 1, 2]] = [3.0, 2.0, 1.0]
        N[0, [1, 2, 3]] = [3.0, 2.0, 1.0]
        dims = select_undesired_dimensions(
            M, N, regen_rate=0.3, dim=D, normalization="none"
        )
        assert np.array_equal(dims, [1, 2])

    def test_union_semantics(self):
        D = 10
        M = np.zeros((1, D))
        N = np.zeros((1, D))
        M[0, 0] = 1.0
        N[0, 9] = 1.0
        dims = select_undesired_dimensions(
            M, N, regen_rate=0.1, dim=D, normalization="none", selection="union"
        )
        assert np.array_equal(dims, [0, 9])

    def test_m_only_and_n_only(self):
        D = 10
        M = np.zeros((1, D)); M[0, 2] = 1.0
        N = np.zeros((1, D)); N[0, 7] = 1.0
        m_dims = select_undesired_dimensions(
            M, N, regen_rate=0.1, dim=D, normalization="none", selection="m-only"
        )
        n_dims = select_undesired_dimensions(
            M, N, regen_rate=0.1, dim=D, normalization="none", selection="n-only"
        )
        assert np.array_equal(m_dims, [2])
        assert np.array_equal(n_dims, [7])

    def test_empty_matrix_intersection_is_noop(self):
        """No incorrect samples -> intersection selects nothing (safe no-op)."""
        M = np.ones((2, 8))
        N = np.empty((0, 8))
        dims = select_undesired_dimensions(M, N, regen_rate=0.5, dim=8)
        assert dims.size == 0

    def test_empty_matrix_union_uses_other(self):
        M = np.zeros((1, 8)); M[0, 3] = 1.0
        N = np.empty((0, 8))
        dims = select_undesired_dimensions(
            M, N, regen_rate=0.125, dim=8, normalization="none", selection="union"
        )
        assert np.array_equal(dims, [3])

    def test_bad_rate(self):
        with pytest.raises(ValueError, match="regen_rate"):
            select_undesired_dimensions(
                np.ones((1, 4)), np.ones((1, 4)), regen_rate=1.5, dim=4
            )

    def test_bad_selection(self):
        with pytest.raises(ValueError, match="selection"):
            select_undesired_dimensions(
                np.ones((1, 4)), np.ones((1, 4)), regen_rate=0.5, dim=4,
                selection="bogus",
            )


class TestRegenerateStep:
    def test_regenerates_encoder_and_resets_memory(self):
        rng = np.random.default_rng(1)
        dim = 32
        encoder = RBFEncoder(8, dim, seed=0)
        X = rng.normal(size=(40, 8))
        encoded = encoder.encode(X)
        mem = AssociativeMemory(3, dim)
        mem.vectors = rng.normal(size=(3, dim))
        labels = rng.integers(0, 3, size=40)
        part = partition_outcomes(mem, encoded, labels)
        cfg = DistHDConfig(dim=dim, regen_rate=0.5, selection="union")
        report = regenerate_step(encoded, labels, part, mem, encoder, cfg)
        if report.n_regenerated:
            assert not mem.vectors[:, report.dims].any()
            assert encoder.regenerated_count == report.n_regenerated

    def test_report_fields(self):
        rng = np.random.default_rng(2)
        dim = 16
        encoder = RBFEncoder(4, dim, seed=0)
        X = rng.normal(size=(30, 4))
        encoded = encoder.encode(X)
        mem = AssociativeMemory(3, dim)
        mem.vectors = rng.normal(size=(3, dim))
        labels = rng.integers(0, 3, size=30)
        part = partition_outcomes(mem, encoded, labels)
        cfg = DistHDConfig(dim=dim, regen_rate=0.25)
        report = regenerate_step(encoded, labels, part, mem, encoder, cfg)
        assert report.n_partial == part.partial.size
        assert report.n_incorrect == part.incorrect.size
        assert report.n_regenerated == report.dims.size
