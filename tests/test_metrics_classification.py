"""Tests for repro.metrics.classification."""

import numpy as np
import pytest

from repro.metrics.classification import (
    accuracy,
    confusion_matrix,
    per_class_accuracy,
    topk_accuracy,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy([1, 2, 3], [1, 2, 3]) == 1.0

    def test_partial(self):
        assert accuracy([1, 2, 3, 4], [1, 2, 0, 0]) == 0.5

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            accuracy([1], [1, 2])


class TestTopkAccuracy:
    def test_k1_is_argmax_accuracy(self):
        scores = np.array([[0.9, 0.1], [0.2, 0.8]])
        assert topk_accuracy([0, 1], scores, 1) == 1.0
        assert topk_accuracy([1, 0], scores, 1) == 0.0

    def test_k2_recovers_second_place(self):
        scores = np.array([[0.9, 0.5, 0.1]])
        assert topk_accuracy([1], scores, 1) == 0.0
        assert topk_accuracy([1], scores, 2) == 1.0

    def test_monotone_in_k(self, rng):
        scores = rng.normal(size=(50, 6))
        labels = rng.integers(0, 6, 50)
        accs = [topk_accuracy(labels, scores, k) for k in range(1, 7)]
        assert all(a <= b for a, b in zip(accs, accs[1:]))
        assert accs[-1] == 1.0

    def test_bad_k(self):
        with pytest.raises(ValueError, match="k must lie"):
            topk_accuracy([0], np.ones((1, 3)), 4)

    def test_label_out_of_range(self):
        with pytest.raises(ValueError, match="index score columns"):
            topk_accuracy([5], np.ones((1, 3)), 1)

    def test_count_mismatch(self):
        with pytest.raises(ValueError, match="sample count"):
            topk_accuracy([0, 1], np.ones((1, 3)), 1)


class TestConfusionMatrix:
    def test_diagonal_for_perfect(self):
        cm = confusion_matrix([0, 1, 2], [0, 1, 2])
        assert np.array_equal(cm, np.eye(3, dtype=np.int64))

    def test_rows_true_columns_pred(self):
        cm = confusion_matrix([0, 0, 1], [1, 1, 1], n_classes=2)
        assert cm[0, 1] == 2
        assert cm[1, 1] == 1
        assert cm.sum() == 3

    def test_explicit_class_count(self):
        cm = confusion_matrix([0], [0], n_classes=5)
        assert cm.shape == (5, 5)

    def test_negative_labels_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            confusion_matrix([-1], [0])

    def test_labels_exceeding_n_classes(self):
        with pytest.raises(ValueError, match="exceed"):
            confusion_matrix([3], [0], n_classes=2)


class TestPerClassAccuracy:
    def test_values(self):
        out = per_class_accuracy([0, 0, 1, 1], [0, 1, 1, 1])
        assert out[0] == 0.5
        assert out[1] == 1.0

    def test_only_present_classes(self):
        out = per_class_accuracy([2, 2], [2, 0])
        assert set(out) == {2}
