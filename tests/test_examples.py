"""Smoke tests for the example scripts.

Every example must at least compile and import cleanly against the current
API (full executions live in the examples themselves; the quickstart — the
script most likely to be copy-pasted — is executed end to end).
"""

import importlib.util
import py_compile
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load_module(path: Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_exist(self):
        names = {p.stem for p in EXAMPLE_FILES}
        assert {
            "quickstart",
            "activity_recognition",
            "voice_roc_tuning",
            "edge_robustness",
            "regeneration_anatomy",
            "streaming_edge",
        } <= names

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_example_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_example_imports_and_has_main(self, path):
        module = _load_module(path)
        assert callable(getattr(module, "main", None)), (
            f"{path.name} must expose a main() entry point"
        )

    def test_quickstart_runs(self, capsys):
        module = _load_module(EXAMPLES_DIR / "quickstart.py")
        module.main()
        out = capsys.readouterr().out
        assert "test accuracy" in out
        assert "effective dimensionality" in out
