"""Tests for the encoder family (RBF, projection, ID-level, n-gram)."""

import numpy as np
import pytest

from repro.hdc.encoders import (
    IDLevelEncoder,
    NGramEncoder,
    RandomProjectionEncoder,
    RBFEncoder,
)


@pytest.fixture
def features(rng):
    return rng.normal(size=(10, 6))


class TestRBFEncoder:
    def test_output_shape_and_range(self, features):
        enc = RBFEncoder(6, 32, seed=0)
        out = enc.encode(features)
        assert out.shape == (10, 32)
        assert np.all(out >= -1.0) and np.all(out <= 1.0)

    def test_deterministic(self, features):
        a = RBFEncoder(6, 32, seed=5).encode(features)
        b = RBFEncoder(6, 32, seed=5).encode(features)
        assert np.array_equal(a, b)

    def test_formula(self, features):
        """h_i = cos(B_i·F + c_i) * sin(B_i·F), §III-C."""
        enc = RBFEncoder(6, 8, seed=1)
        proj = features @ enc.base_vectors.T
        expected = np.cos(proj + enc.phases) * np.sin(proj)
        assert np.allclose(enc.encode(features), expected)

    def test_projection_scaled_by_sqrt_features(self):
        enc = RBFEncoder(400, 5000, seed=0, bandwidth=1.0)
        assert enc.base_vectors.std() == pytest.approx(1.0 / 20.0, rel=0.05)

    def test_regenerate_changes_only_selected(self, features):
        enc = RBFEncoder(6, 32, seed=2)
        before = enc.encode(features)
        dims = np.array([3, 10, 31])
        enc.regenerate(dims)
        after = enc.encode(features)
        unchanged = np.setdiff1d(np.arange(32), dims)
        assert np.array_equal(before[:, unchanged], after[:, unchanged])
        assert not np.allclose(before[:, dims], after[:, dims])

    def test_regenerate_counts(self):
        enc = RBFEncoder(4, 16, seed=0)
        assert enc.effective_dim() == 16
        enc.regenerate(np.array([0, 1]))
        enc.regenerate(np.array([2]))
        assert enc.regenerated_count == 3
        assert enc.effective_dim() == 19

    def test_regenerate_empty_noop(self, features):
        enc = RBFEncoder(6, 8, seed=0)
        before = enc.encode(features)
        enc.regenerate(np.array([], dtype=np.int64))
        assert np.array_equal(before, enc.encode(features))
        assert enc.regenerated_count == 0

    def test_regenerate_out_of_range(self):
        enc = RBFEncoder(4, 8, seed=0)
        with pytest.raises(ValueError, match="dimension indices"):
            enc.regenerate(np.array([8]))

    def test_encode_dims_matches_full(self, features):
        enc = RBFEncoder(6, 32, seed=3)
        dims = np.array([0, 5, 17])
        full = enc.encode(features)
        assert np.allclose(enc.encode_dims(features, dims), full[:, dims])

    def test_encode_dims_empty(self, features):
        enc = RBFEncoder(6, 8, seed=0)
        assert enc.encode_dims(features, np.array([], dtype=np.int64)).shape == (10, 0)

    def test_feature_count_enforced(self):
        enc = RBFEncoder(6, 8, seed=0)
        with pytest.raises(ValueError, match="features"):
            enc.encode(np.ones((2, 7)))

    def test_bad_bandwidth(self):
        with pytest.raises(ValueError, match="bandwidth"):
            RBFEncoder(4, 8, bandwidth=0.0)

    def test_callable(self, features):
        enc = RBFEncoder(6, 8, seed=0)
        assert np.array_equal(enc(features), enc.encode(features))


class TestRandomProjectionEncoder:
    def test_linear_matches_matmul(self, features):
        enc = RandomProjectionEncoder(6, 16, seed=0)
        assert np.allclose(enc.encode(features), features @ enc.base_vectors.T)

    def test_sign_is_bipolar(self, features):
        enc = RandomProjectionEncoder(6, 16, activation="sign", seed=0)
        out = enc.encode(features)
        assert set(np.unique(out)) <= {-1.0, 1.0}

    def test_sign_zero_maps_positive(self):
        enc = RandomProjectionEncoder(2, 4, activation="sign", seed=0)
        enc.base_vectors[:] = 0.0
        assert np.all(enc.encode(np.ones((1, 2))) == 1.0)

    def test_tanh_bounded(self, features):
        out = RandomProjectionEncoder(6, 16, activation="tanh", seed=0).encode(features)
        assert np.all(np.abs(out) < 1.0)

    def test_cos_bounded(self, features):
        out = RandomProjectionEncoder(6, 16, activation="cos", seed=0).encode(features)
        assert np.all(np.abs(out) <= 1.0)

    def test_bad_activation(self):
        with pytest.raises(ValueError, match="activation"):
            RandomProjectionEncoder(4, 8, activation="relu")

    def test_regenerate(self, features):
        enc = RandomProjectionEncoder(6, 16, seed=0)
        before = enc.encode(features)
        enc.regenerate(np.array([2]))
        after = enc.encode(features)
        assert not np.allclose(before[:, 2], after[:, 2])
        assert np.array_equal(np.delete(before, 2, axis=1), np.delete(after, 2, axis=1))


class TestIDLevelEncoder:
    def test_shape(self, features):
        enc = IDLevelEncoder(6, 64, seed=0)
        assert enc.encode(features).shape == (10, 64)

    def test_quantize_range(self):
        enc = IDLevelEncoder(2, 16, n_levels=4, feature_range=(0.0, 1.0), seed=0)
        levels = enc.quantize(np.array([[-1.0, 0.0], [0.5, 2.0]]))
        assert levels.min() >= 0 and levels.max() <= 3
        assert levels[0, 0] == 0  # clipped below
        assert levels[1, 1] == 3  # clipped above

    def test_similar_inputs_similar_codes(self):
        enc = IDLevelEncoder(4, 2048, n_levels=16, seed=1)
        a = enc.encode(np.full((1, 4), 0.1))
        b = enc.encode(np.full((1, 4), 0.15))
        c = enc.encode(np.full((1, 4), 2.9))
        sim_ab = float((a @ b.T)[0, 0]) / (np.linalg.norm(a) * np.linalg.norm(b))
        sim_ac = float((a @ c.T)[0, 0]) / (np.linalg.norm(a) * np.linalg.norm(c))
        assert sim_ab > sim_ac

    def test_bad_levels(self):
        with pytest.raises(ValueError, match="n_levels"):
            IDLevelEncoder(4, 8, n_levels=1)

    def test_bad_range(self):
        with pytest.raises(ValueError, match="feature_range"):
            IDLevelEncoder(4, 8, feature_range=(1.0, 1.0))


class TestNGramEncoder:
    def test_shape(self):
        enc = NGramEncoder(5, 128, n=2, seed=0)
        out = enc.encode([[0, 1, 2], [3, 4]])
        assert out.shape == (2, 128)

    def test_sequence_shorter_than_n(self):
        enc = NGramEncoder(5, 64, n=3, seed=0)
        out = enc.encode_sequence([2])
        assert np.array_equal(out, enc.symbol_vectors[2].astype(float))

    def test_order_sensitivity(self):
        enc = NGramEncoder(4, 2048, n=2, seed=1)
        ab = enc.encode_sequence([0, 1])
        ba = enc.encode_sequence([1, 0])
        cos = float(ab @ ba) / (np.linalg.norm(ab) * np.linalg.norm(ba))
        assert cos < 0.5  # order matters

    def test_shared_grams_increase_similarity(self):
        enc = NGramEncoder(6, 4096, n=2, seed=2)
        a = enc.encode_sequence([0, 1, 2, 3])
        b = enc.encode_sequence([0, 1, 2, 4])
        c = enc.encode_sequence([5, 4, 3, 5])
        sim_ab = float(a @ b) / (np.linalg.norm(a) * np.linalg.norm(b))
        sim_ac = float(a @ c) / (np.linalg.norm(a) * np.linalg.norm(c))
        assert sim_ab > sim_ac

    def test_empty_sequence_rejected(self):
        enc = NGramEncoder(3, 16, seed=0)
        with pytest.raises(ValueError, match="empty"):
            enc.encode_sequence([])

    def test_symbol_out_of_range(self):
        enc = NGramEncoder(3, 16, seed=0)
        with pytest.raises(ValueError, match="symbols"):
            enc.encode_sequence([0, 3])

    def test_empty_batch_rejected(self):
        enc = NGramEncoder(3, 16, seed=0)
        with pytest.raises(ValueError, match="empty"):
            enc.encode([])
