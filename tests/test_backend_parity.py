"""NumPy-vs-torch backend parity (skipped when torch is absent).

Parity is by construction: all RNG draws are materialised via NumPy before
conversion, so encoder parameters and class memories are bit-identical at
equal seeds and prediction differences can only come from floating-point
summation order — which these tests assert never flips a label on the
synthetic analogs.
"""

import numpy as np
import pytest

from repro.backend import get_backend, torch_is_available

torch_required = pytest.mark.skipif(
    not torch_is_available(), reason="torch is not installed"
)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(120, 8))
    y = (np.arange(120) % 4).astype(np.int64)
    return X, y


@torch_required
class TestBackendOpParity:
    def test_cosine_similarity(self):
        nb, tb = get_backend("numpy"), get_backend("torch")
        rng = np.random.default_rng(1)
        Q = rng.normal(size=(7, 32)).astype(np.float32)
        M = rng.normal(size=(3, 32)).astype(np.float32)
        ref = nb.cosine_similarity(Q, M)
        out = tb.to_numpy(
            tb.cosine_similarity(tb.asarray(Q), tb.asarray(M))
        )
        assert np.allclose(out, ref, atol=1e-6)

    def test_scatter_add_rows(self):
        nb, tb = get_backend("numpy"), get_backend("torch")
        rng = np.random.default_rng(2)
        idx = rng.integers(0, 5, size=40)
        values = rng.normal(size=(40, 6)).astype(np.float32)
        ref = np.zeros((5, 6), dtype=np.float32)
        nb.scatter_add_rows(ref, idx, values)
        target = tb.zeros((5, 6), dtype=np.float32)
        tb.scatter_add_rows(target, idx, values)
        assert np.allclose(tb.to_numpy(target), ref, atol=1e-5)

    def test_rng_draw_identical(self):
        nb, tb = get_backend("numpy"), get_backend("torch")
        a = nb.draw_normal(np.random.default_rng(3), 0, 1, (4, 4), np.float32)
        b = tb.draw_normal(np.random.default_rng(3), 0, 1, (4, 4), np.float32)
        assert np.array_equal(a, tb.to_numpy(b))

    def test_topk_desc(self):
        nb, tb = get_backend("numpy"), get_backend("torch")
        rng = np.random.default_rng(4)
        scores = rng.normal(size=(10, 7))
        ni, nv = nb.topk_desc(scores, 3)
        ti, tv = tb.topk_desc(tb.asarray(scores), 3)
        assert np.array_equal(ni, ti)
        assert np.allclose(nv, tv)


@torch_required
class TestModelParity:
    @pytest.mark.parametrize("name", ["disthd", "onlinehd"])
    def test_identical_predictions_at_equal_seed(self, data, name):
        from repro import make_model

        X, y = data
        a = make_model(name, dim=96, iterations=4, seed=7).fit(X, y)
        b = make_model(name, dim=96, iterations=4, seed=7, backend="torch").fit(
            X, y
        )
        # Same seed → bit-identical encoder draws on both backends.
        assert np.array_equal(
            a.encoder_.base_vectors,
            get_backend("torch").to_numpy(b.encoder_.base_vectors),
        )
        assert np.array_equal(a.predict(X), b.predict(X))

    def test_torch_model_survives_robustness_sweep(self, data):
        """deepcopy + bit-flip perturbation must work on the torch backend."""
        from repro import make_model
        from repro.noise.robustness import perturb_classifier

        X, y = data
        model = make_model("disthd", dim=64, iterations=3, seed=0,
                           backend="torch").fit(X, y)
        noisy = perturb_classifier(model, bits=8, error_rate=0.05, seed=0)
        assert 0.0 <= noisy.score(X, y) <= 1.0

    def test_torch_trained_model_roundtrips_to_numpy(self, data, tmp_path):
        from repro import load_model, make_model, save_model

        X, y = data
        model = make_model("disthd", dim=64, iterations=3, seed=0,
                           backend="torch").fit(X, y)
        path = save_model(model, tmp_path / "torch_model.npz")
        restored = load_model(path)
        # Restored model predicts under NumPy, identically.
        assert restored.memory_.backend.name == "numpy"
        assert np.array_equal(restored.predict(X), model.predict(X))
