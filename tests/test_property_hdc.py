"""Property-based tests (hypothesis) for the HDC substrate invariants."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.hdc.ops import (
    bind,
    bundle,
    cosine_similarity,
    hamming_distance,
    normalize_rows,
    permute,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def vectors(min_dim=2, max_dim=32):
    return arrays(
        np.float64,
        st.integers(min_dim, max_dim).map(lambda d: (d,)),
        elements=finite_floats,
    )


def paired_vectors(min_dim=2, max_dim=32):
    """Two vectors of the same dimensionality."""
    return st.integers(min_dim, max_dim).flatmap(
        lambda d: st.tuples(
            arrays(np.float64, (d,), elements=finite_floats),
            arrays(np.float64, (d,), elements=finite_floats),
        )
    )


class TestBundleProperties:
    @given(paired_vectors())
    def test_commutative(self, pair):
        a, b = pair
        assert np.allclose(bundle(a, b), bundle(b, a))

    @given(paired_vectors())
    def test_matches_elementwise_addition(self, pair):
        a, b = pair
        assert np.allclose(bundle(a, b), a + b)

    @given(vectors())
    def test_identity_with_zero(self, v):
        assert np.allclose(bundle(v, np.zeros_like(v)), v)


class TestBindProperties:
    @given(paired_vectors())
    def test_commutative(self, pair):
        a, b = pair
        assert np.allclose(bind(a, b), bind(b, a))

    @given(st.integers(4, 64), st.integers(0, 2**31))
    def test_bipolar_involution(self, dim, seed):
        rng = np.random.default_rng(seed)
        a = rng.choice([-1.0, 1.0], size=dim)
        b = rng.choice([-1.0, 1.0], size=dim)
        assert np.array_equal(bind(bind(a, b), a), b)

    @given(vectors())
    def test_identity_with_ones(self, v):
        assert np.allclose(bind(v, np.ones_like(v)), v)


class TestPermuteProperties:
    @given(vectors(), st.integers(-50, 50))
    def test_invertible(self, v, shift):
        assert np.array_equal(permute(permute(v, shift), -shift), v)

    @given(vectors(), st.integers(0, 10))
    def test_norm_preserved(self, v, shift):
        assert np.linalg.norm(permute(v, shift)) == pytest.approx(
            np.linalg.norm(v), rel=1e-12
        )

    @given(vectors())
    def test_full_cycle_is_identity(self, v):
        assert np.array_equal(permute(v, v.shape[0]), v)


class TestNormalizeProperties:
    @given(vectors())
    def test_output_norm_at_most_one(self, v):
        out = normalize_rows(v)
        assert np.linalg.norm(out) <= 1.0 + 1e-9

    @given(vectors(), st.floats(min_value=0.1, max_value=100.0))
    def test_scale_invariant(self, v, scale):
        if np.linalg.norm(v) > 1e-6:
            assert np.allclose(
                normalize_rows(v), normalize_rows(scale * v), atol=1e-8
            )

    @given(vectors())
    def test_idempotent(self, v):
        once = normalize_rows(v)
        assert np.allclose(normalize_rows(once), once, atol=1e-9)


class TestCosineProperties:
    @given(paired_vectors())
    def test_bounded(self, pair):
        a, b = pair
        sim = cosine_similarity(a.reshape(1, -1), b.reshape(1, -1))[0, 0]
        assert -1.0 - 1e-9 <= sim <= 1.0 + 1e-9

    @given(paired_vectors())
    def test_symmetric(self, pair):
        a, b = pair
        ab = cosine_similarity(a.reshape(1, -1), b.reshape(1, -1))[0, 0]
        ba = cosine_similarity(b.reshape(1, -1), a.reshape(1, -1))[0, 0]
        assert ab == ba

    @given(vectors())
    def test_self_similarity_one(self, v):
        if np.linalg.norm(v) > 1e-6:
            sim = cosine_similarity(v.reshape(1, -1), v.reshape(1, -1))[0, 0]
            assert abs(sim - 1.0) < 1e-9


class TestHammingProperties:
    @given(st.integers(2, 64), st.integers(0, 2**31))
    def test_range(self, dim, seed):
        rng = np.random.default_rng(seed)
        a = rng.choice([-1, 1], size=dim)
        b = rng.choice([-1, 1], size=dim)
        d = hamming_distance(a, b)
        assert 0.0 <= d <= 1.0

    @given(st.integers(2, 64), st.integers(0, 2**31))
    def test_triangle_inequality(self, dim, seed):
        rng = np.random.default_rng(seed)
        a, b, c = (rng.choice([-1, 1], size=dim) for _ in range(3))
        assert hamming_distance(a, c) <= (
            hamming_distance(a, b) + hamming_distance(b, c) + 1e-12
        )
