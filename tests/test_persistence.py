"""Tests for repro.persistence and repro.datasets.io."""

import numpy as np
import pytest

from repro.baselines.baselinehd import BaselineHDClassifier
from repro.baselines.knn import KNNClassifier
from repro.baselines.neuralhd import NeuralHDClassifier
from repro.baselines.onlinehd import OnlineHDClassifier
from repro.core.disthd import DistHDClassifier
from repro.datasets.io import load_dataset_file, load_from_arrays, save_dataset
from repro.datasets.loaders import load_dataset
from repro.persistence import load_model, save_model


class TestModelRoundtrip:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: DistHDClassifier(dim=48, iterations=3, seed=0),
            lambda: OnlineHDClassifier(dim=48, iterations=3, seed=0),
            lambda: NeuralHDClassifier(dim=48, iterations=3, seed=0),
            lambda: BaselineHDClassifier(dim=48, iterations=3, seed=0),
            lambda: BaselineHDClassifier(dim=48, iterations=3, encoder="sign", seed=0),
            lambda: BaselineHDClassifier(dim=48, iterations=3, encoder="rbf", seed=0),
        ],
        ids=["disthd", "onlinehd", "neuralhd", "basehd-idlevel", "basehd-sign",
             "basehd-rbf"],
    )
    def test_predictions_survive_roundtrip(self, factory, small_problem, tmp_path):
        train_x, train_y, test_x, _ = small_problem
        model = factory().fit(train_x, train_y)
        path = save_model(model, tmp_path / "model")
        restored = load_model(path)
        assert np.array_equal(restored.predict(test_x), model.predict(test_x))
        assert np.allclose(
            restored.decision_scores(test_x), model.decision_scores(test_x)
        )

    def test_topk_survives(self, small_problem, tmp_path):
        train_x, train_y, test_x, _ = small_problem
        model = DistHDClassifier(dim=48, iterations=3, seed=0).fit(train_x, train_y)
        restored = load_model(save_model(model, tmp_path / "m"))
        assert np.array_equal(
            restored.predict_topk(test_x, 2), model.predict_topk(test_x, 2)
        )

    def test_classes_preserved(self, small_problem, tmp_path):
        train_x, train_y, _, _ = small_problem
        remapped = np.array([5, 17, 42])[train_y]
        model = DistHDClassifier(dim=48, iterations=2, seed=0).fit(train_x, remapped)
        restored = load_model(save_model(model, tmp_path / "m"))
        assert np.array_equal(restored.classes_, [5, 17, 42])

    def test_npz_suffix_added(self, small_problem, tmp_path):
        train_x, train_y, _, _ = small_problem
        model = DistHDClassifier(dim=32, iterations=2, seed=0).fit(train_x, train_y)
        path = save_model(model, tmp_path / "model")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_unsupported_model_rejected(self, tmp_path):
        class NotAModel:
            classes_ = None

        with pytest.raises(TypeError, match="save_model supports"):
            save_model(NotAModel(), tmp_path / "m")

    def test_classical_models_roundtrip(self, small_problem, tmp_path):
        from repro.baselines.mlp import MLPClassifier
        from repro.baselines.svm import LinearSVMClassifier, RFFSVMClassifier

        train_x, train_y, test_x, _ = small_problem
        factories = {
            "knn": lambda: KNNClassifier(k=3),
            "mlp": lambda: MLPClassifier(hidden_sizes=(16,), epochs=3, seed=0),
            "svm": lambda: LinearSVMClassifier(epochs=3, seed=0),
            "rff": lambda: RFFSVMClassifier(n_components=32, seed=0),
        }
        for name, factory in factories.items():
            model = factory().fit(train_x, train_y)
            restored = load_model(save_model(model, tmp_path / name))
            assert type(restored) is type(model)
            assert np.array_equal(
                restored.predict(test_x), model.predict(test_x)
            ), name
            assert np.allclose(
                restored.decision_scores(test_x), model.decision_scores(test_x)
            ), name

    def test_unfitted_rejected(self, tmp_path):
        with pytest.raises(RuntimeError, match="not fitted"):
            save_model(DistHDClassifier(dim=32), tmp_path / "m")

    def test_feature_mismatch_on_loaded(self, small_problem, tmp_path):
        train_x, train_y, _, _ = small_problem
        model = DistHDClassifier(dim=32, iterations=2, seed=0).fit(train_x, train_y)
        restored = load_model(save_model(model, tmp_path / "m"))
        with pytest.raises(ValueError, match="features"):
            restored.predict(np.ones((1, train_x.shape[1] + 1)))

    def test_score_works_on_loaded(self, small_problem, tmp_path):
        train_x, train_y, test_x, test_y = small_problem
        model = DistHDClassifier(dim=64, iterations=3, seed=0).fit(train_x, train_y)
        restored = load_model(save_model(model, tmp_path / "m"))
        assert restored.score(test_x, test_y) == pytest.approx(
            model.score(test_x, test_y)
        )


class TestDatasetIO:
    def test_dataset_roundtrip(self, tmp_path):
        ds = load_dataset("diabetes", scale=0.005, seed=0)
        path = save_dataset(ds, tmp_path / "diabetes")
        restored = load_dataset_file(path)
        assert restored.name == "diabetes"
        assert np.array_equal(restored.train_x, ds.train_x)
        assert np.array_equal(restored.test_y, ds.test_y)
        assert restored.scale == ds.scale

    def test_load_from_arrays(self, rng):
        train_x = rng.normal(size=(50, 8))
        test_x = rng.normal(size=(20, 8))
        train_y = rng.integers(0, 3, 50)
        test_y = rng.integers(0, 3, 20)
        ds = load_from_arrays(train_x, train_y, test_x, test_y, name="real-uci")
        assert ds.name == "real-uci"
        assert ds.n_features == 8
        assert ds.n_classes == 3
        # Standardised with train statistics.
        assert np.allclose(ds.train_x.mean(axis=0), 0.0, atol=1e-9)

    def test_load_from_arrays_no_standardize(self, rng):
        train_x = rng.normal(10.0, 1.0, size=(30, 4))
        ds = load_from_arrays(
            train_x, rng.integers(0, 2, 30),
            rng.normal(10.0, 1.0, size=(10, 4)), rng.integers(0, 2, 10),
            standardize=False,
        )
        assert ds.train_x.mean() > 5.0

    def test_feature_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="feature count"):
            load_from_arrays(
                rng.normal(size=(10, 4)), rng.integers(0, 2, 10),
                rng.normal(size=(5, 3)), rng.integers(0, 2, 5),
            )

    def test_loaded_dataset_trains_models(self, rng, tmp_path):
        """A cached analog file feeds straight into the experiment runner."""
        from repro.pipeline.experiment import run_experiment

        ds = load_dataset("diabetes", scale=0.005, seed=0)
        restored = load_dataset_file(save_dataset(ds, tmp_path / "d"))
        result = run_experiment(
            DistHDClassifier(dim=48, iterations=2, seed=0), restored
        )
        assert result.test_accuracy > 0.3
