"""Tests for repro.hdc.ops — the §III-A operation algebra."""

import numpy as np
import pytest

from repro.hdc.ops import (
    bind,
    bundle,
    cosine_similarity,
    dot_similarity,
    hamming_distance,
    hamming_similarity,
    normalize_rows,
    permute,
)
from repro.hdc.spaces import random_bipolar


class TestBundle:
    def test_two_vectors(self):
        out = bundle(np.array([1.0, -1.0]), np.array([1.0, 1.0]))
        assert np.array_equal(out, [2.0, 0.0])

    def test_batch_reduces(self):
        batch = np.ones((3, 4))
        assert np.array_equal(bundle(batch), np.full(4, 3.0))

    def test_mixed_batch_and_vector(self):
        out = bundle(np.ones((2, 3)), np.ones(3))
        assert np.array_equal(out, np.full(3, 3.0))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            bundle()

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError, match="dimension mismatch"):
            bundle(np.ones(3), np.ones(4))

    def test_memory_property(self):
        """Bundled set is similar to members, dissimilar to outsiders (paper §III-A)."""
        hvs = random_bipolar(3, 2000, seed=0).astype(float)
        bundled = bundle(hvs[0], hvs[1])
        sim_member = cosine_similarity(bundled.reshape(1, -1), hvs[0].reshape(1, -1))
        sim_outsider = cosine_similarity(bundled.reshape(1, -1), hvs[2].reshape(1, -1))
        assert sim_member[0, 0] > 0.5
        assert abs(sim_outsider[0, 0]) < 0.15


class TestBind:
    def test_elementwise_product(self):
        assert np.array_equal(bind(np.array([2.0, 3.0]), np.array([4.0, -1.0])), [8.0, -3.0])

    def test_bipolar_reversibility(self):
        """bind(bind(a, b), a) == b for bipolar hypervectors (paper §III-A)."""
        a = random_bipolar(1, 512, seed=1)[0].astype(float)
        b = random_bipolar(1, 512, seed=2)[0].astype(float)
        assert np.array_equal(bind(bind(a, b), a), b)

    def test_near_orthogonal_to_inputs(self):
        a = random_bipolar(1, 4096, seed=3)[0].astype(float)
        b = random_bipolar(1, 4096, seed=4)[0].astype(float)
        bound = bind(a, b)
        sim = cosine_similarity(bound.reshape(1, -1), a.reshape(1, -1))[0, 0]
        assert abs(sim) < 0.08

    def test_broadcasts_batch(self):
        batch = np.ones((3, 4))
        v = np.full(4, 2.0)
        assert bind(batch, v).shape == (3, 4)

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError, match="dimension mismatch"):
            bind(np.ones(3), np.ones(5))


class TestPermute:
    def test_roll(self):
        assert np.array_equal(permute(np.array([1.0, 2.0, 3.0])), [3.0, 1.0, 2.0])

    def test_inverse(self):
        v = np.arange(10.0)
        assert np.array_equal(permute(permute(v, 3), -3), v)

    def test_batch_rolls_rows(self):
        batch = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = permute(batch, 1)
        assert np.array_equal(out, [[2.0, 1.0], [4.0, 3.0]])

    def test_preserves_similarity(self):
        a = random_bipolar(1, 1024, seed=5)[0].astype(float)
        b = random_bipolar(1, 1024, seed=6)[0].astype(float)
        before = float(a @ b)
        after = float(permute(a, 7) @ permute(b, 7))
        assert before == pytest.approx(after)


class TestNormalizeRows:
    def test_unit_norm(self):
        out = normalize_rows(np.array([[3.0, 4.0]]))
        assert np.linalg.norm(out) == pytest.approx(1.0)

    def test_zero_row_passthrough(self):
        out = normalize_rows(np.array([[0.0, 0.0], [1.0, 0.0]]))
        assert np.array_equal(out[0], [0.0, 0.0])
        assert np.array_equal(out[1], [1.0, 0.0])

    def test_single_vector(self):
        out = normalize_rows(np.array([0.0, 5.0]))
        assert out.shape == (2,)
        assert np.array_equal(out, [0.0, 1.0])


class TestSimilarities:
    def test_dot_shape(self):
        q = np.ones((3, 4))
        m = np.ones((2, 4))
        assert dot_similarity(q, m).shape == (3, 2)

    def test_dot_values(self):
        q = np.array([[1.0, 0.0]])
        m = np.array([[2.0, 0.0], [0.0, 2.0]])
        assert np.array_equal(dot_similarity(q, m), [[2.0, 0.0]])

    def test_cosine_self_is_one(self):
        v = np.array([[1.0, 2.0, 3.0]])
        assert cosine_similarity(v, v)[0, 0] == pytest.approx(1.0)

    def test_cosine_orthogonal_is_zero(self):
        q = np.array([[1.0, 0.0]])
        m = np.array([[0.0, 1.0]])
        assert cosine_similarity(q, m)[0, 0] == pytest.approx(0.0)

    def test_cosine_zero_vector_gives_zero(self):
        q = np.array([[0.0, 0.0]])
        m = np.array([[1.0, 1.0]])
        assert cosine_similarity(q, m)[0, 0] == 0.0

    def test_cosine_scale_invariant(self):
        q = np.array([[1.0, 2.0]])
        m = np.array([[3.0, -1.0]])
        a = cosine_similarity(q, m)
        b = cosine_similarity(10.0 * q, 0.1 * m)
        assert a[0, 0] == pytest.approx(b[0, 0])

    def test_cosine_proportional_to_dot_with_normalized_memory(self):
        """Equation (1): ranking by cosine == ranking by dot with N_l."""
        rng = np.random.default_rng(0)
        q = rng.normal(size=(5, 32))
        m = rng.normal(size=(4, 32))
        cos = cosine_similarity(q, m)
        dot_norm = dot_similarity(q, normalize_rows(m))
        assert np.array_equal(np.argsort(cos, axis=1), np.argsort(dot_norm, axis=1))

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError, match="dimensionality"):
            cosine_similarity(np.ones((1, 3)), np.ones((1, 4)))


class TestHamming:
    def test_distance_identical(self):
        v = random_bipolar(1, 64, seed=0)[0]
        assert hamming_distance(v, v) == 0.0

    def test_distance_opposite(self):
        v = random_bipolar(1, 64, seed=0)[0]
        assert hamming_distance(v, -v) == 1.0

    def test_similarity_matrix(self):
        q = np.array([[1, -1, 1, -1]])
        m = np.array([[1, -1, 1, -1], [-1, 1, -1, 1]])
        out = hamming_similarity(q, m)
        assert np.array_equal(out, [[1.0, 0.0]])

    def test_random_pairs_near_half(self):
        a = random_bipolar(1, 4096, seed=1)[0]
        b = random_bipolar(1, 4096, seed=2)[0]
        assert abs(hamming_distance(a, b) - 0.5) < 0.05

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError, match="dimension mismatch"):
            hamming_distance(np.ones(4), np.ones(5))
