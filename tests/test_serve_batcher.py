"""Tests for repro.serve.batcher.MicroBatcher."""

import threading
import time

import numpy as np
import pytest

from repro.serve.batcher import MicroBatcher


def _echo_handler(kind, X):
    """Row-aligned result that encodes the kind, for split verification."""
    if kind == "sum":
        return X.sum(axis=1)
    if kind == "double":
        return X * 2.0
    raise ValueError(f"boom: {kind}")


class TestCoalescing:
    def test_single_request_round_trip(self):
        with MicroBatcher(_echo_handler, max_wait_ms=1.0) as mb:
            out = mb.submit("sum", np.ones(4)).result(timeout=5)
        assert out.shape == (1,)
        assert out[0] == pytest.approx(4.0)

    def test_multi_row_request_round_trip(self):
        rows = np.arange(12, dtype=float).reshape(3, 4)
        with MicroBatcher(_echo_handler, max_wait_ms=1.0) as mb:
            out = mb.submit("double", rows).result(timeout=5)
        np.testing.assert_allclose(out, rows * 2.0)

    def test_concurrent_requests_get_their_own_rows(self):
        rows = [np.full(4, float(i)) for i in range(40)]
        results = [None] * len(rows)
        with MicroBatcher(_echo_handler, max_batch_size=8,
                          max_wait_ms=5.0) as mb:
            def fire(i):
                results[i] = mb.submit("sum", rows[i]).result(timeout=10)

            threads = [
                threading.Thread(target=fire, args=(i,))
                for i in range(len(rows))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        for i, out in enumerate(results):
            assert out[0] == pytest.approx(4.0 * i), f"request {i} got {out}"

    def test_mixed_kinds_in_one_window_stay_separate(self):
        with MicroBatcher(_echo_handler, max_wait_ms=20.0) as mb:
            futures = []
            for i in range(6):
                kind = "sum" if i % 2 == 0 else "double"
                futures.append((kind, i, mb.submit(kind, np.full(3, float(i)))))
            for kind, i, future in futures:
                out = future.result(timeout=10)
                if kind == "sum":
                    assert out[0] == pytest.approx(3.0 * i)
                else:
                    np.testing.assert_allclose(out[0], np.full(3, 2.0 * i))

    def test_batch_size_cap_respected(self):
        sizes = []
        gate = threading.Event()

        def slow_handler(kind, X):
            gate.wait(timeout=10)
            return X.sum(axis=1)

        mb = MicroBatcher(
            slow_handler, max_batch_size=4, max_wait_ms=50.0,
            on_batch=sizes.append,
        )
        try:
            futures = [mb.submit("sum", np.ones(2)) for _ in range(12)]
            gate.set()
            for f in futures:
                f.result(timeout=10)
        finally:
            mb.close()
        assert sizes, "no batches recorded"
        # Single-rows-of-2 requests: a batch stops growing once >= 4 rows.
        assert max(sizes) <= 4 + 1  # one multi-row request may overshoot

    def test_max_wait_bounds_latency_of_a_lone_request(self):
        with MicroBatcher(_echo_handler, max_batch_size=1024,
                          max_wait_ms=10.0) as mb:
            start = time.perf_counter()
            mb.submit("sum", np.ones(3)).result(timeout=5)
            elapsed = time.perf_counter() - start
        # Far below the 1024-row fill; the deadline (or idle flush) must
        # have fired.  Generous bound for noisy CI runners.
        assert elapsed < 5.0


class TestErrors:
    def test_handler_error_propagates_to_futures(self):
        with MicroBatcher(_echo_handler, max_wait_ms=1.0) as mb:
            future = mb.submit("unknown-kind", np.ones(3))
            with pytest.raises(ValueError, match="boom"):
                future.result(timeout=5)
            # the batcher survives and keeps serving
            assert mb.submit("sum", np.ones(3)).result(timeout=5)[0] == 3.0

    def test_row_misaligned_handler_is_an_error(self):
        def bad_handler(kind, X):
            return np.zeros(X.shape[0] + 1)

        with MicroBatcher(bad_handler, max_wait_ms=1.0) as mb:
            with pytest.raises(RuntimeError, match="result rows"):
                mb.submit("sum", np.ones(3)).result(timeout=5)

    def test_width_mismatched_requests_fail_without_killing_worker(self):
        started, gate = threading.Event(), threading.Event()

        def handler(kind, X):
            started.set()
            gate.wait(timeout=10)
            return X.sum(axis=1)

        with MicroBatcher(handler, max_wait_ms=20.0) as mb:
            first = mb.submit("sum", np.ones(3))
            assert started.wait(timeout=5)
            # Queued while the worker is busy: guaranteed to coalesce
            # into one (width-mismatched) group on the next flush.
            narrow = mb.submit("sum", np.ones(3))
            wide = mb.submit("sum", np.ones(5))
            gate.set()
            assert first.result(timeout=5)[0] == 3.0
            # The vstack failure lands on the group's futures, not the
            # worker thread...
            with pytest.raises(ValueError):
                narrow.result(timeout=5)
            with pytest.raises(ValueError):
                wide.result(timeout=5)
            # ...and the worker survives to serve well-formed requests.
            assert mb.submit("sum", np.ones(4)).result(timeout=5)[0] == 4.0

    def test_empty_rows_rejected(self):
        with MicroBatcher(_echo_handler) as mb:
            with pytest.raises(ValueError, match="non-empty"):
                mb.submit("sum", np.empty((0, 4)))

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            MicroBatcher(_echo_handler, max_batch_size=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            MicroBatcher(_echo_handler, max_wait_ms=0.0)


class TestLifecycle:
    def test_close_flushes_pending_requests(self):
        release = threading.Event()

        def slow_handler(kind, X):
            release.wait(timeout=10)
            return X.sum(axis=1)

        mb = MicroBatcher(slow_handler, max_batch_size=2, max_wait_ms=500.0)
        futures = [mb.submit("sum", np.ones(2)) for _ in range(10)]
        release.set()
        mb.close()
        # Zero dropped: every accepted request resolved.
        assert all(f.done() for f in futures)
        assert all(f.result()[0] == 2.0 for f in futures)

    def test_submit_after_close_raises(self):
        mb = MicroBatcher(_echo_handler)
        mb.close()
        assert mb.closed
        with pytest.raises(RuntimeError, match="closed"):
            mb.submit("sum", np.ones(3))
