"""Tests for the model registry: every registered name constructs, fits,
predicts, and round-trips through save_model/load_model."""

import numpy as np
import pytest

from repro.models import (
    Hyperparam,
    default_hyperparam_grid,
    get_model_spec,
    list_models,
    make_model,
    register_model,
)
from repro.persistence import load_model, save_model

EXPECTED_NAMES = {
    "disthd", "baselinehd", "neuralhd", "onlinehd",
    "mlp", "svm", "rff-svm", "knn",
    "disthd-stream", "disthd-quantized",
}


def _small_params(name: str) -> dict:
    """Cheap hyper-parameters so the whole catalog trains in seconds."""
    spec = get_model_spec(name)
    params = {}
    if "dim" in spec.param_names():
        params["dim"] = 32
    if "iterations" in spec.param_names():
        params["iterations"] = 2
    if "epochs" in spec.param_names():
        params["epochs"] = 2
    if "seed" in spec.param_names():
        params["seed"] = 0
    return params


class TestCatalog:
    def test_all_expected_names_registered(self):
        assert EXPECTED_NAMES <= set(list_models())

    def test_case_insensitive_lookup(self):
        assert get_model_spec("DistHD").name == "disthd"

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="available"):
            make_model("transformer")

    def test_tag_filter(self):
        streaming = list_models(tag="streaming")
        assert "disthd" in streaming and "onlinehd" in streaming
        assert "mlp" not in streaming and "knn" not in streaming

    def test_streaming_tag_matches_capability(self):
        for name in list_models(tag="streaming"):
            model = make_model(name, **_small_params(name))
            assert getattr(model, "supports_streaming", False), name

    @pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
    def test_constructs_fits_predicts(self, name, small_problem):
        train_x, train_y, test_x, test_y = small_problem
        model = make_model(name, **_small_params(name))
        model.fit(train_x, train_y)
        preds = model.predict(test_x)
        assert preds.shape == (test_x.shape[0],)
        assert model.score(test_x, test_y) > 0.4  # far above 1/3 chance floor

    @pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
    def test_roundtrips_through_persistence(self, name, small_problem, tmp_path):
        train_x, train_y, test_x, _ = small_problem
        model = make_model(name, **_small_params(name)).fit(train_x, train_y)
        restored = load_model(save_model(model, tmp_path / name))
        assert np.array_equal(restored.predict(test_x), model.predict(test_x))

    def test_quantized_trainer_perturbation_degrades(self, small_problem):
        """Bit flips must reach the deployed fixed-point image, not a copy."""
        from repro.noise.robustness import perturb_classifier

        train_x, train_y, test_x, test_y = small_problem
        model = make_model(
            "disthd-quantized", dim=48, iterations=2, seed=0, bits=8
        ).fit(train_x, train_y)
        clean = model.score(test_x, test_y)
        zero_flip = perturb_classifier(model, 8, 0.0, seed=0)
        assert zero_flip.score(test_x, test_y) == pytest.approx(clean)
        noisy = perturb_classifier(model, 8, 0.45, seed=0)
        assert noisy.score(test_x, test_y) < clean - 0.05
        # The original model is untouched by the perturbed copy.
        assert model.score(test_x, test_y) == pytest.approx(clean)

    def test_default_grid_usable_by_grid_search(self, small_problem):
        from repro.pipeline.grid import grid_search

        train_x, train_y, _, _ = small_problem
        grid = default_hyperparam_grid("knn")
        assert grid == {"k": [3, 5, 9]}
        result = grid_search("knn", None, train_x, train_y, seed=0)
        assert result.best_params["k"] in (3, 5, 9)
        assert len(result.all_results) == 3


class TestRegistration:
    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_model("disthd", lambda **p: None)

    def test_overwrite_allowed_and_decorator_form(self):
        @register_model(
            "test-custom", overwrite=True, tags=("test",),
            hyperparams=(Hyperparam("k", 1, (1, 2)),),
        )
        def factory(**params):
            return params

        try:
            assert make_model("test-custom", k=3) == {"k": 3}
            assert "test-custom" in list_models(tag="test")
            assert default_hyperparam_grid("test-custom") == {"k": [1, 2]}
        finally:
            from repro.models import registry

            registry._REGISTRY.pop("test-custom", None)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            register_model("  ", lambda **p: None)
