"""Tests for the repro.api facade (and its top-level re-exports)."""

import numpy as np
import pytest

from repro.api import ExperimentSpec, build_model, compare, run_experiment
from repro.pipeline.experiment import ExperimentResult

FAST = {"dim": 48, "iterations": 2}


class TestTopLevelExports:
    def test_facade_importable_from_package_root(self):
        from repro import (  # noqa: F401
            ExperimentSpec,
            compare,
            list_models,
            make_model,
            run_experiment,
            serve_model,
        )

    def test_make_model_succeeds_for_every_name(self):
        from repro import list_models, make_model

        for name in list_models():
            assert make_model(name) is not None

    def test_persistence_conveniences_are_reexported(self):
        import repro.api as api
        import repro.persistence as persistence

        assert api.load_model is persistence.load_model
        assert api.save_model is persistence.save_model

    def test_load_model_convenience_round_trip(self, tmp_path):
        import numpy as np

        from repro.api import load_model, save_model
        from repro.core.disthd import DistHDClassifier

        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 8))
        y = np.arange(60) % 3
        clf = DistHDClassifier(dim=48, iterations=2, seed=0).fit(X, y)
        path = save_model(clf, tmp_path / "m.npz")
        loaded = load_model(path)
        np.testing.assert_array_equal(loaded.predict(X), clf.predict(X))


class TestRunExperiment:
    def test_keyword_form(self):
        result = run_experiment(
            model="disthd", dataset="diabetes", scale=0.005,
            model_params=FAST,
        )
        assert isinstance(result, ExperimentResult)
        assert result.model_name == "disthd"
        assert result.dataset_name == "diabetes"
        assert 0.0 <= result.test_accuracy <= 1.0

    def test_spec_and_name_forms_agree(self):
        spec = ExperimentSpec(
            model="disthd", dataset="diabetes", scale=0.005, model_params=FAST
        )
        a = run_experiment(spec)
        b = run_experiment(
            "disthd", dataset="diabetes", scale=0.005, model_params=FAST
        )
        assert a.test_accuracy == b.test_accuracy

    def test_seed_injected_only_when_declared(self):
        knn = build_model("knn", {"k": 3}, seed=7)  # would TypeError if forced
        assert knn.k == 3
        disthd = build_model("disthd", {}, seed=7)
        assert disthd.config.seed == 7
        explicit = build_model("disthd", {"seed": 3}, seed=7)
        assert explicit.config.seed == 3

    def test_noise_bits_adds_quality_loss_extras(self):
        result = run_experiment(
            model="disthd", dataset="diabetes", scale=0.005,
            model_params=FAST, noise_bits=8, error_rates=(0.02, 0.1),
        )
        assert "quality_loss@0.02" in result.extras
        assert "quality_loss@0.1" in result.extras

    def test_unknown_option_rejected(self):
        with pytest.raises(TypeError, match="unknown experiment option"):
            run_experiment(model="disthd", datasset="typo")

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError, match="available"):
            run_experiment(model="not-a-model", dataset="diabetes", scale=0.005)


class TestCompare:
    def test_labels_and_order_preserved(self):
        results = compare(
            [
                "knn",
                ("DistHD tiny", "disthd", FAST),
                ("DistHD wider", "disthd", {**FAST, "dim": 64}),
            ],
            dataset="diabetes",
            scale=0.005,
            seed=0,
        )
        assert [r.model_name for r in results] == [
            "knn", "DistHD tiny", "DistHD wider"
        ]
        assert len({id(r) for r in results}) == 3

    def test_accepts_prebuilt_dataset(self):
        from repro.datasets.loaders import load_dataset

        ds = load_dataset("diabetes", scale=0.005, seed=0)
        results = compare([("m", "disthd", FAST)], dataset=ds)
        assert results[0].dataset_name == "diabetes"

    def test_bad_ref_rejected(self):
        with pytest.raises(TypeError, match="label, name"):
            compare([42], dataset="diabetes", scale=0.005)


class TestDeprecationShims:
    def test_streaming_disthd_still_importable(self, small_problem):
        from repro.deploy.streaming import (
            StreamingDistHD,
            _reset_deprecation_warning,
        )

        train_x, train_y, test_x, test_y = small_problem
        # The deprecation is announced once per process; re-arm it so this
        # test is order-independent.
        _reset_deprecation_warning()
        with pytest.warns(DeprecationWarning, match="partial_fit"):
            model = StreamingDistHD(train_x.shape[1], 3, reservoir_size=64)
        model.partial_fit(train_x[:64], train_y[:64])
        assert model.n_batches_ == 1
        assert model.predict(test_x).shape == (test_x.shape[0],)

    def test_direct_classifier_imports_still_resolve(self):
        from repro.baselines import OnlineHDClassifier  # noqa: F401
        from repro.core.disthd import DistHDClassifier  # noqa: F401
        from repro.deploy import QuantizedHDCModel, StreamingDistHD  # noqa: F401
