"""Tests for repro.analysis — the invariant linter and its rules.

Each rule gets a failing fixture (the invariant broken) and a passing
fixture (the idiomatic code), written under a synthetic ``repro/``
package tree so path scoping engages exactly as it does on ``src/``.
The suite closes with the self-lint: the committed tree must be clean.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    all_rules,
    get_rules,
    parse_suppressions,
    run_analysis,
)
from repro.analysis.core import REPORT_SCHEMA, check_file

REPO_SRC = Path(__file__).resolve().parents[1] / "src"

RULE_NAMES = {
    "backend-purity",
    "cache-coherence",
    "lock-discipline",
    "public-api-hygiene",
    "seed-determinism",
}


def lint(tmp_path, relpath, source, rules=None):
    """Write ``source`` at ``<tmp>/repro/<relpath>`` and lint that file."""
    path = tmp_path / "repro" / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return check_file(path, get_rules(rules))


def active(violations):
    return [v for v in violations if not v.suppressed]


# --------------------------------------------------------------- registry


class TestRegistry:
    def test_all_five_rules_registered(self):
        assert RULE_NAMES <= set(all_rules())

    def test_rules_have_descriptions(self):
        for rule in all_rules().values():
            assert rule.description, rule.name

    def test_get_rules_unknown_name_raises(self):
        with pytest.raises(KeyError, match="no-such-rule"):
            get_rules(["no-such-rule"])

    def test_get_rules_subset(self):
        (rule,) = get_rules(["backend-purity"])
        assert rule.name == "backend-purity"


# --------------------------------------------------------- backend-purity


class TestBackendPurity:
    BAD = """
        import numpy as np

        def make():
            return np.zeros((4, 4))
    """

    GOOD = """
        import numpy as np

        def make():
            a = np.zeros((4, 4), dtype=np.float64)
            b = np.empty(3, np.int64)  # positional dtype slot counts
            c = np.arange(5, dtype=np.int64)
            return a, b, c
    """

    def test_bad_fixture_flagged(self, tmp_path):
        violations = lint(tmp_path, "hdc/mod.py", self.BAD)
        assert [v.rule for v in active(violations)] == ["backend-purity"]
        assert "dtype" in violations[0].message

    def test_good_fixture_clean(self, tmp_path):
        assert lint(tmp_path, "hdc/mod.py", self.GOOD) == []

    @pytest.mark.parametrize(
        "ctor", ["zeros((2,))", "ones(2)", "empty(2)", "full((2,), 0.0)",
                 "array([1, 2])", "arange(3)"]
    )
    def test_every_constructor_covered(self, tmp_path, ctor):
        src = f"import numpy as np\nx = np.{ctor}\n"
        violations = lint(tmp_path, f"core/{ctor.split('(')[0]}.py", src)
        assert len(active(violations)) == 1

    def test_out_of_scope_module_ignored(self, tmp_path):
        # utils/ is not a backend-routed package; the same code passes.
        assert lint(tmp_path, "utils/mod.py", self.BAD) == []


# -------------------------------------------------------- lock-discipline


class TestLockDiscipline:
    BAD = """
        from repro.analysis.annotations import guarded_by

        @guarded_by("_lock", "_count")
        class ModelVersion:
            def __init__(self):
                self._count = 0  # __init__ is exempt

            def bump(self):
                self._count += 1  # no lock held
    """

    GOOD = """
        from repro.analysis.annotations import guarded_by

        @guarded_by("_lock", "_count", aliases=("_drained",))
        class ModelVersion:
            def __init__(self):
                self._count = 0

            def bump(self):
                with self._lock:
                    self._count += 1

            def wait(self):
                with self._drained:  # Condition over the same lock
                    return self._count
    """

    INVERSION = """
        class ModelVersion:
            def bad(self):
                with self._lock:
                    with self._drain_lock:
                        pass
    """

    IN_ORDER = """
        class ModelVersion:
            def fine(self):
                with self._drain_lock:
                    with self._lock:
                        pass
    """

    def test_unguarded_access_flagged(self, tmp_path):
        violations = lint(tmp_path, "serve/mod.py", self.BAD)
        assert [v.rule for v in active(violations)] == ["lock-discipline"]
        assert "ModelVersion._count" in violations[0].message

    def test_guarded_and_alias_access_clean(self, tmp_path):
        assert lint(tmp_path, "serve/mod.py", self.GOOD) == []

    def test_lock_order_inversion_flagged(self, tmp_path):
        violations = lint(tmp_path, "serve/mod.py", self.INVERSION)
        assert [v.rule for v in active(violations)] == ["lock-discipline"]
        assert "lock order" in violations[0].message

    def test_declared_order_clean(self, tmp_path):
        assert lint(tmp_path, "serve/mod.py", self.IN_ORDER) == []

    def test_out_of_scope_module_ignored(self, tmp_path):
        assert lint(tmp_path, "hdc/mod.py", self.BAD) == []


# ------------------------------------------------------- seed-determinism


class TestSeedDeterminism:
    BAD = """
        import numpy as np

        def draw():
            return np.random.rand(3)
    """

    UNSEEDED_RNG = """
        import numpy as np

        def draw():
            return np.random.default_rng()
    """

    GOOD = """
        import numpy as np

        def draw(seed):
            rng = np.random.default_rng(seed)
            seq = np.random.SeedSequence(seed)
            return rng, seq

        def annotate(g: "np.random.Generator"):
            return g
    """

    def test_legacy_global_rng_flagged(self, tmp_path):
        violations = lint(tmp_path, "hdc/encoders/mod.py", self.BAD)
        assert [v.rule for v in active(violations)] == ["seed-determinism"]

    def test_unseeded_default_rng_flagged(self, tmp_path):
        violations = lint(tmp_path, "engine/shard.py", self.UNSEEDED_RNG)
        assert len(active(violations)) == 1
        assert "without a seed" in violations[0].message

    def test_seeded_constructors_clean(self, tmp_path):
        assert lint(tmp_path, "datasets/splits.py", self.GOOD) == []

    @pytest.mark.parametrize(
        "call", ["time.time()", "os.urandom(8)", "uuid.uuid4()",
                 "random.random()", "secrets.token_bytes(8)"]
    )
    def test_ambient_entropy_sources_flagged(self, tmp_path, call):
        mod = call.split(".")[0]
        src = f"import {mod}\nx = {call}\n"
        violations = lint(tmp_path, "hdc/encoders/entropy.py", src)
        assert len(active(violations)) == 1

    def test_out_of_scope_module_ignored(self, tmp_path):
        # hdc/ outside encoders/ is not in this rule's scope.
        assert lint(
            tmp_path, "hdc/memory_like.py", self.BAD, ["seed-determinism"]
        ) == []


# ------------------------------------------------------- cache-coherence


class TestCacheCoherence:
    BAD = """
        class Memory:
            def invalidate_caches(self):
                self._version += 1

            def accumulate(self, delta):
                self._vectors += delta  # forgot the version bump
    """

    GOOD = """
        class Memory:
            def __init__(self, vectors):
                self._vectors = vectors  # __init__ exempt

            def invalidate_caches(self):
                self._version += 1

            def accumulate(self, delta):
                self._vectors += delta
                self.invalidate_caches()

            def replace(self, new):
                self.vectors = new  # property setter bumps

            def scatter(self, backend, rows, values):
                backend.scatter_add_rows(self._vectors, rows, values)
                self.invalidate_caches()
    """

    BAD_BACKEND_OP = """
        class Memory:
            def invalidate_caches(self):
                self._version += 1

            def scatter(self, backend, rows, values):
                backend.scatter_add_rows(self._vectors, rows, values)
    """

    def test_unbumped_mutation_flagged(self, tmp_path):
        violations = lint(tmp_path, "hdc/mod.py", self.BAD)
        assert [v.rule for v in active(violations)] == ["cache-coherence"]
        assert "invalidate_caches" in violations[0].message

    def test_unbumped_backend_mutator_flagged(self, tmp_path):
        violations = lint(tmp_path, "hdc/mod.py", self.BAD_BACKEND_OP)
        assert len(active(violations)) == 1

    def test_bumping_mutators_clean(self, tmp_path):
        assert lint(tmp_path, "hdc/mod.py", self.GOOD) == []

    def test_class_without_cache_protocol_ignored(self, tmp_path):
        src = """
            class Plain:
                def accumulate(self, delta):
                    self._vectors += delta
        """
        assert lint(tmp_path, "hdc/mod.py", src) == []


# ---------------------------------------------------- public-api-hygiene


class TestApiHygiene:
    def test_phantom_export_flagged(self, tmp_path):
        src = """
            def real():
                pass

            __all__ = ["real", "phantom"]
        """
        violations = lint(tmp_path, "utils/mod.py", src)
        assert [v.rule for v in active(violations)] == ["public-api-hygiene"]
        assert "phantom" in violations[0].message

    def test_duplicate_export_flagged(self, tmp_path):
        src = """
            def real():
                pass

            __all__ = ["real", "real"]
        """
        violations = lint(tmp_path, "utils/mod.py", src)
        assert "duplicate" in active(violations)[0].message

    def test_non_literal_all_flagged(self, tmp_path):
        src = "__all__ = [n for n in dir()]\n"
        violations = lint(tmp_path, "utils/mod.py", src)
        assert "literal" in active(violations)[0].message

    def test_silent_deprecation_flagged(self, tmp_path):
        src = '''
            def old_api():
                """Deprecated: use new_api instead."""
                return 1
        '''
        violations = lint(tmp_path, "utils/mod.py", src)
        assert "deprecated" in active(violations)[0].message

    def test_warning_deprecation_clean(self, tmp_path):
        src = '''
            import warnings

            def old_api():
                """Deprecated: use new_api instead."""
                warnings.warn("use new_api", DeprecationWarning, stacklevel=2)
                return 1
        '''
        assert lint(tmp_path, "utils/mod.py", src) == []

    def test_truthful_all_clean(self, tmp_path):
        src = """
            from os.path import join

            def real():
                pass

            CONST = 3
            __all__ = ["real", "CONST", "join"]
        """
        assert lint(tmp_path, "utils/mod.py", src) == []


# ----------------------------------------------------------- suppressions


class TestSuppressions:
    def test_allow_marker_suppresses_with_reason(self, tmp_path):
        src = """
            import numpy as np

            x = np.zeros(3)  # repro: allow[backend-purity] caller casts
        """
        violations = lint(tmp_path, "hdc/mod.py", src)
        assert len(violations) == 1
        v = violations[0]
        assert v.suppressed
        assert v.suppress_reason == "caller casts"

    def test_wildcard_marker_suppresses_any_rule(self, tmp_path):
        src = """
            import numpy as np

            x = np.zeros(3)  # repro: allow[*] prototype code
        """
        violations = lint(tmp_path, "hdc/mod.py", src)
        assert violations[0].suppressed

    def test_marker_for_other_rule_does_not_suppress(self, tmp_path):
        src = """
            import numpy as np

            x = np.zeros(3)  # repro: allow[seed-determinism] wrong rule
        """
        violations = lint(tmp_path, "hdc/mod.py", src)
        assert not violations[0].suppressed

    def test_marker_only_covers_its_own_line(self, tmp_path):
        src = """
            import numpy as np

            # repro: allow[backend-purity] markers are line-scoped
            x = np.zeros(3)
        """
        violations = lint(tmp_path, "hdc/mod.py", src)
        assert not violations[0].suppressed

    def test_parse_suppressions_multiple_rules(self):
        lines = ["x = 1  # repro: allow[rule-a, rule-b] shared reason"]
        parsed = parse_suppressions(lines)
        assert parsed == {
            1: {"rule-a": "shared reason", "rule-b": "shared reason"}
        }


# ----------------------------------------------------------- report / JSON


class TestReport:
    def test_payload_schema(self, tmp_path):
        path = tmp_path / "repro" / "hdc" / "mod.py"
        path.parent.mkdir(parents=True)
        path.write_text(
            "import numpy as np\n"
            "a = np.zeros(3)\n"
            "b = np.ones(3)  # repro: allow[backend-purity] fixture\n"
        )
        report = run_analysis([path])
        rules = get_rules(None)
        payload = json.loads(report.to_json(rules))
        assert payload["schema"] == REPORT_SCHEMA
        assert payload["ok"] is False
        assert payload["files_checked"] == 1
        assert payload["n_violations"] == 1
        assert payload["n_suppressed"] == 1
        assert {r["name"] for r in payload["rules"]} >= RULE_NAMES
        (record,) = payload["violations"]
        assert set(record) == {
            "rule", "path", "line", "col", "message",
            "suppressed", "suppress_reason",
        }
        assert record["line"] == 2
        assert payload["parse_errors"] == []

    def test_parse_error_recorded_not_raised(self, tmp_path):
        path = tmp_path / "repro" / "hdc" / "broken.py"
        path.parent.mkdir(parents=True)
        path.write_text("def broken(:\n")
        report = run_analysis([path])
        assert not report.ok
        assert report.parse_errors and report.parse_errors[0]["line"] == 1

    def test_directory_expansion_and_ok(self, tmp_path):
        pkg = tmp_path / "repro" / "hdc"
        pkg.mkdir(parents=True)
        (pkg / "clean.py").write_text("x = 1\n")
        (pkg / "also_clean.py").write_text("y = 2\n")
        report = run_analysis([tmp_path])
        assert report.ok
        assert report.files_checked == 2

    def test_rule_filter_limits_checks(self, tmp_path):
        path = tmp_path / "repro" / "hdc" / "mod.py"
        path.parent.mkdir(parents=True)
        path.write_text("import numpy as np\na = np.zeros(3)\n")
        report = run_analysis([path], ["seed-determinism"])
        assert report.ok  # backend-purity not selected


# -------------------------------------------------------------- CLI


class TestCli:
    def _main(self, argv):
        from repro.cli import main

        return main(argv)

    def test_lint_dirty_file_exits_1(self, tmp_path, capsys):
        path = tmp_path / "repro" / "hdc" / "mod.py"
        path.parent.mkdir(parents=True)
        path.write_text("import numpy as np\na = np.zeros(3)\n")
        assert self._main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "backend-purity" in out

    def test_lint_clean_file_exits_0(self, tmp_path, capsys):
        path = tmp_path / "repro" / "hdc" / "mod.py"
        path.parent.mkdir(parents=True)
        path.write_text("x = 1\n")
        assert self._main(["lint", str(path)]) == 0

    def test_lint_json_output(self, tmp_path, capsys):
        path = tmp_path / "repro" / "hdc" / "mod.py"
        path.parent.mkdir(parents=True)
        path.write_text("import numpy as np\na = np.zeros(3)\n")
        assert self._main(["lint", "--json", str(path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == REPORT_SCHEMA
        assert payload["n_violations"] == 1

    def test_lint_rule_filter(self, tmp_path, capsys):
        path = tmp_path / "repro" / "hdc" / "mod.py"
        path.parent.mkdir(parents=True)
        path.write_text("import numpy as np\na = np.zeros(3)\n")
        code = self._main(["lint", "--rule", "seed-determinism", str(path)])
        assert code == 0

    def test_lint_list_rules(self, capsys):
        assert self._main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in RULE_NAMES:
            assert name in out

    def test_lint_no_paths_exits_2(self, capsys):
        assert self._main(["lint"]) == 2

    def test_lint_output_file(self, tmp_path, capsys):
        target = tmp_path / "repro" / "hdc" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text("x = 1\n")
        out_file = tmp_path / "report.json"
        code = self._main(
            ["lint", "--json", "--output", str(out_file), str(target)]
        )
        assert code == 0
        assert json.loads(out_file.read_text())["ok"] is True


# ----------------------------------------------------------- self-lint


class TestSelfLint:
    def test_committed_tree_is_clean(self):
        report = run_analysis([REPO_SRC])
        assert report.parse_errors == []
        assert report.active == [], "\n" + report.render()

    def test_self_lint_checked_a_real_file_count(self):
        report = run_analysis([REPO_SRC])
        assert report.files_checked > 50
