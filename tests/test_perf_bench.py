"""Tests for repro.perf and the ``repro bench`` CLI subcommand."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.datasets.loaders import load_dataset
from repro.perf import (
    bench_legacy_disthd,
    bench_model,
    format_bench_table,
    run_bench,
    write_bench,
)


@pytest.fixture(scope="module")
def tiny_dataset():
    return load_dataset("diabetes", scale=0.01, seed=0)


class TestBenchModel:
    def test_record_fields(self, tiny_dataset):
        record = bench_model(
            "disthd", tiny_dataset, dim=32, iterations=2, repeats=1
        )
        for key in ("fit_s", "predict_s", "encode_s", "test_acc"):
            assert key in record, key
            assert record[key] >= 0.0
        assert record["model"] == "disthd"
        assert record["dtype"] == "float32"
        assert record["backend"] == "numpy"

    def test_dtype_override(self, tiny_dataset):
        record = bench_model(
            "disthd", tiny_dataset, dim=32, iterations=2, repeats=1,
            dtype="float64",
        )
        assert record["dtype"] == "float64"


class TestLegacyReference:
    def test_legacy_fit_times_and_scores(self, tiny_dataset):
        legacy = bench_legacy_disthd(
            tiny_dataset, dim=32, iterations=2, repeats=1
        )
        assert legacy["fit_s"] > 0.0
        assert 0.0 <= legacy["test_acc"] <= 1.0

    def test_legacy_patch_is_restored(self, tiny_dataset):
        import repro.core.adaptive as adaptive_mod
        import repro.core.disthd as disthd_mod

        bench_legacy_disthd(tiny_dataset, dim=16, iterations=2, repeats=1)
        assert (
            disthd_mod.adaptive_fit_iteration
            is adaptive_mod.adaptive_fit_iteration
        )


class TestRunBench:
    def test_smoke_payload(self):
        payload = run_bench(models=("disthd",), smoke=True)
        assert payload["schema"] == 1
        assert payload["config"]["smoke"] is True
        assert [r["model"] for r in payload["results"]] == ["disthd"]
        assert "fit_speedup_vs_legacy" in payload
        assert payload["fit_speedup_vs_legacy"] > 0.0
        # The payload must be JSON-serialisable as-is.
        json.dumps(payload)

    def test_no_legacy(self):
        payload = run_bench(
            models=("onlinehd",), smoke=True, include_legacy=True
        )
        # legacy reference only runs when disthd is in the sweep
        assert "fit_speedup_vs_legacy" not in payload

    def test_format_table(self):
        payload = run_bench(models=("disthd",), smoke=True)
        table = format_bench_table(payload)
        assert "disthd" in table
        assert "speedup" in table

    def test_write_bench(self, tmp_path):
        payload = run_bench(models=("disthd",), smoke=True,
                            include_legacy=False)
        path = write_bench(payload, tmp_path / "bench.json")
        restored = json.loads(path.read_text())
        assert restored["results"][0]["model"] == "disthd"


class TestBenchCLI:
    def test_bench_smoke_writes_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_test.json"
        code = main(
            ["bench", "--smoke", "--models", "disthd", "--output", str(out)]
        )
        assert code == 0
        assert out.exists()
        payload = json.loads(out.read_text())
        assert payload["config"]["smoke"] is True
        captured = capsys.readouterr().out
        assert "disthd" in captured and "wrote" in captured


class TestTrackedBaseline:
    def test_bench_pr2_json_is_committed_and_meets_target(self):
        """The acceptance artifact: ≥1.5x fit speedup vs the float64 path."""
        from pathlib import Path

        path = Path(__file__).resolve().parents[1] / "BENCH_pr2.json"
        assert path.exists(), "BENCH_pr2.json missing from repo root"
        payload = json.loads(path.read_text())
        assert payload["fit_speedup_vs_legacy"] >= 1.5
        models = {r["model"] for r in payload["results"]}
        assert "disthd" in models
