"""Tests for repro.perf and the ``repro bench`` CLI subcommand."""

import json

import pytest

from repro.cli import main
from repro.datasets.loaders import load_dataset
from repro.perf import (
    bench_legacy_disthd,
    bench_model,
    format_bench_table,
    run_bench,
    write_bench,
)


@pytest.fixture(scope="module")
def tiny_dataset():
    return load_dataset("diabetes", scale=0.01, seed=0)


class TestBenchModel:
    def test_record_fields(self, tiny_dataset):
        record = bench_model(
            "disthd", tiny_dataset, dim=32, iterations=2, repeats=1
        )
        for key in ("fit_s", "predict_s", "encode_s", "test_acc"):
            assert key in record, key
            assert record[key] >= 0.0
        assert record["model"] == "disthd"
        assert record["dtype"] == "float32"
        assert record["backend"] == "numpy"

    def test_dtype_override(self, tiny_dataset):
        record = bench_model(
            "disthd", tiny_dataset, dim=32, iterations=2, repeats=1,
            dtype="float64",
        )
        assert record["dtype"] == "float64"


class TestLegacyReference:
    def test_legacy_fit_times_and_scores(self, tiny_dataset):
        legacy = bench_legacy_disthd(
            tiny_dataset, dim=32, iterations=2, repeats=1
        )
        assert legacy["fit_s"] > 0.0
        assert 0.0 <= legacy["test_acc"] <= 1.0

    def test_legacy_patch_is_restored(self, tiny_dataset):
        import repro.core.adaptive as adaptive_mod
        import repro.core.disthd as disthd_mod

        bench_legacy_disthd(tiny_dataset, dim=16, iterations=2, repeats=1)
        assert (
            disthd_mod.adaptive_fit_iteration
            is adaptive_mod.adaptive_fit_iteration
        )


class TestRunBench:
    def test_smoke_payload(self):
        payload = run_bench(models=("disthd",), smoke=True)
        assert payload["schema"] == 8
        assert payload["config"]["smoke"] is True
        assert [r["model"] for r in payload["results"]] == ["disthd"]
        assert "fit_speedup_vs_legacy" in payload
        assert payload["fit_speedup_vs_legacy"] > 0.0
        scenario = payload["scenarios"]["regen_heavy"]
        assert scenario["fit_s"] > 0.0
        assert scenario["pr2_reference"]["fit_s"] > 0.0
        assert scenario["fused_scoring"]["peak_bytes"] > 0
        sharded = payload["scenarios"]["sharded_fit"]
        assert sharded["single_fit_s"] > 0.0
        assert sharded["sharded_fit_s"] > 0.0
        assert sharded["n_jobs"] == 2 and sharded["n_shards"] == 2
        serving = payload["scenarios"]["serving"]
        assert serving["batched"]["n_failed"] == 0
        assert serving["direct"]["throughput_rps"] > 0
        assert serving["swap"]["n_swaps"] >= 1
        assert serving["swap"]["parity_ok"] is True
        packed = payload["scenarios"]["packed_vs_int8"]
        assert packed["parity"]["scores_bit_identical"] is True
        assert packed["parity"]["accuracy_delta"] == 0.0
        assert packed["footprints"]["compression_vs_unpacked"] >= 32
        assert packed["serving"]["failed_requests"] == 0
        assert packed["serving"]["served_packed_after_swap"] is True
        fleet = payload["scenarios"]["fleet_resilience"]
        assert fleet["chaos_kill"]["outcomes"]["failed"] == 0
        assert fleet["chaos_kill"]["survived"] is True
        assert fleet["crash_loop"]["tripped"] is True
        assert fleet["steady_state"]["throughput_scaling"] > 0
        encode = payload["scenarios"]["encode_latency"]
        assert all(e["float64_bit_identical"] for e in encode["fwht_exactness"])
        assert encode["gate"]["speedup"] > 0
        # Smoke trains parity at D=256 < the gate dim, so the delta is
        # informational only.
        assert encode["accuracy"]["passed"] is None
        assert isinstance(encode["accuracy"]["delta"], float)
        obs = payload["scenarios"]["obs_overhead"]
        assert obs["overhead"]["throughput_ratio"] > 0
        # Smoke request counts sit below OBS_GATE_MIN_REQUESTS, so the
        # overhead ratios are informational and the gate always passes.
        assert obs["overhead"]["gate"]["gated"] is False
        assert obs["overhead"]["gate"]["passed"] is True
        assert obs["chaos"]["passed"] is True
        assert obs["chaos"]["n_flight_dumps"] >= 1
        assert obs["chaos"]["complete_retried_traces"] >= 1
        assert obs["chaos"]["outcomes"].get("failed", 0) == 0
        table = format_bench_table(payload)
        assert "obs overhead" in table
        assert "obs traced kill drill" in table
        # The payload must be JSON-serialisable as-is.
        json.dumps(payload)

    def test_no_legacy(self):
        payload = run_bench(
            models=("onlinehd",), smoke=True, include_legacy=True,
            include_fleet=False, include_obs=False,
        )
        # legacy reference only runs when disthd is in the sweep
        assert "fit_speedup_vs_legacy" not in payload

    def test_no_fleet(self):
        payload = run_bench(
            models=("disthd",), smoke=True, include_fleet=False,
            include_obs=False,
        )
        assert "fleet_resilience" not in payload["scenarios"]
        assert "obs_overhead" not in payload["scenarios"]

    def test_format_table(self):
        payload = run_bench(
            models=("disthd",), smoke=True, include_fleet=False,
            include_obs=False,
        )
        table = format_bench_table(payload)
        assert "disthd" in table
        assert "speedup" in table

    def test_write_bench(self, tmp_path):
        payload = run_bench(models=("disthd",), smoke=True,
                            include_legacy=False, include_fleet=False,
                            include_obs=False)
        path = write_bench(payload, tmp_path / "bench.json")
        restored = json.loads(path.read_text())
        assert restored["results"][0]["model"] == "disthd"


class TestBenchCLI:
    def test_bench_smoke_writes_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_test.json"
        code = main(
            ["bench", "--smoke", "--models", "disthd", "--no-fleet",
             "--no-obs", "--output", str(out)]
        )
        assert code == 0
        assert out.exists()
        payload = json.loads(out.read_text())
        assert payload["config"]["smoke"] is True
        captured = capsys.readouterr().out
        assert "disthd" in captured and "wrote" in captured


class TestTrackedBaseline:
    def test_bench_pr2_json_is_committed_and_meets_target(self):
        """The acceptance artifact: ≥1.5x fit speedup vs the float64 path."""
        from pathlib import Path

        path = Path(__file__).resolve().parents[1] / "BENCH_pr2.json"
        assert path.exists(), "BENCH_pr2.json missing from repo root"
        payload = json.loads(path.read_text())
        assert payload["fit_speedup_vs_legacy"] >= 1.5
        models = {r["model"] for r in payload["results"]}
        assert "disthd" in models


class TestTrackedBaselinePr3:
    def test_bench_pr3_json_is_committed_and_meets_target(self):
        """PR-3 acceptance artifact: ≥1.3x regen-heavy fit speedup over the
        PR-2 path at equal accuracy, with the fused Algorithm-2 scoring peak
        far below one dense (n, D) distance matrix."""
        from pathlib import Path

        path = Path(__file__).resolve().parents[1] / "BENCH_pr3.json"
        assert path.exists(), "BENCH_pr3.json missing from repo root"
        payload = json.loads(path.read_text())
        assert payload["schema"] == 2  # committed before schema 3
        scenario = payload["scenarios"]["regen_heavy"]
        assert scenario["dim"] >= 4096
        assert scenario["fit_speedup_vs_pr2"] >= 1.3
        assert abs(
            scenario["test_acc"] - scenario["pr2_reference"]["test_acc"]
        ) <= 0.02
        scoring = scenario["fused_scoring"]
        assert scoring["peak_bytes"] < 0.5 * scoring["dense_matrix_bytes"]


class TestTrackedBaselinePr4:
    def test_bench_pr4_json_is_committed_and_meets_target(self):
        """PR-4 acceptance artifact: ≥1.5x fit wall-clock speedup at
        n_jobs=4 on the regen-heavy scenario, accuracy within 1 point of
        the single-process fit at the same seed."""
        from pathlib import Path

        path = Path(__file__).resolve().parents[1] / "BENCH_pr4.json"
        assert path.exists(), "BENCH_pr4.json missing from repo root"
        payload = json.loads(path.read_text())
        assert payload["schema"] == 3
        scenario = payload["scenarios"]["sharded_fit"]
        assert scenario["dim"] >= 4096
        assert scenario["n_jobs"] >= 4
        assert scenario["fit_speedup_vs_single"] >= 1.5
        assert abs(
            scenario["sharded_test_acc"] - scenario["single_test_acc"]
        ) <= 0.01


class TestTrackedBaselinePr5:
    def test_bench_pr5_json_is_committed_and_meets_target(self):
        """PR-5 acceptance artifact: ≥3x micro-batched throughput vs
        per-request predict at concurrency 32 on the regen-heavy serving
        scenario, with a hot-swap under load dropping zero requests and
        exact post-swap parity."""
        from pathlib import Path

        path = Path(__file__).resolve().parents[1] / "BENCH_pr5.json"
        assert path.exists(), "BENCH_pr5.json missing from repo root"
        payload = json.loads(path.read_text())
        assert payload["schema"] == 4
        scenario = payload["scenarios"]["serving"]
        assert scenario["dim"] >= 4096
        assert scenario["concurrency"] >= 32
        assert scenario["throughput_speedup_vs_direct"] >= 3.0
        assert scenario["batched"]["n_failed"] == 0
        swap = scenario["swap"]
        assert swap["n_swaps"] >= 1
        assert swap["failed_requests"] == 0
        assert swap["parity_ok"] is True


class TestTrackedBaselinePr7:
    def test_bench_pr7_json_is_committed_and_meets_target(self):
        """PR-7 acceptance artifact: the packed scorer stage ≥4x faster
        than the unpacked 1-bit scorer at D=4096, bit-identical to the
        unpacked binary reference (accuracy delta exactly 0), the packed
        artifact ≤1/32 the bytes of the unpacked 1-bit serving image, and
        the packed hot-swap under load dropping zero requests."""
        from pathlib import Path

        path = Path(__file__).resolve().parents[1] / "BENCH_pr7.json"
        assert path.exists(), "BENCH_pr7.json missing from repo root"
        payload = json.loads(path.read_text())
        assert payload["schema"] == 5
        scenario = payload["scenarios"]["packed_vs_int8"]
        assert scenario["dim"] >= 4096
        assert scenario["scoring"]["score_speedup_vs_int"] >= 4.0
        parity = scenario["parity"]
        assert parity["scores_bit_identical"] is True
        assert parity["predictions_equal"] is True
        assert parity["accuracy_delta"] == 0.0
        footprints = scenario["footprints"]
        assert footprints["compression_vs_unpacked"] >= 32.0
        assert (
            footprints["packed_bytes"]
            <= footprints["unpacked_1bit_serving_bytes"] / 32
        )
        serving = scenario["serving"]
        assert serving["n_swaps"] >= 1
        assert serving["failed_requests"] == 0
        assert serving["served_packed_after_swap"] is True
        assert serving["parity_ok"] is True


class TestTrackedBaselinePr8:
    def test_bench_pr8_json_is_committed_and_meets_target(self):
        """PR-8 acceptance artifact: ≥3x steady-state throughput at 4
        workers vs 1 at flat p95, the SIGKILL drill survived with zero
        failed (non-shed) requests and sub-2s recovery, and the
        crash-loop circuit breaker tripped."""
        from pathlib import Path

        path = Path(__file__).resolve().parents[1] / "BENCH_pr8.json"
        assert path.exists(), "BENCH_pr8.json missing from repo root"
        payload = json.loads(path.read_text())
        assert payload["schema"] == 6
        scenario = payload["scenarios"]["fleet_resilience"]
        assert scenario["n_workers"] >= 4
        steady = scenario["steady_state"]
        assert steady["throughput_scaling"] >= 3.0
        assert steady["p95_ratio_vs_single"] <= 1.5
        kill = scenario["chaos_kill"]
        assert kill["outcomes"]["failed"] == 0
        assert kill["survived"] is True
        assert kill["recovery_s"] is not None
        assert kill["recovery_s"] <= 2.0
        assert sum(kill["restarts"]) >= 1
        assert scenario["crash_loop"]["tripped"] is True


class TestPackedDeployScenario:
    def test_miniature_scenario_record(self):
        from repro.perf import bench_packed_deploy

        rec = bench_packed_deploy(
            scale=0.003, dim=100, iterations=2,
            n_score_rows=64, score_repeats=1,
            n_requests=64, concurrency=4,
        )
        assert rec["scenario"] == "packed_vs_int8"
        fp = rec["footprints"]
        # D=100 pads to two uint64 words per class.
        assert fp["words_per_class"] == 2
        assert fp["packed_bytes"] < fp["int8_bytes"]
        assert rec["scoring"]["packed_score_s"] > 0
        assert rec["parity"]["scores_bit_identical"] is True
        assert rec["parity"]["predictions_equal"] is True
        assert rec["parity"]["accuracy_delta"] == 0.0
        assert rec["serving"]["failed_requests"] == 0
        assert rec["serving"]["n_swaps"] >= 1
        assert rec["serving"]["served_packed_after_swap"] is True
        assert rec["serving"]["parity_ok"] is True
        json.dumps(rec)


class TestServingScenario:
    def test_miniature_scenario_record(self):
        from repro.perf import bench_serving

        rec = bench_serving(
            scale=0.003, dim=96, iterations=2,
            n_requests=64, concurrency=4,
        )
        assert rec["scenario"] == "serving"
        assert rec["direct"]["throughput_rps"] > 0
        assert rec["batched"]["throughput_rps"] > 0
        assert rec["batched"]["n_failed"] == 0
        assert rec["throughput_speedup_vs_direct"] > 0
        assert rec["mean_batch_size"] >= 1
        assert rec["swap"]["n_swaps"] >= 1
        assert rec["swap"]["parity_ok"] is True
        json.dumps(rec)

    def test_no_swap_mode(self):
        from repro.perf import bench_serving

        rec = bench_serving(
            scale=0.003, dim=96, iterations=2,
            n_requests=48, concurrency=4, swap=False,
        )
        assert "swap" not in rec
        assert rec["batched"]["n_failed"] == 0


class TestFleetResilienceScenario:
    def test_miniature_scenario_record(self):
        from repro.perf import bench_fleet_resilience

        rec = bench_fleet_resilience(
            scale=0.003, dim=96, iterations=2,
            n_requests=48, concurrency=4,
            n_workers=2, queue_depth=16, service_floor_ms=1.0,
        )
        assert rec["scenario"] == "fleet_resilience"
        steady = rec["steady_state"]
        assert steady["workers_1"]["throughput_rps"] > 0
        assert steady["workers_2"]["throughput_rps"] > 0
        assert steady["throughput_scaling"] > 0
        kill = rec["chaos_kill"]
        assert kill["outcomes"]["failed"] == 0
        assert kill["survived"] is True
        assert sum(kill["restarts"]) >= 1
        assert rec["crash_loop"]["tripped"] is True
        json.dumps(rec)


class TestShardedFitScenario:
    def test_miniature_scenario_record(self):
        from repro.perf import bench_sharded_fit

        rec = bench_sharded_fit(
            scale=0.002, dim=128, iterations=2, n_jobs=2, repeats=1
        )
        assert rec["scenario"] == "sharded_fit"
        assert rec["single_fit_s"] > 0 and rec["sharded_fit_s"] > 0
        assert rec["fit_speedup_vs_single"] > 0
        assert rec["n_jobs"] == 2 and rec["n_shards"] == 2
        assert -1.0 <= rec["acc_delta"] <= 1.0
        json.dumps(rec)


class TestEncodeLatencyScenario:
    def test_miniature_scenario_record(self):
        from repro.perf import bench_encode_latency

        rec = bench_encode_latency(
            scale=0.003, dims=(512, 1024), batch_sizes=(1, 4),
            gate_dim=1024, acc_dim=128, acc_iterations=2, acc_seeds=2,
            repeats=2,
        )
        assert rec["scenario"] == "encode_latency"
        assert all(e["float64_bit_identical"] for e in rec["fwht_exactness"])
        assert all(e["float32_ok"] for e in rec["fwht_exactness"])
        assert [t["dim"] for t in rec["timings"]] == [512, 1024]
        for timing in rec["timings"]:
            for point in timing["batches"]:
                assert point["dense_rbf_s"] > 0
                assert point["fastfood_s"] > 0
                assert point["speedup"] > 0
            # O(D) structured parameters vs O(F·D) dense projection.
            assert (
                timing["structured_param_floats"]
                < timing["dense_param_floats"]
            )
        assert rec["gate"]["dim"] == 1024
        acc = rec["accuracy"]
        assert acc["passed"] is None  # below the gate dim: informational
        assert len(acc["per_seed"]) == 2
        assert acc["delta"] == pytest.approx(
            sum(r["delta"] for r in acc["per_seed"]) / 2
        )
        json.dumps(rec)


class TestRegenHeavyScenario:
    def test_miniature_scenario_record(self):
        from repro.perf import bench_regen_heavy

        rec = bench_regen_heavy(
            scale=0.002, dim=128, iterations=2, repeats=1
        )
        assert rec["scenario"] == "regen_heavy"
        assert rec["fit_s"] > 0 and rec["pr2_reference"]["fit_s"] > 0
        assert rec["fit_speedup_vs_pr2"] > 0
        assert rec["fused_scoring"]["peak_bytes"] > 0
        json.dumps(rec)

    def test_pr2_reference_path_is_restored(self):
        from repro.backend.numpy_backend import NumpyBackend
        from repro.hdc.memory import AssociativeMemory
        from repro.perf import _pr2_reference_path
        import repro.core.adaptive as adaptive_mod
        import repro.core.disthd as disthd_mod

        before_set = NumpyBackend.set_columns
        with _pr2_reference_path():
            assert AssociativeMemory.caching_enabled is False
            assert NumpyBackend.set_columns is not before_set
        assert AssociativeMemory.caching_enabled is True
        assert NumpyBackend.set_columns is before_set
        assert (
            disthd_mod.adaptive_fit_iteration
            is adaptive_mod.adaptive_fit_iteration
        )


class TestCheckRegression:
    def _payload(self, fit, predict):
        return {
            "results": [
                {"model": "disthd", "fit_s": fit, "predict_s": predict}
            ]
        }

    def test_within_margin_passes(self):
        import sys
        from pathlib import Path

        sys.path.insert(
            0, str(Path(__file__).resolve().parents[1] / "benchmarks")
        )
        try:
            from check_regression import compare
        finally:
            sys.path.pop(0)
        base = self._payload(0.1, 0.01)
        assert compare(self._payload(0.19, 0.019), base, 2.0) == []
        problems = compare(self._payload(0.21, 0.01), base, 2.0)
        assert len(problems) == 1 and "fit_s" in problems[0]
        # a model absent from the baseline is not gated
        assert compare(
            {"results": [{"model": "new", "fit_s": 9, "predict_s": 9}]},
            base, 2.0,
        ) == []

    @staticmethod
    def _serving_payload(p95_ms, rps, failed=0, parity=True):
        return {
            "results": [{"model": "disthd", "fit_s": 0.1, "predict_s": 0.01}],
            "scenarios": {
                "serving": {
                    "batched": {
                        "latency_ms": {"p95": p95_ms},
                        "throughput_rps": rps,
                    },
                    "swap": {"failed_requests": failed, "parity_ok": parity},
                }
            },
        }

    def test_serving_scenario_gated(self):
        import sys
        from pathlib import Path

        sys.path.insert(
            0, str(Path(__file__).resolve().parents[1] / "benchmarks")
        )
        try:
            from check_regression import compare
        finally:
            sys.path.pop(0)
        base = self._serving_payload(10.0, 5000.0)
        # within margin
        assert compare(self._serving_payload(15.0, 4000.0), base, 2.0) == []
        # p95 blow-up
        problems = compare(self._serving_payload(30.0, 5000.0), base, 2.0)
        assert any("p95" in p for p in problems)
        # throughput collapse
        problems = compare(self._serving_payload(10.0, 1000.0), base, 2.0)
        assert any("throughput" in p for p in problems)
        # dropped requests / parity failures always gate
        problems = compare(
            self._serving_payload(10.0, 5000.0, failed=3), base, 2.0
        )
        assert any("dropped" in p for p in problems)
        problems = compare(
            self._serving_payload(10.0, 5000.0, parity=False), base, 2.0
        )
        assert any("parity" in p for p in problems)
        # serving absent from the baseline is not gated
        assert compare(
            self._serving_payload(99.0, 1.0),
            {"results": base["results"]}, 2.0,
        ) == []
        # a measured zero (total collapse) still gates — falsy values are
        # not "absent"
        problems = compare(self._serving_payload(10.0, 0.0), base, 2.0)
        assert any("throughput" in p for p in problems)

    @staticmethod
    def _packed_payload(
        score_s=0.01, delta=0.0, identical=True, failed=0,
        still_packed=True, parity=True,
    ):
        return {
            "results": [{"model": "disthd", "fit_s": 0.1, "predict_s": 0.01}],
            "scenarios": {
                "packed_vs_int8": {
                    "scoring": {"packed_score_s": score_s},
                    "parity": {
                        "scores_bit_identical": identical,
                        "accuracy_delta": delta,
                    },
                    "serving": {
                        "failed_requests": failed,
                        "served_packed_after_swap": still_packed,
                        "parity_ok": parity,
                    },
                }
            },
        }

    def test_packed_scenario_gated(self):
        import sys
        from pathlib import Path

        sys.path.insert(
            0, str(Path(__file__).resolve().parents[1] / "benchmarks")
        )
        try:
            from check_regression import compare
        finally:
            sys.path.pop(0)
        base = self._packed_payload(score_s=0.02)
        # within margin
        assert compare(self._packed_payload(score_s=0.03), base, 2.0) == []
        # packed scorer slowdown beyond the factor
        problems = compare(self._packed_payload(score_s=0.05), base, 2.0)
        assert any("packed_score_s" in p for p in problems)
        # parity violations gate on the current payload alone
        problems = compare(
            self._packed_payload(identical=False), base, 2.0
        )
        assert any("diverge" in p for p in problems)
        problems = compare(self._packed_payload(delta=0.01), base, 2.0)
        assert any("accuracy delta" in p for p in problems)
        # serving invariants
        problems = compare(self._packed_payload(failed=2), base, 2.0)
        assert any("dropped" in p for p in problems)
        problems = compare(
            self._packed_payload(still_packed=False), base, 2.0
        )
        assert any("demoted" in p for p in problems)
        problems = compare(self._packed_payload(parity=False), base, 2.0)
        assert any("parity" in p for p in problems)
        # scenario absent from the current payload: nothing to gate
        assert compare({"results": base["results"]}, base, 2.0) == []
        # absent from the baseline: invariants still gate, timing doesn't
        assert compare(
            self._packed_payload(score_s=99.0),
            {"results": base["results"]}, 2.0,
        ) == []

    @staticmethod
    def _fleet_payload(
        scaling=3.5, p95_ratio=0.5, failed=0, survived=True,
        recovery=0.2, tripped=True, rps=500.0,
    ):
        return {
            "scenarios": {
                "fleet_resilience": {
                    "n_workers": 4,
                    "steady_state": {
                        "throughput_scaling": scaling,
                        "p95_ratio_vs_single": p95_ratio,
                        "workers_4": {"throughput_rps": rps},
                    },
                    "chaos_kill": {
                        "outcomes": {"ok": 256, "shed": 0, "failed": failed},
                        "survived": survived,
                        "recovery_s": recovery,
                    },
                    "crash_loop": {"tripped": tripped},
                }
            },
        }

    def test_fleet_scenario_gated(self):
        import sys
        from pathlib import Path

        sys.path.insert(
            0, str(Path(__file__).resolve().parents[1] / "benchmarks")
        )
        try:
            from check_regression import compare
        finally:
            sys.path.pop(0)
        base = self._fleet_payload()
        # a healthy fleet record passes (scenario-only payloads are valid)
        assert compare(self._fleet_payload(), base, 2.0) == []
        # scaling below the floor at 4 workers
        problems = compare(self._fleet_payload(scaling=1.5), base, 2.0)
        assert any("throughput_scaling" in p for p in problems)
        # p95 no longer flat
        problems = compare(self._fleet_payload(p95_ratio=3.0), base, 2.0)
        assert any("p95_ratio" in p for p in problems)
        # failed requests across the SIGKILL always gate
        problems = compare(self._fleet_payload(failed=2), base, 2.0)
        assert any("non-shed" in p for p in problems)
        # recovery too slow
        problems = compare(self._fleet_payload(recovery=5.0), base, 2.0)
        assert any("recovery_s" in p for p in problems)
        # breaker never tripped
        problems = compare(self._fleet_payload(tripped=False), base, 2.0)
        assert any("circuit breaker" in p for p in problems)
        # throughput collapse vs baseline
        problems = compare(self._fleet_payload(rps=100.0), base, 2.0)
        assert any("workers_4" in p for p in problems)
        # scenario absent on both sides: nothing to gate
        assert compare({"scenarios": {}}, base, 2.0) == []

    @staticmethod
    def _encode_payload(
        speedup=5.0, gate_dim=4096, fastfood_s=0.001,
        exact=True, f32_ok=True, acc_passed=True,
    ):
        return {
            "scenarios": {
                "encode_latency": {
                    "fwht_exactness": [
                        {"m": 1024, "float64_bit_identical": exact,
                         "float32_ok": f32_ok,
                         "float32_max_abs_err": 0.0, "float32_tol": 1.0},
                    ],
                    "timings": [
                        {"dim": gate_dim, "batches": [
                            {"batch": 1, "fastfood_s": fastfood_s},
                        ]},
                    ],
                    "gate": {"dim": gate_dim, "batch": 1,
                             "speedup": speedup, "floor": 4.0},
                    "accuracy": {"passed": acc_passed, "delta": 0.0,
                                 "tolerance": 0.01, "dim": 4096},
                }
            },
        }

    def test_encode_scenario_gated(self):
        import sys
        from pathlib import Path

        sys.path.insert(
            0, str(Path(__file__).resolve().parents[1] / "benchmarks")
        )
        try:
            from check_regression import compare
        finally:
            sys.path.pop(0)
        base = self._encode_payload()
        # healthy record passes
        assert compare(self._encode_payload(), base, 2.0) == []
        # speedup below the 4x floor at the committed gate dim
        problems = compare(self._encode_payload(speedup=2.0), base, 2.0)
        assert any("speedup" in p for p in problems)
        # the floor is only enforced at gate dims >= 4096 (smoke runs
        # at smaller dims stay meaningful without tripping it)
        assert compare(
            self._encode_payload(speedup=2.0, gate_dim=1024), base, 2.0
        ) == []
        # exactness violations always gate on the current payload
        problems = compare(self._encode_payload(exact=False), base, 2.0)
        assert any("float64" in p for p in problems)
        problems = compare(self._encode_payload(f32_ok=False), base, 2.0)
        assert any("float32" in p for p in problems)
        # accuracy parity failure gates
        problems = compare(
            self._encode_payload(acc_passed=False), base, 2.0
        )
        assert any("accuracy" in p for p in problems)
        # baseline-relative slowdown of the structured encode at the
        # gate point (above the absolute noise floor)
        problems = compare(
            self._encode_payload(fastfood_s=0.02), base, 2.0
        )
        assert any("fastfood_s" in p for p in problems)
        # scenario absent from the current payload: nothing to gate
        assert compare({"scenarios": {}}, base, 2.0) == []

    def test_sections_isolated_on_malformed_payload(self):
        import sys
        from pathlib import Path

        sys.path.insert(
            0, str(Path(__file__).resolve().parents[1] / "benchmarks")
        )
        try:
            from check_regression import compare
        finally:
            sys.path.pop(0)
        base = self._fleet_payload()
        # A malformed results section reports itself as a failure but
        # does not stop the fleet section from gating.
        mangled = dict(self._fleet_payload(tripped=False))
        mangled["results"] = "not-a-list"
        problems = compare(mangled, base, 2.0)
        assert any("comparator crashed" in p for p in problems)
        assert any("circuit breaker" in p for p in problems)
