"""Tests for repro.obs.trace — spans, deterministic sampling, context
propagation helpers, and the chaos-drill acceptance predicate."""

import pytest

from repro.obs.ids import wall_now
from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    TraceContext,
    Tracer,
    complete_retried_traces,
    span_record,
    span_tree,
)


class TestSampling:
    def test_disabled_tracer_is_noop(self):
        tracer = Tracer(0.0)
        assert tracer.enabled is False
        span = tracer.start("request")
        assert span is NOOP_SPAN
        assert span.sampled is False
        assert span.context is None
        span.end()  # harmless
        assert tracer.finished() == []

    def test_rate_one_samples_everything(self):
        tracer = Tracer(1.0)
        spans = [tracer.start("request") for _ in range(5)]
        assert all(isinstance(s, Span) for s in spans)
        for s in spans:
            s.end()
        assert len(tracer.finished()) == 5

    def test_fractional_rate_is_deterministic(self):
        # Accumulator sampling: at rate 0.5 exactly every second root is
        # sampled, and a fresh tracer reproduces the same pattern.
        def pattern():
            tracer = Tracer(0.5)
            return [tracer.start("r") is not NOOP_SPAN for _ in range(10)]

        first = pattern()
        assert sum(first) == 5
        assert pattern() == first

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(-0.1)
        with pytest.raises(ValueError):
            Tracer(1.5)


class TestSpans:
    def test_root_span_record_fields(self):
        tracer = Tracer(1.0)
        span = tracer.start("serve", role="server", attrs={"rid": 7})
        span.end("ok", batch=3)
        (record,) = tracer.finished()
        assert record["name"] == "serve"
        assert record["role"] == "server"
        assert record["parent_id"] is None
        assert record["status"] == "ok"
        assert record["duration_s"] >= 0.0
        assert record["attrs"] == {"rid": 7, "batch": 3}

    def test_child_inherits_trace_and_parent(self):
        tracer = Tracer(1.0)
        root = tracer.start("request")
        child = tracer.start("encode", role="worker", ctx=root.context)
        child.end()
        root.end()
        child_rec, root_rec = tracer.finished()
        assert child_rec["trace_id"] == root_rec["trace_id"]
        assert child_rec["parent_id"] == root_rec["span_id"]

    def test_unsampled_context_yields_noop(self):
        tracer = Tracer(1.0)
        ctx = TraceContext("t-1", None, False)
        assert tracer.start("encode", ctx=ctx) is NOOP_SPAN

    def test_end_is_idempotent(self):
        tracer = Tracer(1.0)
        span = tracer.start("request")
        span.end()
        span.end("error")
        (record,) = tracer.finished()
        assert record["status"] == "ok"

    def test_context_manager_records_error_status(self):
        tracer = Tracer(1.0)
        with pytest.raises(RuntimeError):
            with tracer.start("request"):
                raise RuntimeError("boom")
        (record,) = tracer.finished()
        assert record["status"] == "error"

    def test_ring_bound(self):
        tracer = Tracer(1.0, max_spans=4)
        for i in range(10):
            tracer.start("r", attrs={"i": i}).end()
        retained = tracer.finished()
        assert len(retained) == 4
        assert [s["attrs"]["i"] for s in retained] == [6, 7, 8, 9]


class TestIngest:
    def test_span_record_roundtrip(self):
        tracer = Tracer(1.0)
        ctx = TraceContext("t-abc", "s-parent", True)
        record = span_record("score", "worker", ctx, wall_now(), 0.002)
        tracer.ingest([record])
        (adopted,) = tracer.finished()
        assert adopted["trace_id"] == "t-abc"
        assert adopted["parent_id"] == "s-parent"
        assert adopted["name"] == "score"

    def test_ingest_skips_malformed(self):
        tracer = Tracer(1.0)
        tracer.ingest(None)
        tracer.ingest([{"no_trace": 1}, "not a dict", 42])
        assert tracer.finished() == []

    def test_spans_for_and_trace_ids(self):
        tracer = Tracer(1.0)
        a = tracer.start("a")
        a.end()
        b = tracer.start("b")
        b.end()
        assert tracer.trace_ids() == [a.trace_id, b.trace_id]
        assert [s["name"] for s in tracer.spans_for(b.trace_id)] == ["b"]


def _span(trace_id, span_id, parent_id, name, role, start=0.0):
    return {
        "trace_id": trace_id, "span_id": span_id, "parent_id": parent_id,
        "name": name, "role": role, "pid": 1, "start_unix": start,
        "duration_s": 0.0, "status": "ok", "attrs": {},
    }


class TestSpanTree:
    def test_nesting_and_orphans(self):
        spans = [
            _span("t", "root", None, "request", "client", start=0.0),
            _span("t", "kid", "root", "dispatch", "supervisor", start=1.0),
            # Parent died with a killed worker: surfaces as a root.
            _span("t", "lost", "gone", "score", "worker", start=2.0),
        ]
        roots = span_tree(spans)
        assert [r["span"]["span_id"] for r in roots] == ["root", "lost"]
        (child,) = roots[0]["children"]
        assert child["span"]["span_id"] == "kid"


class TestCompleteRetriedTraces:
    def test_predicate(self):
        complete = [
            _span("t1", "a", None, "request", "client"),
            _span("t1", "b", "a", "dispatch", "supervisor"),
            _span("t1", "c", "a", "retry", "supervisor"),
            _span("t1", "d", "b", "score", "worker"),
        ]
        no_retry = [
            _span("t2", "a", None, "request", "client"),
            _span("t2", "b", "a", "dispatch", "supervisor"),
            _span("t2", "d", "b", "score", "worker"),
        ]
        no_worker = [
            _span("t3", "a", None, "request", "client"),
            _span("t3", "c", "a", "retry", "supervisor"),
        ]
        out = complete_retried_traces(complete + no_retry + no_worker)
        assert out == ["t1"]
