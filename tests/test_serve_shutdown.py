"""Tests for repro.serve.shutdown and serving teardown races.

Covers the graceful-shutdown registry + signal handlers, and the
shutdown/teardown races the serving stack must win: ModelServer closed
mid-hot-swap, MicroBatcher closed against late-racing submits, and
double-close idempotence across the stack.
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.models.registry import make_model
from repro.serve import shutdown
from repro.serve.batcher import MicroBatcher
from repro.serve.server import ModelServer


@pytest.fixture(scope="module")
def fitted(small_problem):
    train_x, train_y, test_x, _ = small_problem
    model = make_model("disthd", dim=128, iterations=2, seed=3)
    model.fit(train_x, train_y)
    return model, test_x


@pytest.fixture(autouse=True)
def clean_registry():
    """Each test starts and ends with an empty registry and no handlers."""
    for server in shutdown.registered():
        shutdown.unregister(server)
    yield
    shutdown.uninstall_signal_handlers()
    for server in shutdown.registered():
        shutdown.unregister(server)


class _Closeable:
    def __init__(self, log, name, fail=False):
        self.log = log
        self.name = name
        self.fail = fail

    def close(self):
        if self.fail:
            raise RuntimeError(f"{self.name} refuses to die")
        self.log.append(self.name)


class TestRegistry:
    def test_register_unregister_idempotent(self):
        server = _Closeable([], "a")
        shutdown.register(server)
        shutdown.register(server)  # duplicate is a no-op
        assert shutdown.registered() == [server]
        shutdown.unregister(server)
        shutdown.unregister(server)  # already gone: no error
        assert shutdown.registered() == []

    def test_close_all_newest_first_and_fault_tolerant(self):
        log = []
        first = _Closeable(log, "first")
        stubborn = _Closeable(log, "stubborn", fail=True)
        last = _Closeable(log, "last")
        for server in (first, stubborn, last):
            shutdown.register(server)
        closed = shutdown.close_all()
        # The failing close doesn't stop the sweep, and dependents
        # (registered later) come down before their dependencies.
        assert closed == 2
        assert log == ["last", "first"]
        assert shutdown.registered() == []

    def test_model_server_auto_registers(self, fitted):
        model, test_x = fitted
        server = ModelServer(model)
        assert server in shutdown.registered()
        server.close()
        assert server not in shutdown.registered()

    def test_close_all_closes_model_server(self, fitted):
        model, test_x = fitted
        server = ModelServer(model)
        assert shutdown.close_all() == 1
        with pytest.raises(RuntimeError, match="closed"):
            server.predict(test_x[:1])


class TestSignalHandlers:
    def test_handler_closes_registry_and_chains(self, fitted):
        model, test_x = fitted
        # Park a benign previous handler so the post-shutdown re-raise
        # lands somewhere harmless instead of killing the test process.
        chained = []
        previous = signal.signal(
            signal.SIGUSR1, lambda signum, frame: chained.append(signum)
        )
        try:
            server = ModelServer(model)
            seen = []
            assert shutdown.install_signal_handlers(
                signals=(signal.SIGUSR1,), on_shutdown=seen.append
            )
            assert shutdown.handlers_installed()
            os.kill(os.getpid(), signal.SIGUSR1)
            assert seen == [signal.SIGUSR1]
            assert chained == [signal.SIGUSR1]  # previous handler restored
            assert not shutdown.handlers_installed()
            with pytest.raises(RuntimeError, match="closed"):
                server.predict(test_x[:1])
        finally:
            signal.signal(signal.SIGUSR1, previous)

    def test_repeated_signal_mid_teardown_does_not_reenter(self):
        # Teardown runs on the main thread holding non-reentrant server
        # locks; a second SIGINT/SIGTERM arriving mid-close() used to
        # re-enter the handler on that same thread and deadlock.  The
        # handler now disarms (SIG_IGN) before closing, so a repeated
        # signal during teardown is dropped and close() runs exactly
        # once.
        chained = []
        previous = signal.signal(
            signal.SIGUSR1, lambda signum, frame: chained.append(signum)
        )
        try:
            closes = []

            class _Reraiser:
                def close(self):
                    closes.append("close")
                    # The repeated signal, delivered synchronously on
                    # this (main) thread while teardown is in progress.
                    signal.raise_signal(signal.SIGUSR1)

            shutdown.register(_Reraiser())
            assert shutdown.install_signal_handlers(
                signals=(signal.SIGUSR1,)
            )
            os.kill(os.getpid(), signal.SIGUSR1)
            assert closes == ["close"]
            # Only the handler's own post-teardown re-raise reached the
            # restored previous handler — the mid-close one was ignored.
            assert chained == [signal.SIGUSR1]
            assert not shutdown.handlers_installed()
        finally:
            signal.signal(signal.SIGUSR1, previous)

    def test_install_refused_off_main_thread(self):
        results = []
        thread = threading.Thread(
            target=lambda: results.append(
                shutdown.install_signal_handlers(signals=(signal.SIGUSR1,))
            )
        )
        thread.start()
        thread.join(timeout=5.0)
        assert results == [False]
        assert not shutdown.handlers_installed()


class _SlowWarmup:
    """A servable model whose warm-up call stalls mid-deploy."""

    def __init__(self, inner, delay_s):
        self._inner = inner
        self._delay_s = delay_s
        self.entered = threading.Event()

    def predict(self, X):
        return self._inner.predict(X)

    def decision_scores(self, X):
        self.entered.set()
        time.sleep(self._delay_s)
        return self._inner.decision_scores(X)


class TestTeardownRaces:
    def test_close_during_in_flight_hot_swap(self, fitted):
        model, test_x = fitted
        server = ModelServer(model)
        server.predict(test_x[:2])  # populate warm rows
        slow = _SlowWarmup(model, delay_s=0.3)
        outcome = {}

        def deploy():
            try:
                outcome["version"] = server.deploy(slow).version
            except Exception as exc:  # pragma: no cover - failure detail
                outcome["error"] = exc

        swapper = threading.Thread(target=deploy)
        swapper.start()
        assert slow.entered.wait(timeout=5.0)  # deploy is mid-warm-up
        server.close()  # must not deadlock against the swap
        swapper.join(timeout=5.0)
        assert not swapper.is_alive()
        # The swap completed (close stops intake, not version bookkeeping).
        assert outcome.get("version") == 2
        server.close()  # still idempotent after the race
        with pytest.raises(RuntimeError, match="closed"):
            server.predict(test_x[:1])

    def test_batcher_close_with_racing_submits(self):
        batcher = MicroBatcher(
            lambda kind, X: X * 2.0, max_batch_size=8, max_wait_ms=1.0
        )
        futures = []
        rejected = threading.Event()

        def spam():
            while not rejected.is_set():
                try:
                    futures.append(batcher.submit("predict", np.ones((1, 4))))
                except RuntimeError:
                    rejected.set()  # intake is closed: expected endgame

        threads = [threading.Thread(target=spam) for _ in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        batcher.close()
        rejected.set()
        for thread in threads:
            thread.join(timeout=5.0)
        # Loss-free shutdown: every accepted request resolves, including
        # any that raced the close flag into the queue.
        assert futures
        for future in futures:
            np.testing.assert_array_equal(
                future.result(timeout=5.0), np.full((1, 4), 2.0)
            )

    def test_double_close_idempotent_across_stack(self, fitted):
        model, _ = fitted
        batcher = MicroBatcher(lambda kind, X: X)
        batcher.close()
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit("predict", np.ones((1, 4)))
        server = ModelServer(model)
        server.close()
        server.close()
