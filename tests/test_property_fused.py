"""Property tests for the fused, cache-aware kernels (PR 3).

Guarantees pinned here:

- the fused chunked Algorithm-2 scoring (``fused_dimension_scores`` /
  ``ArrayBackend.fused_absdiff_colsum``) matches the dense reference
  (``distance_matrices`` + normalise + column-sum) to tight tolerance
  across dtypes, both incorrect rules, every normalization and arbitrary
  chunk sizes, on NumPy and (when installed) torch;
- chunked ``similarities`` / ``predict`` / ``topk`` / encoder ``encode``
  equal their unchunked forms exactly;
- the fused path allocates no ``(n, D)`` distance temporaries — its traced
  allocation peak stays far below one dense distance matrix;
- the cache-aware column kernels (``set_columns`` row windows,
  ``scatter_add_cells`` one-hot grouping) equal their naive forms.
"""

import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import get_backend, torch_is_available
from repro.core.regeneration import (
    _normalize_matrix,
    distance_matrices,
    fused_dimension_scores,
    select_undesired_dimensions,
    undesired_from_scores,
)
from repro.core.topk import partition_outcomes
from repro.hdc.encoders.rbf import RBFEncoder
from repro.hdc.memory import AssociativeMemory

torch_required = pytest.mark.skipif(
    not torch_is_available(), reason="torch is not installed"
)

BACKENDS = ["numpy"] + (["torch"] if torch_is_available() else [])


def make_problem(seed, n=160, dim=48, k=5, dtype=np.float32, backend="numpy"):
    """A trained-ish memory plus encoded batch with non-trivial outcomes."""
    rng = np.random.default_rng(seed)
    H = rng.normal(size=(n, dim)).astype(dtype)
    y = rng.integers(0, k, size=n)
    memory = AssociativeMemory(k, dim, dtype=dtype, backend=backend)
    memory.accumulate(rng.normal(size=(n, dim)).astype(dtype), y)
    b = memory.backend
    encoded = b.asarray(H) if backend != "numpy" else H
    partition = partition_outcomes(memory, encoded, y)
    return encoded, y, partition, memory


def dense_scores(encoded, y, partition, memory, rule, normalization):
    """The dense reference: matrices → row-normalise → float64 column sums."""
    M, N = distance_matrices(encoded, y, partition, memory, incorrect_rule=rule)
    Mn = _normalize_matrix(M, normalization)
    Nn = _normalize_matrix(N, normalization)
    m = Mn.sum(axis=0, dtype=np.float64) if Mn.size else None
    n_ = Nn.sum(axis=0, dtype=np.float64) if Nn.size else None
    return m, n_


class TestFusedMatchesDense:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("rule", ["prose", "algorithm-box"])
    @pytest.mark.parametrize("normalization", ["l2", "l1", "minmax", "none"])
    def test_scores_match(self, backend, dtype, rule, normalization):
        encoded, y, partition, memory = make_problem(
            7, dtype=dtype, backend=backend
        )
        assert partition.partial.size and partition.incorrect.size
        ref_m, ref_n = dense_scores(
            encoded, y, partition, memory, rule, normalization
        )
        got_m, got_n = fused_dimension_scores(
            encoded, y, partition, memory,
            incorrect_rule=rule, normalization=normalization, chunk_size=13,
        )
        rtol = 2e-4 if dtype == np.float32 else 1e-10
        np.testing.assert_allclose(got_m, ref_m, rtol=rtol, atol=1e-6)
        np.testing.assert_allclose(got_n, ref_n, rtol=rtol, atol=1e-6)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_selected_dims_match(self, backend):
        encoded, y, partition, memory = make_problem(11, backend=backend)
        M, N = distance_matrices(encoded, y, partition, memory)
        ref = select_undesired_dimensions(
            M, N, regen_rate=0.25, dim=memory.dim
        )
        m_s, n_s = fused_dimension_scores(encoded, y, partition, memory)
        got = undesired_from_scores(m_s, n_s, regen_rate=0.25)
        assert np.array_equal(ref, got)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        chunk=st.integers(1, 200),
        rule=st.sampled_from(["prose", "algorithm-box"]),
    )
    def test_chunk_size_never_changes_scores(self, seed, chunk, rule):
        encoded, y, partition, memory = make_problem(seed, n=120, dim=32)
        ref_m, ref_n = fused_dimension_scores(
            encoded, y, partition, memory,
            incorrect_rule=rule, chunk_size=None,
        )
        got_m, got_n = fused_dimension_scores(
            encoded, y, partition, memory,
            incorrect_rule=rule, chunk_size=chunk,
        )
        for ref, got in ((ref_m, got_m), (ref_n, got_n)):
            assert (ref is None) == (got is None)
            if ref is not None:
                np.testing.assert_allclose(got, ref, rtol=1e-5, atol=1e-7)

    def test_empty_outcome_sets_are_none(self):
        encoded, y, partition, memory = make_problem(3)
        partition.partial = np.empty(0, np.int64)
        m_s, n_s = fused_dimension_scores(encoded, y, partition, memory)
        assert m_s is None and n_s is not None
        assert undesired_from_scores(
            m_s, n_s, regen_rate=0.2
        ).size == 0  # intersection with the empty side is a no-op

    @torch_required
    def test_numpy_torch_parity(self):
        encoded, y, partition, memory = make_problem(19, backend="numpy")
        t_encoded, t_y, t_partition, t_memory = make_problem(
            19, backend="torch"
        )
        for rule in ("prose", "algorithm-box"):
            ref_m, ref_n = fused_dimension_scores(
                encoded, y, partition, memory, incorrect_rule=rule
            )
            got_m, got_n = fused_dimension_scores(
                t_encoded, t_y, t_partition, t_memory, incorrect_rule=rule
            )
            np.testing.assert_allclose(got_m, ref_m, rtol=1e-4, atol=1e-6)
            np.testing.assert_allclose(got_n, ref_n, rtol=1e-4, atol=1e-6)

    def test_bad_terms_rejected(self):
        b = get_backend("numpy")
        H = np.ones((4, 8), np.float32)
        C = np.ones((2, 8), np.float32)
        with pytest.raises(ValueError):
            b.fused_absdiff_colsum(H, [0, 1], C, [], [])
        with pytest.raises(ValueError):
            b.fused_absdiff_colsum(
                H, [0, 1], C, [np.array([0, 1, 0])], [1.0]
            )


class TestFusedAllocatesNoDenseTemporaries:
    def test_traced_peak_far_below_dense_matrix(self):
        n, dim = 4000, 1024
        encoded, y, partition, memory = make_problem(5, n=n, dim=dim)
        # Score every sample through the 3-term rule — worst case load.
        rows = np.arange(n, dtype=np.int64)
        top2, _ = memory.topk(encoded, k=2)
        terms = (y.astype(np.int64), top2[:, 0], top2[:, 1])
        C = memory.normalized_native()
        b = memory.backend
        dense_bytes = n * dim * np.dtype(np.float32).itemsize
        tracemalloc.start()
        try:
            b.fused_absdiff_colsum(
                encoded, rows, C, terms, (1.0, -1.0, -0.25)
            )
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        # The streamed kernel's peak must stay far below even ONE dense
        # (n, D) distance matrix (the dense path materialises several).
        assert peak < 0.5 * dense_bytes, (
            f"fused peak {peak} bytes vs dense matrix {dense_bytes} bytes"
        )


class TestChunkedQueriesMatchUnchunked:
    @pytest.mark.parametrize("chunk", [1, 7, 64, 1000])
    def test_similarities_predict_topk(self, chunk):
        encoded, y, partition, memory = make_problem(23)
        ref = memory.similarities(encoded)
        # Equal up to BLAS accumulation-order rounding: small chunks hit
        # gemv instead of gemm, which sums in a different order.
        np.testing.assert_allclose(
            memory.similarities(encoded, chunk_size=chunk), ref,
            rtol=1e-5, atol=1e-7,
        )
        np.testing.assert_array_equal(
            memory.predict(encoded, chunk_size=chunk), memory.predict(encoded)
        )
        ref_l, ref_s = memory.topk(encoded, 2)
        got_l, got_s = memory.topk(encoded, 2, chunk_size=chunk)
        np.testing.assert_array_equal(got_l, ref_l)
        np.testing.assert_allclose(got_s, ref_s, rtol=1e-5, atol=1e-7)

    def test_bad_chunk_rejected(self):
        encoded, y, partition, memory = make_problem(29)
        with pytest.raises(ValueError):
            memory.similarities(encoded, chunk_size=0)

    @pytest.mark.parametrize("chunk", [1, 9, 50])
    def test_encoder_encode_chunked(self, chunk):
        rng = np.random.default_rng(31)
        X = rng.normal(size=(37, 6))
        enc = RBFEncoder(6, 24, seed=0, dtype="float32")
        ref = np.asarray(enc.encode(X))
        got = np.asarray(enc.encode(X, chunk_size=chunk))
        np.testing.assert_array_equal(got, ref)

    def test_disthd_chunked_decision_scores(self):
        from repro.core.disthd import DistHDClassifier

        rng = np.random.default_rng(37)
        X = rng.normal(size=(80, 5))
        y = rng.integers(0, 3, size=80)
        ref = DistHDClassifier(
            dim=64, iterations=3, seed=0
        ).fit(X, y)
        chunked = DistHDClassifier(
            dim=64, iterations=3, seed=0, chunk_size=16
        ).fit(X, y)
        np.testing.assert_allclose(
            chunked.decision_scores(X), ref.decision_scores(X),
            rtol=1e-6, atol=1e-7,
        )
        np.testing.assert_array_equal(chunked.predict(X), ref.predict(X))


class TestCacheAwareColumnKernels:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**16), n=st.integers(1, 300))
    def test_set_columns_matches_naive(self, seed, n):
        rng = np.random.default_rng(seed)
        b = get_backend("numpy")
        x = rng.normal(size=(n, 40)).astype(np.float32)
        ref = x.copy()
        cols = np.unique(rng.integers(0, 40, size=11))
        vals = rng.normal(size=(n, cols.size)).astype(np.float32)
        b.set_columns(x, cols, vals)
        ref[:, cols] = vals
        np.testing.assert_array_equal(x, ref)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**16), m=st.integers(1, 200))
    def test_scatter_add_cells_matches_addat(self, seed, m):
        rng = np.random.default_rng(seed)
        b = get_backend("numpy")
        k, dim = 6, 32
        rows = rng.integers(0, k, size=m)
        # Deliberately NOT unique: duplicate column indices must accumulate
        # under the fast path exactly like np.add.at does.
        cols = rng.integers(0, dim, size=9)
        vals = rng.normal(size=(m, cols.size)).astype(np.float32)
        got = np.zeros((k, dim), np.float32)
        b.scatter_add_cells(got, rows, cols, vals)
        ref = np.zeros((k, dim), np.float32)
        np.add.at(ref, (rows[:, None], cols[None, :]), vals)
        np.testing.assert_allclose(got, ref, rtol=1e-5, atol=1e-5)

    def test_scatter_add_cells_broadcast_values(self):
        # (1, n_cols) values broadcast across all updates, as add.at does.
        b = get_backend("numpy")
        rows = np.array([0, 1, 0, 1, 0, 1, 0, 1])
        cols = np.array([1, 3])
        got = np.zeros((2, 5), np.float32)
        b.scatter_add_cells(got, rows, cols, np.ones((1, 2), np.float32))
        ref = np.zeros((2, 5), np.float32)
        np.add.at(ref, (rows[:, None], cols[None, :]),
                  np.ones((1, 2), np.float32))
        np.testing.assert_array_equal(got, ref)

    def test_fused_colsum_integer_hypervectors(self):
        # Bipolar int8 inputs must match the float reference (the NumPy
        # override delegates to the promoting generic implementation).
        rng = np.random.default_rng(41)
        b = get_backend("numpy")
        H = rng.choice([-1, 1], size=(60, 16)).astype(np.int8)
        C = rng.choice([-1, 1], size=(3, 16)).astype(np.int8)
        rows = np.arange(60)
        terms = (rng.integers(0, 3, 60), rng.integers(0, 3, 60))
        got = b.fused_absdiff_colsum(H, rows, C, terms, (1.0, -0.25))
        ref = b.fused_absdiff_colsum(
            H.astype(np.float64), rows, C.astype(np.float64),
            terms, (1.0, -0.25),
        )
        np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-12)
