"""Tests for data-parallel sharded fitting (repro.engine.shard)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.synthetic import make_classification
from repro.engine import SerialExecutor, shard_fit, shard_indices
from repro.engine.shard import merge_banks
from repro.models.registry import make_model

SHARDING_MODELS = ("disthd", "onlinehd", "neuralhd", "baselinehd")


def _problem(n=180, q=12, k=3, seed=0):
    return make_classification(
        n, q, k, difficulty=0.3, n_prototypes=2, latent_dim=6, seed=seed
    )


def _bank(model) -> np.ndarray:
    return np.asarray(model.memory_.numpy_vectors())


class TestShardIndices:
    def test_disjoint_cover(self):
        y = np.repeat([0, 1, 2], 40)
        shards = shard_indices(y, 4, seed=0)
        assert len(shards) == 4
        combined = np.sort(np.concatenate(shards))
        assert np.array_equal(combined, np.arange(y.size))

    def test_stratified(self):
        y = np.repeat([0, 1, 2], 40)
        for shard in shard_indices(y, 4, seed=0):
            counts = np.bincount(y[shard], minlength=3)
            assert np.all(counts == 10)

    def test_deterministic(self):
        y = np.repeat([0, 1], 30)
        a = shard_indices(y, 3, seed=7)
        b = shard_indices(y, 3, seed=7)
        assert all(np.array_equal(s, t) for s, t in zip(a, b))

    def test_more_shards_than_samples(self):
        shards = shard_indices(np.array([0, 1, 0]), 8, seed=0)
        assert sum(s.size for s in shards) == 3

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError, match="n_shards"):
            shard_indices(np.array([0, 1]), 0)


class TestMergeBanks:
    def test_sums(self):
        a = np.ones((2, 4), dtype=np.float32)
        b = np.full((2, 4), 2.0, dtype=np.float32)
        merged = merge_banks([a, b])
        assert merged.dtype == np.float64
        assert np.allclose(merged, 3.0)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            merge_banks([np.ones((2, 4)), np.ones((2, 5))])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="no shard banks"):
            merge_banks([])


class TestSerialEquivalence:
    """shard_fit(n_jobs=1) must be plain fit, bit for bit."""

    @pytest.mark.parametrize("name", SHARDING_MODELS)
    def test_bit_identical_to_fit(self, name):
        X, y = _problem()
        params = dict(dim=64, iterations=4, seed=5)
        plain = make_model(name, **params).fit(X, y)
        sharded = make_model(name, **params)
        sharded.shard_fit(X, y, n_jobs=1)
        assert np.array_equal(_bank(plain), _bank(sharded))
        assert plain.n_iterations_ == sharded.n_iterations_
        assert plain.history_.accuracies == sharded.history_.accuracies

    def test_explicit_n_jobs_1_overrides_model_knob(self):
        # An explicit serial request wins over the model's configured
        # n_jobs — it must not re-route through fit's auto-sharding.
        X, y = _problem()
        plain = make_model("disthd", dim=64, iterations=4, seed=5).fit(X, y)
        sharded_knob = make_model(
            "disthd", dim=64, iterations=4, seed=5, n_jobs=2
        )
        sharded_knob.shard_fit(X, y, n_jobs=1)
        assert sharded_knob.n_shards_ == 1
        assert np.array_equal(_bank(plain), _bank(sharded_knob))

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        dim=st.sampled_from([16, 32, 48]),
        iterations=st.integers(1, 4),
    )
    def test_property_disthd_n_jobs_1_matches_fit(self, seed, dim, iterations):
        X, y = _problem(n=90, q=8, seed=3)
        params = dict(dim=dim, iterations=iterations, seed=seed)
        plain = make_model("disthd", **params).fit(X, y)
        sharded = make_model("disthd", **params)
        sharded.shard_fit(X, y, n_jobs=1)
        assert np.array_equal(_bank(plain), _bank(sharded))


class TestParallelDeterminism:
    def test_fixed_seed_is_deterministic(self):
        X, y = _problem()
        banks = []
        for _ in range(2):
            model = make_model("disthd", dim=64, iterations=4, seed=9)
            model.shard_fit(X, y, n_jobs=2)
            banks.append(_bank(model))
        assert np.array_equal(banks[0], banks[1])

    def test_process_pool_matches_serial_executor(self):
        # Same shard schedule through real workers and in-process: the
        # transport may not change the arithmetic.
        X, y = _problem()
        via_serial = make_model("disthd", dim=64, iterations=4, seed=9)
        via_serial.shard_fit(X, y, n_jobs=2, executor=SerialExecutor())
        via_pool = make_model("disthd", dim=64, iterations=4, seed=9)
        via_pool.shard_fit(X, y, n_jobs=2)
        assert np.array_equal(_bank(via_serial), _bank(via_pool))

    @pytest.mark.parametrize("name", SHARDING_MODELS)
    def test_accuracy_close_to_single_process(self, name):
        X, y = _problem(n=240)
        rng = np.random.default_rng(0)
        test = rng.permutation(X.shape[0])[:60]
        params = dict(dim=128, iterations=6, seed=2)
        plain = make_model(name, **params).fit(X, y)
        sharded = make_model(name, **params)
        sharded.shard_fit(X, y, n_jobs=2, executor=SerialExecutor())
        plain_acc = plain.score(X[test], y[test])
        sharded_acc = sharded.score(X[test], y[test])
        assert abs(plain_acc - sharded_acc) <= 0.10
        assert sharded.n_shards_ == 2


class TestDefaultSeedSharding:
    """seed=None must pin ONE concrete seed before the shards fork.

    Without pinning, every deep-copied worker would draw fresh OS entropy
    and build a different encoder, so the merged banks would be
    incoherent — the exact invariant :func:`merge_banks` relies on.
    """

    @pytest.mark.parametrize("name", SHARDING_MODELS)
    def test_seed_recorded_and_restored(self, name):
        X, y = _problem()
        model = make_model(name, dim=64, iterations=4)
        assert model._shard_seed() is None
        model.shard_fit(X, y, n_jobs=2, executor=SerialExecutor())
        assert model.shard_seed_ is not None
        # The constructor's seed=None comes back after the fit: refits
        # keep fresh-entropy semantics, only shard_seed_ records the run.
        assert model._shard_seed() is None
        assert model.n_shards_ == 2

    @pytest.mark.parametrize("name", ("disthd", "onlinehd"))
    def test_recorded_seed_reproduces_run(self, name):
        # shard_seed_ fully determines the sharded run: replaying it on a
        # fresh model yields the identical memory, which can only happen
        # if the workers and the refinement pass all derived their
        # encoder from that one seed.
        X, y = _problem()
        first = make_model(name, dim=64, iterations=4)
        first.shard_fit(X, y, n_jobs=2, executor=SerialExecutor())
        replay = make_model(name, dim=64, iterations=4, seed=first.shard_seed_)
        replay.shard_fit(X, y, n_jobs=2, executor=SerialExecutor())
        assert np.array_equal(_bank(first), _bank(replay))
        assert replay.shard_seed_ == first.shard_seed_

    def test_refits_draw_fresh_seeds(self):
        # Repeated default-seed fits (bagging-style) must stay
        # independent draws, not replays of the first pinned seed.
        X, y = _problem()
        model = make_model("disthd", dim=64, iterations=4)
        model.shard_fit(X, y, n_jobs=2, executor=SerialExecutor())
        first_seed = model.shard_seed_
        model.shard_fit(X, y, n_jobs=2, executor=SerialExecutor())
        assert model.shard_seed_ != first_seed

    def test_fit_autoroutes_default_seed_through_workers(self):
        # The default config (seed=None) through fit's n_jobs auto-routing
        # and a real process pool: the train accuracy of the merged+refined
        # model must look trained, not like incoherently summed banks.
        X, y = _problem()
        model = make_model("disthd", dim=64, iterations=4, n_jobs=2)
        model.fit(X, y)
        assert model.n_shards_ == 2
        assert model.shard_seed_ is not None
        assert model.score(X, y) >= 0.6

    def test_serial_path_leaves_seed_none(self):
        # n_jobs=1 is a plain fit, bit for bit — including its fresh-
        # entropy seed semantics; no pinning happens on the serial path.
        X, y = _problem()
        model = make_model("disthd", dim=64, iterations=4)
        model.shard_fit(X, y, n_jobs=1)
        assert model._shard_seed() is None
        assert model.shard_seed_ is None

    def test_degenerate_fold_leaves_shard_seed_none(self):
        # One sample per class folds to a single shard and falls back to
        # a plain fit: shard_seed_ must read None, like any unsharded fit.
        rng = np.random.default_rng(0)
        X = rng.normal(size=(2, 5))
        y = np.array([0, 1])
        model = make_model("disthd", dim=32, iterations=2)
        model.shard_fit(X, y, n_jobs=2, executor=SerialExecutor())
        assert model.n_shards_ == 1
        assert model.shard_seed_ is None
        assert model._shard_seed() is None


class TestShardFitProtocol:
    def test_n_jobs_knob_routes_fit(self):
        X, y = _problem()
        explicit = make_model("disthd", dim=64, iterations=4, seed=9)
        explicit.shard_fit(X, y, n_jobs=2, executor=SerialExecutor())
        via_knob = make_model("disthd", dim=64, iterations=4, seed=9, n_jobs=2)
        via_knob.fit(X, y)
        assert np.array_equal(_bank(explicit), _bank(via_knob))
        assert via_knob.n_shards_ == 2

    def test_unsupported_model_raises(self):
        X, y = _problem()
        with pytest.raises(NotImplementedError, match="supports_sharding"):
            shard_fit(make_model("mlp"), X, y, n_jobs=2)

    def test_predict_works_after_sharded_fit(self):
        X, y = _problem()
        model = make_model("disthd", dim=64, iterations=4, seed=9)
        model.shard_fit(X, y, n_jobs=2, executor=SerialExecutor())
        predictions = model.predict(X)
        assert predictions.shape == y.shape
        assert set(np.unique(predictions)) <= set(np.unique(y))

    def test_original_labels_preserved(self):
        # Sharding must honour the estimator protocol's label remapping.
        X, y = _problem()
        shifted = y * 10 + 5
        model = make_model("disthd", dim=64, iterations=4, seed=9)
        model.shard_fit(X, shifted, n_jobs=2, executor=SerialExecutor())
        assert set(np.unique(model.predict(X))) <= set(np.unique(shifted))

    def test_shard_worker_sees_all_classes(self):
        # A shard missing the top class must still produce a (k, D) bank.
        X, y = _problem(n=63, k=3)
        model = make_model("disthd", dim=32, iterations=2, seed=1)
        model.shard_fit(X, y, n_jobs=3, executor=SerialExecutor())
        assert _bank(model).shape == (3, 32)

    def test_pool_sized_to_folded_shards(self, monkeypatch):
        # Tiny per-class counts fold shards away; the pool must be sized
        # to the shards that exist, not the requested n_jobs, so no
        # workers are spawned with nothing to run.
        import repro.engine.shard as shard_mod

        requested = []

        def spy(n_jobs, *, executor=None):
            requested.append(n_jobs)
            return SerialExecutor()

        monkeypatch.setattr(shard_mod, "get_executor", spy)
        X, y = _problem(n=12, q=8, k=3)
        # Shard s is non-empty iff some class holds more than s samples.
        expected = min(8, int(np.bincount(y).max()))
        assert expected < 8
        model = make_model("disthd", dim=32, iterations=2, seed=0)
        model.shard_fit(X, y, n_jobs=8)
        assert requested == [expected]
        assert model.n_shards_ == expected
