"""Tests for the HDC baselines: BaselineHD, NeuralHD, OnlineHD."""

import numpy as np
import pytest

from repro.baselines.baselinehd import BaselineHDClassifier
from repro.baselines.neuralhd import NeuralHDClassifier, dimension_significance
from repro.baselines.onlinehd import OnlineHDClassifier
from repro.hdc.memory import AssociativeMemory


class TestBaselineHD:
    def test_learns(self, small_problem):
        train_x, train_y, test_x, test_y = small_problem
        clf = BaselineHDClassifier(dim=256, iterations=8, seed=0).fit(train_x, train_y)
        assert clf.score(test_x, test_y) > 0.8

    def test_default_encoder_is_id_level(self, small_problem):
        from repro.hdc.encoders.id_level import IDLevelEncoder

        train_x, train_y, _, _ = small_problem
        clf = BaselineHDClassifier(dim=64, iterations=2, seed=0).fit(train_x, train_y)
        assert isinstance(clf.encoder_, IDLevelEncoder)
        # Record-based encodings are integer-valued bundles of bipolar bindings.
        encoded = clf.encoder_.encode(train_x[:5])
        assert np.allclose(encoded, np.round(encoded))

    def test_sign_encoder_option_is_bipolar(self, small_problem):
        train_x, train_y, _, _ = small_problem
        clf = BaselineHDClassifier(
            dim=64, iterations=2, encoder="sign", seed=0
        ).fit(train_x, train_y)
        encoded = clf.encoder_.encode(train_x[:5])
        assert set(np.unique(encoded)) <= {-1.0, 1.0}

    def test_rbf_encoder_option(self, small_problem):
        train_x, train_y, test_x, test_y = small_problem
        clf = BaselineHDClassifier(
            dim=128, iterations=5, encoder="rbf", seed=0
        ).fit(train_x, train_y)
        assert clf.score(test_x, test_y) > 0.8

    def test_encoder_static_within_fit(self, small_problem):
        """Static encoding: same-seed fits of any length share the encoder."""
        train_x, train_y, _, _ = small_problem
        short = BaselineHDClassifier(dim=64, iterations=1, seed=0).fit(train_x, train_y)
        long = BaselineHDClassifier(dim=64, iterations=10, seed=0).fit(train_x, train_y)
        assert np.array_equal(short.encoder_.id_vectors, long.encoder_.id_vectors)
        assert np.array_equal(
            short.encoder_.level_vectors, long.encoder_.level_vectors
        )

    def test_history_recorded(self, small_problem):
        train_x, train_y, _, _ = small_problem
        clf = BaselineHDClassifier(
            dim=64, iterations=4, convergence_patience=None, seed=0
        ).fit(train_x, train_y)
        assert len(clf.history_) == 4

    def test_single_pass_init_off(self, small_problem):
        train_x, train_y, test_x, test_y = small_problem
        clf = BaselineHDClassifier(
            dim=256, iterations=15, single_pass_init=False, encoder="sign", seed=0
        ).fit(train_x, train_y)
        assert clf.score(test_x, test_y) > 0.6

    def test_bad_encoder(self):
        with pytest.raises(ValueError, match="encoder"):
            BaselineHDClassifier(encoder="fourier")

    @pytest.mark.parametrize("kwargs", [{"dim": 0}, {"lr": 0}, {"iterations": 0}])
    def test_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            BaselineHDClassifier(**kwargs)


class TestNeuralHD:
    def test_learns(self, small_problem):
        train_x, train_y, test_x, test_y = small_problem
        clf = NeuralHDClassifier(dim=128, iterations=8, seed=0).fit(train_x, train_y)
        assert clf.score(test_x, test_y) > 0.8

    def test_regenerates_every_epoch(self, small_problem):
        train_x, train_y, _, _ = small_problem
        clf = NeuralHDClassifier(
            dim=100, regen_rate=0.2, iterations=5, convergence_patience=None, seed=0
        ).fit(train_x, train_y)
        # Every epoch except the last regenerates 20 dims.
        regens = [r.regenerated for r in clf.history_.records]
        assert regens[:-1] == [20] * 4
        assert regens[-1] == 0
        assert clf.encoder_.effective_dim() == 100 + 80

    def test_zero_regen_matches_static(self, small_problem):
        train_x, train_y, _, _ = small_problem
        clf = NeuralHDClassifier(
            dim=64, regen_rate=0.0, iterations=3, seed=0
        ).fit(train_x, train_y)
        assert clf.encoder_.effective_dim() == 64

    def test_rebundle_flag_changes_training(self, medium_problem):
        train_x, train_y, _, _ = medium_problem
        a = NeuralHDClassifier(
            dim=64, iterations=5, rebundle_on_regen=False,
            convergence_patience=None, seed=0,
        ).fit(train_x, train_y)
        b = NeuralHDClassifier(
            dim=64, iterations=5, rebundle_on_regen=True,
            convergence_patience=None, seed=0,
        ).fit(train_x, train_y)
        assert not np.allclose(a.memory_.vectors, b.memory_.vectors)

    def test_bad_regen_rate(self):
        with pytest.raises(ValueError, match="regen_rate"):
            NeuralHDClassifier(regen_rate=2.0)


class TestDimensionSignificance:
    def test_low_variance_dim_scores_lowest(self):
        mem = AssociativeMemory(3, 4)
        # Dim 0 zero across classes (useless even after row normalisation),
        # dim 1 widely spread (useful).
        mem.vectors = np.array(
            [
                [0.0, 5.0, 1.0, 0.5],
                [0.0, -5.0, 1.2, 0.4],
                [0.0, 0.0, 0.8, 0.6],
            ]
        )
        sig = dimension_significance(mem)
        assert np.argmin(sig) == 0
        assert np.argmax(sig) == 1

    def test_shape(self):
        mem = AssociativeMemory(3, 7)
        assert dimension_significance(mem).shape == (7,)


class TestOnlineHD:
    def test_learns(self, small_problem):
        train_x, train_y, test_x, test_y = small_problem
        clf = OnlineHDClassifier(dim=128, iterations=8, seed=0).fit(train_x, train_y)
        assert clf.score(test_x, test_y) > 0.8

    def test_static_encoder(self, small_problem):
        train_x, train_y, _, _ = small_problem
        clf = OnlineHDClassifier(dim=64, iterations=3, seed=0).fit(train_x, train_y)
        assert clf.encoder_.effective_dim() == 64

    def test_batch_size_variants_learn(self, small_problem):
        train_x, train_y, test_x, test_y = small_problem
        for bs in (None, 16):
            clf = OnlineHDClassifier(
                dim=128, iterations=6, batch_size=bs, seed=0
            ).fit(train_x, train_y)
            assert clf.score(test_x, test_y) > 0.75

    def test_early_stopping(self, small_problem):
        train_x, train_y, _, _ = small_problem
        clf = OnlineHDClassifier(
            dim=128, iterations=100, convergence_patience=2, convergence_tol=0.0,
            seed=0,
        ).fit(train_x, train_y)
        assert clf.n_iterations_ < 100
