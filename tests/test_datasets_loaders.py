"""Tests for repro.datasets.loaders.load_dataset / Dataset."""

import numpy as np
import pytest

from repro.datasets.loaders import Dataset, load_dataset


class TestLoadDataset:
    def test_shapes_match_spec(self):
        ds = load_dataset("ucihar", scale=0.03, seed=0)
        assert ds.n_features == 561
        assert ds.n_classes == 12
        assert ds.train_x.shape == (ds.n_train, 561)
        assert ds.test_x.shape == (ds.n_test, 561)

    def test_scaled_counts(self):
        ds = load_dataset("mnist", scale=0.01, seed=0)
        assert ds.n_train + ds.n_test == pytest.approx(700, abs=5)

    def test_min_floor_per_class(self):
        """Tiny scales still give every class training samples."""
        ds = load_dataset("isolet", scale=0.001, seed=0)
        counts = np.bincount(ds.train_y, minlength=26)
        assert counts.min() >= 1

    def test_all_classes_in_both_splits(self):
        ds = load_dataset("diabetes", scale=0.02, seed=0)
        assert set(np.unique(ds.train_y)) == set(range(3))
        assert set(np.unique(ds.test_y)) == set(range(3))

    def test_standardized_by_default(self):
        ds = load_dataset("pamap2", scale=0.002, seed=0)
        assert np.allclose(ds.train_x.mean(axis=0), 0.0, atol=1e-8)
        assert np.allclose(ds.train_x.std(axis=0), 1.0, atol=1e-6)

    def test_standardize_off(self):
        ds = load_dataset("mnist", scale=0.005, seed=0, standardize=False)
        # Raw image analog is non-negative.
        assert ds.train_x.min() >= 0.0

    def test_deterministic(self):
        a = load_dataset("ucihar", scale=0.02, seed=4)
        b = load_dataset("ucihar", scale=0.02, seed=4)
        assert np.array_equal(a.train_x, b.train_x)
        assert np.array_equal(a.test_y, b.test_y)

    def test_seed_changes_data(self):
        a = load_dataset("ucihar", scale=0.02, seed=1)
        b = load_dataset("ucihar", scale=0.02, seed=2)
        assert not np.allclose(a.train_x[: min(len(a.train_x), len(b.train_x))],
                               b.train_x[: min(len(a.train_x), len(b.train_x))])

    @pytest.mark.parametrize("scale", [0.0, 1.5, -0.1])
    def test_bad_scale(self, scale):
        with pytest.raises(ValueError, match="scale"):
            load_dataset("mnist", scale=scale)

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("imagenet")


class TestDatasetMethods:
    @pytest.fixture(scope="class")
    def ds(self):
        return load_dataset("diabetes", scale=0.01, seed=0)

    def test_subset(self, ds):
        sub = ds.subset(20, 10)
        assert sub.n_train == 20
        assert sub.n_test == 10
        assert sub.spec is ds.spec

    def test_subset_bounds(self, ds):
        with pytest.raises(ValueError, match="n_train"):
            ds.subset(ds.n_train + 1)
        with pytest.raises(ValueError, match="n_test"):
            ds.subset(10, ds.n_test + 1)

    def test_batches_cover_all(self, ds):
        seen = 0
        for xb, yb in ds.batches(32, seed=0):
            assert xb.shape[0] == yb.shape[0]
            seen += xb.shape[0]
        assert seen == ds.n_train

    def test_batches_shuffled(self, ds):
        first_a = next(iter(ds.batches(16, seed=1)))[0]
        first_b = next(iter(ds.batches(16, seed=2)))[0]
        assert not np.array_equal(first_a, first_b)

    def test_batches_bad_size(self, ds):
        with pytest.raises(ValueError, match="batch_size"):
            next(ds.batches(0))

    def test_name_property(self, ds):
        assert ds.name == "diabetes"
