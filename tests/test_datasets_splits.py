"""Tests for repro.datasets.splits."""

import numpy as np
import pytest

from repro.datasets.splits import (
    stratified_assignments,
    stratified_split,
    train_test_split,
)


@pytest.fixture
def data(rng):
    X = rng.normal(size=(100, 5))
    y = np.repeat(np.arange(4), 25)
    return X, y


class TestTrainTestSplit:
    def test_sizes(self, data):
        X, y = data
        tx, ty, vx, vy = train_test_split(X, y, test_fraction=0.2, seed=0)
        assert vx.shape[0] == 20
        assert tx.shape[0] == 80
        assert tx.shape[0] + vx.shape[0] == 100

    def test_disjoint_and_complete(self, data):
        X, y = data
        tx, ty, vx, vy = train_test_split(X, y, test_fraction=0.3, seed=0)
        combined = np.vstack([tx, vx])
        assert np.array_equal(
            np.sort(combined, axis=0), np.sort(X, axis=0)
        )

    def test_at_least_one_each_side(self, data):
        X, y = data
        tx, _, vx, _ = train_test_split(X, y, test_fraction=0.0, seed=0)
        assert vx.shape[0] == 1
        tx, _, vx, _ = train_test_split(X, y, test_fraction=1.0, seed=0)
        assert tx.shape[0] == 1

    def test_deterministic(self, data):
        X, y = data
        a = train_test_split(X, y, test_fraction=0.2, seed=5)
        b = train_test_split(X, y, test_fraction=0.2, seed=5)
        assert np.array_equal(a[0], b[0])

    def test_labels_follow_rows(self, data):
        X, y = data
        # Tag each row with its label in feature 0 to check alignment.
        X = X.copy()
        X[:, 0] = y
        tx, ty, vx, vy = train_test_split(X, y, test_fraction=0.25, seed=1)
        assert np.array_equal(tx[:, 0].astype(int), ty)
        assert np.array_equal(vx[:, 0].astype(int), vy)

    def test_too_few_samples(self):
        with pytest.raises(ValueError, match="at least 2"):
            train_test_split(np.ones((1, 2)), [0], test_fraction=0.5)


class TestStratifiedSplit:
    def test_every_class_on_both_sides(self, data):
        X, y = data
        _, ty, _, vy = stratified_split(X, y, test_fraction=0.2, seed=0)
        assert set(np.unique(ty)) == set(np.unique(vy)) == {0, 1, 2, 3}

    def test_per_class_fraction(self, data):
        X, y = data
        _, ty, _, vy = stratified_split(X, y, test_fraction=0.2, seed=0)
        for cls in range(4):
            assert np.sum(vy == cls) == 5  # 20% of 25

    def test_singleton_class_stays_in_train(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        y = np.array([0] * 9 + [1])
        _, ty, _, vy = stratified_split(X, y, test_fraction=0.3, seed=0)
        assert 1 in ty
        assert 1 not in vy

    def test_deterministic(self, data):
        X, y = data
        a = stratified_split(X, y, test_fraction=0.25, seed=3)
        b = stratified_split(X, y, test_fraction=0.25, seed=3)
        assert np.array_equal(a[3], b[3])

    def test_labels_follow_rows(self, data):
        X, y = data
        X = X.copy()
        X[:, 0] = y
        tx, ty, vx, vy = stratified_split(X, y, test_fraction=0.25, seed=1)
        assert np.array_equal(tx[:, 0].astype(int), ty)
        assert np.array_equal(vx[:, 0].astype(int), vy)


class TestStratifiedAssignments:
    """The shared deal primitive behind CV folds and fit shards."""

    def test_balanced_cover(self):
        y = np.repeat(np.arange(3), 40)
        groups = stratified_assignments(y, 4, seed=0)
        assert groups.shape == y.shape
        for g in range(4):
            counts = np.bincount(y[groups == g], minlength=3)
            assert np.all(counts == 10)

    def test_deterministic(self):
        y = np.repeat([0, 1], 30)
        a = stratified_assignments(y, 3, seed=7)
        b = stratified_assignments(y, 3, seed=7)
        assert np.array_equal(a, b)

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError, match="n_groups"):
            stratified_assignments(np.array([0, 1]), 0)
