"""Tests for repro.serve.adapter: drift detection + online adaptation."""

import numpy as np
import pytest

from repro.core.disthd import DistHDClassifier
from repro.deploy.quantized import QuantizedHDCModel
from repro.engine.executor import ProcessExecutor
from repro.serve.adapter import DriftDetector, OnlineAdapter
from repro.serve.server import ModelServer


@pytest.fixture
def fitted(small_problem):
    train_x, train_y, _, _ = small_problem
    return DistHDClassifier(dim=96, iterations=5, seed=0).fit(train_x, train_y)


class TestDriftDetector:
    def test_insufficient_samples(self):
        detector = DriftDetector(window=16, min_samples=8)
        for _ in range(4):
            detector.observe(True, 0.5)
        report = detector.check()
        assert not report
        assert report.reason == "insufficient samples"

    def test_stable_stream_no_drift(self):
        detector = DriftDetector(window=16, min_samples=8)
        for _ in range(64):
            detector.observe(True, 0.5)
        assert not detector.check()

    def test_accuracy_drop_flags_drift(self):
        detector = DriftDetector(window=16, min_samples=16, acc_drop=0.2)
        for _ in range(16):  # reference: all correct
            detector.observe(True, 0.5)
        for _ in range(16):  # current window: all wrong
            detector.observe(False, 0.5)
        report = detector.check()
        assert report
        assert report.reason == "accuracy drop"
        assert report.reference["accuracy"] == pytest.approx(1.0)
        assert report.current["accuracy"] == pytest.approx(0.0)

    def test_margin_collapse_flags_drift(self):
        detector = DriftDetector(
            window=16, min_samples=16, acc_drop=1.0, margin_shrink=0.5
        )
        for _ in range(16):
            detector.observe(True, 1.0)
        for _ in range(16):  # labels still right, confidence gone
            detector.observe(True, 0.01)
        report = detector.check()
        assert report
        assert report.reason == "margin collapse"

    def test_rebaseline_resets_reference(self):
        detector = DriftDetector(window=8, min_samples=8, acc_drop=0.2)
        for _ in range(8):
            detector.observe(True, 0.5)
        for _ in range(8):
            detector.observe(False, 0.5)
        assert detector.check()
        detector.rebaseline()
        assert detector.check().reason == "insufficient samples"
        for _ in range(8):  # new reference formed from the shifted stream
            detector.observe(False, 0.5)
        assert not detector.check()

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError, match="min_samples"):
            DriftDetector(window=8, min_samples=16)


class TestOnlineAdapterRaw:
    def test_requires_partial_fit(self, fitted):
        with ModelServer(fitted, max_wait_ms=1.0) as server:
            with pytest.raises(TypeError, match="partial_fit"):
                OnlineAdapter(server, object())

    def test_rejects_process_executor(self, fitted):
        with ModelServer(fitted, max_wait_ms=1.0) as server:
            with pytest.raises(ValueError, match="in-process"):
                OnlineAdapter(server, fitted, executor=ProcessExecutor(2))

    def test_feedback_shape_mismatch(self, fitted, small_problem):
        _, _, test_x, test_y = small_problem
        with ModelServer(fitted, max_wait_ms=1.0) as server:
            adapter = OnlineAdapter(server, fitted)
            with pytest.raises(ValueError, match="sample count"):
                adapter.feedback(test_x[:3], test_y[:2])

    def test_serving_the_trainee_gets_snapshotted(self, fitted, small_problem):
        _, _, test_x, _ = small_problem
        with ModelServer(fitted, max_wait_ms=1.0) as server:
            assert server.model is fitted
            OnlineAdapter(server, fitted)
            # The adapter must never leave the live trainee in rotation.
            assert server.model is not fitted
            np.testing.assert_array_equal(
                server.predict(test_x[:8]), fitted.predict(test_x[:8])
            )

    def test_failed_cycle_records_error_and_keeps_feedback(
        self, fitted, small_problem
    ):
        import copy

        train_x, train_y, _, _ = small_problem
        served = copy.deepcopy(fitted)
        with ModelServer(served, max_wait_ms=1.0) as server:
            adapter = OnlineAdapter(server, fitted)
            bogus = np.full(16, 9999)  # outside the fitted class set
            adapter.feedback(train_x[:16], bogus)
            adapter.adapt_now(wait=True)
            assert adapter.n_adaptations == 0
            assert adapter.last_error is not None
            stats = adapter.stats()
            assert stats["last_error"] is not None
            assert stats["n_failed_cycles"] == 1
            # The drained feedback was re-buffered, not lost.
            assert stats["buffered_feedback"] == 16
            # The failure surfaced as a structured problem event on the
            # server's metrics, not just an adapter-local attribute.
            problems = server.metrics.problem_counts()
            assert problems.get("adaptation-failure", 0) == 1
            events = server.metrics.problems()
            assert any(
                e["kind"] == "adaptation-failure" and e["detail"]
                for e in events
            )
            # The server is untouched and still serving.
            assert server.stats()["n_swaps"] == 0
            server.predict(train_x[:2])

    def test_successful_cycle_leaves_failure_counters_alone(
        self, fitted, small_problem
    ):
        import copy

        train_x, train_y, _, _ = small_problem
        served = copy.deepcopy(fitted)
        with ModelServer(served, max_wait_ms=1.0) as server:
            adapter = OnlineAdapter(server, fitted)
            adapter.feedback(train_x[:48], train_y[:48])
            adapter.adapt_now(wait=True)
            assert adapter.stats()["n_failed_cycles"] == 0
            assert server.metrics.problem_counts() == {}

    def test_single_adaptation_slot(self, fitted):
        with ModelServer(fitted, max_wait_ms=1.0) as server:
            adapter = OnlineAdapter(server, fitted)
            # The slot is test-and-set: a second claimant must lose.
            assert adapter._try_begin() is True
            assert adapter._try_begin() is False
            adapter._adapting.clear()
            assert adapter._try_begin() is True
            adapter._adapting.clear()

    def test_adapt_now_without_feedback(self, fitted):
        with ModelServer(fitted, max_wait_ms=1.0) as server:
            adapter = OnlineAdapter(server, fitted)
            with pytest.raises(RuntimeError, match="no buffered feedback"):
                adapter.adapt_now()

    def test_forced_adaptation_promotes_snapshot(self, fitted, small_problem):
        import copy

        train_x, train_y, test_x, _ = small_problem
        served = copy.deepcopy(fitted)
        with ModelServer(served, max_wait_ms=1.0) as server:
            adapter = OnlineAdapter(server, fitted)
            adapter.feedback(train_x[:48], train_y[:48])
            adapter.adapt_now(wait=True)
            assert adapter.n_adaptations == 1
            assert server.stats()["n_swaps"] == 1
            # The promoted version is a snapshot, not the live learner.
            assert server.model is not fitted
            np.testing.assert_array_equal(
                server.predict(test_x[:10]), server.model.predict(test_x[:10])
            )
            assert adapter.stats()["buffered_feedback"] == 0

    def test_drift_triggers_adaptation(self, fitted, small_problem):
        import copy

        train_x, train_y, test_x, test_y = small_problem
        served = copy.deepcopy(fitted)
        detector = DriftDetector(window=24, min_samples=24, acc_drop=0.3)
        with ModelServer(served, max_wait_ms=1.0) as server:
            adapter = OnlineAdapter(
                server, fitted, detector=detector, min_adapt_samples=16
            )
            # Reference window: genuine labels (high accuracy).
            adapter.feedback(train_x[:24], train_y[:24])
            assert adapter.n_adaptations == 0
            # Drifted stream: permuted labels crater windowed accuracy.
            shifted = (train_y[24:72] + 1) % (fitted.classes_.size)
            report = None
            for start in range(24, 72, 8):
                result = adapter.feedback(
                    train_x[start:start + 8], shifted[start - 24:start - 16]
                )
                report = report or result
            adapter.join(timeout=30.0)
            assert report is not None, "drift never flagged"
            assert adapter.n_adaptations >= 1
            assert server.stats()["n_swaps"] >= 1


class TestOnlineAdapterQuantized:
    def test_refresh_promotion_reuses_standby(self, fitted, small_problem):
        train_x, train_y, test_x, _ = small_problem
        artifact = QuantizedHDCModel(fitted, bits=8)
        with ModelServer(artifact, max_wait_ms=1.0) as server:
            adapter = OnlineAdapter(server, fitted)
            assert adapter.bits == 8  # auto-detected from the artifact
            adapter.feedback(train_x[:48], train_y[:48])
            adapter.adapt_now(wait=True)
            promoted = server.model
            assert isinstance(promoted, QuantizedHDCModel)
            assert promoted is not artifact
            assert promoted.refresh_count == 1
            assert promoted.classifier is fitted
            # Second cycle: the retired artifact rotates back in.
            adapter.feedback(train_x[48:96], train_y[48:96])
            adapter.adapt_now(wait=True)
            assert server.model is artifact
            assert artifact.refresh_count == 1
            assert adapter.n_adaptations == 2
            assert server.stats()["n_swaps"] == 2
            # Micro-batched path agrees with the active artifact exactly.
            np.testing.assert_array_equal(
                server.predict(test_x[:16]), server.model.predict(test_x[:16])
            )
