"""Tests for repro.noise.bitflip."""

import numpy as np
import pytest

from repro.noise.bitflip import corrupt_array, flip_bits
from repro.noise.quantization import dequantize, quantize


class TestFlipBits:
    def test_zero_rate_is_identity(self, rng):
        qt = quantize(rng.normal(size=(10, 10)), 8)
        flipped = flip_bits(qt, 0.0, seed=0)
        assert np.array_equal(flipped.codes, qt.codes)

    def test_input_unmodified(self, rng):
        qt = quantize(rng.normal(size=(10, 10)), 8)
        before = qt.codes.copy()
        flip_bits(qt, 0.5, seed=0)
        assert np.array_equal(qt.codes, before)

    def test_exact_flip_count(self, rng):
        """rate × total bits flip, each at a distinct position."""
        qt = quantize(rng.normal(size=(100,)), 8)
        flipped = flip_bits(qt, 0.10, seed=1)
        diff_bits = sum(
            bin(int(a) ^ int(b)).count("1")
            for a, b in zip(qt.codes, flipped.codes)
        )
        assert diff_bits == round(0.10 * qt.n_bits_total)

    def test_full_rate_flips_everything(self, rng):
        qt = quantize(rng.normal(size=(50,)), 4)
        flipped = flip_bits(qt, 1.0, seed=2)
        # Every meaningful bit flipped -> codes XOR to the 4-bit mask.
        assert np.all((qt.codes ^ flipped.codes) == 0x0F)

    def test_deterministic(self, rng):
        qt = quantize(rng.normal(size=(30,)), 8)
        a = flip_bits(qt, 0.2, seed=7)
        b = flip_bits(qt, 0.2, seed=7)
        assert np.array_equal(a.codes, b.codes)

    def test_one_bit_tensor(self, rng):
        qt = quantize(rng.normal(size=(1000,)), 1)
        flipped = flip_bits(qt, 0.1, seed=3)
        assert np.sum(flipped.codes != qt.codes) == 100

    def test_bad_rate(self, rng):
        qt = quantize(rng.normal(size=(4,)), 8)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            flip_bits(qt, 1.5)


class TestCorruptArray:
    def test_shape_preserved(self, rng):
        arr = rng.normal(size=(6, 7))
        assert corrupt_array(arr, 8, 0.05, seed=0).shape == (6, 7)

    def test_zero_rate_equals_quantized(self, rng):
        arr = rng.normal(size=(10,))
        corrupted = corrupt_array(arr, 8, 0.0, seed=0)
        assert np.array_equal(corrupted, dequantize(quantize(arr, 8)))

    def test_damage_grows_with_rate(self, rng):
        arr = rng.normal(size=(200,))
        clean = dequantize(quantize(arr, 8))
        damage = [
            np.abs(corrupt_array(arr, 8, rate, seed=1) - clean).mean()
            for rate in (0.01, 0.10, 0.40)
        ]
        assert damage[0] < damage[1] < damage[2]

    def test_high_bit_flips_hurt_more_than_low(self, rng):
        """Sign/MSB flips cause large value changes (the Fig. 8 asymmetry)."""
        arr = np.full(1000, 1.0)
        qt = quantize(arr, 8)
        msb = qt.copy()
        msb.codes = msb.codes ^ np.uint8(0x80)  # flip sign bit everywhere
        lsb = qt.copy()
        lsb.codes = lsb.codes ^ np.uint8(0x01)
        msb_damage = np.abs(dequantize(msb) - arr).mean()
        lsb_damage = np.abs(dequantize(lsb) - arr).mean()
        assert msb_damage > 50 * lsb_damage
