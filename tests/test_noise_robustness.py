"""Tests for repro.noise.robustness — model-level fault injection."""

import numpy as np
import pytest

from repro.baselines.knn import KNNClassifier
from repro.baselines.mlp import MLPClassifier
from repro.core.disthd import DistHDClassifier
from repro.noise.robustness import (
    RobustnessPoint,
    evaluate_quality_loss,
    perturb_classifier,
    quality_loss_sweep,
    robustness_ratio,
)


@pytest.fixture(scope="module")
def fitted_models(small_problem):
    train_x, train_y, _, _ = small_problem
    hdc = DistHDClassifier(dim=96, iterations=5, seed=0).fit(train_x, train_y)
    mlp = MLPClassifier(hidden_sizes=(16,), epochs=10, seed=0).fit(train_x, train_y)
    return hdc, mlp


class TestPerturbClassifier:
    def test_hdc_memory_perturbed(self, fitted_models):
        hdc, _ = fitted_models
        noisy = perturb_classifier(hdc, bits=8, error_rate=0.3, seed=0)
        assert not np.allclose(noisy.memory_.vectors, hdc.memory_.vectors)

    def test_original_untouched(self, fitted_models):
        hdc, _ = fitted_models
        before = hdc.memory_.vectors.copy()
        perturb_classifier(hdc, bits=8, error_rate=0.5, seed=0)
        assert np.array_equal(hdc.memory_.vectors, before)

    def test_mlp_parameters_perturbed(self, fitted_models):
        _, mlp = fitted_models
        noisy = perturb_classifier(mlp, bits=8, error_rate=0.3, seed=0)
        assert not np.allclose(noisy.weights_[0], mlp.weights_[0])

    def test_zero_rate_keeps_predictions_close(self, fitted_models, small_problem):
        hdc, _ = fitted_models
        _, _, test_x, _ = small_problem
        noisy = perturb_classifier(hdc, bits=8, error_rate=0.0, seed=0)
        # Only quantisation error remains; predictions nearly identical.
        agreement = np.mean(noisy.predict(test_x) == hdc.predict(test_x))
        assert agreement > 0.95

    def test_unsupported_model_rejected(self, small_problem):
        train_x, train_y, _, _ = small_problem
        knn = KNNClassifier(k=3).fit(train_x, train_y)
        with pytest.raises(TypeError, match="don't know how to perturb"):
            perturb_classifier(knn, bits=8, error_rate=0.1)


class TestEvaluateQualityLoss:
    def test_point_fields(self, fitted_models, small_problem):
        hdc, _ = fitted_models
        _, _, test_x, test_y = small_problem
        point = evaluate_quality_loss(
            hdc, test_x, test_y, bits=8, error_rate=0.05, n_trials=2, seed=0
        )
        assert point.bits == 8
        assert point.error_rate == 0.05
        assert 0.0 <= point.noisy_accuracy <= 1.0
        assert point.quality_loss >= 0.0

    def test_quality_loss_clamped_nonnegative(self):
        point = RobustnessPoint(
            error_rate=0.1, bits=8, clean_accuracy=0.8, noisy_accuracy=0.85
        )
        assert point.quality_loss == 0.0

    def test_bad_trials(self, fitted_models, small_problem):
        hdc, _ = fitted_models
        _, _, test_x, test_y = small_problem
        with pytest.raises(ValueError, match="n_trials"):
            evaluate_quality_loss(
                hdc, test_x, test_y, bits=8, error_rate=0.1, n_trials=0
            )


class TestQualityLossSweep:
    def test_sweep_grid(self, fitted_models, small_problem):
        hdc, _ = fitted_models
        _, _, test_x, test_y = small_problem
        points = quality_loss_sweep(
            hdc, test_x, test_y, bits=1,
            error_rates=(0.01, 0.10), n_trials=2, seed=0,
        )
        assert [p.error_rate for p in points] == [0.01, 0.10]

    def test_loss_trend_with_rate(self, fitted_models, small_problem):
        """Severe corruption loses more quality than mild corruption."""
        hdc, _ = fitted_models
        _, _, test_x, test_y = small_problem
        points = quality_loss_sweep(
            hdc, test_x, test_y, bits=8,
            error_rates=(0.0, 0.45), n_trials=3, seed=1,
        )
        assert points[0].quality_loss <= points[1].quality_loss


class TestRobustnessRatio:
    def test_simple_ratio(self):
        assert robustness_ratio([10.0, 20.0], [1.0, 2.0]) == pytest.approx(10.0)

    def test_zero_candidate_clamped(self):
        assert robustness_ratio([5.0], [0.0]) == pytest.approx(50.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            robustness_ratio([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            robustness_ratio([], [])


class TestHolographicRobustness:
    def test_hdc_1bit_tolerates_moderate_flips(self, small_problem):
        """The paper's core robustness claim: 1-bit HDC degrades gracefully."""
        train_x, train_y, test_x, test_y = small_problem
        hdc = DistHDClassifier(dim=512, iterations=5, seed=0).fit(train_x, train_y)
        point = evaluate_quality_loss(
            hdc, test_x, test_y, bits=1, error_rate=0.05, n_trials=3, seed=0
        )
        assert point.quality_loss < 15.0  # percentage points
