"""Tests for repro.metrics.timing."""

import time

import pytest

from repro.metrics.timing import Timer, TimingRecord, time_call


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.009

    def test_reusable(self):
        timer = Timer()
        with timer:
            pass
        first = timer.elapsed
        with timer:
            time.sleep(0.01)
        assert timer.elapsed >= first


class TestTimeCall:
    def test_returns_result(self):
        result, elapsed = time_call(lambda a, b: a + b, 2, 3)
        assert result == 5
        assert elapsed >= 0.0

    def test_repeats_take_minimum(self):
        calls = []

        def variable():
            calls.append(None)
            time.sleep(0.01 if len(calls) == 1 else 0.001)

        _, elapsed = time_call(variable, repeats=3)
        assert elapsed < 0.009  # the fast runs win

    def test_kwargs_forwarded(self):
        result, _ = time_call(lambda *, x: x * 2, x=4)
        assert result == 8

    def test_bad_repeats(self):
        with pytest.raises(ValueError, match="repeats"):
            time_call(lambda: None, repeats=0)


class TestTimingRecord:
    def test_speedup_over(self):
        fast = TimingRecord("fast", "ds", train_seconds=1.0, inference_seconds=0.1)
        slow = TimingRecord("slow", "ds", train_seconds=5.0, inference_seconds=0.8)
        speedup = fast.speedup_over(slow)
        assert speedup["train"] == pytest.approx(5.0)
        assert speedup["inference"] == pytest.approx(8.0)

    def test_zero_division_guarded(self):
        instant = TimingRecord("x", "ds", train_seconds=0.0, inference_seconds=0.0)
        other = TimingRecord("y", "ds", train_seconds=1.0, inference_seconds=1.0)
        speedup = instant.speedup_over(other)
        assert speedup["train"] > 0
