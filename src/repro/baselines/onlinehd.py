"""OnlineHD-style baseline: adaptive learning, static encoder.

This sits exactly between BaselineHD and DistHD: it uses DistHD's
similarity-weighted adaptive update (Algorithm 1) but never regenerates
dimensions.  Comparing the three isolates how much of DistHD's gain comes
from adaptive weighting versus dimension regeneration — the ablation the
DESIGN.md calls out.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backend import get_backend, resolve_dtype
from repro.core.adaptive import adaptive_fit_iteration
from repro.core.convergence import ConvergenceTracker
from repro.core.history import IterationRecord, TrainingHistory
from repro.estimator import BaseClassifier
from repro.hdc.encoders.rbf import RBFEncoder
from repro.hdc.memory import AssociativeMemory
from repro.utils.rng import as_rng, spawn_seed
from repro.utils.validation import check_features_match, check_matrix


class OnlineHDClassifier(BaseClassifier):
    """Adaptive HDC with a static encoder (no dimension regeneration).

    Parameters mirror :class:`~repro.core.disthd.DistHDClassifier` minus the
    regeneration knobs.

    With a static encoder the adaptive pass is naturally incremental, so
    this model also supports :meth:`partial_fit` (one adaptive pass per
    mini-batch) — no reservoir or regeneration machinery needed.
    """

    supports_streaming = True

    def __init__(
        self,
        dim: int = 500,
        *,
        lr: float = 0.05,
        iterations: int = 30,
        batch_size: Optional[int] = None,
        single_pass_init: bool = True,
        bandwidth: float = 0.5,
        convergence_patience: Optional[int] = 5,
        convergence_tol: float = 1e-3,
        dtype="float32",
        backend="numpy",
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if iterations <= 0:
            raise ValueError(f"iterations must be positive, got {iterations}")
        self.dim = int(dim)
        self.lr = float(lr)
        self.iterations = int(iterations)
        self.batch_size = batch_size
        self.single_pass_init = bool(single_pass_init)
        self.bandwidth = float(bandwidth)
        self.convergence_patience = convergence_patience
        self.convergence_tol = float(convergence_tol)
        self.dtype = resolve_dtype(dtype)
        self.backend = get_backend(backend)
        self.seed = seed
        self.encoder_: Optional[RBFEncoder] = None
        self.memory_: Optional[AssociativeMemory] = None
        self.history_: Optional[TrainingHistory] = None
        self.n_iterations_: int = 0
        self._bundle_first_batch = False

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        n_classes = int(y.max()) + 1
        self._bundle_first_batch = False
        rng = as_rng(self.seed)
        self.encoder_ = RBFEncoder(
            X.shape[1], self.dim, bandwidth=self.bandwidth,
            seed=spawn_seed(rng), dtype=self.dtype, backend=self.backend,
        )
        self.memory_ = AssociativeMemory(
            n_classes, self.dim, dtype=self.dtype, backend=self.backend
        )
        self.history_ = TrainingHistory()
        tracker = ConvergenceTracker(self.convergence_patience, self.convergence_tol)
        shuffle_rng = as_rng(spawn_seed(rng))

        encoded = self.encoder_.encode(X)
        if self.single_pass_init:
            self.memory_.accumulate(encoded, y)
        self.n_iterations_ = 0
        for iteration in range(self.iterations):
            adaptive_fit_iteration(
                self.memory_,
                encoded,
                y,
                lr=self.lr,
                batch_size=self.batch_size,
                shuffle_rng=shuffle_rng,
            )
            train_acc = float(np.mean(self.memory_.predict(encoded) == y))
            self.history_.append(
                IterationRecord(iteration=iteration, train_accuracy=train_acc)
            )
            self.n_iterations_ = iteration + 1
            if tracker.update(train_acc):
                break

    def _partial_fit(self, X: np.ndarray, y: np.ndarray) -> None:
        """One streamed mini-batch: encode, then one adaptive pass."""
        if self.encoder_ is None:
            rng = as_rng(self.seed)
            self.encoder_ = RBFEncoder(
                self.n_features_, self.dim,
                bandwidth=self.bandwidth, seed=spawn_seed(rng),
                dtype=self.dtype, backend=self.backend,
            )
            self.memory_ = AssociativeMemory(
                int(self.classes_.size), self.dim,
                dtype=self.dtype, backend=self.backend,
            )
            self.history_ = TrainingHistory()
            self._bundle_first_batch = self.single_pass_init
        encoded = self.encoder_.encode(X)
        if self._bundle_first_batch and self.n_batches_ == 1:
            self.memory_.accumulate(encoded, y)
        adaptive_fit_iteration(self.memory_, encoded, y, lr=self.lr)

    def decision_scores(self, X) -> np.ndarray:
        """Cosine similarities of encoded queries against class memory."""
        self._check_fitted()
        X = check_matrix(X, "X")
        check_features_match(self.n_features_, X.shape[1], type(self).__name__)
        return self.memory_.similarities(self.encoder_.encode(X))
