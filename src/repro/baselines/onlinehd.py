"""OnlineHD-style baseline: adaptive learning, static encoder.

This sits exactly between BaselineHD and DistHD: it uses DistHD's
similarity-weighted adaptive update (Algorithm 1) but never regenerates
dimensions.  Comparing the three isolates how much of DistHD's gain comes
from adaptive weighting versus dimension regeneration — the ablation the
DESIGN.md calls out.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backend import get_backend, resolve_dtype
from repro.core.adaptive import adaptive_fit_iteration
from repro.core.history import IterationRecord, TrainingHistory
from repro.engine.callbacks import ConvergenceCallback, EngineState, HistoryCallback
from repro.engine.training import IterationContext, TrainingEngine
from repro.estimator import BaseClassifier
from repro.hdc.encoders import (
    RegenerableEncoder,
    list_encoders,
    make_encoder,
)
from repro.hdc.memory import AssociativeMemory
from repro.utils.rng import as_rng, spawn_seed
from repro.utils.validation import (
    check_convergence_params,
    check_features_match,
    check_matrix,
    check_n_jobs,
    check_positive_float,
    check_positive_int,
)


class OnlineHDClassifier(BaseClassifier):
    """Adaptive HDC with a static encoder (no dimension regeneration).

    Parameters mirror :class:`~repro.core.disthd.DistHDClassifier` minus the
    regeneration knobs.

    With a static encoder the adaptive pass is naturally incremental, so
    this model also supports :meth:`partial_fit` (one adaptive pass per
    mini-batch) — no reservoir or regeneration machinery needed.
    """

    supports_streaming = True
    supports_sharding = True

    def __init__(
        self,
        dim: int = 500,
        *,
        lr: float = 0.05,
        iterations: int = 30,
        batch_size: Optional[int] = None,
        single_pass_init: bool = True,
        encoder: str = "rbf",
        bandwidth: float = 0.5,
        convergence_patience: Optional[int] = 5,
        convergence_tol: float = 1e-3,
        n_jobs: Optional[int] = None,
        dtype="float32",
        backend="numpy",
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.dim = check_positive_int(dim, "dim")
        self.lr = check_positive_float(lr, "lr")
        self.iterations = check_positive_int(iterations, "iterations")
        self.batch_size = batch_size
        self.single_pass_init = bool(single_pass_init)
        if str(encoder).strip().lower() not in list_encoders():
            raise ValueError(
                f"encoder must be one of {list_encoders()}, got {encoder!r}"
            )
        self.encoder = str(encoder)
        self.bandwidth = float(bandwidth)
        self.convergence_patience, self.convergence_tol = (
            check_convergence_params(convergence_patience, convergence_tol)
        )
        self.n_jobs = check_n_jobs(n_jobs)
        self.dtype = resolve_dtype(dtype)
        self.backend = get_backend(backend)
        self.seed = seed
        self.encoder_: Optional[RegenerableEncoder] = None
        self.memory_: Optional[AssociativeMemory] = None
        self.history_: Optional[TrainingHistory] = None
        self.n_iterations_: int = 0
        self._bundle_first_batch = False

    def _fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        *,
        init_memory: Optional[np.ndarray] = None,
        iterations: Optional[int] = None,
    ) -> None:
        n_classes = int(self.classes_.size)
        self._bundle_first_batch = False
        rng = as_rng(self.seed)
        self.encoder_ = make_encoder(
            self.encoder, X.shape[1], self.dim, bandwidth=self.bandwidth,
            seed=spawn_seed(rng), dtype=self.dtype, backend=self.backend,
        )
        self.memory_ = AssociativeMemory(
            n_classes, self.dim, dtype=self.dtype, backend=self.backend
        )
        self.history_ = TrainingHistory()
        shuffle_rng = as_rng(spawn_seed(rng))

        encoded = self.encoder_.encode(X)
        if init_memory is not None:
            self.memory_.set_vectors(init_memory)
        elif self.single_pass_init:
            self.memory_.accumulate(encoded, y)

        def step(context: IterationContext) -> IterationRecord:
            adaptive_fit_iteration(
                self.memory_,
                encoded,
                y,
                lr=self.lr,
                batch_size=self.batch_size,
                shuffle_rng=shuffle_rng,
            )
            train_acc = float(np.mean(self.memory_.predict(encoded) == y))
            return IterationRecord(
                iteration=context.iteration, train_accuracy=train_acc
            )

        engine = TrainingEngine(
            self.iterations if iterations is None else iterations,
            callbacks=(
                HistoryCallback(self.history_),
                ConvergenceCallback(
                    self.convergence_patience, self.convergence_tol
                ),
            ),
        )
        state = EngineState()
        try:
            engine.run(step, state=state)
        finally:
            # Accurate even when a step raises mid-fit: completed
            # iterations, matching the records history_ holds.
            self.n_iterations_ = state.n_iterations

    def _configure_for_shard(self, shard_iterations: Optional[int]) -> None:
        # Static encoder: nothing can diverge across shards; just stop the
        # worker from recursing into the shard path.
        self.n_jobs = None
        if shard_iterations is not None:
            self.iterations = int(shard_iterations)

    def _partial_fit(self, X: np.ndarray, y: np.ndarray) -> None:
        """One streamed mini-batch: encode, then one adaptive pass."""
        if self.encoder_ is None:
            rng = as_rng(self.seed)
            self.encoder_ = make_encoder(
                self.encoder, self.n_features_, self.dim,
                bandwidth=self.bandwidth, seed=spawn_seed(rng),
                dtype=self.dtype, backend=self.backend,
            )
            self.memory_ = AssociativeMemory(
                int(self.classes_.size), self.dim,
                dtype=self.dtype, backend=self.backend,
            )
            self.history_ = TrainingHistory()
            self._bundle_first_batch = self.single_pass_init
        encoded = self.encoder_.encode(X)
        if self._bundle_first_batch and self.n_batches_ == 1:
            self.memory_.accumulate(encoded, y)
        adaptive_fit_iteration(self.memory_, encoded, y, lr=self.lr)

    def decision_scores(self, X) -> np.ndarray:
        """Cosine similarities of encoded queries against class memory."""
        self._check_fitted()
        X = check_matrix(X, "X")
        check_features_match(self.n_features_, X.shape[1], type(self).__name__)
        return self.memory_.similarities(self.encoder_.encode(X))
