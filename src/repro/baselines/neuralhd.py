"""NeuralHD — dynamic encoding by variance-based dimension significance.

Reimplementation of the comparator in Zou et al., *Scalable edge-based
hyperdimensional learning system with brain-like neural adaptation* (SC'21),
as the paper describes it: after each retraining epoch, rank encoder
dimensions by how much they help *distinguish* classes — measured as the
dispersion of the (normalised) class hypervectors along each dimension — and
regenerate the least-significant R% of dimensions.

The key contrast with DistHD: NeuralHD's significance score looks only at
the class memory (learner-agnostic), while DistHD scores dimensions by the
classification *mistakes* they cause (learner-aware).  The paper reports
NeuralHD converging slower at equal dimensionality; the convergence benches
reproduce that shape.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backend import get_backend, resolve_dtype
from repro.core.adaptive import adaptive_fit_iteration
from repro.core.history import IterationRecord, TrainingHistory
from repro.engine.callbacks import ConvergenceCallback, EngineState, HistoryCallback
from repro.engine.training import IterationContext, TrainingEngine
from repro.estimator import BaseClassifier
from repro.hdc.encoders import (
    RegenerableEncoder,
    list_encoders,
    make_encoder,
)
from repro.hdc.memory import AssociativeMemory
from repro.utils.rng import as_rng, spawn_seed
from repro.utils.validation import (
    check_convergence_params,
    check_features_match,
    check_matrix,
    check_n_jobs,
    check_positive_float,
    check_positive_int,
    check_unit_interval,
)


def dimension_significance(memory: AssociativeMemory) -> np.ndarray:
    """Per-dimension significance: dispersion of normalised class vectors.

    A dimension along which all class hypervectors carry similar values does
    not help separate classes; NeuralHD scores dimension ``d`` by the
    variance of ``{C_1[d], ..., C_k[d]}`` after row-normalising the memory
    (so magnitude imbalances between classes don't dominate).
    """
    normalized = memory.normalized()
    return np.var(normalized, axis=0)


class NeuralHDClassifier(BaseClassifier):
    """Dynamic-encoder HDC baseline with variance-ranked regeneration.

    Parameters
    ----------
    dim:
        Physical dimensionality (paper operating point: 0.5k).
    regen_rate:
        Fraction of dimensions regenerated per epoch (least significant).
    lr, iterations, bandwidth, seed:
        As in :class:`~repro.baselines.baselinehd.BaselineHDClassifier`;
        training uses the same adaptive pass as DistHD so the comparison
        isolates the dimension-selection policy.
    single_pass_init:
        Bundle all samples into their classes before retraining.
    rebundle_on_regen:
        Immediately bundle regenerated columns back into class memory.
        Defaults to ``False``, matching the original NeuralHD procedure
        where reset dimensions are healed only by subsequent retraining
        epochs (the cause of its slower convergence the paper reports);
        set ``True`` for the DistHD-style instant-retrain ablation.
    convergence_patience / convergence_tol:
        Early stopping.
    """

    supports_sharding = True

    def __init__(
        self,
        dim: int = 500,
        *,
        regen_rate: float = 0.10,
        lr: float = 0.05,
        iterations: int = 30,
        encoder: str = "rbf",
        bandwidth: float = 0.5,
        single_pass_init: bool = True,
        rebundle_on_regen: bool = False,
        convergence_patience: Optional[int] = 5,
        convergence_tol: float = 1e-3,
        n_jobs: Optional[int] = None,
        dtype="float32",
        backend="numpy",
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.dim = check_positive_int(dim, "dim")
        self.regen_rate = check_unit_interval(regen_rate, "regen_rate")
        self.lr = check_positive_float(lr, "lr")
        self.iterations = check_positive_int(iterations, "iterations")
        if str(encoder).strip().lower() not in list_encoders():
            raise ValueError(
                f"encoder must be one of {list_encoders()}, got {encoder!r}"
            )
        self.encoder = str(encoder)
        self.bandwidth = float(bandwidth)
        self.single_pass_init = bool(single_pass_init)
        self.rebundle_on_regen = bool(rebundle_on_regen)
        self.convergence_patience, self.convergence_tol = (
            check_convergence_params(convergence_patience, convergence_tol)
        )
        self.n_jobs = check_n_jobs(n_jobs)
        self.dtype = resolve_dtype(dtype)
        self.backend = get_backend(backend)
        self.seed = seed
        self.encoder_: Optional[RegenerableEncoder] = None
        self.memory_: Optional[AssociativeMemory] = None
        self.history_: Optional[TrainingHistory] = None
        self.n_iterations_: int = 0

    def _fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        *,
        init_memory: Optional[np.ndarray] = None,
        iterations: Optional[int] = None,
    ) -> None:
        n_classes = int(self.classes_.size)
        rng = as_rng(self.seed)
        self.encoder_ = make_encoder(
            self.encoder, X.shape[1], self.dim, bandwidth=self.bandwidth,
            seed=spawn_seed(rng), dtype=self.dtype, backend=self.backend,
        )
        self.memory_ = AssociativeMemory(
            n_classes, self.dim, dtype=self.dtype, backend=self.backend
        )
        self.history_ = TrainingHistory()
        shuffle_rng = as_rng(spawn_seed(rng))

        encoded = self.encoder_.encode(X)
        if init_memory is not None:
            self.memory_.set_vectors(init_memory)
        elif self.single_pass_init:
            self.memory_.accumulate(encoded, y)
        n_regen = int(round(self.regen_rate * self.dim))

        def step(context: IterationContext) -> IterationRecord:
            adaptive_fit_iteration(
                self.memory_, encoded, y, lr=self.lr, shuffle_rng=shuffle_rng
            )
            train_acc = float(np.mean(self.memory_.predict(encoded) == y))

            regenerated = 0
            if n_regen > 0 and not context.is_last and not context.converged:
                significance = dimension_significance(self.memory_)
                dims = np.sort(np.argsort(significance, kind="stable")[:n_regen])
                self.encoder_.regenerate(dims)
                self.memory_.reset_dimensions(dims)
                fresh = self.encoder_.encode_dims(X, dims)
                self.backend.set_columns(encoded, dims, fresh)
                if self.rebundle_on_regen:
                    self.memory_.bundle_columns(y, dims, fresh)
                regenerated = dims.size

            return IterationRecord(
                iteration=context.iteration,
                train_accuracy=train_acc,
                regenerated=regenerated,
                effective_dim=self.encoder_.effective_dim(),
            )

        engine = TrainingEngine(
            self.iterations if iterations is None else iterations,
            callbacks=(
                HistoryCallback(self.history_),
                ConvergenceCallback(
                    self.convergence_patience, self.convergence_tol
                ),
            ),
        )
        state = EngineState()
        try:
            engine.run(step, state=state)
        finally:
            # Accurate even when a step raises mid-fit: completed
            # iterations, matching the records history_ holds.
            self.n_iterations_ = state.n_iterations

    def _configure_for_shard(self, shard_iterations: Optional[int]) -> None:
        # Workers must never regenerate: redrawn encoder rows would make
        # the shard banks incompatible with the shared seed encoder.
        self.regen_rate = 0.0
        self.n_jobs = None
        if shard_iterations is not None:
            self.iterations = int(shard_iterations)

    def decision_scores(self, X) -> np.ndarray:
        """Cosine similarities of encoded queries against class memory."""
        self._check_fitted()
        X = check_matrix(X, "X")
        check_features_match(self.n_features_, X.shape[1], type(self).__name__)
        return self.memory_.similarities(self.encoder_.encode(X))
