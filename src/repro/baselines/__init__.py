"""Comparator algorithms the paper evaluates against.

HDC family:

- :class:`BaselineHDClassifier` — static encoder + perceptron-style
  retraining (the paper's "baselineHD", Rahimi et al. ISLPED'16 lineage);
- :class:`NeuralHDClassifier` — dynamic encoding via variance-based dimension
  significance (Zou et al., SC'21);
- :class:`OnlineHDClassifier` — adaptive similarity-weighted learning with a
  static encoder (ablation between BaselineHD and DistHD).

Classical ML family (all NumPy-from-scratch, no external ML deps):

- :class:`MLPClassifier` — the "SOTA DNN" comparator;
- :class:`LinearSVMClassifier` / :class:`RFFSVMClassifier` — the SVM
  comparators (linear and random-Fourier-feature kernel approximation);
- :class:`KNNClassifier` — distance-based sanity baseline.
"""

from repro.baselines.baselinehd import BaselineHDClassifier
from repro.baselines.knn import KNNClassifier
from repro.baselines.mlp import MLPClassifier
from repro.baselines.neuralhd import NeuralHDClassifier
from repro.baselines.onlinehd import OnlineHDClassifier
from repro.baselines.svm import LinearSVMClassifier, RFFSVMClassifier

__all__ = [
    "BaselineHDClassifier",
    "NeuralHDClassifier",
    "OnlineHDClassifier",
    "MLPClassifier",
    "LinearSVMClassifier",
    "RFFSVMClassifier",
    "KNNClassifier",
]
