"""BaselineHD — static-encoder HDC with perceptron-style retraining.

The paper's "baselineHD" comparator is the Rahimi et al. ISLPED'16 classifier
[6]: a static *record-based (ID-level)* encoder — each feature index gets a
random bipolar ID hypervector, each quantised magnitude a correlated level
hypervector, and a sample is the bundle of ID⊛level bindings — followed by
single-pass bundling initialisation and perceptron-style retraining where
each mispredicted sample is subtracted from the wrong class and added to the
true class with a fixed learning rate (no similarity weighting, no
regeneration).

The quantised record encoding is what makes static HDC dimension-hungry
(paper Fig. 2(a)): each dimension carries a coarse, fixed slice of the
input, so matching adaptive real-valued encoders takes several-fold higher
D.  An ``encoder`` switch lets ablations rerun BaselineHD with a bipolar
sign-projection encoder or the real-valued RBF encoder instead.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backend import get_backend, resolve_dtype
from repro.core.history import IterationRecord, TrainingHistory
from repro.engine.callbacks import ConvergenceCallback, EngineState, HistoryCallback
from repro.engine.training import IterationContext, TrainingEngine
from repro.estimator import BaseClassifier
from repro.hdc.encoders.id_level import IDLevelEncoder
from repro.hdc.encoders.registry import list_encoders, make_encoder
from repro.hdc.memory import AssociativeMemory
from repro.utils.rng import as_rng, spawn_seed
from repro.utils.validation import (
    check_convergence_params,
    check_features_match,
    check_matrix,
    check_n_jobs,
    check_positive_float,
    check_positive_int,
)


class BaselineHDClassifier(BaseClassifier):
    """Static-encoder HDC classifier with perceptron-style retraining.

    Parameters
    ----------
    dim:
        Hypervector dimensionality; the paper runs it at both the compressed
        D=0.5k and the effective D*=4k operating points.
    lr:
        Retraining step size.
    iterations:
        Maximum retraining epochs.
    single_pass_init:
        Bundle all samples into their classes before retraining (classic
        one-shot initialisation).  Disable for a from-zero perceptron run.
    encoder:
        ``"id-level"`` (default) for the faithful ISLPED record-based
        encoder, ``"sign"`` (alias of ``"projection-sign"``) for a bipolar
        sign-projection encoder, or any registry spec
        (:func:`repro.hdc.encoders.make_encoder` — e.g. ``"rbf"``,
        ``"fastfood-rbf"``) for ablations isolating the encoder choice
        from the training rule.
    n_levels:
        Quantisation levels for the ID-level encoder.
    bandwidth, seed:
        Encoder parameters (``bandwidth`` only affects ``encoder="rbf"``).
    convergence_patience / convergence_tol:
        Early-stopping plateau detection, as in DistHD.
    dtype, backend:
        Hot-path compute dtype (default float32) and array backend
        (default NumPy; see :mod:`repro.backend`).

    The static encoder and per-sample perceptron rule make this model
    naturally incremental: :meth:`partial_fit` applies one perceptron pass
    per mini-batch (the ISLPED'16 update needs no global state beyond the
    class memory).
    """

    supports_streaming = True
    supports_sharding = True

    def __init__(
        self,
        dim: int = 4000,
        *,
        lr: float = 0.05,
        iterations: int = 30,
        single_pass_init: bool = True,
        encoder: str = "id-level",
        n_levels: int = 16,
        bandwidth: float = 0.5,
        convergence_patience: Optional[int] = 5,
        convergence_tol: float = 1e-3,
        n_jobs: Optional[int] = None,
        dtype="float32",
        backend="numpy",
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        if encoder not in ("id-level", "sign") and (
            str(encoder).strip().lower() not in list_encoders()
        ):
            raise ValueError(
                f"encoder must be 'id-level', 'sign' or a registry spec "
                f"{list_encoders()}, got {encoder!r}"
            )
        if n_levels < 2:
            raise ValueError(f"n_levels must be >= 2, got {n_levels}")
        self.dim = check_positive_int(dim, "dim")
        self.lr = check_positive_float(lr, "lr")
        self.iterations = check_positive_int(iterations, "iterations")
        self.single_pass_init = bool(single_pass_init)
        self.encoder_kind = encoder
        self.n_levels = int(n_levels)
        self.bandwidth = float(bandwidth)
        self.convergence_patience, self.convergence_tol = (
            check_convergence_params(convergence_patience, convergence_tol)
        )
        self.n_jobs = check_n_jobs(n_jobs)
        self.dtype = resolve_dtype(dtype)
        self.backend = get_backend(backend)
        self.seed = seed
        self.encoder_ = None
        self.memory_: Optional[AssociativeMemory] = None
        self.history_: Optional[TrainingHistory] = None
        self.n_iterations_: int = 0
        self._bundle_first_batch = False

    def _make_encoder(self, n_features: int, seed) -> object:
        kwargs = dict(dtype=self.dtype, backend=self.backend, seed=seed)
        if self.encoder_kind == "id-level":
            return IDLevelEncoder(
                n_features, self.dim, n_levels=self.n_levels, **kwargs
            )
        spec = (
            "projection-sign" if self.encoder_kind == "sign"
            else self.encoder_kind
        )
        return make_encoder(
            spec, n_features, self.dim, bandwidth=self.bandwidth, **kwargs
        )

    def _fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        *,
        init_memory: Optional[np.ndarray] = None,
        iterations: Optional[int] = None,
    ) -> None:
        n_classes = int(self.classes_.size)
        self._bundle_first_batch = False
        rng = as_rng(self.seed)
        self.encoder_ = self._make_encoder(X.shape[1], spawn_seed(rng))
        self.memory_ = AssociativeMemory(
            n_classes, self.dim, dtype=self.dtype, backend=self.backend
        )
        self.history_ = TrainingHistory()
        shuffle_rng = as_rng(spawn_seed(rng))

        encoded = self.encoder_.encode(X)
        if init_memory is not None:
            self.memory_.set_vectors(init_memory)
        elif self.single_pass_init:
            self.memory_.accumulate(encoded, y)

        def step(context: IterationContext) -> IterationRecord:
            order = shuffle_rng.permutation(encoded.shape[0])
            self._perceptron_pass(
                self.backend.take_rows(encoded, order), y[order]
            )
            train_acc = float(
                np.mean(self.memory_.predict(encoded) == y)
            )
            return IterationRecord(
                iteration=context.iteration, train_accuracy=train_acc
            )

        engine = TrainingEngine(
            self.iterations if iterations is None else iterations,
            callbacks=(
                HistoryCallback(self.history_),
                ConvergenceCallback(
                    self.convergence_patience, self.convergence_tol
                ),
            ),
        )
        state = EngineState()
        try:
            engine.run(step, state=state)
        finally:
            # Accurate even when a step raises mid-fit: completed
            # iterations, matching the records history_ holds.
            self.n_iterations_ = state.n_iterations

    def _configure_for_shard(self, shard_iterations: Optional[int]) -> None:
        # Static encoder, fixed-lr perceptron: shard-safe as-is.
        self.n_jobs = None
        if shard_iterations is not None:
            self.iterations = int(shard_iterations)

    def _perceptron_pass(self, encoded, y: np.ndarray) -> None:
        """The ISLPED'16 update: each miss moves both class vectors by lr.

        Updates use similarities computed at pass start (the fixed-lr
        perceptron rule carries no similarity weighting), so the mispredicted
        samples' moves commute and are applied as one grouped scatter-add.
        """
        memory = self.memory_
        b = memory.backend
        sims = memory.similarities(encoded)
        predicted = np.argmax(sims, axis=1)
        wrong = np.flatnonzero(predicted != y)
        if wrong.size:
            step = b.asarray(b.take_rows(encoded, wrong), dtype=memory.dtype)
            step = step * b.asarray(self.lr, dtype=memory.dtype)
            b.scatter_add_rows(memory.vectors, predicted[wrong], -step)
            b.scatter_add_rows(memory.vectors, np.asarray(y)[wrong], step)
            # Direct in-place scatter bypasses the memory's mutator methods,
            # so its versioned norm caches must be told explicitly.
            memory.invalidate_caches()

    def _partial_fit(self, X: np.ndarray, y: np.ndarray) -> None:
        """One streamed mini-batch: encode, then one perceptron pass."""
        if self.encoder_ is None:
            rng = as_rng(self.seed)
            self.encoder_ = self._make_encoder(self.n_features_, spawn_seed(rng))
            self.memory_ = AssociativeMemory(
                int(self.classes_.size), self.dim,
                dtype=self.dtype, backend=self.backend,
            )
            self.history_ = TrainingHistory()
            self._bundle_first_batch = self.single_pass_init
        encoded = self.encoder_.encode(X)
        if self._bundle_first_batch and self.n_batches_ == 1:
            self.memory_.accumulate(encoded, y)
        self._perceptron_pass(encoded, y)

    def decision_scores(self, X) -> np.ndarray:
        """Cosine similarities of encoded queries against class memory."""
        self._check_fitted()
        X = check_matrix(X, "X")
        check_features_match(self.n_features_, X.shape[1], type(self).__name__)
        return self.memory_.similarities(self.encoder_.encode(X))
