"""Support-vector-machine comparators, from scratch on NumPy.

Two variants:

- :class:`LinearSVMClassifier` — one-vs-rest linear SVM trained by
  mini-batch Adam on the squared-hinge objective with L2 regularisation
  (Adam's per-coordinate step normalisation keeps the optimiser stable
  across the feature-count range of the Table-I datasets, 49–784);
- :class:`RFFSVMClassifier` — random Fourier features (Rahimi & Recht, the
  construction the paper's encoder cites) feeding the same linear SVM, i.e.
  an approximate RBF-kernel SVM.  This mirrors the scikit-learn SVM the
  paper grid-searches, without the sklearn dependency.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.mlp import _AdamState
from repro.estimator import BaseClassifier
from repro.utils.rng import as_rng, spawn_seed
from repro.utils.validation import check_features_match, check_matrix


class LinearSVMClassifier(BaseClassifier):
    """One-vs-rest linear SVM (squared hinge, L2, Adam).

    Parameters
    ----------
    C:
        Inverse regularisation strength (larger = less regularisation).
    epochs:
        Passes over the training set.
    batch_size:
        Mini-batch size.
    lr:
        Adam learning rate.
    fit_intercept:
        Learn a bias term per class.
    seed:
        RNG seed for shuffling.
    """

    def __init__(
        self,
        *,
        C: float = 1.0,
        epochs: int = 30,
        batch_size: int = 64,
        lr: float = 0.01,
        fit_intercept: bool = True,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        if C <= 0:
            raise ValueError(f"C must be positive, got {C}")
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.C = float(C)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.lr = float(lr)
        self.fit_intercept = bool(fit_intercept)
        self.seed = seed
        self.coef_: Optional[np.ndarray] = None  # (k, q)
        self.intercept_: Optional[np.ndarray] = None  # (k,)

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        n, q = X.shape
        k = int(y.max()) + 1
        rng = as_rng(self.seed)
        # One-vs-rest targets in {-1, +1}, all classes updated jointly.
        targets = np.full((n, k), -1.0, dtype=np.float64)
        targets[np.arange(n, dtype=np.int64), y] = 1.0

        W = np.zeros((k, q), dtype=np.float64)
        b = np.zeros(k, dtype=np.float64)
        adam = _AdamState([W.shape, b.shape])
        lam = 1.0 / (self.C * n)

        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                xb = X[idx]                      # (B, q)
                tb = targets[idx]                # (B, k)
                margins = tb * (xb @ W.T + b)    # (B, k)
                # Squared hinge: grad contribution only where margin < 1.
                viol = np.maximum(0.0, 1.0 - margins)     # (B, k)
                coeff = -2.0 * viol * tb / len(idx)       # (B, k)
                grad_w = coeff.T @ xb + lam * W
                grad_b = (
                    coeff.sum(axis=0) if self.fit_intercept else np.zeros_like(b)
                )
                adam.step([W, b], [grad_w, grad_b], self.lr)

        self.coef_ = W
        self.intercept_ = b

    def decision_scores(self, X) -> np.ndarray:
        """One-vs-rest margins ``X @ W.T + b``."""
        self._check_fitted()
        X = check_matrix(X, "X")
        check_features_match(self.n_features_, X.shape[1], type(self).__name__)
        return X @ self.coef_.T + self.intercept_


class RFFSVMClassifier(BaseClassifier):
    """Approximate RBF-kernel SVM via random Fourier features.

    Features are lifted with ``z(x) = sqrt(2/D) cos(Ωx + φ)`` where
    ``Ω ~ N(0, gamma·I)`` and ``φ ~ U[0, 2π)``, then classified by a
    :class:`LinearSVMClassifier` — the Rahimi–Recht kernel approximation.

    Parameters
    ----------
    n_components:
        Number of random features ``D``.
    gamma:
        RBF kernel width (std of the frequency draws).  ``None`` (default)
        resolves to ``1/√n_features`` at fit time so projections stay
        O(1)-scale for standardised inputs (the same normalisation the HDC
        RBF encoder applies).
    **svm_kwargs:
        Forwarded to the underlying :class:`LinearSVMClassifier`.
    """

    def __init__(
        self,
        *,
        n_components: int = 500,
        gamma: Optional[float] = None,
        seed: Optional[int] = None,
        **svm_kwargs,
    ) -> None:
        super().__init__()
        if n_components <= 0:
            raise ValueError(f"n_components must be positive, got {n_components}")
        if gamma is not None and gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        self.n_components = int(n_components)
        self.gamma = None if gamma is None else float(gamma)
        self.seed = seed
        self._svm_kwargs = svm_kwargs
        self.frequencies_: Optional[np.ndarray] = None
        self.phases_: Optional[np.ndarray] = None
        self.svm_: Optional[LinearSVMClassifier] = None

    def _lift(self, X: np.ndarray) -> np.ndarray:
        projections = X @ self.frequencies_.T + self.phases_
        return np.sqrt(2.0 / self.n_components) * np.cos(projections)

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = as_rng(self.seed)
        gamma = self.gamma if self.gamma is not None else 1.0 / np.sqrt(X.shape[1])
        self.frequencies_ = rng.normal(
            0.0, gamma, size=(self.n_components, X.shape[1])
        )
        self.phases_ = rng.uniform(0.0, 2.0 * np.pi, size=self.n_components)
        self.svm_ = LinearSVMClassifier(seed=spawn_seed(rng), **self._svm_kwargs)
        self.svm_.fit(self._lift(X), y)

    def decision_scores(self, X) -> np.ndarray:
        """SVM margins in the random-feature space."""
        self._check_fitted()
        X = check_matrix(X, "X")
        check_features_match(self.n_features_, X.shape[1], type(self).__name__)
        return self.svm_.decision_scores(self._lift(X))
