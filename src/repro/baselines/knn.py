"""k-nearest-neighbours baseline.

Not in the paper's comparison table, but a standard sanity baseline: if an
HDC model cannot beat brute-force kNN on a dataset analog, the analog is too
easy.  The dataset-calibration tests use it for exactly that purpose.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.estimator import BaseClassifier
from repro.utils.validation import check_features_match, check_matrix


class KNNClassifier(BaseClassifier):
    """Brute-force kNN with uniform or distance weighting.

    Parameters
    ----------
    k:
        Number of neighbours.
    weights:
        ``"uniform"`` or ``"distance"`` (inverse-distance vote weights).
    """

    def __init__(self, k: int = 5, *, weights: str = "uniform") -> None:
        super().__init__()
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if weights not in ("uniform", "distance"):
            raise ValueError(
                f"weights must be 'uniform' or 'distance', got {weights!r}"
            )
        self.k = int(k)
        self.weights = weights
        self._train_x: Optional[np.ndarray] = None
        self._train_y: Optional[np.ndarray] = None

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self._train_x = X.copy()
        self._train_y = y.copy()

    def decision_scores(self, X) -> np.ndarray:
        """Per-class neighbour vote totals (weighted when configured)."""
        self._check_fitted()
        X = check_matrix(X, "X")
        check_features_match(self.n_features_, X.shape[1], type(self).__name__)
        k = min(self.k, self._train_x.shape[0])
        n_classes = int(self._train_y.max()) + 1
        # Squared euclidean distances via the expansion trick.
        d2 = (
            np.sum(X**2, axis=1, keepdims=True)
            - 2.0 * X @ self._train_x.T
            + np.sum(self._train_x**2, axis=1)
        )
        np.maximum(d2, 0.0, out=d2)
        neighbour_idx = np.argpartition(d2, k - 1, axis=1)[:, :k]
        scores = np.zeros((X.shape[0], n_classes), dtype=np.float64)
        rows = np.arange(X.shape[0], dtype=np.int64)[:, None]
        labels = self._train_y[neighbour_idx]
        if self.weights == "uniform":
            vote = np.ones_like(labels, dtype=np.float64)
        else:
            vote = 1.0 / (np.sqrt(d2[rows, neighbour_idx]) + 1e-9)
        for j in range(k):
            np.add.at(scores, (rows[:, 0], labels[:, j]), vote[:, j])
        return scores
