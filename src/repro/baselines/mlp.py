"""NumPy multi-layer perceptron — the paper's "SOTA DNN" comparator.

A standard MLP (ReLU hidden layers, softmax cross-entropy output) trained
with Adam on mini-batches.  Written from scratch on NumPy so the repository
has no ML-framework dependency; the paper's DNN is a TensorFlow MLP tuned by
grid search, which this matches in model family.

The trained weight matrices are exposed through :meth:`parameters` /
:meth:`set_parameters` so the hardware-noise substrate (Fig. 8) can quantise
and bit-flip them exactly as the paper does ("all DNN weights are quantized
to their effective 8-bit representation").
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.estimator import BaseClassifier
from repro.utils.rng import as_rng
from repro.utils.validation import check_features_match, check_matrix


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with the max-subtraction stability trick."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def cross_entropy(probs: np.ndarray, labels: np.ndarray) -> float:
    """Mean negative log-likelihood of the true labels."""
    n = probs.shape[0]
    clipped = np.clip(probs[np.arange(n, dtype=np.int64), labels], 1e-12, 1.0)
    return float(-np.mean(np.log(clipped)))


class _AdamState:
    """Per-parameter Adam moments."""

    def __init__(self, shapes: Sequence[Tuple[int, ...]]) -> None:
        self.m = [np.zeros(s, dtype=np.float64) for s in shapes]
        self.v = [np.zeros(s, dtype=np.float64) for s in shapes]
        self.t = 0

    def step(
        self, params: List[np.ndarray], grads: List[np.ndarray], lr: float,
        beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8,
    ) -> None:
        self.t += 1
        for i, (p, g) in enumerate(zip(params, grads)):
            self.m[i] = beta1 * self.m[i] + (1 - beta1) * g
            self.v[i] = beta2 * self.v[i] + (1 - beta2) * (g * g)
            m_hat = self.m[i] / (1 - beta1**self.t)
            v_hat = self.v[i] / (1 - beta2**self.t)
            p -= lr * m_hat / (np.sqrt(v_hat) + eps)


class MLPClassifier(BaseClassifier):
    """Feed-forward neural network classifier (ReLU + softmax + Adam).

    Parameters
    ----------
    hidden_sizes:
        Widths of the hidden layers, e.g. ``(128, 64)``.
    lr:
        Adam learning rate.
    epochs:
        Training epochs.
    batch_size:
        Mini-batch size.
    weight_decay:
        L2 penalty coefficient applied to weight matrices (not biases).
    seed:
        RNG seed for initialisation and shuffling.
    """

    def __init__(
        self,
        hidden_sizes: Sequence[int] = (128,),
        *,
        lr: float = 1e-3,
        epochs: int = 30,
        batch_size: int = 64,
        weight_decay: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        sizes = tuple(int(h) for h in hidden_sizes)
        if not sizes or any(h <= 0 for h in sizes):
            raise ValueError(f"hidden_sizes must be positive ints, got {hidden_sizes}")
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.hidden_sizes = sizes
        self.lr = float(lr)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.weight_decay = float(weight_decay)
        self.seed = seed
        self.weights_: List[np.ndarray] = []
        self.biases_: List[np.ndarray] = []
        self.loss_history_: List[float] = []

    # -------------------------------------------------------------- training

    def _init_params(self, n_features: int, n_classes: int, rng) -> None:
        layer_sizes = (n_features, *self.hidden_sizes, n_classes)
        self.weights_ = []
        self.biases_ = []
        for fan_in, fan_out in zip(layer_sizes[:-1], layer_sizes[1:]):
            # He initialisation, appropriate for ReLU layers.
            std = np.sqrt(2.0 / fan_in)
            self.weights_.append(rng.normal(0.0, std, size=(fan_in, fan_out)))
            self.biases_.append(np.zeros(fan_out, dtype=np.float64))

    def _forward(self, X: np.ndarray) -> Tuple[List[np.ndarray], np.ndarray]:
        """Return pre-output activations per layer and output probabilities."""
        activations = [X]
        h = X
        for W, b in zip(self.weights_[:-1], self.biases_[:-1]):
            h = relu(h @ W + b)
            activations.append(h)
        logits = h @ self.weights_[-1] + self.biases_[-1]
        return activations, softmax(logits)

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        n_classes = int(y.max()) + 1
        rng = as_rng(self.seed)
        self._init_params(X.shape[1], n_classes, rng)
        adam = _AdamState([w.shape for w in self.weights_] + [b.shape for b in self.biases_])
        n = X.shape[0]
        self.loss_history_ = []

        for _ in range(self.epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                xb, yb = X[idx], y[idx]
                activations, probs = self._forward(xb)
                epoch_loss += cross_entropy(probs, yb)
                n_batches += 1

                # Backprop: delta at the softmax output is (p - onehot)/B.
                delta = probs.copy()
                delta[np.arange(len(yb), dtype=np.int64), yb] -= 1.0
                delta /= len(yb)

                grads_w: List[np.ndarray] = [None] * len(self.weights_)
                grads_b: List[np.ndarray] = [None] * len(self.biases_)
                for layer in range(len(self.weights_) - 1, -1, -1):
                    grads_w[layer] = activations[layer].T @ delta
                    if self.weight_decay:
                        grads_w[layer] += self.weight_decay * self.weights_[layer]
                    grads_b[layer] = delta.sum(axis=0)
                    if layer > 0:
                        delta = (delta @ self.weights_[layer].T) * (
                            activations[layer] > 0
                        )
                adam.step(
                    self.weights_ + self.biases_, grads_w + grads_b, self.lr
                )
            self.loss_history_.append(epoch_loss / max(n_batches, 1))

    # ------------------------------------------------------------- inference

    def decision_scores(self, X) -> np.ndarray:
        """Class probabilities from the softmax output layer."""
        self._check_fitted()
        X = check_matrix(X, "X")
        check_features_match(self.n_features_, X.shape[1], type(self).__name__)
        _, probs = self._forward(X)
        return probs

    # -------------------------------------------------- noise-injection hooks

    def parameters(self) -> List[np.ndarray]:
        """References to all trainable arrays (weights then biases)."""
        self._check_fitted()
        return self.weights_ + self.biases_

    def set_parameters(self, params: Sequence[np.ndarray]) -> None:
        """Replace all trainable arrays (shape-checked)."""
        self._check_fitted()
        current = self.parameters()
        if len(params) != len(current):
            raise ValueError(
                f"expected {len(current)} parameter arrays, got {len(params)}"
            )
        for cur, new in zip(current, params):
            new = np.asarray(new, dtype=np.float64)
            if new.shape != cur.shape:
                raise ValueError(
                    f"parameter shape mismatch: expected {cur.shape}, got {new.shape}"
                )
        n_w = len(self.weights_)
        self.weights_ = [np.asarray(p, dtype=np.float64).copy() for p in params[:n_w]]
        self.biases_ = [np.asarray(p, dtype=np.float64).copy() for p in params[n_w:]]
