"""Evaluation metrics used across the paper's figures."""

from repro.metrics.classification import (
    accuracy,
    confusion_matrix,
    per_class_accuracy,
    topk_accuracy,
)
from repro.metrics.roc import auc, roc_curve, roc_curve_ovr
from repro.metrics.sensitivity import (
    binary_rates,
    sensitivity_specificity,
)
from repro.metrics.timing import Timer, time_call

__all__ = [
    "accuracy",
    "confusion_matrix",
    "per_class_accuracy",
    "topk_accuracy",
    "auc",
    "roc_curve",
    "roc_curve_ovr",
    "binary_rates",
    "sensitivity_specificity",
    "Timer",
    "time_call",
]
