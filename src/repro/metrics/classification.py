"""Classification metrics: accuracy, top-k accuracy, confusion matrices."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.utils.validation import check_matrix, check_vector


def accuracy(y_true, y_pred) -> float:
    """Fraction of exact label matches."""
    y_true = check_vector(y_true, "y_true")
    y_pred = check_vector(y_pred, "y_pred")
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"y_true and y_pred disagree on length: "
            f"{y_true.shape[0]} vs {y_pred.shape[0]}"
        )
    return float(np.mean(y_true == y_pred))


def topk_accuracy(y_true, scores, k: int) -> float:
    """Top-``k`` accuracy from a ``(n, c)`` score matrix.

    Correct when the true label's column is among the ``k`` highest-scoring
    columns of its row — the paper's top-k classification definition.
    Labels must be dense column indices in ``[0, c)``.
    """
    y_true = check_vector(y_true, "y_true").astype(np.int64)
    S = check_matrix(scores, "scores")
    if S.shape[0] != y_true.shape[0]:
        raise ValueError(
            f"scores and y_true disagree on sample count: "
            f"{S.shape[0]} vs {y_true.shape[0]}"
        )
    if not 1 <= k <= S.shape[1]:
        raise ValueError(f"k must lie in [1, {S.shape[1]}], got {k}")
    if y_true.min() < 0 or y_true.max() >= S.shape[1]:
        raise ValueError(
            f"labels must index score columns [0, {S.shape[1]}), got range "
            f"[{y_true.min()}, {y_true.max()}]"
        )
    topk = np.argsort(-S, axis=1)[:, :k]
    return float(np.mean(np.any(topk == y_true[:, None], axis=1)))


def confusion_matrix(y_true, y_pred, n_classes: int = None) -> np.ndarray:
    """``(k, k)`` confusion matrix, rows = true class, columns = predicted."""
    y_true = check_vector(y_true, "y_true").astype(np.int64)
    y_pred = check_vector(y_pred, "y_pred").astype(np.int64)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"y_true and y_pred disagree on length: "
            f"{y_true.shape[0]} vs {y_pred.shape[0]}"
        )
    if n_classes is None:
        n_classes = int(max(y_true.max(), y_pred.max())) + 1
    if y_true.min() < 0 or y_pred.min() < 0:
        raise ValueError("labels must be non-negative")
    if max(y_true.max(), y_pred.max()) >= n_classes:
        raise ValueError(f"labels exceed n_classes={n_classes}")
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def per_class_accuracy(y_true, y_pred) -> Dict[int, float]:
    """Recall per class (empty classes omitted)."""
    y_true = check_vector(y_true, "y_true").astype(np.int64)
    y_pred = check_vector(y_pred, "y_pred").astype(np.int64)
    out: Dict[int, float] = {}
    for cls in np.unique(y_true):
        mask = y_true == cls
        out[int(cls)] = float(np.mean(y_pred[mask] == cls))
    return out
