"""Wall-clock timing harness (Fig. 5 efficiency comparisons)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple


class Timer:
    """Context-manager stopwatch.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed > 0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start
        self._start = None


def time_call(fn: Callable, *args, repeats: int = 1, **kwargs) -> Tuple[Any, float]:
    """Call ``fn`` and return ``(result, best_elapsed_seconds)``.

    With ``repeats > 1`` the call runs multiple times and the minimum is
    reported (standard noise-floor practice for latency measurement); the
    result comes from the final call.
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return result, best


@dataclass
class TimingRecord:
    """Named train/inference timing pair for one model on one dataset."""

    model: str
    dataset: str
    train_seconds: float
    inference_seconds: float
    extra: Dict[str, float] = field(default_factory=dict)

    def speedup_over(self, other: "TimingRecord") -> Dict[str, float]:
        """How much faster *this* record is than ``other`` (ratios > 1 = faster)."""
        return {
            "train": other.train_seconds / max(self.train_seconds, 1e-12),
            "inference": other.inference_seconds / max(self.inference_seconds, 1e-12),
        }
