"""ROC curves and AUC (paper Fig. 6).

Binary ROC from continuous scores, plus a one-vs-rest multi-class variant
(micro-averaged) for the sensitivity/specificity trade-off experiment.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.utils.validation import check_matrix, check_vector


def roc_curve(y_true, scores) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Binary ROC curve.

    Parameters
    ----------
    y_true:
        Binary labels in {0, 1}.
    scores:
        Continuous scores, larger = more positive.

    Returns
    -------
    fpr, tpr, thresholds:
        Monotone non-decreasing FPR/TPR arrays (starting at (0, 0), ending
        at (1, 1)) and the score thresholds producing each point.
    """
    y = check_vector(y_true, "y_true").astype(np.int64)
    s = check_vector(scores, "scores").astype(np.float64)
    if y.shape != s.shape:
        raise ValueError(
            f"y_true and scores disagree on length: {y.shape[0]} vs {s.shape[0]}"
        )
    if not np.all(np.isin(y, (0, 1))):
        raise ValueError("y_true must be binary {0, 1}")
    n_pos = int(np.sum(y == 1))
    n_neg = int(np.sum(y == 0))
    if n_pos == 0 or n_neg == 0:
        raise ValueError("ROC requires both positive and negative samples")

    order = np.argsort(-s, kind="stable")
    sorted_scores = s[order]
    sorted_labels = y[order]
    tp = np.cumsum(sorted_labels)
    fp = np.cumsum(1 - sorted_labels)
    # Keep only the last index of each distinct score (threshold boundaries).
    distinct = np.r_[np.flatnonzero(np.diff(sorted_scores)), s.size - 1]
    tpr = tp[distinct] / n_pos
    fpr = fp[distinct] / n_neg
    thresholds = sorted_scores[distinct]
    # Prepend the (0, 0) origin with a sentinel threshold.
    fpr = np.r_[0.0, fpr]
    tpr = np.r_[0.0, tpr]
    thresholds = np.r_[np.inf, thresholds]
    return fpr, tpr, thresholds


def auc(fpr, tpr) -> float:
    """Area under a curve via the trapezoid rule (expects sorted x)."""
    x = check_vector(fpr, "fpr").astype(np.float64)
    y = check_vector(tpr, "tpr").astype(np.float64)
    if x.shape != y.shape:
        raise ValueError(f"fpr and tpr disagree on length: {x.size} vs {y.size}")
    if x.size < 2:
        raise ValueError("need at least 2 points to integrate")
    if np.any(np.diff(x) < 0):
        raise ValueError("fpr must be sorted non-decreasing")
    trapezoid = getattr(np, "trapezoid", None) or np.trapz  # numpy 2 rename
    return float(trapezoid(y, x))


def roc_auc_score(y_true, scores) -> float:
    """Binary AUC convenience wrapper."""
    fpr, tpr, _ = roc_curve(y_true, scores)
    return auc(fpr, tpr)


def roc_curve_ovr(
    y_true, score_matrix
) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """One-vs-rest ROC curves for a multi-class score matrix.

    Returns a dict with one ``(fpr, tpr)`` entry per class (keys ``"class_i"``)
    plus a ``"micro"`` entry pooling all (sample, class) decisions — the
    aggregate curve the Fig. 6 experiment reports.
    """
    y = check_vector(y_true, "y_true").astype(np.int64)
    S = check_matrix(score_matrix, "score_matrix")
    if S.shape[0] != y.shape[0]:
        raise ValueError(
            f"score_matrix and y_true disagree on sample count: "
            f"{S.shape[0]} vs {y.shape[0]}"
        )
    n_classes = S.shape[1]
    if y.min() < 0 or y.max() >= n_classes:
        raise ValueError(
            f"labels must index score columns [0, {n_classes})"
        )
    curves: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    onehot = np.zeros_like(S, dtype=np.int64)
    onehot[np.arange(y.size), y] = 1
    for cls in range(n_classes):
        if onehot[:, cls].min() == onehot[:, cls].max():
            continue  # class absent (or universal): ROC undefined.
        fpr, tpr, _ = roc_curve(onehot[:, cls], S[:, cls])
        curves[f"class_{cls}"] = (fpr, tpr)
    fpr, tpr, _ = roc_curve(onehot.ravel(), S.ravel())
    curves["micro"] = (fpr, tpr)
    return curves
