"""Sensitivity / specificity (paper §III, "Weight Parameters").

The paper ties DistHD's α/β/θ weights to the sensitivity-specificity
trade-off; these helpers compute the binary rates and their macro-averaged
multi-class (one-vs-rest) extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.metrics.classification import confusion_matrix
from repro.utils.validation import check_vector


@dataclass(frozen=True)
class BinaryRates:
    """Binary confusion rates.

    Attributes follow the paper's definitions: ``sensitivity = 1 - FNR`` and
    ``specificity = 1 - FPR``.
    """

    tp: int
    fp: int
    tn: int
    fn: int

    @property
    def sensitivity(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def specificity(self) -> float:
        denom = self.tn + self.fp
        return self.tn / denom if denom else 0.0

    @property
    def fnr(self) -> float:
        return 1.0 - self.sensitivity

    @property
    def fpr(self) -> float:
        return 1.0 - self.specificity


def binary_rates(y_true, y_pred, positive_label: int = 1) -> BinaryRates:
    """Confusion rates treating ``positive_label`` as the positive class."""
    y_true = check_vector(y_true, "y_true").astype(np.int64)
    y_pred = check_vector(y_pred, "y_pred").astype(np.int64)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"y_true and y_pred disagree on length: "
            f"{y_true.shape[0]} vs {y_pred.shape[0]}"
        )
    pos_true = y_true == positive_label
    pos_pred = y_pred == positive_label
    return BinaryRates(
        tp=int(np.sum(pos_true & pos_pred)),
        fp=int(np.sum(~pos_true & pos_pred)),
        tn=int(np.sum(~pos_true & ~pos_pred)),
        fn=int(np.sum(pos_true & ~pos_pred)),
    )


def sensitivity_specificity(y_true, y_pred) -> Dict[str, float]:
    """Macro-averaged one-vs-rest sensitivity and specificity.

    For multi-class predictions, each class in turn is treated as positive
    and the rates averaged.
    """
    y_true = check_vector(y_true, "y_true").astype(np.int64)
    y_pred = check_vector(y_pred, "y_pred").astype(np.int64)
    n_classes = int(max(y_true.max(), y_pred.max())) + 1
    cm = confusion_matrix(y_true, y_pred, n_classes)
    total = cm.sum()
    sens, spec = [], []
    for cls in range(n_classes):
        tp = cm[cls, cls]
        fn = cm[cls].sum() - tp
        fp = cm[:, cls].sum() - tp
        tn = total - tp - fn - fp
        if tp + fn:
            sens.append(tp / (tp + fn))
        if tn + fp:
            spec.append(tn / (tn + fp))
    return {
        "sensitivity": float(np.mean(sens)) if sens else 0.0,
        "specificity": float(np.mean(spec)) if spec else 0.0,
    }
