"""Deployment utilities for resource-constrained targets.

The paper's robustness study (Fig. 8) runs DistHD with class memories stored
at 1–8-bit precision; this package makes that a first-class deployment mode:

- :class:`~repro.deploy.quantized.QuantizedHDCModel` — freeze any fitted HDC
  classifier into a fixed-point inference model (1/2/4/8-bit class memory),
  with a memory-footprint report and optional fault injection;
- :mod:`repro.deploy.streaming` — online (streaming) training wrappers for
  edge devices that see data incrementally.
"""

from repro.deploy.quantized import QuantizedHDCModel
from repro.deploy.streaming import StreamingDistHD

__all__ = ["QuantizedHDCModel", "StreamingDistHD"]
