"""Fixed-point HDC inference models.

An HDC classifier's deployable state is tiny: the encoder parameters and the
``(k, D)`` class memory.  :class:`QuantizedHDCModel` freezes a fitted
classifier into that state with the class memory quantised to a chosen
precision — the exact configuration the paper's Fig. 8 robustness study
exercises, packaged for deployment:

- 1-bit mode stores one bit per memory cell (the paper's most robust
  operating point) and scores queries against the sign pattern;
- multi-bit modes store two's-complement fixed-point codes;
- ``packed=True`` (1-bit only) stores the class memory as ``(k, ceil(D/64))``
  ``uint64`` words and scores queries *in the packed domain* — the query is
  sign-binarised and bit-packed, and similarity is XOR + popcount
  (:mod:`repro.hdc.packed`), a fully binary operating point that cuts the
  resident class memory ~64x below the float image the unpacked 1-bit
  scorer materialises;
- :meth:`inject_faults` flips memory bits in place, modelling an unreliable
  edge device over its lifetime (on packed artifacts the flips are literal
  XOR masks on the words).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.backend import default_backend
from repro.hdc.memory import AssociativeMemory, as_numpy_vectors
from repro.hdc.ops import cosine_similarity
from repro.hdc.packed import flip_packed_bits, pack_code_rows, unpack_rows
from repro.noise.bitflip import flip_bits
from repro.noise.quantization import QuantizedTensor, dequantize, quantize
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import (
    check_features_match,
    check_matrix,
    check_probability,
)


class QuantizedHDCModel:
    """A frozen, fixed-point inference copy of a fitted HDC classifier.

    Parameters
    ----------
    classifier:
        Any fitted library HDC classifier (DistHD, BaselineHD, NeuralHD,
        OnlineHD) — anything exposing ``encoder_``, ``memory_`` and
        ``classes_``.
    bits:
        Class-memory precision (1, 2, 4 or 8).
    chunk_size:
        Stream queries through encode-then-score in row chunks of this
        size, bounding inference memory on the (typically RAM-constrained)
        deployment target.  ``None`` scores the whole batch at once.
    packed:
        Store the 1-bit class memory bit-packed (64 cells per ``uint64``
        word) and run inference entirely in the packed domain: queries are
        sign-binarised, packed and scored via XOR + popcount.  Requires
        ``bits=1``.  This is a *fully binary* operating point — the query
        is binarised too, so predictions match an unpacked implementation
        of the same binary scorer bit-for-bit, but differ from the
        float-query cosine scoring of ``packed=False`` (see
        ``docs/performance.md``).
    retain_base:
        Keep a reference to ``classifier`` so :meth:`refresh` can
        re-quantize from its updated state (the online-adaptation
        promotion path).  Pass ``False`` for a self-contained edge
        artifact: the base classifier (and its full-precision class
        memory) becomes collectable once the caller drops it, and
        :meth:`refresh` is unavailable.

    Examples
    --------
    >>> from repro import DistHDClassifier, load_dataset
    >>> from repro.deploy import QuantizedHDCModel
    >>> ds = load_dataset("diabetes", scale=0.005, seed=0)
    >>> clf = DistHDClassifier(dim=64, iterations=3, seed=0)
    >>> _ = clf.fit(ds.train_x, ds.train_y)
    >>> model = QuantizedHDCModel(clf, bits=1)
    >>> model.memory_bytes < clf.memory_.vectors.nbytes
    True
    """

    def __init__(self, classifier, bits: int = 8,
                 chunk_size: Optional[int] = None, *,
                 packed: bool = False,
                 retain_base: bool = True) -> None:
        if getattr(classifier, "encoder_", None) is None or \
                getattr(classifier, "memory_", None) is None or \
                getattr(classifier, "classes_", None) is None:
            raise TypeError(
                "QuantizedHDCModel needs a fitted HDC classifier with "
                "encoder_, memory_ and classes_"
            )
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError(
                f"chunk_size must be positive or None, got {chunk_size}"
            )
        if packed and int(bits) != 1:
            raise ValueError(
                f"packed=True requires bits=1 (a packed cell is one bit), "
                f"got bits={bits}"
            )
        self.classifier = classifier if retain_base else None
        self.bits = int(bits)
        self.chunk_size = chunk_size
        self.packed = bool(packed)
        self.refresh_count = 0
        self._freeze(classifier)

    def _freeze(self, classifier) -> None:
        """Snapshot the classifier's current state into the fixed-point
        image (shared by construction and :meth:`refresh`).

        Freezes through NumPy regardless of training backend/dtype: the
        fixed-point image is backend-neutral by construction.  The
        encoder is deep-copied, not aliased: the base classifier's
        encoder keeps training (dimension regeneration rewrites its base
        vectors in place), and a served artifact scoring through a live
        encoder against a frozen class memory would return predictions
        from a torn encoder/memory combination.
        """
        import copy

        memory = classifier.memory_
        self.encoder = copy.deepcopy(classifier.encoder_)
        self.classes_ = np.asarray(classifier.classes_)
        self.n_features_ = int(self.encoder.n_features)
        self._base_itemsize = int(
            np.dtype(getattr(memory, "dtype", np.float64)).itemsize
        )
        quantized = quantize(as_numpy_vectors(memory), self.bits)
        self._n_cells = int(quantized.codes.size)
        self._dim = int(quantized.shape[-1])
        if self.packed:
            # Freeze as (k, ceil(D/64)) uint64 words — the codes are not
            # retained; the packed image *is* the class memory.
            self._quantized: Optional[QuantizedTensor] = None
            self._packed_scale = float(quantized.scale)
            self._packed_words: Optional[np.ndarray] = pack_code_rows(
                quantized.codes.reshape(quantized.shape)
            )
        else:
            self._quantized = quantized
            self._packed_scale = 0.0
            self._packed_words = None

    # ----------------------------------------------------------------- state

    def refresh(self) -> "QuantizedHDCModel":
        """Re-quantize from the base classifier's *current* state, in place.

        The promotion half of online adaptation: after ``partial_fit``
        updates the base classifier, ``refresh()`` re-freezes its class
        memory (and re-binds its encoder, which regeneration may have
        mutated) at the same precision without rebuilding the deploy
        wrapper.  Accumulated ``inject_faults`` damage is discarded — the
        refreshed image is a clean re-quantization.

        Not thread-safe against concurrent inference on *this* object:
        refresh an off-rotation artifact (see ``docs/serving.md``), or
        stop traffic first.
        """
        if self.classifier is None:
            raise RuntimeError(
                "cannot refresh: built with retain_base=False (no base "
                "classifier reference)"
            )
        if (
            getattr(self.classifier, "memory_", None) is None
            or getattr(self.classifier, "encoder_", None) is None
            or getattr(self.classifier, "classes_", None) is None
        ):
            raise RuntimeError(
                "cannot refresh: base classifier has no fitted "
                "encoder_/memory_/classes_ state"
            )
        self._freeze(self.classifier)
        self.refresh_count += 1
        return self

    @property
    def memory_bytes(self) -> int:
        """Deployed class-memory size in bytes.

        Packed mode reports the actual word storage (``k * ceil(D/64) * 8``);
        unpacked modes report the memory image packed at ``bits`` wide.
        """
        if self.packed:
            assert self._packed_words is not None
            return int(self._packed_words.nbytes)
        assert self._quantized is not None
        return (self._quantized.n_bits_total + 7) // 8

    @property
    def packed_words(self) -> Optional[np.ndarray]:
        """The ``(k, ceil(D/64))`` ``uint64`` class-memory words
        (``None`` unless ``packed=True``).  This is the live image —
        mutating it changes the served model."""
        return self._packed_words

    def _quantized_image(self) -> QuantizedTensor:
        """The memory as a :class:`QuantizedTensor` (reconstructed from the
        words in packed mode — decode/persistence paths only, never the
        inference hot path)."""
        if not self.packed:
            assert self._quantized is not None
            return self._quantized
        assert self._packed_words is not None
        k = self._packed_words.shape[0]
        codes = unpack_rows(self._packed_words, self._dim)
        return QuantizedTensor(
            codes.ravel(), 1, self._packed_scale, (k, self._dim)
        )

    @property
    def class_vectors(self) -> np.ndarray:
        """The decoded (float) class memory currently in use."""
        return dequantize(self._quantized_image())

    def inject_faults(self, error_rate: float, seed: SeedLike = None) -> int:
        """Flip ``error_rate`` of the memory bits in place.

        Models accumulated hardware error on a deployed device.  Returns the
        number of bits flipped.  On a packed artifact the flips are literal
        XOR masks applied to the ``uint64`` words (pad bits are never
        touched), with the same exactly-``round(rate * total)`` flip-count
        contract as the unpacked path.
        """
        if self.packed:
            assert self._packed_words is not None
            check_probability(error_rate, "error_rate")
            total_bits = self._packed_words.shape[0] * self._dim
            n_flips = int(round(error_rate * total_bits))
            return flip_packed_bits(
                self._packed_words, n_flips, self._dim, as_rng(seed)
            )
        assert self._quantized is not None
        flipped = flip_bits(self._quantized, error_rate, seed)
        n_flips = int(round(error_rate * self._quantized.n_bits_total))
        self._quantized = flipped
        return n_flips

    # ------------------------------------------------------------- inference

    def score_encoded(self, encoded: Any) -> np.ndarray:
        """Scores for an already-encoded query block — the scorer stage of
        :meth:`decision_scores`, exposed separately so benchmarks can time
        scoring apart from encoding (which dominates end to end).

        Unpacked modes compute cosine similarity of the (float) encoding
        against the decoded memory; packed mode sign-binarises + packs the
        encoding and scores ``(D − 2·hamming) / D`` against the word image
        via XOR + popcount.  Both return ``(n, k)`` float64.
        """
        backend = getattr(self.encoder, "backend", None)
        if self.packed:
            assert self._packed_words is not None
            b = backend if backend is not None else default_backend()
            q_words = b.packbits_rows(encoded)
            return b.hamming_scores_packed(
                q_words, self._packed_words, self._dim
            )
        if backend is not None:
            encoded = backend.to_numpy(encoded)
        return np.asarray(
            cosine_similarity(encoded, self.class_vectors), dtype=np.float64
        )

    def decision_scores(self, X) -> np.ndarray:
        """Similarity scores of encoded queries against the quantised memory.

        Cosine similarity for the unpacked modes; the packed-domain
        XOR + popcount score for ``packed=True`` (see
        :meth:`score_encoded`).  With ``chunk_size`` set, queries are
        encoded and scored in row windows, so the full ``(n, D)`` encoding
        never exists at once.
        """
        X = check_matrix(X, "X")
        check_features_match(self.n_features_, X.shape[1], "QuantizedHDCModel")

        def score(block: np.ndarray) -> np.ndarray:
            return self.score_encoded(self.encoder.encode(block))

        chunk = self.chunk_size
        n = X.shape[0]
        if chunk is None or n <= chunk:
            return score(X)
        out = np.empty((n, self.classes_.size), dtype=np.float64)
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            out[start:stop] = score(X[start:stop])
        return out

    def predict(self, X) -> np.ndarray:
        """Most-similar class label per query."""
        return self.classes_[np.argmax(self.decision_scores(X), axis=1)]

    def score(self, X, y) -> float:
        """Top-1 accuracy."""
        y = np.asarray(y).ravel()
        return float(np.mean(self.predict(X) == y))

    def footprint_report(self) -> Dict[str, Any]:
        """Deployment footprint summary (class memory + encoder).

        Always reflects the *current* quantized image and encoder — after
        :meth:`refresh` the float reference size uses the base memory's
        actual storage dtype (a float32-trained model compresses 4x at
        8 bits, not the 8x a hard-coded float64 reference used to claim)
        and the encoder parameters are re-counted against the re-bound,
        possibly regenerated encoder.

        Packed artifacts gain the packed rows: the word storage in bytes,
        words per class, and the compression both against the float base
        memory and against the unpacked 1-bit path.  The unpacked-1-bit
        reference is the float64 image that path decodes its ``uint8``
        codes into on every ``decision_scores`` call — the resident memory
        the packed scorer actually eliminates (64 bits per cell vs 1; the
        code array itself is reported separately).
        """
        encoder_floats = 0
        for attr in (
            "base_vectors", "phases", "id_vectors", "level_vectors",
            "signs", "scales",
        ):
            value = getattr(self.encoder, attr, None)
            if value is not None:
                encoder_floats += int(np.asarray(value).size)
        float_bytes = self._n_cells * self._base_itemsize
        report: Dict[str, Any] = {
            "bits": self.bits,
            "packed": self.packed,
            "memory_bytes": self.memory_bytes,
            "float_memory_bytes": float_bytes,
            "compression": float_bytes / max(self.memory_bytes, 1),
            "encoder_parameters": encoder_floats,
            "refresh_count": self.refresh_count,
        }
        if self.packed:
            assert self._packed_words is not None
            packed_bytes = int(self._packed_words.nbytes)
            # The unpacked 1-bit path stores uint8 codes and scores against
            # the float64 image it decodes them into; the decode image is
            # the resident memory the packed scorer eliminates (64 bits per
            # cell vs 1), so the headline compression is measured there.
            unpacked_codes_bytes = self._n_cells
            unpacked_serving_bytes = (
                self._n_cells * np.dtype(np.float64).itemsize
            )
            report.update(
                {
                    "packed_bytes": packed_bytes,
                    "words_per_class": int(self._packed_words.shape[1]),
                    "unpacked_1bit_bytes": unpacked_codes_bytes,
                    "unpacked_1bit_serving_bytes": unpacked_serving_bytes,
                    "compression_vs_unpacked": (
                        unpacked_serving_bytes / max(packed_bytes, 1)
                    ),
                }
            )
        return report

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        packed = ", packed=True" if self.packed else ""
        return (
            f"QuantizedHDCModel(bits={self.bits}{packed}, "
            f"memory_bytes={self.memory_bytes})"
        )


class QuantizedTrainer:
    """Train an HDC classifier, then serve it from fixed-point memory.

    The trainable counterpart of :class:`QuantizedHDCModel`, so quantised
    deployment is constructible through the model registry like any other
    learner: ``fit`` trains the wrapped (float) classifier and immediately
    freezes it; all inference then runs against the quantised memory image.

    Parameters
    ----------
    classifier:
        A fresh, unfitted HDC classifier (anything exposing ``encoder_`` /
        ``memory_`` / ``classes_`` after fitting).
    bits:
        Class-memory precision (1, 2, 4 or 8).
    packed:
        Freeze bit-packed and score in the packed domain (requires
        ``bits=1``; see :class:`QuantizedHDCModel`).
    """

    def __init__(self, classifier, bits: int = 8,
                 chunk_size: Optional[int] = None, *,
                 packed: bool = False) -> None:
        if bits not in (1, 2, 4, 8):
            raise ValueError(f"bits must be 1, 2, 4 or 8, got {bits}")
        if packed and int(bits) != 1:
            raise ValueError(
                f"packed=True requires bits=1, got bits={bits}"
            )
        self.classifier = classifier
        self.bits = int(bits)
        self.chunk_size = chunk_size
        self.packed = bool(packed)
        self.deployed_: Optional[QuantizedHDCModel] = None

    # -------------------------------------------------------------- training

    def fit(self, X, y) -> "QuantizedTrainer":
        """Fit the wrapped classifier, then freeze it at ``bits`` precision."""
        self.classifier.fit(X, y)
        self.deployed_ = QuantizedHDCModel(
            self.classifier, bits=self.bits, chunk_size=self.chunk_size,
            packed=self.packed,
        )
        return self

    def partial_fit(self, X, y, classes=None) -> "QuantizedTrainer":
        """Incrementally train the wrapped classifier, then re-freeze.

        Each call delegates to the classifier's ``partial_fit`` and
        refreshes the fixed-point image (building it on the first call),
        so the served state always reflects the latest mini-batch.
        """
        self.classifier.partial_fit(X, y, classes=classes)
        if self.deployed_ is None:
            self.deployed_ = QuantizedHDCModel(
                self.classifier, bits=self.bits, chunk_size=self.chunk_size,
                packed=self.packed,
            )
        else:
            self.deployed_.refresh()
        return self

    def refresh(self) -> "QuantizedTrainer":
        """Re-quantize the frozen image from the wrapped classifier."""
        self._check_fitted()
        self.deployed_.refresh()
        return self

    # ------------------------------------------------------------- inference

    def _check_fitted(self) -> None:
        if self.deployed_ is None:
            raise RuntimeError(
                "QuantizedTrainer is not fitted; call fit(X, y) first"
            )

    def decision_scores(self, X) -> np.ndarray:
        """Cosine similarities against the quantised class memory."""
        self._check_fitted()
        return self.deployed_.decision_scores(X)

    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        return self.deployed_.predict(X)

    def score(self, X, y) -> float:
        self._check_fitted()
        return self.deployed_.score(X, y)

    def footprint_report(self) -> dict:
        """Deployment footprint of the frozen model."""
        self._check_fitted()
        return self.deployed_.footprint_report()

    # --------------------------------------------- persistence-facing state

    @property
    def classes_(self):
        return getattr(self.classifier, "classes_", None)

    @property
    def n_features_(self):
        return getattr(self.classifier, "n_features_", None)

    @property
    def encoder_(self):
        return getattr(self.classifier, "encoder_", None)

    @property
    def memory_(self):
        """The quantised memory, decoded to float (what inference uses)."""
        if self.deployed_ is None:
            return None
        vectors = self.deployed_.class_vectors
        memory = AssociativeMemory(vectors.shape[0], vectors.shape[1])
        memory.set_vectors(vectors)
        return memory

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "fitted" if self.deployed_ is not None else "unfitted"
        packed = ", packed=True" if self.packed else ""
        return (
            f"QuantizedTrainer({type(self.classifier).__name__}, "
            f"bits={self.bits}{packed}, {state})"
        )
