"""Fixed-point HDC inference models.

An HDC classifier's deployable state is tiny: the encoder parameters and the
``(k, D)`` class memory.  :class:`QuantizedHDCModel` freezes a fitted
classifier into that state with the class memory quantised to a chosen
precision — the exact configuration the paper's Fig. 8 robustness study
exercises, packaged for deployment:

- 1-bit mode stores one bit per memory cell (the paper's most robust
  operating point) and scores queries against the sign pattern;
- multi-bit modes store two's-complement fixed-point codes;
- :meth:`inject_faults` flips memory bits in place, modelling an unreliable
  edge device over its lifetime.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.hdc.memory import AssociativeMemory, as_numpy_vectors
from repro.hdc.ops import cosine_similarity
from repro.noise.bitflip import flip_bits
from repro.noise.quantization import QuantizedTensor, dequantize, quantize
from repro.utils.rng import SeedLike
from repro.utils.validation import check_features_match, check_matrix


class QuantizedHDCModel:
    """A frozen, fixed-point inference copy of a fitted HDC classifier.

    Parameters
    ----------
    classifier:
        Any fitted library HDC classifier (DistHD, BaselineHD, NeuralHD,
        OnlineHD) — anything exposing ``encoder_``, ``memory_`` and
        ``classes_``.
    bits:
        Class-memory precision (1, 2, 4 or 8).
    chunk_size:
        Stream queries through encode-then-score in row chunks of this
        size, bounding inference memory on the (typically RAM-constrained)
        deployment target.  ``None`` scores the whole batch at once.
    retain_base:
        Keep a reference to ``classifier`` so :meth:`refresh` can
        re-quantize from its updated state (the online-adaptation
        promotion path).  Pass ``False`` for a self-contained edge
        artifact: the base classifier (and its full-precision class
        memory) becomes collectable once the caller drops it, and
        :meth:`refresh` is unavailable.

    Examples
    --------
    >>> from repro import DistHDClassifier, load_dataset
    >>> from repro.deploy import QuantizedHDCModel
    >>> ds = load_dataset("diabetes", scale=0.005, seed=0)
    >>> clf = DistHDClassifier(dim=64, iterations=3, seed=0)
    >>> _ = clf.fit(ds.train_x, ds.train_y)
    >>> model = QuantizedHDCModel(clf, bits=1)
    >>> model.memory_bytes < clf.memory_.vectors.nbytes
    True
    """

    def __init__(self, classifier, bits: int = 8,
                 chunk_size: Optional[int] = None, *,
                 retain_base: bool = True) -> None:
        if getattr(classifier, "encoder_", None) is None or \
                getattr(classifier, "memory_", None) is None or \
                getattr(classifier, "classes_", None) is None:
            raise TypeError(
                "QuantizedHDCModel needs a fitted HDC classifier with "
                "encoder_, memory_ and classes_"
            )
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError(
                f"chunk_size must be positive or None, got {chunk_size}"
            )
        self.classifier = classifier if retain_base else None
        self.bits = int(bits)
        self.chunk_size = chunk_size
        self.refresh_count = 0
        self._freeze(classifier)

    def _freeze(self, classifier) -> None:
        """Snapshot the classifier's current state into the fixed-point
        image (shared by construction and :meth:`refresh`).

        Freezes through NumPy regardless of training backend/dtype: the
        fixed-point image is backend-neutral by construction.  The
        encoder is deep-copied, not aliased: the base classifier's
        encoder keeps training (dimension regeneration rewrites its base
        vectors in place), and a served artifact scoring through a live
        encoder against a frozen class memory would return predictions
        from a torn encoder/memory combination.
        """
        import copy

        memory = classifier.memory_
        self.encoder = copy.deepcopy(classifier.encoder_)
        self.classes_ = np.asarray(classifier.classes_)
        self.n_features_ = int(self.encoder.n_features)
        self._base_itemsize = int(
            np.dtype(getattr(memory, "dtype", np.float64)).itemsize
        )
        self._quantized: QuantizedTensor = quantize(
            as_numpy_vectors(memory), self.bits
        )

    # ----------------------------------------------------------------- state

    def refresh(self) -> "QuantizedHDCModel":
        """Re-quantize from the base classifier's *current* state, in place.

        The promotion half of online adaptation: after ``partial_fit``
        updates the base classifier, ``refresh()`` re-freezes its class
        memory (and re-binds its encoder, which regeneration may have
        mutated) at the same precision without rebuilding the deploy
        wrapper.  Accumulated ``inject_faults`` damage is discarded — the
        refreshed image is a clean re-quantization.

        Not thread-safe against concurrent inference on *this* object:
        refresh an off-rotation artifact (see ``docs/serving.md``), or
        stop traffic first.
        """
        if self.classifier is None:
            raise RuntimeError(
                "cannot refresh: built with retain_base=False (no base "
                "classifier reference)"
            )
        if (
            getattr(self.classifier, "memory_", None) is None
            or getattr(self.classifier, "encoder_", None) is None
            or getattr(self.classifier, "classes_", None) is None
        ):
            raise RuntimeError(
                "cannot refresh: base classifier has no fitted "
                "encoder_/memory_/classes_ state"
            )
        self._freeze(self.classifier)
        self.refresh_count += 1
        return self

    @property
    def memory_bytes(self) -> int:
        """Deployed class-memory size in bytes (packed at ``bits`` wide)."""
        return (self._quantized.n_bits_total + 7) // 8

    @property
    def class_vectors(self) -> np.ndarray:
        """The decoded (float) class memory currently in use."""
        return dequantize(self._quantized)

    def inject_faults(self, error_rate: float, seed: SeedLike = None) -> int:
        """Flip ``error_rate`` of the memory bits in place.

        Models accumulated hardware error on a deployed device.  Returns the
        number of bits flipped.
        """
        flipped = flip_bits(self._quantized, error_rate, seed)
        n_flips = int(round(error_rate * self._quantized.n_bits_total))
        self._quantized = flipped
        return n_flips

    # ------------------------------------------------------------- inference

    def decision_scores(self, X) -> np.ndarray:
        """Cosine similarities of encoded queries against the quantised memory.

        With ``chunk_size`` set, queries are encoded and scored in row
        windows against the decoded memory, so the full ``(n, D)`` encoding
        never exists at once.
        """
        X = check_matrix(X, "X")
        check_features_match(self.n_features_, X.shape[1], "QuantizedHDCModel")
        backend = getattr(self.encoder, "backend", None)
        vectors = self.class_vectors

        def score(block: np.ndarray) -> np.ndarray:
            encoded = self.encoder.encode(block)
            if backend is not None:
                encoded = backend.to_numpy(encoded)
            return np.asarray(
                cosine_similarity(encoded, vectors), dtype=np.float64
            )

        chunk = self.chunk_size
        n = X.shape[0]
        if chunk is None or n <= chunk:
            return score(X)
        out = np.empty((n, vectors.shape[0]), dtype=np.float64)
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            out[start:stop] = score(X[start:stop])
        return out

    def predict(self, X) -> np.ndarray:
        """Most-similar class label per query."""
        return self.classes_[np.argmax(self.decision_scores(X), axis=1)]

    def score(self, X, y) -> float:
        """Top-1 accuracy."""
        y = np.asarray(y).ravel()
        return float(np.mean(self.predict(X) == y))

    def footprint_report(self) -> dict:
        """Deployment footprint summary (class memory + encoder).

        Always reflects the *current* quantized image and encoder — after
        :meth:`refresh` the float reference size uses the base memory's
        actual storage dtype (a float32-trained model compresses 4x at
        8 bits, not the 8x a hard-coded float64 reference used to claim)
        and the encoder parameters are re-counted against the re-bound,
        possibly regenerated encoder.
        """
        encoder_floats = 0
        for attr in ("base_vectors", "phases", "id_vectors", "level_vectors"):
            value = getattr(self.encoder, attr, None)
            if value is not None:
                encoder_floats += int(np.asarray(value).size)
        float_bytes = self._quantized.codes.size * self._base_itemsize
        return {
            "bits": self.bits,
            "memory_bytes": self.memory_bytes,
            "float_memory_bytes": float_bytes,
            "compression": float_bytes / max(self.memory_bytes, 1),
            "encoder_parameters": encoder_floats,
            "refresh_count": self.refresh_count,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuantizedHDCModel(bits={self.bits}, "
            f"memory_bytes={self.memory_bytes})"
        )


class QuantizedTrainer:
    """Train an HDC classifier, then serve it from fixed-point memory.

    The trainable counterpart of :class:`QuantizedHDCModel`, so quantised
    deployment is constructible through the model registry like any other
    learner: ``fit`` trains the wrapped (float) classifier and immediately
    freezes it; all inference then runs against the quantised memory image.

    Parameters
    ----------
    classifier:
        A fresh, unfitted HDC classifier (anything exposing ``encoder_`` /
        ``memory_`` / ``classes_`` after fitting).
    bits:
        Class-memory precision (1, 2, 4 or 8).
    """

    def __init__(self, classifier, bits: int = 8,
                 chunk_size: Optional[int] = None) -> None:
        if bits not in (1, 2, 4, 8):
            raise ValueError(f"bits must be 1, 2, 4 or 8, got {bits}")
        self.classifier = classifier
        self.bits = int(bits)
        self.chunk_size = chunk_size
        self.deployed_: Optional[QuantizedHDCModel] = None

    # -------------------------------------------------------------- training

    def fit(self, X, y) -> "QuantizedTrainer":
        """Fit the wrapped classifier, then freeze it at ``bits`` precision."""
        self.classifier.fit(X, y)
        self.deployed_ = QuantizedHDCModel(
            self.classifier, bits=self.bits, chunk_size=self.chunk_size
        )
        return self

    def partial_fit(self, X, y, classes=None) -> "QuantizedTrainer":
        """Incrementally train the wrapped classifier, then re-freeze.

        Each call delegates to the classifier's ``partial_fit`` and
        refreshes the fixed-point image (building it on the first call),
        so the served state always reflects the latest mini-batch.
        """
        self.classifier.partial_fit(X, y, classes=classes)
        if self.deployed_ is None:
            self.deployed_ = QuantizedHDCModel(
                self.classifier, bits=self.bits, chunk_size=self.chunk_size
            )
        else:
            self.deployed_.refresh()
        return self

    def refresh(self) -> "QuantizedTrainer":
        """Re-quantize the frozen image from the wrapped classifier."""
        self._check_fitted()
        self.deployed_.refresh()
        return self

    # ------------------------------------------------------------- inference

    def _check_fitted(self) -> None:
        if self.deployed_ is None:
            raise RuntimeError(
                "QuantizedTrainer is not fitted; call fit(X, y) first"
            )

    def decision_scores(self, X) -> np.ndarray:
        """Cosine similarities against the quantised class memory."""
        self._check_fitted()
        return self.deployed_.decision_scores(X)

    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        return self.deployed_.predict(X)

    def score(self, X, y) -> float:
        self._check_fitted()
        return self.deployed_.score(X, y)

    def footprint_report(self) -> dict:
        """Deployment footprint of the frozen model."""
        self._check_fitted()
        return self.deployed_.footprint_report()

    # --------------------------------------------- persistence-facing state

    @property
    def classes_(self):
        return getattr(self.classifier, "classes_", None)

    @property
    def n_features_(self):
        return getattr(self.classifier, "n_features_", None)

    @property
    def encoder_(self):
        return getattr(self.classifier, "encoder_", None)

    @property
    def memory_(self):
        """The quantised memory, decoded to float (what inference uses)."""
        if self.deployed_ is None:
            return None
        vectors = self.deployed_.class_vectors
        memory = AssociativeMemory(vectors.shape[0], vectors.shape[1])
        memory.set_vectors(vectors)
        return memory

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "fitted" if self.deployed_ is not None else "unfitted"
        return (
            f"QuantizedTrainer({type(self.classifier).__name__}, "
            f"bits={self.bits}, {state})"
        )
