"""Streaming (online) DistHD training — deprecated adapter.

Incremental training is now part of the estimator protocol itself:
:class:`~repro.core.disthd.DistHDClassifier` (and every other model with
``supports_streaming = True``) exposes ``partial_fit`` directly::

    from repro import make_model

    clf = make_model("disthd-stream", dim=256, seed=0)
    for batch_x, batch_y in stream:
        clf.partial_fit(batch_x, batch_y, classes=range(n_classes))

:class:`StreamingDistHD` remains as a thin adapter over that protocol so
existing code keeps working; new code should call ``partial_fit`` on the
classifier itself.
"""

from __future__ import annotations

import warnings
from typing import Optional

import numpy as np

from repro.core.config import DistHDConfig
from repro.core.disthd import DistHDClassifier

#: Deprecation is announced once per process, not once per construction —
#: streaming deployments build many short-lived adapters and a warning per
#: instance floods their logs.  Reset by tests via ``_reset_deprecation_warning``.
_deprecation_warned = False


def _warn_deprecated_once() -> None:
    global _deprecation_warned
    if _deprecation_warned:
        return
    _deprecation_warned = True
    warnings.warn(
        "StreamingDistHD is deprecated; use "
        "DistHDClassifier.partial_fit (or make_model('disthd-stream')) "
        "instead",
        DeprecationWarning,
        stacklevel=3,
    )


def _reset_deprecation_warning() -> None:
    """Re-arm the once-per-process deprecation warning (test hook)."""
    global _deprecation_warned
    _deprecation_warned = False


class StreamingDistHD:
    """DistHD trained one mini-batch at a time (deprecated adapter).

    .. deprecated::
        Use :meth:`DistHDClassifier.partial_fit` (or
        ``make_model("disthd-stream")``) instead.  This class now delegates
        every call to an internal :class:`DistHDClassifier`.

    Parameters
    ----------
    n_features:
        Input feature count (fixed up front — streaming models cannot infer
        it from a full dataset).
    n_classes:
        Number of classes (labels must lie in ``[0, n_classes)``).
    config:
        DistHD hyper-parameters; ``batch_size`` and ``iterations`` are
        ignored (the stream dictates both).
    reservoir_size:
        Number of recent samples kept for regeneration scoring.
    regen_every:
        Run a regeneration step after this many ``partial_fit`` calls.
    """

    def __init__(
        self,
        n_features: int,
        n_classes: int,
        config: Optional[DistHDConfig] = None,
        *,
        reservoir_size: int = 512,
        regen_every: int = 10,
    ) -> None:
        _warn_deprecated_once()
        if n_features <= 0:
            raise ValueError(f"n_features must be positive, got {n_features}")
        if n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {n_classes}")
        base = config if config is not None else DistHDConfig()
        self.config = base.with_overrides(
            reservoir_size=reservoir_size, regen_every=regen_every
        )
        self._clf = DistHDClassifier(self.config)
        # Streaming fixes the signature up front: bind the class set and
        # feature count, then build encoder/memory so inference works even
        # before the first batch (historical behaviour of this class).
        self._clf.classes_ = np.arange(n_classes, dtype=np.int64)
        self._clf.n_features_ = int(n_features)
        self._clf._ensure_stream_state()

    # -------------------------------------------------------------- training

    def partial_fit(self, X, y) -> "StreamingDistHD":
        """Consume one mini-batch: encode, adapt, maybe regenerate."""
        self._clf.partial_fit(X, y)
        return self

    # ------------------------------------------------------------- inference

    def decision_scores(self, X) -> np.ndarray:
        """Cosine similarities of queries against the current class memory."""
        return self._clf.decision_scores(X)

    def predict(self, X) -> np.ndarray:
        """Most-similar class per query."""
        return self._clf.predict(X)

    def score(self, X, y) -> float:
        """Top-1 accuracy."""
        return self._clf.score(X, y)

    # ------------------------------------------------------------ delegation

    @property
    def classifier_(self) -> DistHDClassifier:
        """The underlying incremental :class:`DistHDClassifier`."""
        return self._clf

    def _retune(self, **overrides) -> None:
        # Both knobs were plain writable attributes before this class became
        # an adapter; keep mid-stream tuning working by re-deriving the
        # shared config.
        self.config = self.config.with_overrides(**overrides)
        self._clf.config = self.config

    @property
    def reservoir_size(self) -> int:
        return self.config.reservoir_size

    @reservoir_size.setter
    def reservoir_size(self, value: int) -> None:
        self._retune(reservoir_size=int(value))

    @property
    def regen_every(self) -> int:
        return self.config.regen_every

    @regen_every.setter
    def regen_every(self, value: int) -> None:
        self._retune(regen_every=int(value))

    @property
    def encoder_(self):
        return self._clf.encoder_

    @property
    def memory_(self):
        return self._clf.memory_

    @property
    def n_features_(self) -> int:
        return self._clf.n_features_

    @property
    def n_classes_(self) -> int:
        return int(self._clf.classes_.size)

    @property
    def classes_(self) -> np.ndarray:
        """Dense class labels (streaming models fix the class set up front)."""
        return self._clf.classes_

    @property
    def n_batches_(self) -> int:
        return self._clf.n_batches_

    @property
    def n_samples_seen_(self) -> int:
        return self._clf.n_samples_seen_

    @property
    def total_regenerated_(self) -> int:
        return self._clf.total_regenerated_

    @property
    def effective_dim_(self) -> int:
        """Physical D plus all dimensions regenerated so far."""
        return self._clf.encoder_.effective_dim()

    @property
    def _reservoir_x(self) -> np.ndarray:
        return self._clf._reservoir_x

    @property
    def _reservoir_y(self) -> np.ndarray:
        return self._clf._reservoir_y
