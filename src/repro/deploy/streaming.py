"""Streaming (online) DistHD training.

Edge devices rarely see their training data all at once.  This wrapper runs
DistHD's machinery incrementally: each call to :meth:`partial_fit` encodes
one mini-batch, applies the Algorithm-1 adaptive update, and every
``regen_every`` batches performs a regeneration step over a sliding
reservoir of recent samples (Algorithm 2 needs a population of
partially-correct / incorrect samples to score dimensions — single batches
are too noisy).

This is an extension beyond the paper (its evaluation is batch training),
but a direct composition of its two algorithms; the reservoir plays the
role of the "batch data" in the paper's Fig. 3 workflow.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.adaptive import adaptive_fit_iteration
from repro.core.config import DistHDConfig
from repro.core.regeneration import regenerate_step
from repro.core.topk import partition_outcomes
from repro.hdc.encoders.rbf import RBFEncoder
from repro.hdc.memory import AssociativeMemory
from repro.utils.rng import as_rng, spawn_seed
from repro.utils.validation import check_features_match, check_labels, check_paired


class StreamingDistHD:
    """DistHD trained one mini-batch at a time.

    Parameters
    ----------
    n_features:
        Input feature count (fixed up front — streaming models cannot infer
        it from a full dataset).
    n_classes:
        Number of classes (labels must lie in ``[0, n_classes)``).
    config:
        DistHD hyper-parameters; ``batch_size`` and ``iterations`` are
        ignored (the stream dictates both).
    reservoir_size:
        Number of recent samples kept for regeneration scoring.
    regen_every:
        Run a regeneration step after this many ``partial_fit`` calls.
    """

    def __init__(
        self,
        n_features: int,
        n_classes: int,
        config: Optional[DistHDConfig] = None,
        *,
        reservoir_size: int = 512,
        regen_every: int = 10,
    ) -> None:
        if n_features <= 0:
            raise ValueError(f"n_features must be positive, got {n_features}")
        if n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {n_classes}")
        if reservoir_size <= 0:
            raise ValueError(f"reservoir_size must be positive, got {reservoir_size}")
        if regen_every <= 0:
            raise ValueError(f"regen_every must be positive, got {regen_every}")
        self.config = config if config is not None else DistHDConfig()
        self.n_features_ = int(n_features)
        self.n_classes_ = int(n_classes)
        self.reservoir_size = int(reservoir_size)
        self.regen_every = int(regen_every)

        rng = as_rng(self.config.seed)
        self.encoder_ = RBFEncoder(
            self.n_features_, self.config.dim,
            bandwidth=self.config.bandwidth, seed=spawn_seed(rng),
        )
        self.memory_ = AssociativeMemory(self.n_classes_, self.config.dim)
        self._reservoir_rng = as_rng(spawn_seed(rng))
        self._reservoir_x = np.empty((0, self.n_features_))
        self._reservoir_y = np.empty(0, dtype=np.int64)
        self.n_batches_ = 0
        self.n_samples_seen_ = 0
        self.total_regenerated_ = 0

    # -------------------------------------------------------------- training

    def partial_fit(self, X, y) -> "StreamingDistHD":
        """Consume one mini-batch: encode, adapt, maybe regenerate."""
        X, y = check_paired(X, y)
        check_features_match(self.n_features_, X.shape[1], "StreamingDistHD")
        labels, _ = check_labels(y, self.n_classes_)

        encoded = self.encoder_.encode(X)
        if self.config.single_pass_init and self.n_batches_ == 0:
            self.memory_.accumulate(encoded, labels)
        adaptive_fit_iteration(
            self.memory_, encoded, labels, lr=self.config.lr
        )
        self._update_reservoir(X, labels)
        self.n_batches_ += 1
        self.n_samples_seen_ += X.shape[0]

        if (
            self.config.regen_rate > 0
            and self.n_batches_ % self.regen_every == 0
            and self._reservoir_x.shape[0] >= self.n_classes_ * 2
        ):
            self._regenerate_from_reservoir()
        return self

    def _update_reservoir(self, X: np.ndarray, labels: np.ndarray) -> None:
        """Uniform reservoir sampling over the stream."""
        self._reservoir_x = np.vstack([self._reservoir_x, X])
        self._reservoir_y = np.concatenate([self._reservoir_y, labels])
        excess = self._reservoir_x.shape[0] - self.reservoir_size
        if excess > 0:
            keep = self._reservoir_rng.choice(
                self._reservoir_x.shape[0], size=self.reservoir_size,
                replace=False,
            )
            keep.sort()
            self._reservoir_x = self._reservoir_x[keep]
            self._reservoir_y = self._reservoir_y[keep]

    def _regenerate_from_reservoir(self) -> None:
        encoded = self.encoder_.encode(self._reservoir_x)
        partition = partition_outcomes(self.memory_, encoded, self._reservoir_y)
        report = regenerate_step(
            encoded, self._reservoir_y, partition, self.memory_,
            self.encoder_, self.config,
        )
        if report.n_regenerated and self.config.rebundle_on_regen:
            fresh = self.encoder_.encode_dims(self._reservoir_x, report.dims)
            np.add.at(
                self.memory_.vectors,
                (self._reservoir_y[:, None], report.dims[None, :]),
                fresh,
            )
        self.total_regenerated_ += report.n_regenerated

    # ------------------------------------------------------------- inference

    def decision_scores(self, X) -> np.ndarray:
        """Cosine similarities of queries against the current class memory."""
        X = np.asarray(X, dtype=np.float64)
        check_features_match(self.n_features_, X.shape[1], "StreamingDistHD")
        return self.memory_.similarities(self.encoder_.encode(X))

    def predict(self, X) -> np.ndarray:
        """Most-similar class per query."""
        return np.argmax(self.decision_scores(X), axis=1)

    def score(self, X, y) -> float:
        """Top-1 accuracy."""
        y = np.asarray(y).ravel()
        return float(np.mean(self.predict(X) == y))

    @property
    def effective_dim_(self) -> int:
        """Physical D plus all dimensions regenerated so far."""
        return self.encoder_.effective_dim()

    @property
    def classes_(self) -> np.ndarray:
        """Dense class labels (streaming models fix the class set up front)."""
        return np.arange(self.n_classes_)
