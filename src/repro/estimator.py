"""Shared estimator protocol.

All classifiers in the library (DistHD, HDC baselines, MLP, SVMs, kNN) follow
a small sklearn-style protocol defined here: ``fit`` / ``predict`` /
``score``, plus ``decision_scores`` for models that expose per-class scores
and ``predict_topk`` for similarity-ranked models.

Incremental (streaming) learning is part of the same protocol: models that
can train one mini-batch at a time set :attr:`~BaseClassifier.supports_streaming`
and implement :meth:`~BaseClassifier._partial_fit`; users call
:meth:`~BaseClassifier.partial_fit` with an optional ``classes=`` argument on
the first batch.  Label validation, dense remapping and feature-count checks
are shared with the batch path, so streamed and batch training see identical
inputs.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.utils.validation import (
    check_features_match,
    check_labels,
    check_paired,
)


class BaseClassifier(abc.ABC):
    """Abstract base for every classifier in the library.

    Subclasses implement :meth:`_fit` and :meth:`decision_scores`; labels are
    validated and remapped to a contiguous ``[0, k)`` range here so models
    can assume dense integer classes internally while users may pass any
    integer labels.

    Streaming-capable subclasses additionally set
    ``supports_streaming = True`` and implement :meth:`_partial_fit`.
    """

    #: Whether this model implements :meth:`_partial_fit` (incremental
    #: mini-batch training).  Checked by :meth:`partial_fit` and by the
    #: model registry's capability tags.
    supports_streaming: bool = False

    def __init__(self) -> None:
        self.classes_: Optional[np.ndarray] = None
        self.n_features_: Optional[int] = None
        # Incremental-training bookkeeping (maintained by partial_fit).
        self.n_batches_: int = 0
        self.n_samples_seen_: int = 0

    # ------------------------------------------------------------------- api

    def fit(self, X, y) -> "BaseClassifier":
        """Fit on features ``X`` (n, q) and integer labels ``y`` (n,)."""
        X, y = check_paired(X, y)
        labels, classes = check_labels(y)
        if classes.size < 2:
            raise ValueError(
                f"need at least 2 classes to fit a classifier, got {classes.size}"
            )
        self.classes_ = classes
        self.n_features_ = X.shape[1]
        self.n_batches_ = 0
        self.n_samples_seen_ = 0
        dense = np.searchsorted(classes, labels)
        self._fit(X, dense)
        return self

    def partial_fit(self, X, y, classes=None) -> "BaseClassifier":
        """Incrementally train on one mini-batch ``(X, y)``.

        The first call fixes the model's class set and feature count:
        pass ``classes`` (every label the stream will ever produce) up
        front, or the unique labels of the first batch are used.  Later
        batches may contain any subset of the fixed classes; labels outside
        it are rejected.

        Only models with ``supports_streaming = True`` implement this;
        others raise ``NotImplementedError``.
        """
        if not self.supports_streaming:
            raise NotImplementedError(
                f"{type(self).__name__} does not support incremental "
                "training (supports_streaming is False)"
            )
        X, y = check_paired(X, y)
        labels, observed = check_labels(y)
        if self.classes_ is None:
            if classes is not None:
                class_set, _ = check_labels(classes, name="classes")
                class_set = np.unique(class_set)
                missing = np.setdiff1d(observed, class_set)
                if missing.size:
                    raise ValueError(
                        f"y contains labels {missing.tolist()} not in the "
                        f"declared classes {class_set.tolist()}"
                    )
            else:
                class_set = observed
            if class_set.size < 2:
                raise ValueError(
                    "need at least 2 classes for incremental training; "
                    "pass classes= on the first partial_fit call if the "
                    f"first batch is single-class (got {class_set.size})"
                )
            self.classes_ = class_set
            self.n_features_ = X.shape[1]
        else:
            check_features_match(
                self.n_features_, X.shape[1], type(self).__name__
            )
        dense = np.searchsorted(self.classes_, labels)
        clipped = np.minimum(dense, self.classes_.size - 1)
        if np.any(self.classes_[clipped] != labels):
            bad = np.unique(labels[self.classes_[clipped] != labels])
            raise ValueError(
                f"y labels must lie in the fitted class set "
                f"{self.classes_.tolist()}, got {bad.tolist()}"
            )
        # Counters are advanced before the hook so implementations see the
        # 1-based number of the batch they are consuming.
        self.n_batches_ += 1
        self.n_samples_seen_ += X.shape[0]
        self._partial_fit(X, clipped)
        return self

    def predict(self, X) -> np.ndarray:
        """Predicted class labels for ``X`` (mapped back to original labels)."""
        scores = self.decision_scores(X)
        return self.classes_[np.argmax(scores, axis=1)]

    def predict_topk(self, X, k: int = 2) -> np.ndarray:
        """Top-``k`` predicted labels per sample, most likely first."""
        self._check_fitted()
        if not 1 <= k <= self.classes_.size:
            raise ValueError(f"k must lie in [1, {self.classes_.size}], got {k}")
        scores = self.decision_scores(X)
        order = np.argsort(-scores, axis=1)[:, :k]
        return self.classes_[order]

    def score(self, X, y) -> float:
        """Top-1 accuracy on ``(X, y)``."""
        y = np.asarray(y).ravel()
        return float(np.mean(self.predict(X) == y))

    # ----------------------------------------------------------------- hooks

    @abc.abstractmethod
    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        """Train on validated features and dense ``[0, k)`` labels."""

    def _partial_fit(self, X: np.ndarray, y: np.ndarray) -> None:
        """Consume one validated mini-batch (dense ``[0, k)`` labels).

        Implemented by streaming-capable subclasses; the base implementation
        exists only so ``supports_streaming`` can gate :meth:`partial_fit`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} sets supports_streaming but does not "
            "implement _partial_fit"
        )

    @abc.abstractmethod
    def decision_scores(self, X) -> np.ndarray:
        """``(n, k)`` per-class decision scores (higher = more likely)."""

    # ------------------------------------------------------------------ misc

    @property
    def n_classes_(self) -> int:
        self._check_fitted()
        return int(self.classes_.size)

    def _check_fitted(self) -> None:
        if self.classes_ is None:
            raise RuntimeError(
                f"{type(self).__name__} is not fitted; call fit(X, y) first"
            )
