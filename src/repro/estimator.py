"""Shared estimator protocol.

All classifiers in the library (DistHD, HDC baselines, MLP, SVMs, kNN) follow
a small sklearn-style protocol defined here: ``fit`` / ``predict`` /
``score``, plus ``decision_scores`` for models that expose per-class scores
and ``predict_topk`` for similarity-ranked models.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.utils.validation import check_labels, check_paired


class BaseClassifier(abc.ABC):
    """Abstract base for every classifier in the library.

    Subclasses implement :meth:`_fit` and :meth:`decision_scores`; labels are
    validated and remapped to a contiguous ``[0, k)`` range here so models
    can assume dense integer classes internally while users may pass any
    integer labels.
    """

    def __init__(self) -> None:
        self.classes_: Optional[np.ndarray] = None
        self.n_features_: Optional[int] = None

    # ------------------------------------------------------------------- api

    def fit(self, X, y) -> "BaseClassifier":
        """Fit on features ``X`` (n, q) and integer labels ``y`` (n,)."""
        X, y = check_paired(X, y)
        labels, classes = check_labels(y)
        if classes.size < 2:
            raise ValueError(
                f"need at least 2 classes to fit a classifier, got {classes.size}"
            )
        self.classes_ = classes
        self.n_features_ = X.shape[1]
        dense = np.searchsorted(classes, labels)
        self._fit(X, dense)
        return self

    def predict(self, X) -> np.ndarray:
        """Predicted class labels for ``X`` (mapped back to original labels)."""
        scores = self.decision_scores(X)
        return self.classes_[np.argmax(scores, axis=1)]

    def predict_topk(self, X, k: int = 2) -> np.ndarray:
        """Top-``k`` predicted labels per sample, most likely first."""
        self._check_fitted()
        if not 1 <= k <= self.classes_.size:
            raise ValueError(f"k must lie in [1, {self.classes_.size}], got {k}")
        scores = self.decision_scores(X)
        order = np.argsort(-scores, axis=1)[:, :k]
        return self.classes_[order]

    def score(self, X, y) -> float:
        """Top-1 accuracy on ``(X, y)``."""
        y = np.asarray(y).ravel()
        return float(np.mean(self.predict(X) == y))

    # ----------------------------------------------------------------- hooks

    @abc.abstractmethod
    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        """Train on validated features and dense ``[0, k)`` labels."""

    @abc.abstractmethod
    def decision_scores(self, X) -> np.ndarray:
        """``(n, k)`` per-class decision scores (higher = more likely)."""

    # ------------------------------------------------------------------ misc

    @property
    def n_classes_(self) -> int:
        self._check_fitted()
        return int(self.classes_.size)

    def _check_fitted(self) -> None:
        if self.classes_ is None:
            raise RuntimeError(
                f"{type(self).__name__} is not fitted; call fit(X, y) first"
            )
