"""Shared estimator protocol.

All classifiers in the library (DistHD, HDC baselines, MLP, SVMs, kNN) follow
a small sklearn-style protocol defined here: ``fit`` / ``predict`` /
``score``, plus ``decision_scores`` for models that expose per-class scores
and ``predict_topk`` for similarity-ranked models.

Incremental (streaming) learning is part of the same protocol: models that
can train one mini-batch at a time set :attr:`~BaseClassifier.supports_streaming`
and implement :meth:`~BaseClassifier._partial_fit`; users call
:meth:`~BaseClassifier.partial_fit` with an optional ``classes=`` argument on
the first batch.  Label validation, dense remapping and feature-count checks
are shared with the batch path, so streamed and batch training see identical
inputs.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.utils.validation import (
    check_features_match,
    check_labels,
    check_paired,
)


class BaseClassifier(abc.ABC):
    """Abstract base for every classifier in the library.

    Subclasses implement :meth:`_fit` and :meth:`decision_scores`; labels are
    validated and remapped to a contiguous ``[0, k)`` range here so models
    can assume dense integer classes internally while users may pass any
    integer labels.

    Streaming-capable subclasses additionally set
    ``supports_streaming = True`` and implement :meth:`_partial_fit`.
    """

    #: Whether this model implements :meth:`_partial_fit` (incremental
    #: mini-batch training).  Checked by :meth:`partial_fit` and by the
    #: model registry's capability tags.
    supports_streaming: bool = False

    #: Whether this model implements the sharded-fit hooks
    #: (:meth:`_fit_shard` / :meth:`_refine_from`) that let
    #: :meth:`shard_fit` train per-shard class memories in parallel
    #: workers and merge them by bundling.
    supports_sharding: bool = False

    def __init__(self) -> None:
        self.classes_: Optional[np.ndarray] = None
        self.n_features_: Optional[int] = None
        # Incremental-training bookkeeping (maintained by partial_fit).
        self.n_batches_: int = 0
        self.n_samples_seen_: int = 0
        # Shard count of the last sharded fit (1 after a plain fit).
        self.n_shards_: int = 1
        # Concrete seed that governed the last sharded fit's shard deal
        # and encoders (None after a plain/serial fit).  For models
        # constructed with seed=None this records the one-off seed drawn
        # by shard_fit, so any default-seed sharded run can be replayed.
        self.shard_seed_: Optional[int] = None

    # ------------------------------------------------------------------- api

    def _begin_fit(self, X, y) -> tuple:
        """Validate ``(X, y)``, bind the class set, reset counters.

        The shared front half of :meth:`fit` and :meth:`shard_fit`:
        returns ``(X, dense)`` where ``dense`` are labels remapped to a
        contiguous ``[0, k)`` range against the bound ``classes_``.
        """
        X, y = check_paired(X, y)
        labels, classes = check_labels(y)
        if classes.size < 2:
            raise ValueError(
                f"need at least 2 classes to fit a classifier, got {classes.size}"
            )
        self.classes_ = classes
        self.n_features_ = X.shape[1]
        self.n_batches_ = 0
        self.n_samples_seen_ = 0
        self.n_shards_ = 1
        self.shard_seed_ = None
        return X, np.searchsorted(classes, labels)

    def fit(self, X, y) -> "BaseClassifier":
        """Fit on features ``X`` (n, q) and integer labels ``y`` (n,).

        Models with ``supports_sharding`` and an ``n_jobs`` knob resolving
        to more than one worker route through :meth:`shard_fit`
        automatically, so ``make_model("disthd", n_jobs=4).fit(X, y)``
        trains data-parallel without any call-site changes.
        """
        if self.supports_sharding:
            from repro.engine.executor import resolve_n_jobs

            if resolve_n_jobs(self._configured_n_jobs()) > 1:
                return self.shard_fit(X, y)
        X, dense = self._begin_fit(X, y)
        self._fit(X, dense)
        return self

    def shard_fit(
        self,
        X,
        y,
        *,
        n_jobs: Optional[int] = None,
        executor=None,
        shard_iterations: Optional[int] = None,
        refine_iterations: Optional[int] = None,
    ) -> "BaseClassifier":
        """Data-parallel fit: per-shard memories, bundling merge, refinement.

        See :func:`repro.engine.shard.shard_fit` for semantics; with
        ``n_jobs`` resolving to 1 this *is* :meth:`fit`, bit for bit.
        Only models with ``supports_sharding = True`` implement the
        required hooks; others raise ``NotImplementedError``.
        """
        from repro.engine.shard import shard_fit as _shard_fit

        return _shard_fit(
            self, X, y,
            n_jobs=n_jobs, executor=executor,
            shard_iterations=shard_iterations,
            refine_iterations=refine_iterations,
        )

    def partial_fit(self, X, y, classes=None) -> "BaseClassifier":
        """Incrementally train on one mini-batch ``(X, y)``.

        The first call fixes the model's class set and feature count:
        pass ``classes`` (every label the stream will ever produce) up
        front, or the unique labels of the first batch are used.  Later
        batches may contain any subset of the fixed classes; labels outside
        it are rejected.

        Only models with ``supports_streaming = True`` implement this;
        others raise ``NotImplementedError``.
        """
        if not self.supports_streaming:
            raise NotImplementedError(
                f"{type(self).__name__} does not support incremental "
                "training (supports_streaming is False)"
            )
        X, y = check_paired(X, y)
        labels, observed = check_labels(y)
        if self.classes_ is None:
            if classes is not None:
                class_set, _ = check_labels(classes, name="classes")
                class_set = np.unique(class_set)
                missing = np.setdiff1d(observed, class_set)
                if missing.size:
                    raise ValueError(
                        f"y contains labels {missing.tolist()} not in the "
                        f"declared classes {class_set.tolist()}"
                    )
            else:
                class_set = observed
            if class_set.size < 2:
                raise ValueError(
                    "need at least 2 classes for incremental training; "
                    "pass classes= on the first partial_fit call if the "
                    f"first batch is single-class (got {class_set.size})"
                )
            self.classes_ = class_set
            self.n_features_ = X.shape[1]
        else:
            check_features_match(
                self.n_features_, X.shape[1], type(self).__name__
            )
        dense = np.searchsorted(self.classes_, labels)
        clipped = np.minimum(dense, self.classes_.size - 1)
        if np.any(self.classes_[clipped] != labels):
            bad = np.unique(labels[self.classes_[clipped] != labels])
            raise ValueError(
                f"y labels must lie in the fitted class set "
                f"{self.classes_.tolist()}, got {bad.tolist()}"
            )
        # Counters are advanced before the hook so implementations see the
        # 1-based number of the batch they are consuming.
        self.n_batches_ += 1
        self.n_samples_seen_ += X.shape[0]
        self._partial_fit(X, clipped)
        return self

    def predict(self, X) -> np.ndarray:
        """Predicted class labels for ``X`` (mapped back to original labels)."""
        scores = self.decision_scores(X)
        return self.classes_[np.argmax(scores, axis=1)]

    def predict_topk(self, X, k: int = 2) -> np.ndarray:
        """Top-``k`` predicted labels per sample, most likely first."""
        self._check_fitted()
        if not 1 <= k <= self.classes_.size:
            raise ValueError(f"k must lie in [1, {self.classes_.size}], got {k}")
        scores = self.decision_scores(X)
        order = np.argsort(-scores, axis=1)[:, :k]
        return self.classes_[order]

    def score(self, X, y) -> float:
        """Top-1 accuracy on ``(X, y)``."""
        y = np.asarray(y).ravel()
        return float(np.mean(self.predict(X) == y))

    # ----------------------------------------------------------------- hooks

    @abc.abstractmethod
    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        """Train on validated features and dense ``[0, k)`` labels."""

    def _partial_fit(self, X: np.ndarray, y: np.ndarray) -> None:
        """Consume one validated mini-batch (dense ``[0, k)`` labels).

        Implemented by streaming-capable subclasses; the base implementation
        exists only so ``supports_streaming`` can gate :meth:`partial_fit`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} sets supports_streaming but does not "
            "implement _partial_fit"
        )

    @abc.abstractmethod
    def decision_scores(self, X) -> np.ndarray:
        """``(n, k)`` per-class decision scores (higher = more likely)."""

    # --------------------------------------------------------- sharding hooks

    def _configured_n_jobs(self) -> Optional[int]:
        """The model's own ``n_jobs`` knob (None = serial).

        DistHD reads it off its config; the baseline constructors store it
        as a plain attribute.  :meth:`fit` resolves it to decide whether
        to route through :meth:`shard_fit`.
        """
        return getattr(self, "n_jobs", None)

    def _shard_seed(self) -> Optional[int]:
        """Seed governing the stratified shard deal (models expose theirs)."""
        return getattr(self, "seed", None)

    def _set_shard_seed(self, seed: Optional[int]) -> None:
        """Pin (or restore) the model's seed around a sharded fit.

        Sharded fitting requires every worker (and the driver's
        refinement pass) to build the *identical* seed-derived encoder —
        per-shard banks are only additively mergeable against a shared
        encoder.  When the model was constructed with ``seed=None``,
        :func:`~repro.engine.shard.shard_fit` draws one concrete seed,
        pins it here for the duration of the fit (so the deep-copied
        workers cannot each draw fresh OS entropy), records it on
        ``shard_seed_``, and restores ``None`` afterwards — refitting a
        default-seed model keeps drawing fresh entropy each time.  The
        baselines store the seed as a plain attribute; DistHD overrides
        this to rewrite its config.
        """
        self.seed = seed

    def _iteration_budget(self) -> int:
        """The model's ``iterations`` hyper-parameter (engine budget)."""
        return int(getattr(self, "iterations"))

    def _configure_for_shard(self, shard_iterations: Optional[int]) -> None:
        """Reconfigure this (copied) model for worker-side shard training.

        Implementations must disable dimension regeneration (shard
        encoders may never diverge from the shared seed-derived encoder),
        clear ``n_jobs`` (workers do not recurse), and apply
        ``shard_iterations`` when given.
        """
        raise NotImplementedError(
            f"{type(self).__name__} sets supports_sharding but does not "
            "implement _configure_for_shard"
        )

    def _fit_shard(self, X, y, shard_iterations: Optional[int]) -> np.ndarray:
        """Worker-side hook: train this (copied) model on one shard and
        return its class bank as a float64 NumPy array.

        Runs on a deep copy inside an executor worker; every worker builds
        the identical encoder from the model's seed, so the returned banks
        are additively mergeable.
        """
        self._configure_for_shard(shard_iterations)
        self._fit(X, y)
        return np.asarray(
            self.memory_.numpy_vectors(), dtype=np.float64
        ).copy()

    def _refine_from(
        self, X, y, bank: np.ndarray, refine_iterations: Optional[int]
    ) -> None:
        """Driver-side hook: full-data refinement from a merged class bank.

        Runs the model's normal training loop (regeneration included) for
        a short budget — default ``max(2, ceil(iterations / 4))`` capped
        at the full budget — starting from the bundled shard memories
        instead of single-pass initialisation.
        """
        budget = self._iteration_budget()
        if refine_iterations is None:
            refine_iterations = min(budget, max(2, -(-budget // 4)))
        self._fit(X, y, init_memory=bank, iterations=refine_iterations)

    # ------------------------------------------------------------------ misc

    @property
    def n_classes_(self) -> int:
        self._check_fitted()
        return int(self.classes_.size)

    def _check_fitted(self) -> None:
        if self.classes_ is None:
            raise RuntimeError(
                f"{type(self).__name__} is not fitted; call fit(X, y) first"
            )
