"""Performance harness: time encode/fit/predict per model and dataset.

Drives the ``repro bench`` CLI subcommand (and ``benchmarks/perf.py``),
emitting the ``BENCH_*.json`` trajectory the ROADMAP tracks so hot-path
speedups are measured, not asserted.  Timings are best-of-``repeats``
wall-clock seconds.

The harness also times a **legacy reference** for DistHD — the pre-backend
float64 path: float64 encoder/memory, a float64-coercing copy per
similarity call (the old ``check_matrix`` behaviour), and the per-sample
Python update loop of the original Algorithm-1 implementation.  The
``fit_speedup_vs_legacy`` field is the honest before/after ratio for this
repo's own history.
"""

from __future__ import annotations

import json
import platform
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

import repro.core.disthd as _disthd_mod
from repro.backend import get_backend, list_backends
from repro.datasets.loaders import Dataset, load_dataset
from repro.models.registry import get_model_spec, make_model
from repro.version import __version__

#: Models the default bench sweep covers (HDC family: encode is separable).
DEFAULT_MODELS = ("disthd", "onlinehd", "baselinehd")

#: The synthetic default the acceptance trajectory is recorded on.
DEFAULT_DATASET = "ucihar"
DEFAULT_SCALE = 0.12
DEFAULT_DIM = 1024
DEFAULT_ITERATIONS = 10


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# --------------------------------------------------------------- legacy ref


def _legacy_adaptive_fit_iteration(
    memory, encoded, labels, *, lr=0.05, batch_size=None, shuffle_rng=None
):
    """The pre-backend Algorithm-1 pass: float64 coercion + per-sample loop."""
    H = np.asarray(encoded, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    n = H.shape[0]
    size = n if batch_size is None else min(int(batch_size), n)
    order = np.arange(n)
    if shuffle_rng is not None:
        order = shuffle_rng.permutation(n)
    n_correct = 0
    for start in range(0, n, size):
        idx = order[start : start + size]
        batch = np.array(H[idx], dtype=np.float64)  # the old check_matrix copy
        batch_labels = labels[idx]
        sims = memory.similarities(batch)
        predicted = np.argmax(sims, axis=1)
        wrong = np.flatnonzero(predicted != batch_labels)
        n_correct += idx.size - wrong.size
        for j in wrong:
            hv = batch[j]
            lbl = int(batch_labels[j])
            pred = int(predicted[j])
            memory.add_to_class(pred, -lr * (1.0 - sims[j, pred]) * hv)
            memory.add_to_class(lbl, lr * (1.0 - sims[j, lbl]) * hv)
    return n_correct / n


@contextmanager
def _legacy_adaptive_path():
    """Swap DistHD's adaptive pass for the pre-PR per-sample loop."""
    original = _disthd_mod.adaptive_fit_iteration
    _disthd_mod.adaptive_fit_iteration = _legacy_adaptive_fit_iteration
    try:
        yield
    finally:
        _disthd_mod.adaptive_fit_iteration = original


def bench_legacy_disthd(
    dataset: Dataset,
    *,
    dim: int = DEFAULT_DIM,
    iterations: int = DEFAULT_ITERATIONS,
    seed: int = 0,
    repeats: int = 3,
) -> Dict[str, float]:
    """Time the pre-PR float64 DistHD fit (reference for the speedup claim)."""
    def build():
        return make_model(
            "disthd", dim=dim, iterations=iterations,
            convergence_patience=None, seed=seed, dtype="float64",
        )

    with _legacy_adaptive_path():
        fit_s = _best_of(
            lambda: build().fit(dataset.train_x, dataset.train_y), repeats
        )
        model = build().fit(dataset.train_x, dataset.train_y)
    return {
        "fit_s": fit_s,
        "test_acc": float(model.score(dataset.test_x, dataset.test_y)),
    }


# ------------------------------------------------------------------- bench


def bench_model(
    name: str,
    dataset: Dataset,
    *,
    dim: int = DEFAULT_DIM,
    iterations: int = DEFAULT_ITERATIONS,
    seed: int = 0,
    repeats: int = 3,
    backend: Optional[str] = None,
    dtype: Optional[str] = None,
    model_params: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Time one registered model on one dataset.

    Returns a flat record: best-of-``repeats`` ``encode_s`` (HDC models
    only), ``fit_s`` and ``predict_s``, plus test accuracy and the
    effective configuration.
    """
    declared = get_model_spec(name).param_names()
    params: Dict[str, object] = dict(model_params or {})
    for key, value in (
        ("dim", dim),
        ("iterations", iterations),
        ("seed", seed),
        ("convergence_patience", None),
        ("backend", backend),
        ("dtype", dtype),
    ):
        if key in ("backend", "dtype") and value is None:
            continue
        if key in declared or key in ("convergence_patience",):
            params.setdefault(key, value)
    try:
        model = make_model(name, **params)
    except TypeError:
        params.pop("convergence_patience", None)
        model = make_model(name, **params)

    fit_s = _best_of(
        lambda: make_model(name, **params).fit(dataset.train_x, dataset.train_y),
        repeats,
    )
    model.fit(dataset.train_x, dataset.train_y)
    predict_s = _best_of(lambda: model.predict(dataset.test_x), repeats)

    record: Dict[str, object] = {
        "model": name,
        "dataset": dataset.name,
        "n_train": int(dataset.train_x.shape[0]),
        "n_test": int(dataset.test_x.shape[0]),
        "n_features": int(dataset.train_x.shape[1]),
        "params": {k: repr(v) if not isinstance(v, (int, float, str, type(None), bool)) else v
                   for k, v in params.items()},
        "fit_s": fit_s,
        "predict_s": predict_s,
        "test_acc": float(model.score(dataset.test_x, dataset.test_y)),
    }
    encoder = getattr(model, "encoder_", None)
    if encoder is not None and hasattr(encoder, "encode"):
        record["encode_s"] = _best_of(
            lambda: encoder.encode(dataset.train_x), repeats
        )
        if hasattr(encoder, "dtype"):
            record["dtype"] = np.dtype(encoder.dtype).name
        if hasattr(encoder, "backend"):
            record["backend"] = encoder.backend.name
    return record


def run_bench(
    *,
    models: Sequence[str] = DEFAULT_MODELS,
    dataset: str = DEFAULT_DATASET,
    scale: float = DEFAULT_SCALE,
    dim: int = DEFAULT_DIM,
    iterations: int = DEFAULT_ITERATIONS,
    seed: int = 0,
    repeats: int = 3,
    backend: Optional[str] = None,
    dtype: Optional[str] = None,
    smoke: bool = False,
    include_legacy: bool = True,
) -> Dict[str, object]:
    """Run the full bench sweep and return the ``BENCH_*.json`` payload.

    ``smoke=True`` shrinks everything (tiny synthetic dataset, one repeat,
    no legacy reference timing loop beyond one run) so CI can exercise the
    harness in seconds.
    """
    if smoke:
        scale, dim, iterations, repeats = 0.02, 64, 3, 1
    data = load_dataset(dataset, scale=scale, seed=seed)
    results: List[Dict[str, object]] = [
        bench_model(
            name, data, dim=dim, iterations=iterations, seed=seed,
            repeats=repeats, backend=backend, dtype=dtype,
        )
        for name in models
    ]
    payload: Dict[str, object] = {
        "schema": 1,
        "created_unix": time.time(),
        "repro_version": __version__,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "backends_available": list(list_backends()),
        "config": {
            "dataset": dataset,
            "scale": scale,
            "dim": dim,
            "iterations": iterations,
            "seed": seed,
            "repeats": repeats,
            "smoke": bool(smoke),
            "backend": backend or get_backend(None).name,
            "dtype": dtype or "float32",
        },
        "results": results,
    }
    if include_legacy and "disthd" in models:
        legacy = bench_legacy_disthd(
            data, dim=dim, iterations=iterations, seed=seed, repeats=repeats
        )
        payload["disthd_legacy_float64"] = legacy
        new_fit = next(
            r["fit_s"] for r in results if r["model"] == "disthd"
        )
        payload["fit_speedup_vs_legacy"] = (
            float(legacy["fit_s"]) / float(new_fit) if new_fit > 0 else None
        )
    return payload


def write_bench(payload: Dict[str, object], path: Union[str, Path]) -> Path:
    """Write a bench payload as indented JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path


def format_bench_table(payload: Dict[str, object]) -> str:
    """A compact human-readable summary of a bench payload."""
    lines = [
        f"{'model':<14} {'dataset':<10} {'fit_s':>9} {'predict_s':>10} "
        f"{'encode_s':>9} {'test_acc':>9}"
    ]
    for row in payload["results"]:
        lines.append(
            f"{row['model']:<14} {row['dataset']:<10} "
            f"{row['fit_s']:>9.4f} {row['predict_s']:>10.4f} "
            f"{row.get('encode_s', float('nan')):>9.4f} "
            f"{row['test_acc']:>9.3f}"
        )
    speedup = payload.get("fit_speedup_vs_legacy")
    if speedup is not None:
        legacy = payload["disthd_legacy_float64"]
        lines.append(
            f"disthd legacy float64 fit: {legacy['fit_s']:.4f}s  "
            f"→ speedup {speedup:.2f}x"
        )
    return "\n".join(lines)
