"""Performance harness: time encode/fit/predict per model and dataset.

Drives the ``repro bench`` CLI subcommand (and ``benchmarks/perf.py``),
emitting the ``BENCH_*.json`` trajectory the ROADMAP tracks so hot-path
speedups are measured, not asserted.  Timings are best-of-``repeats``
wall-clock seconds.

Two historical references keep the trajectory honest:

- the **legacy** (pre-backend, pre-PR2) DistHD path — float64
  encoder/memory, a float64-coercing copy per similarity call, and the
  per-sample Python update loop of the original Algorithm-1 implementation
  (``fit_speedup_vs_legacy``);
- the **PR 2** path — backend-routed float32 but with dense Algorithm-2
  distance matrices, no class-norm caching and a full-batch gather per
  adaptive pass; the regen-heavy scenario times it against the fused
  kernels (``fit_speedup_vs_pr2``).

The regen-heavy scenario also records peak RSS and the traced allocation
peak of the fused Algorithm-2 scoring call, evidencing that the fused path
never materialises an ``(n, D)`` distance temporary.

Payload schema 3 adds the **sharded-fit** scenario: single-process ``fit``
versus data-parallel ``shard_fit`` on the same regen-heavy operating
point, recording shard count, ``n_jobs``, both accuracies and the
wall-clock speedup (``fit_speedup_vs_single``).

Payload schema 4 adds the **serving** scenario: a DistHD model trained at
the regen-heavy operating point is deployed as a fixed-point artifact
behind a :class:`~repro.serve.server.ModelServer`, and a closed-loop load
generator at ``concurrency`` workers measures micro-batched throughput
and latency percentiles against the per-request baseline
(``throughput_speedup_vs_direct``).  Mid-run, an
:class:`~repro.serve.adapter.OnlineAdapter` promotes a
``partial_fit``-adapted, re-quantized version under load; the record
asserts the swap dropped zero requests and that post-swap micro-batched
predictions match the active artifact exactly (``swap.parity_ok``).

Payload schema 5 adds the **packed_vs_int8** scenario: the same trained
model frozen three ways — ``bits=8``, unpacked ``bits=1`` and bit-packed
``bits=1`` (64 cells per ``uint64`` word, XOR + popcount scoring).  The
record compares artifact footprints, times the scorer stage in isolation
(``score_speedup_vs_int``), proves the packed kernels bit-identical to an
unpacked implementation of the same binary scorer
(``parity.accuracy_delta`` exactly 0), and re-runs the hot-swap-under-load
drill with the packed artifact (promotions re-quantize *and re-pack*).

Payload schema 6 adds the **fleet_resilience** scenario: the packed
artifact published into shared memory behind a
:class:`~repro.serve.fleet.server.FleetServer`.  The record compares
steady-state closed-loop throughput at 1 worker vs ``n_workers`` (workers
enforce a small ``service_floor_ms`` per request — recorded in the
payload — so the scaling measures genuine multi-process concurrency, not
single-core numpy contention), then runs the chaos drills: a mid-load
worker SIGKILL (zero failed non-shed requests, in-flight retries, bounded
recovery time, supervisor restart) and a crash-loop drill (the circuit
breaker must open after ``max_restarts`` rapid deaths).

Payload schema 7 adds the **encode_latency** scenario: the dense
``O(q·D)`` RBF encoder versus the structured ``O(D log D)`` Fastfood
encoder (SORF chain over the backend FWHT kernel) at several dimensions
and batch sizes — the single-sample / small-batch operating points that
dominate serving latency.  The record carries three kinds of evidence:
an exactness proof of the FWHT kernel against the naive ``O(m²)``
Hadamard matmul (bit-identical at float64 on integer inputs), the
speedup table with a committed ≥ ``ENCODE_SPEEDUP_FLOOR``× gate at the
headline ``D``, and an accuracy-parity check (DistHD trained with each
encoder at the same seed must agree within ``ENCODE_ACC_TOLERANCE``).

Payload schema 8 adds the **obs_overhead** scenario: the serving
scenario's operating point run twice through a
:class:`~repro.serve.server.ModelServer` — once with no observability
bundle and once fully traced (``sample_rate=1.0``) — recording the
throughput ratio and p95 delta against the committed
``OBS_THROUGHPUT_FLOOR`` / ``OBS_P95_DELTA_CEILING`` gates (tracing must
be affordable *on*, not just free when off).  A traced fleet kill drill
then exercises the crash path end to end: the record asserts at least
one schema-valid flight dump was written and at least one *complete
retried trace* survived — client → supervisor dispatch/retry → worker
encode/score spans for a request whose first attempt died with the
killed worker.
"""

from __future__ import annotations

import json
import platform
import threading
import time
import tracemalloc
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

import repro.core.disthd as _disthd_mod
from repro.backend import get_backend, list_backends
from repro.datasets.loaders import Dataset, load_dataset
from repro.hdc.memory import AssociativeMemory
from repro.models.registry import get_model_spec, make_model
from repro.version import __version__

try:  # pragma: no cover - resource is POSIX-only
    import resource
except ImportError:  # pragma: no cover
    resource = None

#: Models the default bench sweep covers (HDC family: encode is separable).
DEFAULT_MODELS = ("disthd", "onlinehd", "baselinehd")

#: The synthetic default the acceptance trajectory is recorded on.
DEFAULT_DATASET = "ucihar"
DEFAULT_SCALE = 0.12
DEFAULT_DIM = 1024
DEFAULT_ITERATIONS = 10


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# --------------------------------------------------------------- legacy ref


def _legacy_adaptive_fit_iteration(
    memory, encoded, labels, *, lr=0.05, batch_size=None, shuffle_rng=None
):
    """The pre-backend Algorithm-1 pass: float64 coercion + per-sample loop."""
    H = np.asarray(encoded, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    n = H.shape[0]
    size = n if batch_size is None else min(int(batch_size), n)
    order = np.arange(n)
    if shuffle_rng is not None:
        order = shuffle_rng.permutation(n)
    n_correct = 0
    for start in range(0, n, size):
        idx = order[start : start + size]
        batch = np.array(H[idx], dtype=np.float64)  # the old check_matrix copy
        batch_labels = labels[idx]
        sims = memory.similarities(batch)
        predicted = np.argmax(sims, axis=1)
        wrong = np.flatnonzero(predicted != batch_labels)
        n_correct += idx.size - wrong.size
        for j in wrong:
            hv = batch[j]
            lbl = int(batch_labels[j])
            pred = int(predicted[j])
            memory.add_to_class(pred, -lr * (1.0 - sims[j, pred]) * hv)
            memory.add_to_class(lbl, lr * (1.0 - sims[j, lbl]) * hv)
    return n_correct / n


@contextmanager
def _legacy_adaptive_path():
    """Swap DistHD's adaptive pass for the pre-PR per-sample loop."""
    original = _disthd_mod.adaptive_fit_iteration
    _disthd_mod.adaptive_fit_iteration = _legacy_adaptive_fit_iteration
    try:
        yield
    finally:
        _disthd_mod.adaptive_fit_iteration = original


def bench_legacy_disthd(
    dataset: Dataset,
    *,
    dim: int = DEFAULT_DIM,
    iterations: int = DEFAULT_ITERATIONS,
    seed: int = 0,
    repeats: int = 3,
) -> Dict[str, float]:
    """Time the pre-PR float64 DistHD fit (reference for the speedup claim)."""
    def build():
        return make_model(
            "disthd", dim=dim, iterations=iterations,
            convergence_patience=None, seed=seed, dtype="float64",
        )

    with _legacy_adaptive_path():
        fit_s = _best_of(
            lambda: build().fit(dataset.train_x, dataset.train_y), repeats
        )
        model = build().fit(dataset.train_x, dataset.train_y)
    return {
        "fit_s": fit_s,
        "test_acc": float(model.score(dataset.test_x, dataset.test_y)),
    }


# ------------------------------------------------------------ pr2 reference


def _pr2_adaptive_fit_iteration(
    memory, encoded, labels, *, lr=0.05, batch_size=None, shuffle_rng=None
):
    """PR 2's Algorithm-1 pass: grouped scatter-adds, but a full index
    gather (an ``(n, D)`` copy) per pass even for the single-batch case."""
    b = memory.backend
    H = memory.as_encoded(encoded)
    labels = np.asarray(labels, dtype=np.int64)
    n = H.shape[0]
    size = n if batch_size is None else min(int(batch_size), n)
    order = np.arange(n)
    if shuffle_rng is not None:
        order = shuffle_rng.permutation(n)
    n_correct = 0
    for start in range(0, n, size):
        idx = order[start : start + size]
        batch = b.take_rows(H, idx)
        batch_labels = labels[idx]
        sims = memory.similarities(batch)
        predicted = np.argmax(sims, axis=1)
        wrong = np.flatnonzero(predicted != batch_labels)
        n_correct += idx.size - wrong.size
        if wrong.size:
            wrong_pred = predicted[wrong]
            wrong_true = batch_labels[wrong]
            memory.update_misclassified(
                b.take_rows(batch, wrong),
                wrong_pred,
                wrong_true,
                sims[wrong, wrong_pred],
                sims[wrong, wrong_true],
                lr,
            )
    return n_correct / n


def _pr2_set_columns(self, x, cols, values) -> None:
    """PR 2's single-pass column scatter (no cache-sized row windows)."""
    x[:, np.asarray(cols, dtype=np.int64)] = values


def _pr2_scatter_add_cells(self, target, rows, cols, values) -> None:
    """PR 2's per-cell ``ufunc.at`` scatter-add (no one-hot grouping)."""
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    np.add.at(
        target,
        (rows[:, None], cols[None, :]),
        np.asarray(values, dtype=target.dtype),
    )


@contextmanager
def _pr2_reference_path():
    """Swap in PR 2's hot-loop behaviour, end to end: no norm caches (every
    ``similarities``/``normalized`` call recomputes), the gathering adaptive
    pass, the single-pass column scatter and per-cell re-bundle scatter-add,
    and — via ``fused_regen=False`` on the model config — dense Algorithm-2
    distance matrices."""
    from repro.backend.numpy_backend import NumpyBackend

    original = _disthd_mod.adaptive_fit_iteration
    prev_caching = AssociativeMemory.caching_enabled
    prev_set_columns = NumpyBackend.set_columns
    prev_scatter_cells = NumpyBackend.scatter_add_cells
    _disthd_mod.adaptive_fit_iteration = _pr2_adaptive_fit_iteration
    AssociativeMemory.caching_enabled = False
    NumpyBackend.set_columns = _pr2_set_columns
    NumpyBackend.scatter_add_cells = _pr2_scatter_add_cells
    try:
        yield
    finally:
        _disthd_mod.adaptive_fit_iteration = original
        AssociativeMemory.caching_enabled = prev_caching
        NumpyBackend.set_columns = prev_set_columns
        NumpyBackend.scatter_add_cells = prev_scatter_cells


def _peak_rss_mb() -> Optional[float]:
    """Process peak RSS in MiB (a lifetime high-watermark; POSIX only)."""
    if resource is None:
        return None
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return round(peak_kb / 1024.0, 2)


#: The committed regen-heavy scenario: many samples, few features (so
#: encoding does not swamp the loop), large D and aggressive regeneration —
#: the per-iteration cost is dominated by exactly the work PR 3 fused.
REGEN_HEAVY = {
    "dataset": "pamap2",
    "scale": 0.012,
    "dim": 4096,
    "iterations": 10,
    "regen_rate": 0.30,
    "selection": "union",
}


def bench_regen_heavy(
    *,
    dataset: str = REGEN_HEAVY["dataset"],
    scale: float = REGEN_HEAVY["scale"],
    dim: int = REGEN_HEAVY["dim"],
    iterations: int = REGEN_HEAVY["iterations"],
    regen_rate: float = REGEN_HEAVY["regen_rate"],
    selection: str = REGEN_HEAVY["selection"],
    seed: int = 0,
    repeats: int = 3,
) -> Dict[str, object]:
    """Time DistHD on the regeneration-heavy scenario, fused vs PR 2.

    Both paths run at the same seed and hyper-parameters; the record keeps
    both test accuracies so a speedup that silently costs quality is
    visible.  Also measures the traced allocation peak of one fused
    Algorithm-2 scoring call next to the bytes a single dense ``(n, D)``
    distance matrix would need.
    """
    data = load_dataset(dataset, scale=scale, seed=seed)

    def build(fused: bool):
        return make_model(
            "disthd", dim=dim, iterations=iterations, seed=seed,
            regen_rate=regen_rate, selection=selection,
            convergence_patience=None, fused_regen=fused,
        )

    fit_s = _best_of(
        lambda: build(True).fit(data.train_x, data.train_y), repeats
    )
    model = build(True).fit(data.train_x, data.train_y)
    test_acc = float(model.score(data.test_x, data.test_y))

    with _pr2_reference_path():
        pr2_fit_s = _best_of(
            lambda: build(False).fit(data.train_x, data.train_y), repeats
        )
        pr2_model = build(False).fit(data.train_x, data.train_y)
        pr2_acc = float(pr2_model.score(data.test_x, data.test_y))

    scoring = _measure_fused_scoring_peak(model, data)
    record: Dict[str, object] = {
        "scenario": "regen_heavy",
        "dataset": dataset,
        "n_train": int(data.train_x.shape[0]),
        "n_features": int(data.train_x.shape[1]),
        "dim": dim,
        "iterations": iterations,
        "regen_rate": regen_rate,
        "selection": selection,
        "seed": seed,
        "fit_s": fit_s,
        "test_acc": test_acc,
        "pr2_reference": {"fit_s": pr2_fit_s, "test_acc": pr2_acc},
        "fit_speedup_vs_pr2": pr2_fit_s / fit_s if fit_s > 0 else None,
        "total_regenerated": int(model.encoder_.regenerated_count),
        "fused_scoring": scoring,
    }
    return record


#: The committed sharded-fit scenario: the same regen-heavy operating point,
#: fit single-process versus data-parallel ``shard_fit`` at ``n_jobs``
#: workers.  The shard phase trains per-shard class memories with
#: regeneration disabled (cheap, parallel), the merge bundles them, and a
#: short refinement pass runs the full regen-heavy loop — so the speedup
#: comes from both worker parallelism and the smaller full-data budget,
#: and survives even single-core machines.
SHARDED_FIT = dict(REGEN_HEAVY, n_jobs=4)


def bench_sharded_fit(
    *,
    dataset: str = SHARDED_FIT["dataset"],
    scale: float = SHARDED_FIT["scale"],
    dim: int = SHARDED_FIT["dim"],
    iterations: int = SHARDED_FIT["iterations"],
    regen_rate: float = SHARDED_FIT["regen_rate"],
    selection: str = SHARDED_FIT["selection"],
    n_jobs: int = SHARDED_FIT["n_jobs"],
    seed: int = 0,
    repeats: int = 3,
) -> Dict[str, object]:
    """Time DistHD single-process ``fit`` vs ``shard_fit(n_jobs=...)``.

    Both paths run at the same seed and hyper-parameters; the record keeps
    both test accuracies so a speedup that silently costs quality is
    visible, plus the shard/worker counts the payload schema tracks.
    """
    data = load_dataset(dataset, scale=scale, seed=seed)

    def build():
        return make_model(
            "disthd", dim=dim, iterations=iterations, seed=seed,
            regen_rate=regen_rate, selection=selection,
            convergence_patience=None,
        )

    single_s = _best_of(
        lambda: build().fit(data.train_x, data.train_y), repeats
    )
    single_model = build().fit(data.train_x, data.train_y)
    single_acc = float(single_model.score(data.test_x, data.test_y))

    sharded_s = _best_of(
        lambda: build().shard_fit(data.train_x, data.train_y, n_jobs=n_jobs),
        repeats,
    )
    sharded_model = build()
    sharded_model.shard_fit(data.train_x, data.train_y, n_jobs=n_jobs)
    sharded_acc = float(sharded_model.score(data.test_x, data.test_y))

    return {
        "scenario": "sharded_fit",
        "dataset": dataset,
        "n_train": int(data.train_x.shape[0]),
        "n_features": int(data.train_x.shape[1]),
        "dim": dim,
        "iterations": iterations,
        "regen_rate": regen_rate,
        "selection": selection,
        "seed": seed,
        "n_jobs": n_jobs,
        "n_shards": int(sharded_model.n_shards_),
        "single_fit_s": single_s,
        "single_test_acc": single_acc,
        "sharded_fit_s": sharded_s,
        "sharded_test_acc": sharded_acc,
        "fit_speedup_vs_single": (
            single_s / sharded_s if sharded_s > 0 else None
        ),
        "acc_delta": sharded_acc - single_acc,
    }


#: The committed serving scenario: the regen-heavy model behind a
#: micro-batching server, loaded at concurrency 32 — the operating point
#: the ROADMAP's "serves heavy traffic" north star is tracked at.
SERVING = dict(
    REGEN_HEAVY,
    bits=8,
    n_requests=2048,
    concurrency=32,
    max_batch_size=64,
    max_wait_ms=2.0,
)


def bench_serving(
    *,
    dataset: str = SERVING["dataset"],
    scale: float = SERVING["scale"],
    dim: int = SERVING["dim"],
    iterations: int = SERVING["iterations"],
    regen_rate: float = SERVING["regen_rate"],
    selection: str = SERVING["selection"],
    bits: int = SERVING["bits"],
    n_requests: int = SERVING["n_requests"],
    concurrency: int = SERVING["concurrency"],
    max_batch_size: int = SERVING["max_batch_size"],
    max_wait_ms: float = SERVING["max_wait_ms"],
    seed: int = 0,
    swap: bool = True,
    packed: bool = False,
    encoder: str = "rbf",
    obs: Optional[object] = None,
) -> Dict[str, object]:
    """Benchmark micro-batched serving against per-request inference.

    Trains DistHD at the regen-heavy operating point, freezes it into a
    ``bits``-wide :class:`~repro.deploy.quantized.QuantizedHDCModel`, and:

    1. times ``n_requests`` single-row ``predict`` calls from
       ``concurrency`` closed-loop workers *directly* against the
       artifact (the no-server baseline);
    2. repeats the run through a :class:`~repro.serve.server.ModelServer`
       so concurrent requests coalesce into micro-batches;
    3. with ``swap``, half-way through the batched run an
       :class:`~repro.serve.adapter.OnlineAdapter` promotes a
       ``partial_fit``-adapted, re-quantized version under load, and the
       record keeps the failure count (must be zero) plus a post-swap
       parity check: micro-batched predictions equal the active
       artifact's direct predictions, element for element.

    ``packed=True`` (requires ``bits=1``) serves the bit-packed artifact
    instead; promotions re-quantize and re-pack.

    ``obs`` — an optional :class:`repro.obs.Observability` bundle wired
    into the server and (when its tracer is enabled) the batched load,
    so ``repro serve`` sessions carry live metrics and traces.  The
    direct baseline stays untraced: it measures the artifact, not the
    observability stack.
    """
    from repro.deploy.quantized import QuantizedHDCModel
    from repro.serve.adapter import DriftDetector, OnlineAdapter
    from repro.serve.loadgen import run_load
    from repro.serve.server import ModelServer

    data = load_dataset(dataset, scale=scale, seed=seed)
    model = make_model(
        "disthd", dim=dim, iterations=iterations, seed=seed,
        regen_rate=regen_rate, selection=selection,
        convergence_patience=None, encoder=encoder,
    )
    model.fit(data.train_x, data.train_y)
    artifact = QuantizedHDCModel(model, bits=bits, packed=packed)

    # Per-request baseline: same artifact, no batching, same concurrency.
    direct = run_load(
        lambda row: artifact.predict(row),
        data.test_x,
        n_requests=n_requests,
        concurrency=concurrency,
    )

    record: Dict[str, object] = {
        "scenario": "serving",
        "dataset": dataset,
        "n_train": int(data.train_x.shape[0]),
        "n_features": int(data.train_x.shape[1]),
        "dim": dim,
        "iterations": iterations,
        "regen_rate": regen_rate,
        "selection": selection,
        "bits": bits,
        "packed": bool(packed),
        "encoder": str(encoder),
        "seed": seed,
        "n_requests": n_requests,
        "concurrency": concurrency,
        "max_batch_size": max_batch_size,
        "max_wait_ms": max_wait_ms,
        "test_acc": float(artifact.score(data.test_x, data.test_y)),
        "direct": direct.as_record(),
    }

    tracer = getattr(obs, "tracer", None)
    if tracer is not None and not tracer.enabled:
        tracer = None
    with ModelServer(
        artifact, max_batch_size=max_batch_size, max_wait_ms=max_wait_ms,
        obs=obs,  # type: ignore[arg-type]
    ) as server:
        adapter = None
        swap_fired = threading.Event()
        if swap:
            adapter = OnlineAdapter(
                server, model,
                detector=DriftDetector(window=64, min_samples=32),
                bits=bits,
            )
            # Buffer labeled feedback up front so the mid-run promotion
            # has something to adapt on.
            n_fb = min(128, data.train_x.shape[0])
            fb_x, fb_y = data.train_x[:n_fb], data.train_y[:n_fb]
            fb_scores = artifact.decision_scores(fb_x)
            adapter.feedback(fb_x, fb_y, scores=fb_scores)
            swap_at = n_requests // 2
            swap_gate = threading.Lock()

            def on_request(i: int) -> None:
                if i < swap_at or swap_fired.is_set():
                    return
                # First worker past the swap point wins, exactly once
                # (check-then-set on the bare Event would let two workers
                # race into adapt_now and drain the buffer twice).
                with swap_gate:
                    if swap_fired.is_set():
                        return
                    swap_fired.set()
                # A drift-triggered cycle during priming may already have
                # consumed the buffer; re-arm so the forced mid-load swap
                # always has material.
                if (
                    adapter.stats()["buffered_feedback"]
                    < adapter.min_adapt_samples
                ):
                    adapter.feedback(fb_x, fb_y, scores=fb_scores)
                try:
                    adapter.adapt_now(wait=False)
                except RuntimeError:
                    pass  # lost the race to a concurrent drift cycle

        else:
            on_request = None

        batched = run_load(
            server, data.test_x,
            n_requests=n_requests,
            concurrency=concurrency,
            on_request=on_request,
            tracer=tracer,
        )
        if adapter is not None:
            adapter.join(timeout=60.0)

        stats = server.stats()
        record["batched"] = batched.as_record()
        record["mean_batch_size"] = stats["mean_batch_size"]
        speedup = (
            batched.throughput_rps / direct.throughput_rps
            if direct.throughput_rps > 0 else None
        )
        record["throughput_speedup_vs_direct"] = speedup
        if swap:
            # Post-swap parity: the micro-batched path must agree with
            # the (adapted, re-quantized) active artifact exactly.
            n_check = min(64, data.test_x.shape[0])
            served = server.predict(data.test_x[:n_check])
            reference = server.model.predict(data.test_x[:n_check])
            record["swap"] = {
                "n_swaps": int(stats["n_swaps"]),
                "n_adaptations": int(adapter.n_adaptations),
                "failed_requests": int(batched.n_failed),
                "parity_ok": bool(np.array_equal(served, reference)),
            }
    return record


PACKED_VS_INT8 = dict(
    REGEN_HEAVY,
    n_score_rows=4096,
    score_repeats=5,
    n_requests=1024,
    concurrency=16,
    max_batch_size=64,
    max_wait_ms=2.0,
)


def _binary_reference_scores(
    encoded: np.ndarray, codes: np.ndarray, dim: int
) -> np.ndarray:
    """Unpacked reference of the packed binary scorer (exact arithmetic).

    Binarises the float encoding with the same ``>= 0`` convention, counts
    disagreements against the ``{0, 1}`` code rows through an exact int64
    matmul (``|q != m| = Σq + Σm − 2·q·m`` on binary cells) and applies the
    identical ``(D − 2·hamming) / D`` float64 expression — so the packed
    kernels, which compute the same integer counts via XOR + popcount,
    must match it bit for bit.
    """
    q = (np.asarray(encoded) >= 0).astype(np.int64)
    m = np.asarray(codes, dtype=np.int64)
    counts = (
        q.sum(axis=1, dtype=np.int64)[:, None]
        + m.sum(axis=1, dtype=np.int64)[None, :]
        - 2 * (q @ m.T)
    )
    scale = np.float64(dim)
    return (scale - 2.0 * counts.astype(np.float64)) / scale


def bench_packed_deploy(
    *,
    dataset: str = PACKED_VS_INT8["dataset"],
    scale: float = PACKED_VS_INT8["scale"],
    dim: int = PACKED_VS_INT8["dim"],
    iterations: int = PACKED_VS_INT8["iterations"],
    regen_rate: float = PACKED_VS_INT8["regen_rate"],
    selection: str = PACKED_VS_INT8["selection"],
    n_score_rows: int = PACKED_VS_INT8["n_score_rows"],
    score_repeats: int = PACKED_VS_INT8["score_repeats"],
    n_requests: int = PACKED_VS_INT8["n_requests"],
    concurrency: int = PACKED_VS_INT8["concurrency"],
    max_batch_size: int = PACKED_VS_INT8["max_batch_size"],
    max_wait_ms: float = PACKED_VS_INT8["max_wait_ms"],
    seed: int = 0,
) -> Dict[str, object]:
    """Benchmark the bit-packed 1-bit deploy path against int artifacts.

    Trains DistHD at the regen-heavy operating point and freezes three
    deploy artifacts — ``bits=8``, unpacked ``bits=1`` and packed
    ``bits=1`` — then records:

    1. **footprints**: bytes per artifact plus the packed compression
       ratios from :meth:`~repro.deploy.quantized.QuantizedHDCModel.
       footprint_report`;
    2. **scorer-stage timings**: best-of-``score_repeats`` wall time of
       ``score_encoded`` on a pre-encoded ``n_score_rows`` query block for
       the packed XOR + popcount kernel vs the unpacked 1-bit cosine
       scorer (``score_speedup_vs_int``) — the scorer stage is timed in
       isolation because encoding, common to both paths, dominates end to
       end and would mask the kernel difference;
    3. **exact parity**: packed predictions vs an unpacked reference
       implementation of the same binary scorer over the full test set —
       scores bit-identical, predictions element-for-element equal,
       accuracy delta exactly 0;
    4. **serving**: the packed artifact behind a
       :class:`~repro.serve.server.ModelServer` under closed-loop load
       with a mid-run :class:`~repro.serve.adapter.OnlineAdapter`
       promotion (re-quantize → re-pack) — zero failed requests, and the
       post-swap artifact is still packed.
    """
    from repro.deploy.quantized import QuantizedHDCModel
    from repro.hdc.packed import unpack_rows
    from repro.serve.adapter import DriftDetector, OnlineAdapter
    from repro.serve.loadgen import run_load
    from repro.serve.server import ModelServer

    data = load_dataset(dataset, scale=scale, seed=seed)
    model = make_model(
        "disthd", dim=dim, iterations=iterations, seed=seed,
        regen_rate=regen_rate, selection=selection,
        convergence_patience=None,
    )
    model.fit(data.train_x, data.train_y)

    int8 = QuantizedHDCModel(model, bits=8)
    int1 = QuantizedHDCModel(model, bits=1)
    packed = QuantizedHDCModel(model, bits=1, packed=True)

    packed_report = packed.footprint_report()
    record: Dict[str, object] = {
        "scenario": "packed_vs_int8",
        "dataset": dataset,
        "n_train": int(data.train_x.shape[0]),
        "n_features": int(data.train_x.shape[1]),
        "dim": dim,
        "iterations": iterations,
        "regen_rate": regen_rate,
        "selection": selection,
        "seed": seed,
        "footprints": {
            "int8_bytes": int(int8.memory_bytes),
            "int1_bytes": int(int1.memory_bytes),
            "packed_bytes": int(packed.memory_bytes),
            "words_per_class": int(packed_report["words_per_class"]),
            "unpacked_1bit_serving_bytes": int(
                packed_report["unpacked_1bit_serving_bytes"]
            ),
            "compression_vs_unpacked": float(
                packed_report["compression_vs_unpacked"]
            ),
            "compression_vs_float": float(packed_report["compression"]),
        },
    }

    # Scorer-stage timing on one pre-encoded query block (queries are
    # resampled with replacement when the test split is smaller than
    # n_score_rows, so the block size — and the timing — is stable
    # across dataset scales).
    rng = np.random.default_rng(seed)
    idx = (
        np.arange(data.test_x.shape[0], dtype=np.int64)
        if data.test_x.shape[0] >= n_score_rows
        else rng.choice(data.test_x.shape[0], size=n_score_rows, replace=True)
    )[:n_score_rows]
    block = data.test_x[idx]
    enc = packed.encoder  # frozen deploy encoder, shared state across artifacts
    encoded = enc.encode(block)
    packed_s = _best_of(lambda: packed.score_encoded(encoded), score_repeats)
    int1_s = _best_of(lambda: int1.score_encoded(encoded), score_repeats)
    record["scoring"] = {
        "n_score_rows": int(block.shape[0]),
        "packed_score_s": packed_s,
        "int1_score_s": int1_s,
        "score_speedup_vs_int": (
            int1_s / packed_s if packed_s > 0 else None
        ),
    }

    # Exact parity: packed kernels vs the unpacked binary reference.
    test_encoded = enc.encode(data.test_x)
    backend = getattr(enc, "backend", None)
    test_np = (
        backend.to_numpy(test_encoded)
        if backend is not None else np.asarray(test_encoded)
    )
    codes = unpack_rows(packed.packed_words, dim)
    reference_scores = _binary_reference_scores(test_np, codes, dim)
    packed_scores = packed.score_encoded(test_encoded)
    reference_pred = packed.classes_[np.argmax(reference_scores, axis=1)]
    packed_pred = packed.predict(data.test_x)
    y = np.asarray(data.test_y).ravel()
    packed_acc = float(np.mean(packed_pred == y))
    reference_acc = float(np.mean(reference_pred == y))
    record["parity"] = {
        "scores_bit_identical": bool(
            np.array_equal(packed_scores, reference_scores)
        ),
        "predictions_equal": bool(np.array_equal(packed_pred, reference_pred)),
        "packed_acc": packed_acc,
        "unpacked_reference_acc": reference_acc,
        "accuracy_delta": packed_acc - reference_acc,
        "int8_acc": float(int8.score(data.test_x, data.test_y)),
    }

    # Packed serving under load with a hot-swap promotion mid-run.
    serve_artifact = QuantizedHDCModel(
        model, bits=1, packed=True, chunk_size=max_batch_size
    )
    with ModelServer(
        serve_artifact, max_batch_size=max_batch_size, max_wait_ms=max_wait_ms
    ) as server:
        adapter = OnlineAdapter(
            server, model,
            detector=DriftDetector(window=64, min_samples=32),
        )
        n_fb = min(128, data.train_x.shape[0])
        fb_x, fb_y = data.train_x[:n_fb], data.train_y[:n_fb]
        adapter.feedback(fb_x, fb_y)
        swap_fired = threading.Event()
        swap_at = n_requests // 2
        swap_gate = threading.Lock()

        def on_request(i: int) -> None:
            if i < swap_at or swap_fired.is_set():
                return
            with swap_gate:
                if swap_fired.is_set():
                    return
                swap_fired.set()
            if (
                adapter.stats()["buffered_feedback"]
                < adapter.min_adapt_samples
            ):
                adapter.feedback(fb_x, fb_y)
            try:
                adapter.adapt_now(wait=False)
            except RuntimeError:
                pass  # lost the race to a concurrent drift cycle

        batched = run_load(
            server, data.test_x,
            n_requests=n_requests,
            concurrency=concurrency,
            on_request=on_request,
        )
        adapter.join(timeout=60.0)
        stats = server.stats()
        served = server.model
        n_check = min(64, data.test_x.shape[0])
        record["serving"] = {
            "n_requests": n_requests,
            "concurrency": concurrency,
            "max_batch_size": max_batch_size,
            "max_wait_ms": max_wait_ms,
            "batched": batched.as_record(),
            "n_swaps": int(stats["n_swaps"]),
            "n_adaptations": int(adapter.n_adaptations),
            "failed_requests": int(batched.n_failed),
            "served_packed_after_swap": bool(getattr(served, "packed", False)),
            "parity_ok": bool(
                np.array_equal(
                    server.predict(data.test_x[:n_check]),
                    served.predict(data.test_x[:n_check]),
                )
            ),
        }
    return record


#: The committed fleet scenario: the packed artifact in shared memory
#: behind a 4-worker supervised fleet under closed-loop load, with a
#: per-request service floor so worker scaling is measured as process
#: concurrency (the floor is wall-clock the workers sleep through in
#: heartbeat-preserving slices, identical for every fleet size).
FLEET_RESILIENCE = dict(
    REGEN_HEAVY,
    bits=1,
    packed=True,
    n_requests=1024,
    concurrency=32,
    n_workers=4,
    queue_depth=48,
    service_floor_ms=2.0,
)


def bench_fleet_resilience(
    *,
    dataset: str = FLEET_RESILIENCE["dataset"],
    scale: float = FLEET_RESILIENCE["scale"],
    dim: int = FLEET_RESILIENCE["dim"],
    iterations: int = FLEET_RESILIENCE["iterations"],
    regen_rate: float = FLEET_RESILIENCE["regen_rate"],
    selection: str = FLEET_RESILIENCE["selection"],
    bits: int = FLEET_RESILIENCE["bits"],
    packed: bool = FLEET_RESILIENCE["packed"],
    n_requests: int = FLEET_RESILIENCE["n_requests"],
    concurrency: int = FLEET_RESILIENCE["concurrency"],
    n_workers: int = FLEET_RESILIENCE["n_workers"],
    queue_depth: int = FLEET_RESILIENCE["queue_depth"],
    service_floor_ms: float = FLEET_RESILIENCE["service_floor_ms"],
    seed: int = 0,
) -> Dict[str, object]:
    """Benchmark the multi-process fleet: scaling + chaos survival.

    Trains DistHD at the regen-heavy operating point, freezes the packed
    artifact, and:

    1. **steady state** — runs the same closed-loop load against a
       1-worker and an ``n_workers`` fleet (fresh fleet each, same
       shared-memory artifact, same ``service_floor_ms`` per request) and
       records ``throughput_scaling`` (n-worker rps / 1-worker rps) plus
       the p95 ratio (a healthy fleet's p95 must not degrade as workers
       are added — queueing delay shrinks);
    2. **chaos: SIGKILL** — a fresh ``n_workers`` fleet under the same
       load has one worker SIGKILLed mid-run; the record keeps the
       ok/shed/failed split (failed must be 0 — in-flight requests are
       retried on survivors), the recovery time back to all-running, and
       the per-worker restart counts;
    3. **chaos: crash loop** — one worker is killed every time it comes
       back until the circuit breaker opens; the record asserts it
       tripped rather than hot-looping restarts.
    """
    from repro.deploy.quantized import QuantizedHDCModel
    from repro.serve.chaos import run_chaos_drill, run_crash_loop_drill
    from repro.serve.fleet import FleetServer
    from repro.serve.loadgen import run_load

    data = load_dataset(dataset, scale=scale, seed=seed)
    model = make_model(
        "disthd", dim=dim, iterations=iterations, seed=seed,
        regen_rate=regen_rate, selection=selection,
        convergence_patience=None,
    )
    model.fit(data.train_x, data.train_y)
    artifact = QuantizedHDCModel(model, bits=bits, packed=packed)
    floor_s = service_floor_ms / 1e3

    record: Dict[str, object] = {
        "scenario": "fleet_resilience",
        "dataset": dataset,
        "n_train": int(data.train_x.shape[0]),
        "n_features": int(data.train_x.shape[1]),
        "dim": dim,
        "iterations": iterations,
        "regen_rate": regen_rate,
        "selection": selection,
        "bits": bits,
        "packed": bool(packed),
        "seed": seed,
        "n_requests": n_requests,
        "concurrency": concurrency,
        "n_workers": n_workers,
        "queue_depth": queue_depth,
        "service_floor_ms": float(service_floor_ms),
        "test_acc": float(artifact.score(data.test_x, data.test_y)),
    }

    steady: Dict[str, object] = {}
    throughputs: Dict[int, float] = {}
    p95s: Dict[int, float] = {}
    for workers in (1, n_workers):
        with FleetServer(
            artifact, n_workers=workers, queue_depth=queue_depth,
            service_floor_s=floor_s,
        ) as fleet:
            report = run_load(
                fleet, data.test_x,
                n_requests=n_requests, concurrency=concurrency,
            )
            latency = report.latency_ms() or {}
            throughputs[workers] = report.throughput_rps
            p95s[workers] = float(latency.get("p95", float("nan")))
            steady[f"workers_{workers}"] = dict(
                report.as_record(), n_workers=workers
            )
    scaling = (
        throughputs[n_workers] / throughputs[1]
        if throughputs[1] > 0 else None
    )
    p95_ratio = (
        p95s[n_workers] / p95s[1]
        if p95s.get(1) and p95s[1] > 0 else None
    )
    steady["throughput_scaling"] = scaling
    steady["p95_ratio_vs_single"] = p95_ratio
    record["steady_state"] = steady

    with FleetServer(
        artifact, n_workers=n_workers, queue_depth=queue_depth,
        service_floor_s=floor_s,
    ) as fleet:
        kill = run_chaos_drill(
            fleet, data.test_x,
            n_requests=n_requests, concurrency=concurrency,
            fault="kill", index=0,
        )
        outcomes = kill["outcomes"]
        assert isinstance(outcomes, dict)
        restarts = kill["restarts"]
        assert isinstance(restarts, list)
        kill["survived"] = bool(
            outcomes["failed"] == 0
            and kill["recovery_s"] is not None
            and restarts[0] >= 1
        )
        record["chaos_kill"] = kill

    with FleetServer(
        artifact, n_workers=2, queue_depth=queue_depth,
        service_floor_s=floor_s,
    ) as fleet:
        record["crash_loop"] = run_crash_loop_drill(fleet, index=0)
    return record


#: The committed encode-latency scenario: dense RBF vs structured Fastfood
#: encoding on the default dataset's feature width, swept over dimensions
#: and (small) batch sizes.  Single-sample encode is the operating point
#: that dominates serving latency — at large batches the dense path turns
#: into a peak-rate GEMM and the structured advantage narrows, which the
#: sweep records rather than hides.
ENCODE_LATENCY = {
    "dataset": DEFAULT_DATASET,
    "scale": DEFAULT_SCALE,
    "dims": (2048, 4096, 8192),
    "batch_sizes": (1, 4, 16, 256),
    "gate_dim": 4096,
    "gate_batch": 1,
    "acc_dim": 4096,
    "acc_iterations": DEFAULT_ITERATIONS,
    "acc_seeds": 3,
}

#: Committed single-sample encode speedup floor at the headline dimension.
ENCODE_SPEEDUP_FLOOR = 4.0

#: Maximum |mean accuracy(fastfood) − accuracy(rbf)| the parity check
#: allows, averaged over ``acc_seeds`` seeds.
ENCODE_ACC_TOLERANCE = 0.01

#: Parity and speedup gates only bind at headline dimensions.  Below this
#: the single-seed accuracy noise between two random projections of the
#: *same* family already exceeds the tolerance, so smoke-scale runs report
#: the delta informationally (``passed: None``) instead of gating on it.
ENCODE_ACC_GATE_DIM = 4096


def _time_per_call(fn, repeats: int, inner: int) -> float:
    """Best-of-``repeats`` mean seconds per call over ``inner`` calls.

    Microsecond-scale encodes are timed through an inner loop so each
    measurement spans well past the clock's resolution.
    """
    inner = max(1, int(inner))

    def run():
        for _ in range(inner):
            fn()

    return _best_of(run, repeats) / inner


def bench_encode_latency(
    *,
    dataset: str = ENCODE_LATENCY["dataset"],
    scale: float = ENCODE_LATENCY["scale"],
    dims: Sequence[int] = ENCODE_LATENCY["dims"],
    batch_sizes: Sequence[int] = ENCODE_LATENCY["batch_sizes"],
    gate_dim: int = ENCODE_LATENCY["gate_dim"],
    gate_batch: int = ENCODE_LATENCY["gate_batch"],
    acc_dim: int = ENCODE_LATENCY["acc_dim"],
    acc_iterations: int = ENCODE_LATENCY["acc_iterations"],
    acc_seeds: int = ENCODE_LATENCY["acc_seeds"],
    seed: int = 0,
    repeats: int = 5,
) -> Dict[str, object]:
    """Benchmark dense-RBF vs structured-Fastfood encoding latency.

    Three kinds of evidence go into the record:

    1. **FWHT exactness** — the backend's fast transform against the naive
       ``O(m²)`` Hadamard matmul: *bit-identical* at float64 on
       integer-valued inputs (the transform is integer-exact, see
       :mod:`repro.hdc.fwht`) and within a scale-aware float32 bound on
       Gaussian inputs;
    2. **latency sweep** — per-call ``encode`` seconds for
       :class:`~repro.hdc.encoders.rbf.RBFEncoder` (dense ``O(q·D)``) and
       :class:`~repro.hdc.encoders.structured.FastfoodRBFEncoder`
       (``O(D log D)``) across ``dims × batch_sizes``, plus the parameter
       footprints (the structured encoder stores ``O(D)`` floats, not
       ``O(q·D)``); the committed gate is the single-sample speedup at
       ``gate_dim`` against :data:`ENCODE_SPEEDUP_FLOOR`;
    3. **accuracy parity** — DistHD trained with each encoder at the same
       seeds and dimension must land within :data:`ENCODE_ACC_TOLERANCE`
       mean test accuracy over ``acc_seeds`` paired runs, so the speedup
       cannot silently cost quality.  The gate only binds at
       ``acc_dim >= ENCODE_ACC_GATE_DIM``; smaller (smoke) runs report the
       delta with ``passed: None``.
    """
    from repro.hdc.encoders import FastfoodRBFEncoder, RBFEncoder
    from repro.hdc.fwht import fwht_rows, hadamard_matrix, next_pow2

    data = load_dataset(dataset, scale=scale, seed=seed)
    X = np.ascontiguousarray(data.train_x, dtype=np.float32)
    q = int(X.shape[1])
    block = next_pow2(q)

    # 1. Exactness proof, at the block order the sweep actually exercises
    # plus two smaller orders (multi-factor and single-GEMM code paths).
    rng = np.random.default_rng(seed)
    exactness: List[Dict[str, object]] = []
    for m in sorted({8, 64, block}):
        H = hadamard_matrix(m)
        ints = rng.integers(-4, 5, size=(32, m)).astype(np.float64)
        bit_identical = bool(np.array_equal(fwht_rows(ints), ints @ H))
        xf = rng.normal(size=(32, m)).astype(np.float32)
        ref = xf.astype(np.float64) @ H
        err = float(
            np.max(np.abs(fwht_rows(xf).astype(np.float64) - ref))
        )
        tol = float(
            np.finfo(np.float32).eps * m * max(1.0, float(np.max(np.abs(ref))))
        )
        exactness.append({
            "m": int(m),
            "float64_bit_identical": bit_identical,
            "float32_max_abs_err": err,
            "float32_tol": tol,
            "float32_ok": bool(err <= tol),
        })

    # 2. Latency sweep.
    timings: List[Dict[str, object]] = []
    gate_speedup: Optional[float] = None
    for dim in dims:
        dense = RBFEncoder(q, int(dim), seed=seed, dtype="float32")
        fast = FastfoodRBFEncoder(q, int(dim), seed=seed, dtype="float32")
        rows: List[Dict[str, object]] = []
        for n in batch_sizes:
            n = int(n)
            reps = -(-n // X.shape[0])
            batch = (X[:n] if reps == 1
                     else np.ascontiguousarray(np.tile(X, (reps, 1))[:n]))
            dense.encode(batch)  # warm caches / BLAS threads
            fast.encode(batch)
            inner = max(1, 512 // n)
            dense_s = _time_per_call(
                lambda: dense.encode(batch), repeats, inner
            )
            fast_s = _time_per_call(
                lambda: fast.encode(batch), repeats, inner
            )
            speedup = dense_s / fast_s if fast_s > 0 else None
            rows.append({
                "batch": n,
                "dense_rbf_s": dense_s,
                "fastfood_s": fast_s,
                "speedup": speedup,
            })
            if int(dim) == int(gate_dim) and n == int(gate_batch):
                gate_speedup = speedup
        timings.append({
            "dim": int(dim),
            "block": int(fast.block),
            "n_blocks": int(fast.n_blocks),
            "dense_param_floats": int(q * dim + dim),
            "structured_param_floats": int(
                fast.n_blocks * 3 * fast.block + 2 * dim
            ),
            "batches": rows,
        })

    # 3. Accuracy parity, averaged over seeds: a single draw of either
    # projection family moves test accuracy by more than the tolerance at
    # any dimension, so the honest comparison is the mean paired delta.
    per_seed: List[Dict[str, float]] = []
    for s in range(seed, seed + max(1, int(acc_seeds))):
        run_data = (data if s == seed
                    else load_dataset(dataset, scale=scale, seed=s))
        accs: Dict[str, float] = {}
        for enc in ("rbf", "fastfood-rbf"):
            model = make_model(
                "disthd", dim=acc_dim, iterations=acc_iterations, seed=s,
                convergence_patience=None, encoder=enc,
            )
            model.fit(run_data.train_x, run_data.train_y)
            accs[enc] = float(model.score(run_data.test_x, run_data.test_y))
        per_seed.append({
            "seed": int(s),
            "rbf_acc": accs["rbf"],
            "fastfood_acc": accs["fastfood-rbf"],
            "delta": accs["fastfood-rbf"] - accs["rbf"],
        })
    acc_delta = float(np.mean([r["delta"] for r in per_seed]))
    acc_gated = int(acc_dim) >= ENCODE_ACC_GATE_DIM

    return {
        "scenario": "encode_latency",
        "dataset": dataset,
        "n_features": q,
        "block": int(block),
        "seed": seed,
        "repeats": repeats,
        "dims": [int(d) for d in dims],
        "batch_sizes": [int(n) for n in batch_sizes],
        "fwht_exactness": exactness,
        "timings": timings,
        "gate": {
            "dim": int(gate_dim),
            "batch": int(gate_batch),
            "speedup": gate_speedup,
            "floor": float(ENCODE_SPEEDUP_FLOOR),
            "passed": (
                gate_speedup is not None
                and gate_speedup >= ENCODE_SPEEDUP_FLOOR
            ),
        },
        "accuracy": {
            "dim": int(acc_dim),
            "iterations": int(acc_iterations),
            "seeds": [r["seed"] for r in per_seed],
            "per_seed": per_seed,
            "rbf_acc": float(np.mean([r["rbf_acc"] for r in per_seed])),
            "fastfood_acc": float(
                np.mean([r["fastfood_acc"] for r in per_seed])
            ),
            "delta": acc_delta,
            "tolerance": float(ENCODE_ACC_TOLERANCE),
            # Only binding at headline dimensions; see ENCODE_ACC_GATE_DIM.
            "passed": (
                bool(abs(acc_delta) <= ENCODE_ACC_TOLERANCE)
                if acc_gated else None
            ),
        },
    }


def _measure_fused_scoring_peak(model, data: Dataset) -> Dict[str, object]:
    """Traced allocation peak of a worst-case fused Algorithm-2 scoring pass.

    Scores *every* training sample through the three-term incorrect rule —
    the heaviest load regeneration can present — and reports the traced
    allocation peak next to the bytes one dense ``(n, D)`` distance matrix
    would occupy.  The fused peak staying far under that bound is the
    "no (n, D) temporaries" evidence the BENCH trajectory commits to (the
    same bound is asserted in ``tests/test_property_fused.py``).
    """
    encoded = model.encoder_.encode(data.train_x)
    memory = model.memory_
    labels = np.asarray(data.train_y, dtype=np.int64)
    top2, _ = memory.topk(encoded, k=2)
    n = int(labels.shape[0])
    rows = np.arange(n, dtype=np.int64)
    terms = (labels, top2[:, 0], top2[:, 1])
    coeffs = (model.config.alpha, -model.config.beta, -model.config.theta)
    C = memory.normalized_native()  # cache outside the traced window
    dense_bytes = int(n * memory.dim * np.dtype(memory.dtype).itemsize)
    backend = memory.backend
    tracemalloc.start()
    try:
        backend.fused_absdiff_colsum(
            encoded, rows, C, terms, coeffs,
            normalization=model.config.normalization,
            chunk_size=model.config.chunk_size,
        )
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return {
        "n_scored": n,
        "peak_bytes": int(peak),
        "dense_matrix_bytes": dense_bytes,
        "peak_fraction_of_dense": (
            round(peak / dense_bytes, 4) if dense_bytes else None
        ),
    }


# ------------------------------------------------------------------- bench


def bench_model(
    name: str,
    dataset: Dataset,
    *,
    dim: int = DEFAULT_DIM,
    iterations: int = DEFAULT_ITERATIONS,
    seed: int = 0,
    repeats: int = 3,
    backend: Optional[str] = None,
    dtype: Optional[str] = None,
    model_params: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Time one registered model on one dataset.

    Returns a flat record: best-of-``repeats`` ``encode_s`` (HDC models
    only), ``fit_s`` and ``predict_s``, plus test accuracy and the
    effective configuration.
    """
    declared = get_model_spec(name).param_names()
    params: Dict[str, object] = dict(model_params or {})
    for key, value in (
        ("dim", dim),
        ("iterations", iterations),
        ("seed", seed),
        ("convergence_patience", None),
        ("backend", backend),
        ("dtype", dtype),
    ):
        if key in ("backend", "dtype") and value is None:
            continue
        if key in declared or key in ("convergence_patience",):
            params.setdefault(key, value)
    try:
        model = make_model(name, **params)
    except TypeError:
        params.pop("convergence_patience", None)
        model = make_model(name, **params)

    fit_s = _best_of(
        lambda: make_model(name, **params).fit(dataset.train_x, dataset.train_y),
        repeats,
    )
    model.fit(dataset.train_x, dataset.train_y)
    predict_s = _best_of(lambda: model.predict(dataset.test_x), repeats)

    record: Dict[str, object] = {
        "model": name,
        "dataset": dataset.name,
        "n_train": int(dataset.train_x.shape[0]),
        "n_test": int(dataset.test_x.shape[0]),
        "n_features": int(dataset.train_x.shape[1]),
        "params": {k: repr(v) if not isinstance(v, (int, float, str, type(None), bool)) else v
                   for k, v in params.items()},
        "fit_s": fit_s,
        "predict_s": predict_s,
        "test_acc": float(model.score(dataset.test_x, dataset.test_y)),
    }
    encoder = getattr(model, "encoder_", None)
    if encoder is not None and hasattr(encoder, "encode"):
        record["encode_s"] = _best_of(
            lambda: encoder.encode(dataset.train_x), repeats
        )
        if hasattr(encoder, "dtype"):
            record["dtype"] = np.dtype(encoder.dtype).name
        if hasattr(encoder, "backend"):
            record["backend"] = encoder.backend.name
    return record


#: The committed observability-overhead scenario: the serving operating
#: point traced at sample rate 1.0 versus no obs bundle at all, plus a
#: fully traced fleet kill drill with a live flight recorder.
OBS_OVERHEAD = dict(
    REGEN_HEAVY,
    bits=8,
    n_requests=1024,
    concurrency=16,
    rows_per_request=8,
    max_batch_size=64,
    max_wait_ms=2.0,
    fleet_requests=512,
    fleet_concurrency=16,
    n_workers=4,
    queue_depth=48,
    service_floor_ms=2.0,
)

#: Minimum fully-traced / untraced throughput ratio the scenario gates on.
OBS_THROUGHPUT_FLOOR = 0.95

#: Maximum relative p95 growth tracing at sample rate 1.0 may add.
OBS_P95_DELTA_CEILING = 0.10

#: The overhead gates only bind at (or above) this request count.  Below
#: it (smoke-scale runs) single-digit-microsecond jitter on a ~1 ms p95
#: swings the delta by tens of percent and a few slow batches dominate
#: the throughput ratio, so the record reports both informationally
#: instead of gating on noise — same policy as the encode scenario's
#: ``ENCODE_ACC_GATE_DIM``.  ``benchmarks/check_regression.py`` still
#: enforces its looser ``MIN_OBS_THROUGHPUT_RATIO`` floor at any scale.
OBS_GATE_MIN_REQUESTS = 512


def bench_obs_overhead(
    *,
    dataset: str = OBS_OVERHEAD["dataset"],
    scale: float = OBS_OVERHEAD["scale"],
    dim: int = OBS_OVERHEAD["dim"],
    iterations: int = OBS_OVERHEAD["iterations"],
    regen_rate: float = OBS_OVERHEAD["regen_rate"],
    selection: str = OBS_OVERHEAD["selection"],
    bits: int = OBS_OVERHEAD["bits"],
    n_requests: int = OBS_OVERHEAD["n_requests"],
    concurrency: int = OBS_OVERHEAD["concurrency"],
    rows_per_request: int = OBS_OVERHEAD["rows_per_request"],
    max_batch_size: int = OBS_OVERHEAD["max_batch_size"],
    max_wait_ms: float = OBS_OVERHEAD["max_wait_ms"],
    fleet_requests: int = OBS_OVERHEAD["fleet_requests"],
    fleet_concurrency: int = OBS_OVERHEAD["fleet_concurrency"],
    n_workers: int = OBS_OVERHEAD["n_workers"],
    queue_depth: int = OBS_OVERHEAD["queue_depth"],
    service_floor_ms: float = OBS_OVERHEAD["service_floor_ms"],
    seed: int = 0,
    repeats: int = 5,
) -> Dict[str, object]:
    """Benchmark what full tracing costs, and prove the crash path works.

    1. **overhead** — the same closed-loop ``ModelServer`` load (requests
       carrying a ``rows_per_request`` client burst) runs with no obs
       bundle and again fully traced (``sample_rate=1.0``, every request
       a client span with serve/batch/encode/score children published
       into the metrics registry).  Measurement is *paired*: each of
       ``repeats`` rounds runs untraced/traced/traced/untraced
       back-to-back (best of each side within the round) and yields one
       throughput ratio and one p95 delta; the record reports the
       **medians** across rounds.  Sequential best-of-N on a busy or
       single-core host confounds the comparison with machine drift —
       the paired-round null experiment (off vs off) spans ±10% per
       round, so only a cross-round median isolates the tracing cost.
       The record gates the median ratio against
       ``OBS_THROUGHPUT_FLOOR`` and the median relative p95 growth
       against ``OBS_P95_DELTA_CEILING`` (both gates bind only at
       ``OBS_GATE_MIN_REQUESTS`` and above — below that the ratios are
       recorded informationally, since smoke-scale runs are jitter-bound).
    2. **chaos** — a traced fleet with a flight recorder takes a mid-load
       worker SIGKILL.  The drill itself validates every flight dump
       against the recorder schema; the record additionally requires at
       least one *complete retried trace* (client + supervisor
       dispatch/retry + worker spans including a finished ``score``) —
       the cross-process span tree the tracing exists to produce — and
       carries the supervisor's per-stage encode/score breakdown
       aggregated from worker-reported stage times.
    """
    import gc
    import statistics
    import tempfile

    from repro.deploy.quantized import QuantizedHDCModel
    from repro.obs import Observability, complete_retried_traces
    from repro.serve.chaos import run_chaos_drill, verify_flight_dumps
    from repro.serve.fleet import FleetServer
    from repro.serve.loadgen import LoadReport, run_load
    from repro.serve.server import ModelServer

    data = load_dataset(dataset, scale=scale, seed=seed)
    model = make_model(
        "disthd", dim=dim, iterations=iterations, seed=seed,
        regen_rate=regen_rate, selection=selection,
        convergence_patience=None,
    )
    model.fit(data.train_x, data.train_y)
    artifact = QuantizedHDCModel(model, bits=bits)

    def run_once(obs: Optional[object]) -> LoadReport:
        tracer = obs.tracer if obs is not None else None  # type: ignore[attr-defined]
        # A clean collector state per run: otherwise garbage piled up by
        # one side's run is paid for by the other side's timing.
        gc.collect()
        with ModelServer(
            artifact, max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms, obs=obs,  # type: ignore[arg-type]
        ) as server:
            return run_load(
                server, data.test_x,
                n_requests=n_requests, concurrency=concurrency,
                rows_per_request=rows_per_request,
                tracer=tracer,
            )

    def best_p95(reports: List[LoadReport]) -> Optional[float]:
        vals = [
            (r.latency_ms() or {}).get("p95") for r in reports
        ]
        cleaned = [float(v) for v in vals if v is not None]
        return min(cleaned) if cleaned else None

    def traced_run() -> LoadReport:
        nonlocal spans_recorded
        obs = Observability(
            sample_rate=1.0, max_spans=max(2048, 8 * n_requests)
        )
        report = run_once(obs)
        spans_recorded = len(obs.tracer.finished())
        return report

    n_rounds = max(1, repeats)
    spans_recorded = 0
    disabled_reports: List[LoadReport] = []
    sampled_reports: List[LoadReport] = []
    pair_ratios: List[float] = []
    pair_p95_deltas: List[float] = []
    for _ in range(n_rounds):
        # Paired round, traced runs boxed inside untraced ones (ABBA):
        # slow drift within the round biases both sides equally.
        a1 = run_once(None)
        b1 = traced_run()
        b2 = traced_run()
        a2 = run_once(None)
        disabled_reports += [a1, a2]
        sampled_reports += [b1, b2]
        round_off = max(a1.throughput_rps, a2.throughput_rps)
        round_on = max(b1.throughput_rps, b2.throughput_rps)
        if round_off > 0:
            pair_ratios.append(round_on / round_off)
        round_off_p95 = best_p95([a1, a2])
        round_on_p95 = best_p95([b1, b2])
        if round_off_p95 and round_on_p95 is not None:
            pair_p95_deltas.append(
                (round_on_p95 - round_off_p95) / round_off_p95
            )

    disabled_rps = max(r.throughput_rps for r in disabled_reports)
    sampled_rps = max(r.throughput_rps for r in sampled_reports)
    disabled_p95 = best_p95(disabled_reports)
    sampled_p95 = best_p95(sampled_reports)
    ratio = statistics.median(pair_ratios) if pair_ratios else None
    p95_delta = (
        statistics.median(pair_p95_deltas) if pair_p95_deltas else None
    )
    overhead = {
        "disabled": {
            "throughput_rps": float(disabled_rps),
            "p95_ms": disabled_p95,
        },
        "sampled": {
            "throughput_rps": float(sampled_rps),
            "p95_ms": sampled_p95,
            "spans_recorded": int(spans_recorded),
        },
        "throughput_ratio": ratio,
        "p95_delta": p95_delta,
        "round_ratios": [round(r, 4) for r in pair_ratios],
        "round_p95_deltas": [round(d, 4) for d in pair_p95_deltas],
        "gate": {
            "throughput_floor": OBS_THROUGHPUT_FLOOR,
            "p95_delta_ceiling": OBS_P95_DELTA_CEILING,
            "gated": n_requests >= OBS_GATE_MIN_REQUESTS,
            "passed": bool(
                n_requests < OBS_GATE_MIN_REQUESTS
                or (
                    ratio is not None
                    and ratio >= OBS_THROUGHPUT_FLOOR
                    and (
                        p95_delta is None
                        or p95_delta <= OBS_P95_DELTA_CEILING
                    )
                )
            ),
        },
    }

    with tempfile.TemporaryDirectory(prefix="repro-obs-bench-") as tmp:
        fleet_obs = Observability(
            sample_rate=1.0, flight_dir=tmp,
            max_spans=max(4096, 16 * fleet_requests),
        )
        with FleetServer(
            artifact, n_workers=n_workers, queue_depth=queue_depth,
            service_floor_s=service_floor_ms / 1e3, obs=fleet_obs,
        ) as fleet:
            kill = run_chaos_drill(
                fleet, data.test_x,
                n_requests=fleet_requests, concurrency=fleet_concurrency,
                fault="kill", index=0, tracer=fleet_obs.tracer,
            )
            stages = fleet.stats()["stages"]
        # close() wrote the shutdown dump; re-validate everything that
        # exists now (drill dumps + shutdown) before the tmpdir goes.
        dumps = verify_flight_dumps(fleet) or []
        complete = complete_retried_traces(fleet_obs.tracer.finished())
        chaos = {
            "outcomes": kill["outcomes"],
            "n_retries": kill["n_retries"],
            "recovery_s": kill["recovery_s"],
            "stages": stages,
            "n_flight_dumps": len(dumps),
            "flight_dumps": [Path(p).name for p in dumps],
            "spans_recorded": len(fleet_obs.tracer.finished()),
            "complete_retried_traces": len(complete),
            "passed": bool(len(dumps) >= 1 and len(complete) >= 1),
        }

    return {
        "scenario": "obs_overhead",
        "dataset": dataset,
        "n_train": int(data.train_x.shape[0]),
        "n_features": int(data.train_x.shape[1]),
        "dim": dim,
        "iterations": iterations,
        "bits": bits,
        "seed": seed,
        "n_requests": n_requests,
        "concurrency": concurrency,
        "rows_per_request": rows_per_request,
        "max_batch_size": max_batch_size,
        "max_wait_ms": max_wait_ms,
        "fleet_requests": fleet_requests,
        "fleet_concurrency": fleet_concurrency,
        "n_workers": n_workers,
        "service_floor_ms": float(service_floor_ms),
        "repeats": n_rounds,
        "overhead": overhead,
        "chaos": chaos,
    }


def run_bench(
    *,
    models: Sequence[str] = DEFAULT_MODELS,
    dataset: str = DEFAULT_DATASET,
    scale: float = DEFAULT_SCALE,
    dim: int = DEFAULT_DIM,
    iterations: int = DEFAULT_ITERATIONS,
    seed: int = 0,
    repeats: int = 3,
    backend: Optional[str] = None,
    dtype: Optional[str] = None,
    smoke: bool = False,
    include_legacy: bool = True,
    include_regen_heavy: bool = True,
    include_sharded: bool = True,
    include_serving: bool = True,
    include_packed: bool = True,
    include_fleet: bool = True,
    include_encode: bool = True,
    include_obs: bool = True,
) -> Dict[str, object]:
    """Run the full bench sweep and return the ``BENCH_*.json`` payload.

    ``smoke=True`` shrinks everything (tiny synthetic dataset, one repeat,
    a miniature regen-heavy scenario, no legacy reference timing loop
    beyond one run) so CI can exercise the harness in seconds.
    """
    if smoke:
        scale, dim, iterations, repeats = 0.02, 64, 3, 1
    data = load_dataset(dataset, scale=scale, seed=seed)
    results: List[Dict[str, object]] = [
        bench_model(
            name, data, dim=dim, iterations=iterations, seed=seed,
            repeats=repeats, backend=backend, dtype=dtype,
        )
        for name in models
    ]
    payload: Dict[str, object] = {
        "schema": 8,
        "created_unix": time.time(),
        "repro_version": __version__,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "backends_available": list(list_backends()),
        "config": {
            "dataset": dataset,
            "scale": scale,
            "dim": dim,
            "iterations": iterations,
            "seed": seed,
            "repeats": repeats,
            "smoke": bool(smoke),
            "backend": backend or get_backend(None).name,
            "dtype": dtype or "float32",
        },
        "results": results,
    }
    if include_legacy and "disthd" in models:
        legacy = bench_legacy_disthd(
            data, dim=dim, iterations=iterations, seed=seed, repeats=repeats
        )
        payload["disthd_legacy_float64"] = legacy
        new_fit = next(
            r["fit_s"] for r in results if r["model"] == "disthd"
        )
        payload["fit_speedup_vs_legacy"] = (
            float(legacy["fit_s"]) / float(new_fit) if new_fit > 0 else None
        )
    scenarios: Dict[str, object] = {}
    if include_regen_heavy:
        if smoke:
            scenarios["regen_heavy"] = bench_regen_heavy(
                scale=0.004, dim=256, iterations=3, seed=seed, repeats=1
            )
        else:
            scenarios["regen_heavy"] = bench_regen_heavy(
                seed=seed, repeats=repeats
            )
    if include_sharded:
        if smoke:
            scenarios["sharded_fit"] = bench_sharded_fit(
                scale=0.004, dim=256, iterations=4, n_jobs=2,
                seed=seed, repeats=1,
            )
        else:
            scenarios["sharded_fit"] = bench_sharded_fit(
                seed=seed, repeats=repeats
            )
    if include_serving:
        if smoke:
            scenarios["serving"] = bench_serving(
                scale=0.004, dim=256, iterations=3,
                n_requests=192, concurrency=8, seed=seed,
            )
        else:
            scenarios["serving"] = bench_serving(seed=seed)
    if include_packed:
        if smoke:
            scenarios["packed_vs_int8"] = bench_packed_deploy(
                scale=0.004, dim=256, iterations=3,
                n_score_rows=512, score_repeats=1,
                n_requests=192, concurrency=8, seed=seed,
            )
        else:
            scenarios["packed_vs_int8"] = bench_packed_deploy(seed=seed)
    if include_fleet:
        if smoke:
            scenarios["fleet_resilience"] = bench_fleet_resilience(
                scale=0.004, dim=256, iterations=3,
                n_requests=256, concurrency=16, queue_depth=32,
                seed=seed,
            )
        else:
            scenarios["fleet_resilience"] = bench_fleet_resilience(seed=seed)
    if include_encode:
        if smoke:
            # The latency sweep itself is microseconds-cheap, so smoke keeps
            # the committed gate point (D=4096, n=1); only the accuracy-
            # parity training shrinks.
            scenarios["encode_latency"] = bench_encode_latency(
                scale=0.02, dims=(2048, 4096), batch_sizes=(1, 8),
                acc_dim=256, acc_iterations=3, seed=seed, repeats=3,
            )
        else:
            scenarios["encode_latency"] = bench_encode_latency(
                seed=seed, repeats=max(repeats, 5)
            )
    if include_obs:
        if smoke:
            scenarios["obs_overhead"] = bench_obs_overhead(
                scale=0.004, dim=256, iterations=3,
                n_requests=192, concurrency=8,
                fleet_requests=160, fleet_concurrency=8,
                seed=seed, repeats=1,
            )
        else:
            # The paired-median overhead gate needs enough rounds for the
            # median to shrug off scheduler outliers (see the scenario
            # docstring) — never fewer than 5 at full scale.
            scenarios["obs_overhead"] = bench_obs_overhead(
                seed=seed, repeats=max(repeats, 5)
            )
    if scenarios:
        payload["scenarios"] = scenarios
    payload["peak_rss_mb"] = _peak_rss_mb()
    return payload


def write_bench(payload: Dict[str, object], path: Union[str, Path]) -> Path:
    """Write a bench payload as indented JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path


def format_bench_table(payload: Dict[str, object]) -> str:
    """A compact human-readable summary of a bench payload."""
    lines = [
        f"{'model':<14} {'dataset':<10} {'fit_s':>9} {'predict_s':>10} "
        f"{'encode_s':>9} {'test_acc':>9}"
    ]
    for row in payload["results"]:
        lines.append(
            f"{row['model']:<14} {row['dataset']:<10} "
            f"{row['fit_s']:>9.4f} {row['predict_s']:>10.4f} "
            f"{row.get('encode_s', float('nan')):>9.4f} "
            f"{row['test_acc']:>9.3f}"
        )
    speedup = payload.get("fit_speedup_vs_legacy")
    if speedup is not None:
        legacy = payload["disthd_legacy_float64"]
        lines.append(
            f"disthd legacy float64 fit: {legacy['fit_s']:.4f}s  "
            f"→ speedup {speedup:.2f}x"
        )
    scenario = (payload.get("scenarios") or {}).get("regen_heavy")
    if scenario is not None:
        pr2 = scenario["pr2_reference"]
        lines.append(
            f"regen-heavy ({scenario['dataset']}, D={scenario['dim']}, "
            f"R={scenario['regen_rate']}): fused {scenario['fit_s']:.4f}s "
            f"vs PR2 {pr2['fit_s']:.4f}s "
            f"→ speedup {scenario['fit_speedup_vs_pr2']:.2f}x  "
            f"(acc {scenario['test_acc']:.3f} / {pr2['test_acc']:.3f})"
        )
        scoring = scenario.get("fused_scoring") or {}
        frac = scoring.get("peak_fraction_of_dense")
        if frac is not None:
            lines.append(
                f"fused Algorithm-2 scoring peak: "
                f"{scoring['peak_bytes'] / 2**20:.2f} MiB "
                f"({frac:.1%} of one dense (n, D) distance matrix)"
            )
    sharded = (payload.get("scenarios") or {}).get("sharded_fit")
    if sharded is not None:
        speedup = sharded["fit_speedup_vs_single"]
        lines.append(
            f"sharded fit ({sharded['dataset']}, D={sharded['dim']}, "
            f"n_jobs={sharded['n_jobs']}, shards={sharded['n_shards']}): "
            f"{sharded['sharded_fit_s']:.4f}s vs single "
            f"{sharded['single_fit_s']:.4f}s "
            # None when the sharded fit timed at 0s (clock too coarse).
            f"→ speedup {'n/a' if speedup is None else f'{speedup:.2f}x'}  "
            f"(acc {sharded['sharded_test_acc']:.3f} / "
            f"{sharded['single_test_acc']:.3f})"
        )
    serving = (payload.get("scenarios") or {}).get("serving")
    if serving is not None:
        speedup = serving["throughput_speedup_vs_direct"]
        batched = serving["batched"]
        latency = batched.get("latency_ms") or {}
        lines.append(
            f"serving ({serving['dataset']}, D={serving['dim']}, "
            f"c={serving['concurrency']}, batch<={serving['max_batch_size']}):"
            f" {batched['throughput_rps']:.0f} rps vs direct "
            f"{serving['direct']['throughput_rps']:.0f} rps "
            f"→ speedup {'n/a' if speedup is None else f'{speedup:.2f}x'}  "
            f"(p95 {latency.get('p95', float('nan')):.2f} ms, "
            f"mean batch {serving.get('mean_batch_size') or float('nan'):.1f})"
        )
        swap = serving.get("swap")
        if swap is not None:
            lines.append(
                f"hot-swap under load: {swap['n_swaps']} swap(s), "
                f"{swap['failed_requests']} failed request(s), "
                f"parity {'ok' if swap['parity_ok'] else 'MISMATCH'}"
            )
    packed = (payload.get("scenarios") or {}).get("packed_vs_int8")
    if packed is not None:
        fp = packed["footprints"]
        scoring = packed["scoring"]
        parity = packed["parity"]
        pserve = packed["serving"]
        speedup = scoring["score_speedup_vs_int"]
        lines.append(
            f"packed deploy ({packed['dataset']}, D={packed['dim']}): "
            f"{fp['packed_bytes']} B vs int8 {fp['int8_bytes']} B "
            f"({fp['compression_vs_unpacked']:.0f}x vs unpacked 1-bit "
            f"serving)"
        )
        lines.append(
            f"packed scorer: {scoring['packed_score_s']:.4f}s vs "
            f"unpacked 1-bit {scoring['int1_score_s']:.4f}s → speedup "
            f"{'n/a' if speedup is None else f'{speedup:.2f}x'}  "
            f"(parity {'exact' if parity['scores_bit_identical'] else 'MISMATCH'}, "
            f"acc delta {parity['accuracy_delta']:+.4f})"
        )
        lines.append(
            f"packed hot-swap under load: {pserve['n_swaps']} swap(s), "
            f"{pserve['failed_requests']} failed request(s), "
            f"served packed after swap: "
            f"{'yes' if pserve['served_packed_after_swap'] else 'NO'}, "
            f"parity {'ok' if pserve['parity_ok'] else 'MISMATCH'}"
        )
    fleet = (payload.get("scenarios") or {}).get("fleet_resilience")
    if fleet is not None:
        steady = fleet["steady_state"]
        scaling = steady["throughput_scaling"]
        one = steady["workers_1"]
        many = steady[f"workers_{fleet['n_workers']}"]
        kill = fleet["chaos_kill"]
        loop = fleet["crash_loop"]
        outcomes = kill["outcomes"]
        recovery = kill["recovery_s"]
        lines.append(
            f"fleet ({fleet['dataset']}, D={fleet['dim']}, "
            f"c={fleet['concurrency']}, floor="
            f"{fleet['service_floor_ms']:g} ms): "
            f"{many['throughput_rps']:.0f} rps @ {fleet['n_workers']} "
            f"workers vs {one['throughput_rps']:.0f} rps @ 1 "
            f"→ scaling {'n/a' if scaling is None else f'{scaling:.2f}x'}"
        )
        lines.append(
            f"fleet SIGKILL drill: ok={outcomes['ok']} "
            f"shed={outcomes['shed']} failed={outcomes['failed']}, "
            f"{kill['n_retries']} retried, recovery "
            f"{'n/a' if recovery is None else f'{recovery * 1e3:.0f} ms'}; "
            f"crash-loop breaker "
            f"{'tripped' if loop['tripped'] else 'DID NOT TRIP'} "
            f"after {loop['deaths']} deaths"
        )
    encode = (payload.get("scenarios") or {}).get("encode_latency")
    if encode is not None:
        gate = encode["gate"]
        acc = encode["accuracy"]
        speedup = gate["speedup"]
        exact = all(
            e["float64_bit_identical"] and e["float32_ok"]
            for e in encode["fwht_exactness"]
        )
        lines.append(
            f"encode latency ({encode['dataset']}, q={encode['n_features']}"
            f"→block {encode['block']}): fastfood vs dense RBF @ "
            f"D={gate['dim']}, n={gate['batch']} → speedup "
            f"{'n/a' if speedup is None else f'{speedup:.2f}x'} "
            f"(floor {gate['floor']:.1f}x, "
            f"{'pass' if gate['passed'] else 'FAIL'}); "
            f"FWHT {'exact' if exact else 'INEXACT'} vs naive H"
        )
        verdict = ("not gated" if acc["passed"] is None
                   else "pass" if acc["passed"] else "FAIL")
        lines.append(
            f"encode accuracy parity @ D={acc['dim']} "
            f"({len(acc['per_seed'])} seeds): fastfood "
            f"{acc['fastfood_acc']:.3f} vs rbf {acc['rbf_acc']:.3f} "
            f"(mean delta {acc['delta']:+.4f}, tol {acc['tolerance']:.2f}, "
            f"{verdict})"
        )
    obs = (payload.get("scenarios") or {}).get("obs_overhead")
    if obs is not None:
        over = obs["overhead"]
        chaos = obs["chaos"]
        ratio = over["throughput_ratio"]
        delta = over["p95_delta"]
        gate = over["gate"]
        lines.append(
            f"obs overhead ({obs['dataset']}, D={obs['dim']}, "
            f"c={obs['concurrency']}, sample 1.0 vs off): throughput "
            f"{'n/a' if ratio is None else f'{ratio:.3f}x'} "
            f"(floor {gate['throughput_floor']:.2f}), p95 "
            f"{'n/a' if delta is None else f'{delta:+.1%}'} "
            f"(ceiling +{gate['p95_delta_ceiling']:.0%}"
            f"{'' if gate['gated'] else ', not gated at smoke scale'}) "
            f"→ {'pass' if gate['passed'] else 'FAIL'}"
        )
        lines.append(
            f"obs traced kill drill: {chaos['complete_retried_traces']} "
            f"complete retried trace(s), {chaos['n_flight_dumps']} "
            f"schema-valid flight dump(s), "
            f"{chaos['spans_recorded']} spans "
            f"→ {'pass' if chaos['passed'] else 'FAIL'}"
        )
    return "\n".join(lines)
