"""Model persistence: save/load fitted classifiers as ``.npz`` archives.

Every registered model's deployable state is small and fully array-valued
(encoder parameters / weight matrices + label mapping), so a flat NumPy
archive is the natural format — no pickle, no code execution on load,
portable to microcontroller toolchains that can read ``.npz``.

Two families of archive:

- **HDC models** (DistHD, OnlineHD, NeuralHD, BaselineHD) store encoder
  parameters plus the class memory and load as a :class:`LoadedHDCModel` —
  an inference-only view (training state such as histories and configs is
  intentionally not persisted); quantised deployments additionally record
  their precision and load back as a fixed-point
  :class:`~repro.deploy.quantized.QuantizedHDCModel`;
- **classical models** (MLP, linear/RFF SVM, kNN) store their weight
  arrays and load back as real classifier instances, inference-ready.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, Tuple, Union

import numpy as np

from repro.backend import resolve_dtype
from repro.baselines.baselinehd import BaselineHDClassifier
from repro.baselines.knn import KNNClassifier
from repro.baselines.mlp import MLPClassifier
from repro.baselines.neuralhd import NeuralHDClassifier
from repro.baselines.onlinehd import OnlineHDClassifier
from repro.baselines.svm import LinearSVMClassifier, RFFSVMClassifier
from repro.core.disthd import DistHDClassifier
from repro.deploy.quantized import QuantizedHDCModel, QuantizedTrainer
from repro.hdc.encoders.id_level import IDLevelEncoder
from repro.hdc.encoders.projection import RandomProjectionEncoder
from repro.hdc.encoders.rbf import RBFEncoder
from repro.hdc.encoders.structured import (
    FastfoodRBFEncoder,
    StructuredProjectionEncoder,
)
from repro.hdc.memory import AssociativeMemory

# Format history: 2 → 3 added the array dtype / trained-backend fields;
# 3 → 4 added the ``quantized_packed`` flag for bit-packed 1-bit deploys;
# 4 → 5 added the structured (SORF/Fastfood) encoder kinds with their
# diagonal/slot/scale parameters.  Loaders accept every version <= current
# (older archives default the missing fields).
_FORMAT_VERSION = 5


def _as_saved(backend, array) -> np.ndarray:
    """Materialise a possibly backend-native array as NumPy for the archive."""
    if backend is not None:
        return np.asarray(backend.to_numpy(array))
    return np.asarray(array)


def _encoder_payload(encoder) -> dict:
    b = getattr(encoder, "backend", None)
    if isinstance(encoder, FastfoodRBFEncoder):
        return {
            "encoder_kind": "fastfood-rbf",
            "enc_signs": _as_saved(b, encoder.signs),
            "enc_src_slots": np.asarray(encoder.src_slots, dtype=np.int64),
            "enc_scales": _as_saved(b, encoder.scales),
            "enc_phases": _as_saved(b, encoder.phases),
            "enc_bandwidth": np.float64(encoder.bandwidth),
            "enc_regenerated": np.int64(encoder.regenerated_count),
        }
    if isinstance(encoder, StructuredProjectionEncoder):
        return {
            "encoder_kind": "structured",
            "enc_signs": _as_saved(b, encoder.signs),
            "enc_src_slots": np.asarray(encoder.src_slots, dtype=np.int64),
            "enc_scales": _as_saved(b, encoder.scales),
            "enc_activation": encoder.activation,
            "enc_regenerated": np.int64(encoder.regenerated_count),
        }
    if isinstance(encoder, RBFEncoder):
        return {
            "encoder_kind": "rbf",
            "enc_base_vectors": _as_saved(b, encoder.base_vectors),
            "enc_phases": _as_saved(b, encoder.phases),
            "enc_bandwidth": np.float64(encoder.bandwidth),
            "enc_regenerated": np.int64(encoder.regenerated_count),
        }
    if isinstance(encoder, RandomProjectionEncoder):
        return {
            "encoder_kind": "projection",
            "enc_base_vectors": _as_saved(b, encoder.base_vectors),
            "enc_activation": encoder.activation,
        }
    if isinstance(encoder, IDLevelEncoder):
        return {
            "encoder_kind": "id-level",
            "enc_id_vectors": np.asarray(encoder.id_vectors),
            "enc_level_vectors": np.asarray(encoder.level_vectors),
            "enc_feature_range": np.asarray(encoder.feature_range),
        }
    raise TypeError(f"cannot serialise encoder type {type(encoder).__name__}")


def _restore_encoder(kind: str, data, n_features: int, dim: int, dtype):
    """Rebuild an encoder on the NumPy backend at the archived dtype.

    Models trained under any backend reload (and predict) under NumPy; the
    arrays themselves were materialised backend-neutrally at save time.
    """
    if kind == "rbf":
        encoder = RBFEncoder(
            n_features, dim, bandwidth=float(data["enc_bandwidth"]), seed=0,
            dtype=dtype,
        )
        encoder.base_vectors = np.asarray(data["enc_base_vectors"], dtype=dtype)
        encoder.phases = np.asarray(data["enc_phases"], dtype=dtype)
        encoder.regenerated_count = int(data["enc_regenerated"])
        return encoder
    if kind in ("fastfood-rbf", "structured"):
        if kind == "fastfood-rbf":
            encoder = FastfoodRBFEncoder(
                n_features, dim, bandwidth=float(data["enc_bandwidth"]),
                seed=0, dtype=dtype,
            )
            encoder.phases = np.asarray(data["enc_phases"], dtype=dtype)
            encoder._sin_phases = np.sin(encoder.phases)
        else:
            encoder = StructuredProjectionEncoder(
                n_features, dim, activation=str(data["enc_activation"]),
                seed=0, dtype=dtype,
            )
        encoder.signs = np.asarray(data["enc_signs"], dtype=dtype)
        encoder.scales = np.asarray(data["enc_scales"], dtype=dtype)
        encoder.src_slots = np.asarray(data["enc_src_slots"], dtype=np.int64)
        encoder._identity_slots = bool(
            np.array_equal(encoder.src_slots, np.arange(dim, dtype=np.int64))
        )
        encoder.regenerated_count = int(data["enc_regenerated"])
        return encoder
    if kind == "projection":
        encoder = RandomProjectionEncoder(
            n_features, dim, activation=str(data["enc_activation"]), seed=0,
            dtype=dtype,
        )
        encoder.base_vectors = np.asarray(data["enc_base_vectors"], dtype=dtype)
        return encoder
    if kind == "id-level":
        levels = np.asarray(data["enc_level_vectors"])
        low, high = np.asarray(data["enc_feature_range"])
        encoder = IDLevelEncoder(
            n_features, dim, n_levels=levels.shape[0],
            feature_range=(float(low), float(high)), seed=0, dtype=dtype,
        )
        encoder.id_vectors = np.asarray(data["enc_id_vectors"])
        encoder.level_vectors = levels
        return encoder
    raise ValueError(f"unknown encoder kind {kind!r} in archive")


class LoadedHDCModel:
    """A fitted, inference-only HDC model restored from disk.

    Exposes the inference half of the estimator protocol (``predict``,
    ``predict_topk``, ``decision_scores``, ``score``); training state
    (histories, configs) is intentionally not persisted.
    """

    def __init__(self, model_kind: str, encoder, memory: AssociativeMemory,
                 classes: np.ndarray, n_features: int) -> None:
        self.model_kind = model_kind
        self.encoder_ = encoder
        self.memory_ = memory
        self.classes_ = classes
        self.n_features_ = int(n_features)

    def decision_scores(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"model was fit with {self.n_features_} features but "
                f"received {X.shape[1]}"
            )
        return self.memory_.similarities(self.encoder_.encode(X))

    def predict(self, X) -> np.ndarray:
        return self.classes_[np.argmax(self.decision_scores(X), axis=1)]

    def predict_topk(self, X, k: int = 2) -> np.ndarray:
        scores = self.decision_scores(X)
        if not 1 <= k <= scores.shape[1]:
            raise ValueError(f"k must lie in [1, {scores.shape[1]}], got {k}")
        return self.classes_[np.argsort(-scores, axis=1)[:, :k]]

    def score(self, X, y) -> float:
        y = np.asarray(y).ravel()
        return float(np.mean(self.predict(X) == y))


# --------------------------------------------------------------------- HDC


def _hdc_payload(model) -> dict:
    memory = model.memory_
    vectors = memory.numpy_vectors()
    return {
        "memory_vectors": vectors,
        "array_dtype": np.dtype(vectors.dtype).name,
        "trained_backend": memory.backend.name,
        **_encoder_payload(model.encoder_),
    }


def _hdc_load(kind: str, data, classes, n_features: int):
    memory_vectors = np.asarray(data["memory_vectors"])
    # Format < 3 archives carry no dtype field; their arrays are float64.
    dtype = resolve_dtype(
        str(data["array_dtype"]) if "array_dtype" in data else None
    )
    n_classes, dim = memory_vectors.shape
    encoder = _restore_encoder(
        str(data["encoder_kind"]), data, n_features, dim, dtype
    )
    memory = AssociativeMemory(n_classes, dim, dtype=dtype)
    memory.set_vectors(memory_vectors)
    return LoadedHDCModel(kind, encoder, memory, classes, n_features)


def _hdc_fitted(model) -> bool:
    return getattr(model, "memory_", None) is not None


def _quantized_payload(model: QuantizedTrainer) -> dict:
    return {
        **_hdc_payload(model),
        "quantized_bits": np.int64(model.bits),
        "quantized_packed": np.bool_(model.packed),
    }


def _quantized_load(kind: str, data, classes, n_features: int):
    """Rebuild the fixed-point deployment, not just its float decode.

    The stored memory vectors already lie on the ``quantized_bits`` grid,
    so re-quantising at the same precision reproduces the deployed codes
    (packed artifacts re-pack the reproduced codes to the same words, so
    even injected faults round-trip — a flipped sign survives the decode);
    the result keeps ``inject_faults`` / ``footprint_report`` working.
    The temporary float view is not retained (``retain_base=False``) —
    the archive holds no training state worth refreshing from, and a
    loaded edge artifact should stay self-contained.  Format < 4 archives
    carry no packed flag and load unpacked.
    """
    base = _hdc_load(kind, data, classes, n_features)
    packed = (
        bool(data["quantized_packed"]) if "quantized_packed" in data else False
    )
    return QuantizedHDCModel(
        base, bits=int(data["quantized_bits"]), packed=packed,
        retain_base=False,
    )


def _quantized_fitted(model: QuantizedTrainer) -> bool:
    return model.deployed_ is not None


# --------------------------------------------------------------- classical


def _mlp_payload(model: MLPClassifier) -> dict:
    payload = {
        "hidden_sizes": np.asarray(model.hidden_sizes, dtype=np.int64),
        "n_layers": np.int64(len(model.weights_)),
    }
    for i, (w, b) in enumerate(zip(model.weights_, model.biases_)):
        payload[f"mlp_w_{i}"] = w
        payload[f"mlp_b_{i}"] = b
    return payload


def _mlp_load(kind: str, data, classes, n_features: int) -> MLPClassifier:
    model = MLPClassifier(
        hidden_sizes=tuple(int(h) for h in np.asarray(data["hidden_sizes"]))
    )
    n_layers = int(data["n_layers"])
    model.weights_ = [np.asarray(data[f"mlp_w_{i}"]) for i in range(n_layers)]
    model.biases_ = [np.asarray(data[f"mlp_b_{i}"]) for i in range(n_layers)]
    model.classes_ = classes
    model.n_features_ = n_features
    return model


def _mlp_fitted(model: MLPClassifier) -> bool:
    return bool(model.weights_)


def _svm_payload(model: LinearSVMClassifier) -> dict:
    return {
        "svm_coef": model.coef_,
        "svm_intercept": model.intercept_,
        "svm_fit_intercept": np.bool_(model.fit_intercept),
    }


def _svm_load(kind: str, data, classes, n_features: int) -> LinearSVMClassifier:
    model = LinearSVMClassifier(
        fit_intercept=bool(data["svm_fit_intercept"])
    )
    model.coef_ = np.asarray(data["svm_coef"])
    model.intercept_ = np.asarray(data["svm_intercept"])
    model.classes_ = classes
    model.n_features_ = n_features
    return model


def _svm_fitted(model: LinearSVMClassifier) -> bool:
    return model.coef_ is not None


def _rff_payload(model: RFFSVMClassifier) -> dict:
    gamma = np.float64(np.nan if model.gamma is None else model.gamma)
    return {
        "rff_frequencies": model.frequencies_,
        "rff_phases": model.phases_,
        "rff_gamma": gamma,
        **{f"inner_{k}": v for k, v in _svm_payload(model.svm_).items()},
    }


def _rff_load(kind: str, data, classes, n_features: int) -> RFFSVMClassifier:
    frequencies = np.asarray(data["rff_frequencies"])
    gamma = float(data["rff_gamma"])
    model = RFFSVMClassifier(
        n_components=frequencies.shape[0],
        gamma=None if np.isnan(gamma) else gamma,
    )
    model.frequencies_ = frequencies
    model.phases_ = np.asarray(data["rff_phases"])
    inner = LinearSVMClassifier(
        fit_intercept=bool(data["inner_svm_fit_intercept"])
    )
    inner.coef_ = np.asarray(data["inner_svm_coef"])
    inner.intercept_ = np.asarray(data["inner_svm_intercept"])
    inner.classes_ = np.arange(inner.coef_.shape[0])
    inner.n_features_ = frequencies.shape[0]
    model.svm_ = inner
    model.classes_ = classes
    model.n_features_ = n_features
    return model


def _rff_fitted(model: RFFSVMClassifier) -> bool:
    return model.svm_ is not None and model.svm_.coef_ is not None


def _knn_payload(model: KNNClassifier) -> dict:
    return {
        "knn_train_x": model._train_x,
        "knn_train_y": model._train_y,
        "knn_k": np.int64(model.k),
        "knn_weights": model.weights,
    }


def _knn_load(kind: str, data, classes, n_features: int) -> KNNClassifier:
    model = KNNClassifier(
        k=int(data["knn_k"]), weights=str(data["knn_weights"])
    )
    model._train_x = np.asarray(data["knn_train_x"])
    model._train_y = np.asarray(data["knn_train_y"])
    model.classes_ = classes
    model.n_features_ = n_features
    return model


def _knn_fitted(model: KNNClassifier) -> bool:
    return model._train_x is not None


# ------------------------------------------------------------- dispatch

# kind -> (model class, payload fn, load fn, fitted-check fn)
_FORMATS: Dict[str, Tuple[type, Callable, Callable, Callable]] = {
    "DistHDClassifier": (DistHDClassifier, _hdc_payload, _hdc_load, _hdc_fitted),
    "OnlineHDClassifier": (
        OnlineHDClassifier, _hdc_payload, _hdc_load, _hdc_fitted
    ),
    "NeuralHDClassifier": (
        NeuralHDClassifier, _hdc_payload, _hdc_load, _hdc_fitted
    ),
    "BaselineHDClassifier": (
        BaselineHDClassifier, _hdc_payload, _hdc_load, _hdc_fitted
    ),
    "QuantizedTrainer": (
        QuantizedTrainer, _quantized_payload, _quantized_load, _quantized_fitted
    ),
    "MLPClassifier": (MLPClassifier, _mlp_payload, _mlp_load, _mlp_fitted),
    "LinearSVMClassifier": (
        LinearSVMClassifier, _svm_payload, _svm_load, _svm_fitted
    ),
    "RFFSVMClassifier": (RFFSVMClassifier, _rff_payload, _rff_load, _rff_fitted),
    "KNNClassifier": (KNNClassifier, _knn_payload, _knn_load, _knn_fitted),
}


def save_model(model, path: Union[str, Path]) -> Path:
    """Serialise a fitted classifier to ``path`` (``.npz``).

    Returns the written path.  Raises ``TypeError`` for unsupported model
    types and ``RuntimeError`` for unfitted models.
    """
    kind = type(model).__name__
    if kind not in _FORMATS:
        raise TypeError(
            f"save_model supports {sorted(_FORMATS)}, got {kind}"
        )
    _, payload_fn, _, fitted_fn = _FORMATS[kind]
    if model.classes_ is None or not fitted_fn(model):
        raise RuntimeError(f"{kind} is not fitted; nothing to save")

    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    payload = {
        "format_version": np.int64(_FORMAT_VERSION),
        "model_kind": kind,
        "classes": np.asarray(model.classes_),
        "n_features": np.int64(model.n_features_),
        **payload_fn(model),
    }
    np.savez_compressed(path, **payload)
    return path


def load_model(path: Union[str, Path]):
    """Restore a model saved by :func:`save_model`.

    HDC archives load as an inference-only :class:`LoadedHDCModel`;
    classical archives load as real classifier instances.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"])
        if version > _FORMAT_VERSION:
            raise ValueError(
                f"archive format {version} is newer than supported "
                f"({_FORMAT_VERSION})"
            )
        kind = str(data["model_kind"])
        if kind not in _FORMATS:
            raise ValueError(f"unknown model kind {kind!r} in archive")
        _, _, load_fn, _ = _FORMATS[kind]
        classes = np.asarray(data["classes"])
        n_features = int(data["n_features"])
        return load_fn(kind, data, classes, n_features)
