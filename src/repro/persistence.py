"""Model persistence: save/load fitted HDC classifiers as ``.npz`` archives.

An HDC model's deployable state is small and fully array-valued (encoder
parameters + class memory + label mapping), so a flat NumPy archive is the
natural format — no pickle, no code execution on load, portable to
microcontroller toolchains that can read ``.npz``.

Supported models: :class:`~repro.core.disthd.DistHDClassifier` and the HDC
baselines sharing its state layout (OnlineHD, NeuralHD, and BaselineHD with
the RBF encoder).  BaselineHD's ID-level encoder serialises its item/level
memories instead of projection rows.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.baselines.baselinehd import BaselineHDClassifier
from repro.baselines.neuralhd import NeuralHDClassifier
from repro.baselines.onlinehd import OnlineHDClassifier
from repro.core.disthd import DistHDClassifier
from repro.hdc.encoders.id_level import IDLevelEncoder
from repro.hdc.encoders.projection import RandomProjectionEncoder
from repro.hdc.encoders.rbf import RBFEncoder
from repro.hdc.memory import AssociativeMemory

_FORMAT_VERSION = 1

_MODEL_KINDS = {
    "DistHDClassifier": DistHDClassifier,
    "OnlineHDClassifier": OnlineHDClassifier,
    "NeuralHDClassifier": NeuralHDClassifier,
    "BaselineHDClassifier": BaselineHDClassifier,
}


def _encoder_payload(encoder) -> dict:
    if isinstance(encoder, RBFEncoder):
        return {
            "encoder_kind": "rbf",
            "enc_base_vectors": encoder.base_vectors,
            "enc_phases": encoder.phases,
            "enc_bandwidth": np.float64(encoder.bandwidth),
            "enc_regenerated": np.int64(encoder.regenerated_count),
        }
    if isinstance(encoder, RandomProjectionEncoder):
        return {
            "encoder_kind": "projection",
            "enc_base_vectors": encoder.base_vectors,
            "enc_activation": encoder.activation,
        }
    if isinstance(encoder, IDLevelEncoder):
        return {
            "encoder_kind": "id-level",
            "enc_id_vectors": encoder.id_vectors,
            "enc_level_vectors": encoder.level_vectors,
            "enc_feature_range": np.asarray(encoder.feature_range),
        }
    raise TypeError(f"cannot serialise encoder type {type(encoder).__name__}")


def _restore_encoder(kind: str, data, n_features: int, dim: int):
    if kind == "rbf":
        encoder = RBFEncoder(
            n_features, dim, bandwidth=float(data["enc_bandwidth"]), seed=0
        )
        encoder.base_vectors = np.asarray(data["enc_base_vectors"])
        encoder.phases = np.asarray(data["enc_phases"])
        encoder.regenerated_count = int(data["enc_regenerated"])
        return encoder
    if kind == "projection":
        encoder = RandomProjectionEncoder(
            n_features, dim, activation=str(data["enc_activation"]), seed=0
        )
        encoder.base_vectors = np.asarray(data["enc_base_vectors"])
        return encoder
    if kind == "id-level":
        levels = np.asarray(data["enc_level_vectors"])
        low, high = np.asarray(data["enc_feature_range"])
        encoder = IDLevelEncoder(
            n_features, dim, n_levels=levels.shape[0],
            feature_range=(float(low), float(high)), seed=0,
        )
        encoder.id_vectors = np.asarray(data["enc_id_vectors"])
        encoder.level_vectors = levels
        return encoder
    raise ValueError(f"unknown encoder kind {kind!r} in archive")


def save_model(model, path: Union[str, Path]) -> Path:
    """Serialise a fitted HDC classifier to ``path`` (``.npz``).

    Returns the written path.  Raises ``TypeError`` for unsupported model
    types and ``RuntimeError`` for unfitted models.
    """
    kind = type(model).__name__
    if kind not in _MODEL_KINDS:
        raise TypeError(
            f"save_model supports {sorted(_MODEL_KINDS)}, got {kind}"
        )
    if getattr(model, "memory_", None) is None or model.classes_ is None:
        raise RuntimeError(f"{kind} is not fitted; nothing to save")

    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    payload = {
        "format_version": np.int64(_FORMAT_VERSION),
        "model_kind": kind,
        "classes": model.classes_,
        "n_features": np.int64(model.n_features_),
        "memory_vectors": model.memory_.vectors,
        **_encoder_payload(model.encoder_),
    }
    np.savez_compressed(path, **payload)
    return path


class LoadedHDCModel:
    """A fitted, inference-only model restored from disk.

    Exposes the inference half of the estimator protocol (``predict``,
    ``predict_topk``, ``decision_scores``, ``score``); training state
    (histories, configs) is intentionally not persisted.
    """

    def __init__(self, model_kind: str, encoder, memory: AssociativeMemory,
                 classes: np.ndarray, n_features: int) -> None:
        self.model_kind = model_kind
        self.encoder_ = encoder
        self.memory_ = memory
        self.classes_ = classes
        self.n_features_ = int(n_features)

    def decision_scores(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"model was fit with {self.n_features_} features but "
                f"received {X.shape[1]}"
            )
        return self.memory_.similarities(self.encoder_.encode(X))

    def predict(self, X) -> np.ndarray:
        return self.classes_[np.argmax(self.decision_scores(X), axis=1)]

    def predict_topk(self, X, k: int = 2) -> np.ndarray:
        scores = self.decision_scores(X)
        if not 1 <= k <= scores.shape[1]:
            raise ValueError(f"k must lie in [1, {scores.shape[1]}], got {k}")
        return self.classes_[np.argsort(-scores, axis=1)[:, :k]]

    def score(self, X, y) -> float:
        y = np.asarray(y).ravel()
        return float(np.mean(self.predict(X) == y))


def load_model(path: Union[str, Path]) -> LoadedHDCModel:
    """Restore a model saved by :func:`save_model`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"])
        if version > _FORMAT_VERSION:
            raise ValueError(
                f"archive format {version} is newer than supported "
                f"({_FORMAT_VERSION})"
            )
        kind = str(data["model_kind"])
        if kind not in _MODEL_KINDS:
            raise ValueError(f"unknown model kind {kind!r} in archive")
        memory_vectors = np.asarray(data["memory_vectors"])
        n_classes, dim = memory_vectors.shape
        n_features = int(data["n_features"])
        encoder = _restore_encoder(
            str(data["encoder_kind"]), data, n_features, dim
        )
        memory = AssociativeMemory(n_classes, dim)
        memory.vectors = memory_vectors
        return LoadedHDCModel(
            kind, encoder, memory, np.asarray(data["classes"]), n_features
        )
