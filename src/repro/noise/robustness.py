"""Model-level robustness evaluation (Fig. 8 harness).

``perturb_classifier`` knows how to corrupt each model family's memory image:

- HDC classifiers (anything exposing ``memory_``): the class-hypervector
  matrix is quantised at the chosen precision, bit-flipped and decoded back;
- :class:`~repro.baselines.mlp.MLPClassifier`: every weight/bias array is
  quantised (paper: "effective 8-bit representation"), flipped, decoded;
- :class:`~repro.deploy.quantized.QuantizedTrainer`: already stores a
  fixed-point memory image, so flips are injected directly into the
  deployed codes at the trainer's own precision.

``quality loss`` follows the paper: the *drop in accuracy* relative to the
clean model, in percentage points.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.baselines.mlp import MLPClassifier
from repro.hdc.memory import as_numpy_vectors
from repro.noise.bitflip import flip_bits
from repro.noise.quantization import dequantize, quantize
from repro.utils.rng import SeedLike, as_rng, spawn_seed


def perturb_classifier(model, bits: int, error_rate: float, seed: SeedLike = None):
    """Return a deep copy of ``model`` with bit-flipped quantised memory.

    Parameters
    ----------
    model:
        A fitted classifier: any HDC model with a ``memory_`` attribute, or
        an :class:`~repro.baselines.mlp.MLPClassifier`.
    bits:
        Storage precision (1, 2, 4 or 8).  A
        :class:`~repro.deploy.quantized.QuantizedTrainer` already fixes its
        own precision; asking for a different one raises ``ValueError``
        rather than silently mislabeling the sweep.
    error_rate:
        Fraction of memory bits flipped.
    seed:
        RNG seed for flip positions.
    """
    # Imported here: repro.deploy.quantized needs this package's bitflip /
    # quantization modules, so a top-level import would be circular.
    from repro.deploy.quantized import QuantizedTrainer

    rng = as_rng(seed)
    perturbed = copy.deepcopy(model)
    if isinstance(perturbed, QuantizedTrainer):
        # The deployed image is the storage: flip its codes in place.
        # (Checked before the generic memory_ branch — the trainer's
        # memory_ property decodes a throwaway copy.)
        if perturbed.deployed_ is None:
            raise RuntimeError("QuantizedTrainer is not fitted")
        if int(bits) != perturbed.bits:
            raise ValueError(
                f"model is deployed at {perturbed.bits}-bit precision but "
                f"the sweep asked for {bits}-bit flips; rebuild the model "
                f"with bits={bits} (run_experiment does this automatically)"
            )
        perturbed.deployed_.inject_faults(error_rate, spawn_seed(rng))
        return perturbed
    if hasattr(perturbed, "memory_") and perturbed.memory_ is not None:
        memory = perturbed.memory_
        qt = quantize(as_numpy_vectors(memory), bits)
        qt = flip_bits(qt, error_rate, spawn_seed(rng))
        restored = dequantize(qt)
        if hasattr(memory, "set_vectors"):
            # Cast back to the memory's own backend/dtype so the perturbed
            # model keeps predicting on its original engine.
            memory.set_vectors(restored)
        else:
            memory.vectors = restored
        return perturbed
    if isinstance(perturbed, MLPClassifier):
        params = []
        for array in perturbed.parameters():
            qt = flip_bits(quantize(array, bits), error_rate, spawn_seed(rng))
            params.append(dequantize(qt))
        perturbed.set_parameters(params)
        return perturbed
    raise TypeError(
        f"don't know how to perturb a {type(model).__name__}; expected an HDC "
        "classifier with `memory_` or an MLPClassifier"
    )


@dataclass
class RobustnessPoint:
    """One (error rate → quality loss) measurement.

    Attributes
    ----------
    error_rate:
        Fraction of bits flipped.
    bits:
        Storage precision.
    clean_accuracy / noisy_accuracy:
        Test accuracy before/after bit flips.  The clean reference is the
        *quantised* (zero-flip) model at the same precision, so the loss
        isolates hardware-error damage from quantisation damage — the
        paper's "quality loss under hardware errors".  ``noisy_accuracy``
        is averaged over trials.
    quality_loss:
        ``max(0, clean - noisy)`` in percentage points — the paper's metric.
    """

    error_rate: float
    bits: int
    clean_accuracy: float
    noisy_accuracy: float

    @property
    def quality_loss(self) -> float:
        return max(0.0, (self.clean_accuracy - self.noisy_accuracy) * 100.0)


def evaluate_quality_loss(
    model,
    X,
    y,
    *,
    bits: int,
    error_rate: float,
    n_trials: int = 3,
    seed: SeedLike = None,
) -> RobustnessPoint:
    """Average quality loss of ``model`` at one (bits, error_rate) point."""
    if n_trials <= 0:
        raise ValueError(f"n_trials must be positive, got {n_trials}")
    rng = as_rng(seed)
    # Quantised, zero-flip reference: isolates flip damage from
    # quantisation damage (see RobustnessPoint docstring).
    clean = float(perturb_classifier(model, bits, 0.0).score(X, y))
    noisy_accs = []
    for _ in range(n_trials):
        noisy = perturb_classifier(model, bits, error_rate, spawn_seed(rng))
        noisy_accs.append(float(noisy.score(X, y)))
    return RobustnessPoint(
        error_rate=float(error_rate),
        bits=int(bits),
        clean_accuracy=clean,
        noisy_accuracy=float(np.mean(noisy_accs)),
    )


def quality_loss_sweep(
    model,
    X,
    y,
    *,
    bits: int,
    error_rates: Sequence[float] = (0.01, 0.02, 0.05, 0.10, 0.15),
    n_trials: int = 3,
    seed: SeedLike = None,
) -> List[RobustnessPoint]:
    """Quality loss across the paper's error-rate grid (Fig. 8 row)."""
    rng = as_rng(seed)
    return [
        evaluate_quality_loss(
            model, X, y, bits=bits, error_rate=rate, n_trials=n_trials,
            seed=spawn_seed(rng),
        )
        for rate in error_rates
    ]


def robustness_ratio(
    reference_losses: Sequence[float], candidate_losses: Sequence[float]
) -> float:
    """Average ratio reference/candidate quality loss (paper's "×higher
    robustness"); pairs where the candidate loss is 0 are clamped to the
    reference/0.1pt ratio to avoid division blow-ups."""
    if len(reference_losses) != len(candidate_losses):
        raise ValueError("loss sequences must have equal length")
    if not reference_losses:
        raise ValueError("loss sequences must be non-empty")
    ratios = []
    for ref, cand in zip(reference_losses, candidate_losses):
        ratios.append(ref / max(cand, 0.1))
    return float(np.mean(ratios))
