"""Random bit-flip injection on quantised memory.

The paper's hardware-error model: a given percentage of the bits storing the
model image flip uniformly at random.  Flips are XORs on the unsigned code
words, so a flip on the sign bit of an 8-bit weight causes a large magnitude
change while a flip on a low bit barely matters — exactly the asymmetry
behind Fig. 8's DNN fragility.
"""

from __future__ import annotations

import numpy as np

from repro.noise.quantization import QuantizedTensor
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_probability


def flip_bits(
    qt: QuantizedTensor, error_rate: float, seed: SeedLike = None
) -> QuantizedTensor:
    """Flip a fraction ``error_rate`` of the tensor's bits, uniformly.

    The number of flipped bits is the rounded fraction of the total
    (sampling *exactly* that many distinct bit positions), which matches the
    paper's "percentage of random bit flips" phrasing and keeps low-rate
    sweeps deterministic in flip count.

    Returns a new tensor; the input is not modified.
    """
    check_probability(error_rate, "error_rate")
    out = qt.copy()
    total_bits = qt.n_bits_total
    n_flips = int(round(error_rate * total_bits))
    if n_flips == 0:
        return out
    rng = as_rng(seed)
    positions = rng.choice(total_bits, size=n_flips, replace=False)
    element_idx = positions // qt.bits
    bit_idx = positions % qt.bits
    # XOR each selected element with its flip mask (accumulate multiple
    # flips landing on the same element).
    flip_mask = np.zeros(qt.codes.size, dtype=np.uint8)
    np.bitwise_xor.at(flip_mask, element_idx, (1 << bit_idx).astype(np.uint8))
    out.codes = out.codes ^ flip_mask
    return out


def corrupt_array(
    array: np.ndarray, bits: int, error_rate: float, seed: SeedLike = None
) -> np.ndarray:
    """Quantise → flip → dequantise convenience wrapper.

    The result keeps the input's floating dtype (integer inputs decode to
    float64, the quantiser's native precision).
    """
    from repro.noise.quantization import dequantize, quantize

    arr = np.asarray(array)
    out = dequantize(flip_bits(quantize(arr, bits), error_rate, seed))
    if arr.dtype.kind == "f":
        return out.astype(arr.dtype, copy=False)
    return out
