"""Symmetric fixed-point quantisation.

Arrays are quantised to ``bits``-wide signed codes with a single per-tensor
scale:

- ``bits >= 2`` — two's-complement codes in ``[-(2^(b-1)-1), 2^(b-1)-1]``
  with ``scale = max|x| / (2^(b-1)-1)`` (the symmetric max-abs scheme used
  for the paper's "effective 8-bit representation" of DNN weights);
- ``bits == 1`` — sign quantisation: codes in {0, 1} decode to
  ``{-scale, +scale}`` with ``scale = mean|x|`` (the magnitude-preserving
  binarisation standard for bipolar hypervectors).

Codes are stored as unsigned integers so bit flips are plain XORs on the
memory words (:mod:`repro.noise.bitflip`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

SUPPORTED_BITS = (1, 2, 4, 8)


@dataclass
class QuantizedTensor:
    """A quantised array: unsigned codes + decode metadata.

    Attributes
    ----------
    codes:
        ``uint8`` array of shape ``shape`` holding the ``bits``-wide code of
        each element (only the low ``bits`` bits are meaningful).
    bits:
        Code width (1, 2, 4 or 8).
    scale:
        Decode scale factor.
    shape:
        Original array shape.
    """

    codes: np.ndarray
    bits: int
    scale: float
    shape: tuple

    @property
    def n_bits_total(self) -> int:
        """Total number of meaningful bits in the tensor's memory image."""
        return int(self.codes.size) * self.bits

    def copy(self) -> "QuantizedTensor":
        return QuantizedTensor(self.codes.copy(), self.bits, self.scale, self.shape)


def _check_bits(bits: int) -> None:
    if bits not in SUPPORTED_BITS:
        raise ValueError(f"bits must be one of {SUPPORTED_BITS}, got {bits}")


def quantize(array: np.ndarray, bits: int) -> QuantizedTensor:
    """Quantise a float array to ``bits``-wide codes.

    An all-zero array quantises to all-zero codes with scale 0 and decodes
    back to zeros exactly.
    """
    _check_bits(bits)
    arr = np.asarray(array, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot quantize an empty array")
    if not np.all(np.isfinite(arr)):
        raise ValueError("cannot quantize non-finite values")

    if bits == 1:
        scale = float(np.mean(np.abs(arr)))
        codes = (arr >= 0).astype(np.uint8)
        return QuantizedTensor(codes.ravel(), 1, scale, arr.shape)

    q_max = 2 ** (bits - 1) - 1
    max_abs = float(np.max(np.abs(arr)))
    scale = max_abs / q_max if max_abs > 0 else 0.0
    if scale == 0.0:
        signed = np.zeros(arr.shape, dtype=np.int64)
    else:
        signed = np.clip(np.round(arr / scale), -q_max, q_max).astype(np.int64)
    # Two's complement within `bits` bits, stored unsigned.
    mask = (1 << bits) - 1
    codes = (signed & mask).astype(np.uint8)
    return QuantizedTensor(codes.ravel(), bits, scale, arr.shape)


def dequantize(qt: QuantizedTensor) -> np.ndarray:
    """Decode a :class:`QuantizedTensor` back to float64."""
    _check_bits(qt.bits)
    codes = qt.codes.astype(np.int64)
    if qt.bits == 1:
        values = np.where(codes > 0, qt.scale, -qt.scale)
        return values.reshape(qt.shape).astype(np.float64)
    # Undo two's complement: codes with the sign bit set are negative.
    sign_bit = 1 << (qt.bits - 1)
    span = 1 << qt.bits
    signed = np.where(codes & sign_bit, codes - span, codes)
    # The symmetric quantiser never emits -2^(b-1); that reserved pattern can
    # only appear through bit corruption, and symmetric fixed-point decoders
    # saturate it to the minimum representable value rather than overshoot.
    q_max = sign_bit - 1
    signed = np.maximum(signed, -q_max)
    return (signed * qt.scale).reshape(qt.shape).astype(np.float64)


def quantization_error(array: np.ndarray, bits: int) -> float:
    """RMS error of a quantise→dequantise round trip (diagnostics)."""
    arr = np.asarray(array, dtype=np.float64)
    restored = dequantize(quantize(arr, bits))
    return float(np.sqrt(np.mean((arr - restored) ** 2)))
