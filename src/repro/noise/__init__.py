"""Hardware-noise substrate (paper §IV-D, Fig. 8).

The paper's fault model is "random bit flips on memory storing DNN and
DistHD models".  This package implements it exactly:

- :mod:`repro.noise.quantization` — symmetric fixed-point quantisation of
  float arrays to 1/2/4/8-bit codes (two's complement; 1-bit = sign);
- :mod:`repro.noise.bitflip` — uniform random bit flips over the packed code
  words;
- :mod:`repro.noise.robustness` — model-level injection: perturb a trained
  classifier's memory at a given precision/error rate and measure the
  accuracy ("quality") loss.
"""

from repro.noise.bitflip import flip_bits
from repro.noise.quantization import QuantizedTensor, dequantize, quantize
from repro.noise.robustness import (
    evaluate_quality_loss,
    perturb_classifier,
    quality_loss_sweep,
)

__all__ = [
    "QuantizedTensor",
    "quantize",
    "dequantize",
    "flip_bits",
    "perturb_classifier",
    "evaluate_quality_loss",
    "quality_loss_sweep",
]
