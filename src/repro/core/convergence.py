"""Convergence detection / early stopping.

The paper trains "each HDC model until it reaches convergence"; this tracker
formalises that: training stops once the monitored accuracy has failed to
improve by at least ``tol`` for ``patience`` consecutive iterations.
"""

from __future__ import annotations

from typing import Optional


class ConvergenceTracker:
    """Patience-based plateau detector.

    Parameters
    ----------
    patience:
        Consecutive non-improving iterations tolerated before declaring
        convergence.  ``None`` never converges (fixed-iteration training).
    tol:
        Minimum improvement over the best value seen that counts as progress.

    Examples
    --------
    >>> tracker = ConvergenceTracker(patience=2, tol=0.01)
    >>> [tracker.update(acc) for acc in (0.5, 0.6, 0.605, 0.606)]
    [False, False, False, True]
    """

    def __init__(self, patience: Optional[int] = 5, tol: float = 1e-3) -> None:
        if patience is not None and patience <= 0:
            raise ValueError(f"patience must be positive or None, got {patience}")
        if tol < 0:
            raise ValueError(f"tol must be non-negative, got {tol}")
        self.patience = patience
        self.tol = float(tol)
        self.best: Optional[float] = None
        self.stale_iterations = 0
        self.converged = False

    def update(self, value: float) -> bool:
        """Record one iteration's metric; returns True once converged."""
        if self.patience is None:
            return False
        if self.best is None or value > self.best + self.tol:
            self.best = max(value, self.best) if self.best is not None else value
            self.stale_iterations = 0
        else:
            self.stale_iterations += 1
            if self.stale_iterations >= self.patience:
                self.converged = True
        return self.converged

    def reset(self) -> None:
        """Forget all progress (reuse the tracker for a new fit)."""
        self.best = None
        self.stale_iterations = 0
        self.converged = False
