"""Hyper-parameter configuration for DistHD."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.utils.validation import (
    check_convergence_params,
    check_n_jobs,
    check_optional_positive_int,
    check_positive_float,
    check_positive_int,
    check_unit_interval,
)

VALID_INCORRECT_RULES = ("prose", "algorithm-box")
VALID_NORMALIZATIONS = ("l2", "l1", "minmax", "none")
VALID_SELECTIONS = ("intersection", "union", "m-only", "n-only")


@dataclass
class DistHDConfig:
    """All DistHD hyper-parameters in one validated record.

    Parameters mirror the paper's notation.

    Attributes
    ----------
    dim:
        Physical hypervector dimensionality ``D`` (paper default 0.5k).
    lr:
        Adaptive-learning rate ``η`` (Algorithm 1).
    alpha, beta, theta:
        Distance-matrix weights (Algorithm 2).  ``alpha`` weighs distance to
        the true label; ``beta`` and ``theta`` weigh proximity to the two
        wrong labels.  The paper requires ``theta < beta``.
    regen_rate:
        Regeneration rate ``R`` as a fraction in [0, 1] — the paper's
        ``R%`` of ``D`` candidates per distance vector.
    iterations:
        Maximum training iterations (epochs).
    batch_size:
        Mini-batch size for the adaptive-learning pass; ``None`` uses the
        full training set per step.
    single_pass_init:
        Initialise class hypervectors by bundling every encoded sample into
        its class before the first adaptive iteration (standard HDC
        initialisation; gives adaptive learning a trained starting point).
    rebundle_on_regen:
        After regenerating dimensions, immediately bundle the freshly
        encoded columns into the class memory so the new dimensions start
        trained ("regenerate ... for a more positive impact on the
        classification", §III-C).  Disable to let only subsequent adaptive
        iterations heal the reset columns (NeuralHD's convention).
    encoder:
        Encoder spec from the registry
        (:func:`repro.hdc.encoders.make_encoder`): ``"rbf"`` (paper
        default, dense O(q·D) projection) or ``"fastfood-rbf"`` (structured
        SORF chain, O(D log D) encode with O(D) parameter memory), plus the
        ``projection-*`` / ``structured-*`` ablation families.
    bandwidth:
        RBF encoder bandwidth (kernel-width knob of the RBF-family
        encoders; the plain projection encoders ignore it).
    incorrect_rule:
        Which formula scores incorrect samples — ``"prose"`` (§III-C text,
        the self-consistent default) or ``"algorithm-box"`` (Algorithm 2
        line 11 as printed).  See DESIGN.md §2.
    normalization:
        How the distance matrices are normalised before column-summing
        (``"l2"`` rows, ``"l1"`` rows, ``"minmax"`` rows, or ``"none"``).
    selection:
        How the per-matrix top-R% candidate sets combine: the paper's
        ``"intersection"``, or ``"union"`` / ``"m-only"`` / ``"n-only"`` for
        ablations.
    convergence_patience / convergence_tol:
        Early stopping: stop when training accuracy has improved by less
        than ``convergence_tol`` for ``convergence_patience`` consecutive
        iterations.  ``convergence_patience=None`` disables early stopping.
    reservoir_size:
        Streaming only (``partial_fit``): number of recent samples kept in
        the regeneration reservoir (Algorithm 2 needs a population of
        partially-correct / incorrect samples to score dimensions — single
        mini-batches are too noisy).
    regen_every:
        Streaming only: run a regeneration step over the reservoir after
        this many ``partial_fit`` calls.
    fused_regen:
        Score Algorithm 2's undesired dimensions with the fused, chunked
        backend kernel (never materialising the ``(n, D)`` distance
        matrices).  Disable to run the dense reference path — same results
        to floating-point tolerance, mainly useful for benchmarking and
        debugging.
    chunk_size:
        Row-chunk size bounding intermediate memory on the inference and
        regeneration-scoring paths (``decision_scores``, ``predict``,
        outcome partitioning, fused Algorithm-2 scoring).  ``None`` keeps
        inference unchunked and lets the fused kernel pick a cache-sized
        default.
    n_jobs:
        Parallel workers for data-parallel sharded fitting (see
        :func:`repro.engine.shard.shard_fit`).  ``None`` or ``1`` trains
        single-process (the default, bit-identical to earlier releases);
        ``-1`` uses every visible core.  With more than one worker,
        ``fit`` routes through ``shard_fit`` automatically.
    backend:
        Array-compute backend for encoder/memory/training hot paths
        (``"numpy"`` default; ``"torch"`` when PyTorch is installed — see
        :mod:`repro.backend`).
    dtype:
        Hot-path compute dtype, ``"float32"`` (default) or ``"float64"``.
        Similarity scores and metrics are always produced at float64.
    seed:
        Seed for the encoder and all training randomness.
    """

    dim: int = 500
    lr: float = 0.05
    alpha: float = 1.0
    beta: float = 1.0
    theta: float = 0.25
    regen_rate: float = 0.10
    iterations: int = 20
    batch_size: Optional[int] = None
    single_pass_init: bool = True
    rebundle_on_regen: bool = True
    encoder: str = "rbf"
    bandwidth: float = 0.5
    incorrect_rule: str = "prose"
    normalization: str = "l2"
    selection: str = "intersection"
    convergence_patience: Optional[int] = 5
    convergence_tol: float = 1e-3
    reservoir_size: int = 512
    regen_every: int = 10
    fused_regen: bool = True
    chunk_size: Optional[int] = None
    n_jobs: Optional[int] = None
    backend: str = "numpy"
    dtype: str = "float32"
    seed: Optional[int] = field(default=None)

    def __post_init__(self) -> None:
        check_positive_int(self.dim, "dim")
        check_positive_float(self.lr, "lr")
        if self.alpha < 0 or self.beta < 0 or self.theta < 0:
            raise ValueError(
                f"alpha, beta, theta must be non-negative, got "
                f"({self.alpha}, {self.beta}, {self.theta})"
            )
        if self.theta >= self.beta:
            raise ValueError(
                f"paper requires theta < beta, got theta={self.theta}, "
                f"beta={self.beta}"
            )
        check_unit_interval(self.regen_rate, "regen_rate")
        check_positive_int(self.iterations, "iterations")
        check_optional_positive_int(self.batch_size, "batch_size")
        check_positive_float(self.bandwidth, "bandwidth")
        # Fail fast on unknown encoder specs (same spirit as the backend /
        # dtype checks below).
        from repro.hdc.encoders import list_encoders

        if str(self.encoder).strip().lower() not in list_encoders():
            raise ValueError(
                f"encoder must be one of {list_encoders()}, "
                f"got {self.encoder!r}"
            )
        if self.incorrect_rule not in VALID_INCORRECT_RULES:
            raise ValueError(
                f"incorrect_rule must be one of {VALID_INCORRECT_RULES}, "
                f"got {self.incorrect_rule!r}"
            )
        if self.normalization not in VALID_NORMALIZATIONS:
            raise ValueError(
                f"normalization must be one of {VALID_NORMALIZATIONS}, "
                f"got {self.normalization!r}"
            )
        if self.selection not in VALID_SELECTIONS:
            raise ValueError(
                f"selection must be one of {VALID_SELECTIONS}, "
                f"got {self.selection!r}"
            )
        check_convergence_params(self.convergence_patience, self.convergence_tol)
        check_positive_int(self.reservoir_size, "reservoir_size")
        check_positive_int(self.regen_every, "regen_every")
        check_optional_positive_int(self.chunk_size, "chunk_size")
        check_n_jobs(self.n_jobs)
        # Fail fast on unknown backend names / dtype specs (ArrayBackend
        # instances and NumPy dtypes are passed through unchanged).
        from repro.backend import get_backend, resolve_dtype

        get_backend(self.backend)
        resolve_dtype(self.dtype)

    def with_overrides(self, **kwargs) -> "DistHDConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **kwargs)

    def effective_dim(self, iterations: Optional[int] = None) -> float:
        """Paper's ``D* = D + D · R% · iterations`` (planning estimate)."""
        iters = self.iterations if iterations is None else iterations
        return self.dim + self.dim * self.regen_rate * iters
