"""Algorithm 1 — similarity-weighted adaptive learning.

One iteration walks the (already encoded) training batch; for each sample
whose most-similar class is wrong, the model moves the wrongly-matched class
hypervector away from the sample and the true class hypervector toward it,
each scaled by how *surprising* the sample is:

    C_pred ← C_pred − η · (1 − δ(H, C_pred)) · H
    C_true ← C_true + η · (1 − δ(H, C_true)) · H

A sample already similar to a class (δ ≈ 1) contributes almost nothing —
this is the paper's guard against model saturation.

``adaptive_fit_iteration`` processes the data in mini-batches: similarities
for a whole batch are computed matrix-wise against the current model, and
because every update coefficient comes from those batch-start similarities,
the (typically few) mispredicted samples' updates commute and are applied as
two grouped scatter-adds per mini-batch (no per-sample Python loop).  The
paper's sequential semantics survive *between* batches: each batch sees the
model as updated by all earlier batches.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.hdc.memory import AssociativeMemory


def adaptive_update_sample(
    memory: AssociativeMemory,
    encoded,
    label: int,
    lr: float,
) -> bool:
    """Apply the Algorithm-1 update for a single encoded sample.

    Returns ``True`` when the sample was already classified correctly
    (no update applied).
    """
    sims = memory.similarities(encoded.reshape(1, -1))[0]
    predicted = int(np.argmax(sims))
    if predicted == label:
        return True
    memory.update_misclassified(
        encoded.reshape(1, -1),
        np.array([predicted], dtype=np.int64),
        np.array([label], dtype=np.int64),
        sims[[predicted]],
        sims[[label]],
        lr,
    )
    return False


def adaptive_fit_iteration(
    memory: AssociativeMemory,
    encoded,
    labels,
    *,
    lr: float = 0.05,
    batch_size: Optional[int] = None,
    shuffle_rng: Optional[np.random.Generator] = None,
) -> float:
    """Run one adaptive-learning pass over ``encoded`` data.

    Parameters
    ----------
    memory:
        Class-hypervector memory, updated in place.
    encoded:
        ``(n, D)`` encoded training batch (NumPy or backend-native).
    labels:
        ``(n,)`` integer labels.
    lr:
        Learning rate ``η``.
    batch_size:
        Samples per similarity computation; within a batch, mispredicted
        samples apply their updates against similarities computed at batch
        start (the paper's matrix-wise grouping), so the whole batch is one
        grouped scatter-add.  ``None`` processes the full set as one batch.
    shuffle_rng:
        Optional generator used to shuffle sample order each pass.

    Returns
    -------
    float
        Training accuracy of the model *as it stood at batch starts* during
        this pass (fraction of samples that needed no update).
    """
    b = memory.backend
    H = memory.as_encoded(encoded)
    labels = np.asarray(labels, dtype=np.int64)
    if H.shape[0] != labels.shape[0]:
        raise ValueError(
            f"encoded and labels disagree on sample count: "
            f"{H.shape[0]} vs {labels.shape[0]}"
        )
    if lr <= 0:
        raise ValueError(f"lr must be positive, got {lr}")
    n = H.shape[0]
    size = n if batch_size is None else min(int(batch_size), n)
    if size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")

    # A shuffle only matters when there is more than one mini-batch: with
    # the whole set as a single batch, every update coefficient comes from
    # the same batch-start similarities and the grouped scatter-adds are
    # order-independent, so the permutation (and with it a full (n, D)
    # gather copy per pass) is skipped.  Unshuffled mini-batches likewise
    # use contiguous row views instead of index gathers.
    shuffled = shuffle_rng is not None and size < n
    order = shuffle_rng.permutation(n) if shuffled else None

    n_correct = 0
    for start in range(0, n, size):
        stop = min(start + size, n)
        if shuffled:
            idx = order[start:stop]
            batch = b.take_rows(H, idx)
            batch_labels = labels[idx]
        else:
            batch = b.slice_rows(H, start, stop)
            batch_labels = labels[start:stop]
        sims = memory.similarities(batch)  # (b, k) against model at batch start
        predicted = np.argmax(sims, axis=1)
        wrong = np.flatnonzero(predicted != batch_labels)
        n_correct += (stop - start) - wrong.size
        if wrong.size:
            wrong_pred = predicted[wrong]
            wrong_true = batch_labels[wrong]
            memory.update_misclassified(
                b.take_rows(batch, wrong),
                wrong_pred,
                wrong_true,
                sims[wrong, wrong_pred],
                sims[wrong, wrong_true],
                lr,
            )
    return n_correct / n


def singlepass_fit(
    memory: AssociativeMemory, encoded, labels
) -> None:
    """Naive single-pass HDC training: bundle every sample into its class.

    The classic one-shot initialisation (Rahimi et al.); adaptive iterations
    then refine from this starting point.
    """
    memory.accumulate(encoded, labels)
