"""Training-history recording.

Every DistHD (and baseline HDC) fit collects one :class:`IterationRecord` per
iteration so convergence curves (Fig. 2, Fig. 7) fall straight out of a
trained model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class IterationRecord:
    """Metrics for a single training iteration.

    Attributes
    ----------
    iteration:
        Zero-based iteration index.
    train_accuracy:
        Top-1 training accuracy after the iteration's model update.
    top2_accuracy:
        Top-2 training accuracy (only recorded by learners that compute it).
    regenerated:
        Number of dimensions regenerated this iteration (0 for static HDC).
    effective_dim:
        Encoder effective dimensionality after this iteration.
    partial_rate / incorrect_rate:
        Fractions of the training batch per top-2 outcome.
    """

    iteration: int
    train_accuracy: float
    top2_accuracy: Optional[float] = None
    regenerated: int = 0
    effective_dim: Optional[int] = None
    partial_rate: Optional[float] = None
    incorrect_rate: Optional[float] = None


@dataclass
class TrainingHistory:
    """Chronological record of a fit, with convenience accessors."""

    records: List[IterationRecord] = field(default_factory=list)

    def append(self, record: IterationRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, index: int) -> IterationRecord:
        return self.records[index]

    @property
    def accuracies(self) -> List[float]:
        """Per-iteration top-1 training accuracy."""
        return [r.train_accuracy for r in self.records]

    @property
    def total_regenerated(self) -> int:
        """Total dimensions regenerated over the whole fit."""
        return sum(r.regenerated for r in self.records)

    @property
    def final_accuracy(self) -> float:
        if not self.records:
            raise ValueError("history is empty")
        return self.records[-1].train_accuracy

    def iterations_to_reach(self, accuracy: float) -> Optional[int]:
        """First iteration index whose training accuracy >= ``accuracy``.

        Returns ``None`` when never reached — the convergence-speed metric
        behind Fig. 7.
        """
        for record in self.records:
            if record.train_accuracy >= accuracy:
                return record.iteration
        return None

    def as_dict(self) -> Dict[str, list]:
        """Column-oriented view (for reports and plotting)."""
        return {
            "iteration": [r.iteration for r in self.records],
            "train_accuracy": [r.train_accuracy for r in self.records],
            "top2_accuracy": [r.top2_accuracy for r in self.records],
            "regenerated": [r.regenerated for r in self.records],
            "effective_dim": [r.effective_dim for r in self.records],
            "partial_rate": [r.partial_rate for r in self.records],
            "incorrect_rate": [r.incorrect_rate for r in self.records],
        }
