"""Top-2 classification and outcome partitioning (paper §III-B).

After each adaptive-learning pass, DistHD queries the partially-trained model
for the two most similar classes of every training sample and partitions
samples into three outcomes:

- **correct** — true label is the most similar class;
- **partially correct** — true label is the *second* most similar class;
- **incorrect** — true label is outside the top 2.

The partially-correct and incorrect sets feed Algorithm 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.hdc.memory import AssociativeMemory


def top2_labels(
    memory: AssociativeMemory,
    encoded: np.ndarray,
    *,
    chunk_size: Optional[int] = None,
) -> np.ndarray:
    """``(n, 2)`` array of each sample's two most-similar class labels.

    ``chunk_size`` streams the similarity computation in row windows so
    peak intermediate memory stays bounded at arbitrary batch sizes.
    """
    if memory.n_classes < 2:
        raise ValueError("top-2 classification requires at least 2 classes")
    labels, _ = memory.topk(encoded, k=2, chunk_size=chunk_size)
    return labels


@dataclass
class OutcomePartition:
    """Index sets and per-sample top-2 labels for one training iteration.

    Attributes
    ----------
    correct, partial, incorrect:
        Integer index arrays into the training batch.
    top1, top2:
        ``(n,)`` most-similar and second-most-similar class per sample.
    """

    correct: np.ndarray
    partial: np.ndarray
    incorrect: np.ndarray
    top1: np.ndarray
    top2: np.ndarray

    @property
    def n_samples(self) -> int:
        return int(self.top1.shape[0])

    def rates(self) -> dict:
        """Fractions of the batch per outcome (sums to 1)."""
        n = max(self.n_samples, 1)
        return {
            "correct": self.correct.size / n,
            "partial": self.partial.size / n,
            "incorrect": self.incorrect.size / n,
        }

    def top2_accuracy(self) -> float:
        """Fraction of samples whose true label is within the top 2."""
        n = max(self.n_samples, 1)
        return (self.correct.size + self.partial.size) / n


def partition_outcomes(
    memory: AssociativeMemory,
    encoded: np.ndarray,
    labels: np.ndarray,
    *,
    chunk_size: Optional[int] = None,
) -> OutcomePartition:
    """Partition a training batch by top-2 outcome against ``memory``."""
    labels = np.asarray(labels, dtype=np.int64)
    pair = top2_labels(memory, encoded, chunk_size=chunk_size)
    if pair.shape[0] != labels.shape[0]:
        raise ValueError(
            f"encoded and labels disagree on sample count: "
            f"{pair.shape[0]} vs {labels.shape[0]}"
        )
    top1, top2 = pair[:, 0], pair[:, 1]
    is_correct = top1 == labels
    is_partial = ~is_correct & (top2 == labels)
    is_incorrect = ~is_correct & ~is_partial
    return OutcomePartition(
        correct=np.flatnonzero(is_correct),
        partial=np.flatnonzero(is_partial),
        incorrect=np.flatnonzero(is_incorrect),
        top1=top1,
        top2=top2,
    )


def topk_accuracy_from_memory(
    memory: AssociativeMemory,
    encoded: np.ndarray,
    labels: np.ndarray,
    k: int,
    *,
    chunk_size: Optional[int] = None,
) -> float:
    """Top-``k`` accuracy of ``memory`` on an encoded batch.

    A prediction is top-``k`` correct when the true label appears among the
    ``k`` most similar classes (the paper's definition, §I).
    """
    labels = np.asarray(labels, dtype=np.int64)
    topk, _ = memory.topk(encoded, k=k, chunk_size=chunk_size)
    return float(np.mean(np.any(topk == labels[:, None], axis=1)))
