"""Algorithm 2 — identifying and regenerating undesired dimensions.

Given the outcome partition of one training iteration, build two distance
matrices:

- ``M`` (one row per *partially correct* sample):
      ``M_i = α·|H − C_true| − β·|H − C_pred|``
  large entries mark dimensions far from the true label and close to the
  wrongly-preferred label — the dimensions that mislead this sample;

- ``N`` (one row per *incorrect* sample), default "prose" rule:
      ``N_i = α·|H − C_true| − β·|H − C_top1| − θ·|H − C_top2|``
  with the printed Algorithm-2-box alternative
      ``N_i = α·|H − C_top1| + β·|H − C_top2| − θ·|H − C_true|``
  selectable for ablation (see DESIGN.md §2 for why the prose rule is the
  default).

Both matrices are normalised row-wise, column-summed into 1×D score vectors
``M'`` and ``N'``, and the *intersection* of their top-R%·D highest-scoring
dimensions is returned as the undesired set — intersecting avoids
over-eliminating dimensions that only one evidence source dislikes.

Two scoring paths produce ``M'``/``N'``:

- :func:`fused_dimension_scores` (the default, ``DistHDConfig.fused_regen``)
  streams the computation through the backend's fused
  ``fused_absdiff_colsum`` kernel in cache-sized row chunks — the ``(n, D)``
  distance matrices are never materialised and the arithmetic stays native
  to the backend (no ``to_numpy`` round trip on torch/CUDA);
- :func:`distance_matrices` + :func:`select_undesired_dimensions` — the
  dense NumPy reference the fused path is property-tested against
  (``tests/test_property_fused.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.config import DistHDConfig
from repro.core.topk import OutcomePartition
from repro.hdc.encoders.base import RegenerableEncoder
from repro.hdc.memory import AssociativeMemory

_EPS = 1e-12


def _normalize_matrix(matrix: np.ndarray, how: str) -> np.ndarray:
    """Row-normalise a distance matrix so each sample votes with equal weight."""
    if matrix.size == 0 or how == "none":
        return matrix
    if how == "l2":
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        return matrix / np.where(norms > _EPS, norms, 1.0)
    if how == "l1":
        norms = np.sum(np.abs(matrix), axis=1, keepdims=True)
        return matrix / np.where(norms > _EPS, norms, 1.0)
    if how == "minmax":
        lo = matrix.min(axis=1, keepdims=True)
        hi = matrix.max(axis=1, keepdims=True)
        span = np.where(hi - lo > _EPS, hi - lo, 1.0)
        return (matrix - lo) / span
    raise ValueError(f"unknown normalization {how!r}")


def distance_matrices(
    encoded: np.ndarray,
    labels: np.ndarray,
    partition: OutcomePartition,
    memory: AssociativeMemory,
    *,
    alpha: float = 1.0,
    beta: float = 1.0,
    theta: float = 0.25,
    incorrect_rule: str = "prose",
) -> Tuple[np.ndarray, np.ndarray]:
    """Build distance matrices ``M`` (partial) and ``N`` (incorrect).

    Returns ``(M, N)`` with shapes ``(n_partial, D)`` and ``(n_incorrect, D)``;
    either may be empty (0 rows) when its outcome set is empty.

    Per the workflow's Normalization step (Fig. 3, box L) the class
    hypervectors enter the distances in normalised form (``N_l`` of equation
    (1)): class vectors are sums over many samples, so raw ``|H − C|`` would
    be dominated by the class magnitudes instead of the per-dimension
    disagreement the selection needs.  The encoded samples ``H`` stay raw
    (their entries are already bounded by the cos·sin encoder); empirically
    this variant ranks misleading dimensions best — see DESIGN.md §2.
    """
    # Scoring runs at the encoding's own dtype (float32 on the hot path,
    # float64 when callers pass float64) — the selection only needs the
    # *ranking* of column sums, which is stable at single precision.
    H = memory.backend.to_numpy(encoded)
    labels = np.asarray(labels, dtype=np.int64)
    C = memory.normalized()
    if C.dtype != H.dtype:
        C = C.astype(H.dtype)

    # Partially correct: top1 is wrong, top2 is the true label.
    p = partition.partial
    if p.size:
        h = H[p]
        dist_true = np.abs(h - C[labels[p]])       # m  = |H - C_true(=top2)|
        dist_pred = np.abs(h - C[partition.top1[p]])  # m1 = |H - C_top1|
        M = alpha * dist_true - beta * dist_pred
    else:
        M = np.empty((0, H.shape[1]), dtype=H.dtype)

    # Incorrect: true label outside the top 2.
    q = partition.incorrect
    if q.size:
        h = H[q]
        dist_true = np.abs(h - C[labels[q]])
        dist_top1 = np.abs(h - C[partition.top1[q]])
        dist_top2 = np.abs(h - C[partition.top2[q]])
        if incorrect_rule == "prose":
            N = alpha * dist_true - beta * dist_top1 - theta * dist_top2
        elif incorrect_rule == "algorithm-box":
            N = alpha * dist_top1 + beta * dist_top2 - theta * dist_true
        else:
            raise ValueError(f"unknown incorrect_rule {incorrect_rule!r}")
    else:
        N = np.empty((0, H.shape[1]), dtype=H.dtype)
    return M, N


def _top_fraction(scores: np.ndarray, fraction: float) -> np.ndarray:
    """Indices of the ``fraction`` highest-scoring dimensions (ties by index).

    Selection runs as an O(D) argpartition instead of a full O(D log D)
    argsort; tie-breaking is kept identical to the old stable descending
    argsort (among dimensions tied at the selection threshold, the lowest
    indices win) by filling the remaining slots from an index-ascending
    scan of the threshold-valued dimensions.
    """
    dim = scores.shape[0]
    count = int(round(fraction * dim))
    count = max(0, min(count, dim))
    if count == 0:
        return np.empty(0, dtype=np.int64)
    if count >= dim:
        return np.arange(dim, dtype=np.int64)
    part = np.argpartition(-scores, count - 1)[:count]
    threshold = scores[part].min()  # the count-th largest value
    above = np.flatnonzero(scores > threshold)
    tied = np.flatnonzero(scores == threshold)[: count - above.size]
    return np.sort(np.concatenate([above, tied])).astype(np.int64, copy=False)


def _algorithm2_terms(
    labels: np.ndarray,
    partition: OutcomePartition,
    *,
    alpha: float,
    beta: float,
    theta: float,
    incorrect_rule: str,
):
    """The (class-index arrays, signed coefficients) of both distance rules.

    Returns ``(m_terms, m_coeffs, n_terms, n_coeffs)`` — the per-sample
    class gathers and weights whose ``Σ w_j·|H − C[idx_j]]|`` rows are
    exactly the ``M`` and ``N`` matrices of :func:`distance_matrices`.
    """
    p, q = partition.partial, partition.incorrect
    m_terms = (labels[p], partition.top1[p])
    m_coeffs = (alpha, -beta)
    if incorrect_rule == "prose":
        n_terms = (labels[q], partition.top1[q], partition.top2[q])
        n_coeffs = (alpha, -beta, -theta)
    elif incorrect_rule == "algorithm-box":
        n_terms = (partition.top1[q], partition.top2[q], labels[q])
        n_coeffs = (alpha, beta, -theta)
    else:
        raise ValueError(f"unknown incorrect_rule {incorrect_rule!r}")
    return m_terms, m_coeffs, n_terms, n_coeffs


def fused_dimension_scores(
    encoded,
    labels: np.ndarray,
    partition: OutcomePartition,
    memory: AssociativeMemory,
    *,
    alpha: float = 1.0,
    beta: float = 1.0,
    theta: float = 0.25,
    incorrect_rule: str = "prose",
    normalization: str = "l2",
    chunk_size: Optional[int] = None,
) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
    """Algorithm 2's column-sum score vectors ``M'`` and ``N'``, fused.

    Equivalent (to floating-point tolerance) to building the dense matrices
    with :func:`distance_matrices`, row-normalising and column-summing —
    but streamed through the backend's ``fused_absdiff_colsum`` kernel in
    cache-sized chunks, so peak extra memory is ``O(chunk · D)`` instead of
    ``O(n · D)`` and no host round-trip happens on device backends.

    Returns ``(m_scores, n_scores)`` as float64 ``(D,)`` arrays; an outcome
    set with no samples yields ``None`` for its score vector.
    """
    b = memory.backend
    H = encoded if b.is_native(encoded) else b.asarray(encoded)
    C = memory.normalized_native()
    if hasattr(H, "dtype") and hasattr(C, "dtype") and C.dtype != H.dtype:
        C = b.cast(C, H.dtype)
    labels = np.asarray(labels, dtype=np.int64)
    m_terms, m_coeffs, n_terms, n_coeffs = _algorithm2_terms(
        labels, partition,
        alpha=alpha, beta=beta, theta=theta, incorrect_rule=incorrect_rule,
    )
    m_scores = (
        b.fused_absdiff_colsum(
            H, partition.partial, C, m_terms, m_coeffs,
            normalization=normalization, chunk_size=chunk_size,
        )
        if partition.partial.size
        else None
    )
    n_scores = (
        b.fused_absdiff_colsum(
            H, partition.incorrect, C, n_terms, n_coeffs,
            normalization=normalization, chunk_size=chunk_size,
        )
        if partition.incorrect.size
        else None
    )
    return m_scores, n_scores


def undesired_from_scores(
    m_scores: Optional[np.ndarray],
    n_scores: Optional[np.ndarray],
    *,
    regen_rate: float,
    selection: str = "intersection",
) -> np.ndarray:
    """Combine ``M'``/``N'`` score vectors into the dimensions to regenerate.

    Implements Algorithm 2 lines 14–15 given the column-sum scores (from
    either the fused or the dense path).  ``None`` marks an outcome set with
    no samples: its candidate set is empty, so ``"intersection"`` yields no
    regeneration (the safe no-op) while ``"union"`` uses the other set alone.
    """
    if not 0.0 <= regen_rate <= 1.0:
        raise ValueError(f"regen_rate must be in [0, 1], got {regen_rate}")
    m_top = (
        _top_fraction(m_scores, regen_rate)
        if m_scores is not None
        else np.empty(0, np.int64)
    )
    n_top = (
        _top_fraction(n_scores, regen_rate)
        if n_scores is not None
        else np.empty(0, np.int64)
    )
    if selection == "intersection":
        return np.intersect1d(m_top, n_top)
    if selection == "union":
        return np.union1d(m_top, n_top)
    if selection == "m-only":
        return m_top
    if selection == "n-only":
        return n_top
    raise ValueError(f"unknown selection {selection!r}")


def select_undesired_dimensions(
    M: np.ndarray,
    N: np.ndarray,
    *,
    regen_rate: float,
    dim: int,
    normalization: str = "l2",
    selection: str = "intersection",
) -> np.ndarray:
    """Combine dense distance matrices into the set of dimensions to regenerate.

    Implements Algorithm 2 lines 13–15: normalise, column-sum to ``M'`` and
    ``N'``, take the top ``R%·D`` of each, combine per ``selection``.  This
    is the dense reference; training uses :func:`fused_dimension_scores` +
    :func:`undesired_from_scores` unless ``fused_regen`` is disabled.
    """
    if not 0.0 <= regen_rate <= 1.0:
        raise ValueError(f"regen_rate must be in [0, 1], got {regen_rate}")
    Mn = _normalize_matrix(np.asarray(M), normalization)
    Nn = _normalize_matrix(np.asarray(N), normalization)
    # Column sums accumulate at float64 so sample count never erodes the
    # ranking, whatever dtype the distance matrices carry.
    m_scores = Mn.sum(axis=0, dtype=np.float64) if Mn.size else None
    n_scores = Nn.sum(axis=0, dtype=np.float64) if Nn.size else None
    return undesired_from_scores(
        m_scores, n_scores, regen_rate=regen_rate, selection=selection,
    )


@dataclass
class RegenerationReport:
    """What one regeneration step did (for history/diagnostics).

    Attributes
    ----------
    dims:
        Regenerated dimension indices.
    n_partial, n_incorrect:
        Sizes of the two evidence sets this iteration.
    m_candidates, n_candidates:
        Sizes of the per-matrix top-R% candidate sets before combining.
    """

    dims: np.ndarray
    n_partial: int
    n_incorrect: int
    m_candidates: int
    n_candidates: int

    @property
    def n_regenerated(self) -> int:
        return int(self.dims.size)


def regenerate_step(
    encoded: np.ndarray,
    labels: np.ndarray,
    partition: OutcomePartition,
    memory: AssociativeMemory,
    encoder: RegenerableEncoder,
    config: DistHDConfig,
) -> RegenerationReport:
    """Run a full Algorithm-2 step: score, select, drop and regenerate.

    Scoring runs through the fused chunked kernel
    (:func:`fused_dimension_scores`) unless ``config.fused_regen`` is off,
    in which case the dense reference path builds the full distance
    matrices.  The encoder's base vectors for the undesired dimensions are
    redrawn and the class-memory entries at those dimensions reset to zero;
    callers must refresh any cached encodings for the affected columns.
    """
    if config.fused_regen:
        m_scores, n_scores = fused_dimension_scores(
            encoded,
            labels,
            partition,
            memory,
            alpha=config.alpha,
            beta=config.beta,
            theta=config.theta,
            incorrect_rule=config.incorrect_rule,
            normalization=config.normalization,
            chunk_size=config.chunk_size,
        )
        dims = undesired_from_scores(
            m_scores,
            n_scores,
            regen_rate=config.regen_rate,
            selection=config.selection,
        )
        has_m, has_n = m_scores is not None, n_scores is not None
    else:
        M, N = distance_matrices(
            encoded,
            labels,
            partition,
            memory,
            alpha=config.alpha,
            beta=config.beta,
            theta=config.theta,
            incorrect_rule=config.incorrect_rule,
        )
        dims = select_undesired_dimensions(
            M,
            N,
            regen_rate=config.regen_rate,
            dim=memory.dim,
            normalization=config.normalization,
            selection=config.selection,
        )
        has_m, has_n = bool(M.size), bool(N.size)
    m_count = int(round(config.regen_rate * memory.dim)) if has_m else 0
    n_count = int(round(config.regen_rate * memory.dim)) if has_n else 0
    if dims.size:
        encoder.regenerate(dims)
        memory.reset_dimensions(dims)
    return RegenerationReport(
        dims=dims,
        n_partial=int(partition.partial.size),
        n_incorrect=int(partition.incorrect.size),
        m_candidates=m_count,
        n_candidates=n_count,
    )
