"""DistHD core: the paper's primary contribution.

- :mod:`repro.core.config` — :class:`DistHDConfig` hyper-parameters;
- :mod:`repro.core.adaptive` — Algorithm 1, similarity-weighted adaptive
  learning;
- :mod:`repro.core.topk` — top-2 classification and the
  correct / partially-correct / incorrect outcome partition;
- :mod:`repro.core.regeneration` — Algorithm 2, undesired-dimension
  identification and regeneration;
- :mod:`repro.core.disthd` — :class:`DistHDClassifier`, the public estimator
  tying the pieces together;
- :mod:`repro.core.convergence` / :mod:`repro.core.history` — training-loop
  instrumentation.
"""

from repro.core.adaptive import adaptive_fit_iteration
from repro.core.config import DistHDConfig
from repro.core.convergence import ConvergenceTracker
from repro.core.disthd import DistHDClassifier
from repro.core.history import TrainingHistory
from repro.core.regeneration import (
    RegenerationReport,
    distance_matrices,
    select_undesired_dimensions,
)
from repro.core.topk import OutcomePartition, partition_outcomes, top2_labels

__all__ = [
    "DistHDClassifier",
    "DistHDConfig",
    "ConvergenceTracker",
    "TrainingHistory",
    "OutcomePartition",
    "RegenerationReport",
    "adaptive_fit_iteration",
    "distance_matrices",
    "partition_outcomes",
    "select_undesired_dimensions",
    "top2_labels",
]
