"""The DistHD classifier — the paper's primary contribution.

Training (Fig. 3 workflow):

1. encode the training set with a regenerable RBF encoder (step A);
2. each iteration, run one adaptive-learning pass (Algorithm 1, steps B/G/H);
3. top-2-classify the batch with the partially-trained model and partition
   samples into correct / partially-correct / incorrect (steps I/J);
4. build distance matrices M and N, select the intersection of their
   top-R% dimensions, and regenerate those dimensions — redraw encoder rows,
   reset class-memory columns, refresh the cached encoding (steps K/N/P/Q);
5. stop at convergence or after ``iterations`` passes.

Inference encodes queries with the final encoder and assigns the
most-cosine-similar class (steps D/E/F).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.adaptive import adaptive_fit_iteration
from repro.core.config import DistHDConfig
from repro.core.history import IterationRecord, TrainingHistory
from repro.core.regeneration import regenerate_step
from repro.core.topk import partition_outcomes
from repro.engine.callbacks import ConvergenceCallback, EngineState, HistoryCallback
from repro.engine.training import IterationContext, TrainingEngine
from repro.estimator import BaseClassifier
from repro.backend import get_backend
from repro.hdc.encoders import RegenerableEncoder, make_encoder
from repro.hdc.memory import AssociativeMemory
from repro.utils.rng import as_rng, spawn_seed
from repro.utils.validation import check_features_match, check_matrix


class DistHDClassifier(BaseClassifier):
    """Hyperdimensional classifier with learner-aware dynamic encoding.

    Parameters
    ----------
    config:
        A :class:`~repro.core.config.DistHDConfig`; ``None`` uses paper
        defaults (D=500, R=10%, α=β=1, θ=0.25).
    **overrides:
        Convenience keyword overrides applied on top of ``config``
        (e.g. ``DistHDClassifier(dim=1000, seed=7)``).

    Attributes
    ----------
    encoder_:
        The fitted encoder (a
        :class:`~repro.hdc.encoders.base.RegenerableEncoder` built from
        ``config.encoder`` via the encoder registry).
    memory_:
        The fitted class-hypervector :class:`~repro.hdc.memory.AssociativeMemory`.
    history_:
        Per-iteration :class:`~repro.core.history.TrainingHistory`.
    n_iterations_:
        Iterations actually run (≤ ``config.iterations`` with early stopping).

    Examples
    --------
    >>> from repro.datasets import load_dataset
    >>> ds = load_dataset("ucihar", seed=0, scale=0.05)
    >>> clf = DistHDClassifier(dim=200, iterations=5, seed=0)
    >>> clf.fit(ds.train_x, ds.train_y).score(ds.test_x, ds.test_y)  # doctest: +SKIP
    0.9...
    """

    supports_streaming = True
    supports_sharding = True

    def __init__(self, config: Optional[DistHDConfig] = None, **overrides) -> None:
        super().__init__()
        base = config if config is not None else DistHDConfig()
        self.config = base.with_overrides(**overrides) if overrides else base
        self.encoder_: Optional[RegenerableEncoder] = None
        self.memory_: Optional[AssociativeMemory] = None
        self.history_: Optional[TrainingHistory] = None
        self.n_iterations_: int = 0
        self.total_regenerated_: int = 0
        self._reservoir_rng = None
        self._reservoir_x: Optional[np.ndarray] = None
        self._reservoir_y: Optional[np.ndarray] = None
        self._bundle_first_batch = False

    # -------------------------------------------------------------- training

    def _fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        *,
        init_memory: Optional[np.ndarray] = None,
        iterations: Optional[int] = None,
    ) -> None:
        """Batch training: encoder/memory setup plus the engine-driven loop.

        ``init_memory`` seeds the class bank from an existing (merged)
        memory instead of single-pass bundling, and ``iterations``
        overrides the config budget — together they form the refinement
        half of :meth:`shard_fit`.
        """
        cfg = self.config
        n_classes = int(self.classes_.size)
        self._reset_stream_state()
        rng = as_rng(cfg.seed)
        backend = get_backend(cfg.backend)
        self.encoder_ = make_encoder(
            cfg.encoder, X.shape[1], cfg.dim,
            bandwidth=cfg.bandwidth, seed=spawn_seed(rng),
            dtype=cfg.dtype, backend=backend,
        )
        self.memory_ = AssociativeMemory(
            n_classes, cfg.dim, dtype=cfg.dtype, backend=backend
        )
        self.history_ = TrainingHistory()
        shuffle_rng = as_rng(spawn_seed(rng))

        encoded = self.encoder_.encode(X)
        if init_memory is not None:
            self.memory_.set_vectors(init_memory)
        elif cfg.single_pass_init:
            self.memory_.accumulate(encoded, y)

        def step(context: IterationContext) -> IterationRecord:
            adaptive_fit_iteration(
                self.memory_,
                encoded,
                y,
                lr=cfg.lr,
                batch_size=cfg.batch_size,
                shuffle_rng=shuffle_rng,
            )
            partition = partition_outcomes(
                self.memory_, encoded, y, chunk_size=cfg.chunk_size
            )
            train_acc = partition.correct.size / max(partition.n_samples, 1)
            rates = partition.rates()

            regenerated = 0
            if cfg.regen_rate > 0 and not context.is_last and not context.converged:
                report = regenerate_step(
                    encoded, y, partition, self.memory_, self.encoder_, cfg
                )
                regenerated = report.n_regenerated
                if regenerated:
                    # Refresh only the redrawn columns of the cached encoding.
                    fresh = self.encoder_.encode_dims(X, report.dims)
                    backend.set_columns(encoded, report.dims, fresh)
                    if cfg.rebundle_on_regen:
                        # Re-bundle the fresh columns so the regenerated
                        # dimensions start trained instead of at zero.
                        self.memory_.bundle_columns(y, report.dims, fresh)

            return IterationRecord(
                iteration=context.iteration,
                train_accuracy=train_acc,
                top2_accuracy=partition.top2_accuracy(),
                regenerated=regenerated,
                effective_dim=self.encoder_.effective_dim(),
                partial_rate=rates["partial"],
                incorrect_rate=rates["incorrect"],
            )

        engine = TrainingEngine(
            cfg.iterations if iterations is None else iterations,
            callbacks=(
                HistoryCallback(self.history_),
                ConvergenceCallback(cfg.convergence_patience, cfg.convergence_tol),
            ),
        )
        state = EngineState()
        try:
            engine.run(step, state=state)
        finally:
            # Accurate even when a step raises mid-fit: completed
            # iterations, matching the records history_ holds.
            self.n_iterations_ = state.n_iterations

    # -------------------------------------------------------------- sharding

    def _configured_n_jobs(self) -> Optional[int]:
        return self.config.n_jobs

    def _shard_seed(self) -> Optional[int]:
        return self.config.seed

    def _set_shard_seed(self, seed: Optional[int]) -> None:
        self.config = self.config.with_overrides(seed=seed)

    def _iteration_budget(self) -> int:
        return self.config.iterations

    def _configure_for_shard(self, shard_iterations: Optional[int]) -> None:
        overrides = {"regen_rate": 0.0, "n_jobs": None}
        if shard_iterations is not None:
            overrides["iterations"] = shard_iterations
        self.config = self.config.with_overrides(**overrides)

    # ------------------------------------------------------------- streaming

    def _reset_stream_state(self) -> None:
        self.n_batches_ = 0
        self.n_samples_seen_ = 0
        self.total_regenerated_ = 0
        self._reservoir_rng = None
        self._reservoir_x = None
        self._reservoir_y = None
        self._bundle_first_batch = False

    def _ensure_stream_state(self) -> None:
        """Create encoder/memory/reservoir for incremental training.

        Idempotent: a model that already holds batch-fitted state keeps it
        (``partial_fit`` then refines the fitted model), only the reservoir
        is added.
        """
        if self.encoder_ is not None and self._reservoir_x is not None:
            return
        cfg = self.config
        rng = as_rng(cfg.seed)
        encoder_seed, reservoir_seed = spawn_seed(rng), spawn_seed(rng)
        if self.encoder_ is None:
            backend = get_backend(cfg.backend)
            self.encoder_ = make_encoder(
                cfg.encoder, self.n_features_, cfg.dim,
                bandwidth=cfg.bandwidth, seed=encoder_seed,
                dtype=cfg.dtype, backend=backend,
            )
            self.memory_ = AssociativeMemory(
                int(self.classes_.size), cfg.dim,
                dtype=cfg.dtype, backend=backend,
            )
            self.history_ = TrainingHistory()
            # Fresh model: classic one-shot bundling of the first batch.
            self._bundle_first_batch = cfg.single_pass_init
        if self._reservoir_x is None:
            self._reservoir_rng = as_rng(reservoir_seed)
            self._reservoir_x = np.empty((0, self.n_features_), dtype=np.float64)
            self._reservoir_y = np.empty(0, dtype=np.int64)

    def _partial_fit(self, X: np.ndarray, y: np.ndarray) -> None:
        """One streamed mini-batch: encode, adapt, maybe regenerate.

        Runs DistHD's machinery incrementally — each batch gets one
        Algorithm-1 adaptive pass, and every ``config.regen_every`` batches
        an Algorithm-2 regeneration step runs over a sliding reservoir of
        recent samples (single batches are too noisy to score dimensions).
        This extends the paper (its evaluation is batch training) but is a
        direct composition of its two algorithms; the reservoir plays the
        role of the "batch data" in the paper's Fig. 3 workflow.
        """
        cfg = self.config
        self._ensure_stream_state()
        encoded = self.encoder_.encode(X)
        if self._bundle_first_batch and self.n_batches_ == 1:
            self.memory_.accumulate(encoded, y)
        adaptive_fit_iteration(self.memory_, encoded, y, lr=cfg.lr)
        self._update_reservoir(X, y)
        if (
            cfg.regen_rate > 0
            and self.n_batches_ % cfg.regen_every == 0
            and self._reservoir_x.shape[0] >= self.classes_.size * 2
        ):
            self._regenerate_from_reservoir()

    def _update_reservoir(self, X: np.ndarray, labels: np.ndarray) -> None:
        """Uniform reservoir sampling over the stream."""
        self._reservoir_x = np.vstack([self._reservoir_x, X])
        self._reservoir_y = np.concatenate([self._reservoir_y, labels])
        excess = self._reservoir_x.shape[0] - self.config.reservoir_size
        if excess > 0:
            keep = self._reservoir_rng.choice(
                self._reservoir_x.shape[0], size=self.config.reservoir_size,
                replace=False,
            )
            keep.sort()
            self._reservoir_x = self._reservoir_x[keep]
            self._reservoir_y = self._reservoir_y[keep]

    def _regenerate_from_reservoir(self) -> None:
        encoded = self.encoder_.encode(self._reservoir_x)
        partition = partition_outcomes(
            self.memory_, encoded, self._reservoir_y,
            chunk_size=self.config.chunk_size,
        )
        report = regenerate_step(
            encoded, self._reservoir_y, partition, self.memory_,
            self.encoder_, self.config,
        )
        if report.n_regenerated and self.config.rebundle_on_regen:
            fresh = self.encoder_.encode_dims(self._reservoir_x, report.dims)
            self.memory_.bundle_columns(self._reservoir_y, report.dims, fresh)
        self.total_regenerated_ += report.n_regenerated

    # ------------------------------------------------------------- inference

    def decision_scores(self, X) -> np.ndarray:
        """Cosine similarity of each query against each class hypervector.

        When ``config.chunk_size`` is set, queries stream through
        encode-then-score in row chunks: the full ``(n, D)`` encoded batch
        is never materialised, so inference memory is bounded at arbitrary
        batch sizes (only the ``(n, k)`` score matrix is allocated).
        """
        self._check_fitted()
        X = check_matrix(X, "X")
        check_features_match(self.n_features_, X.shape[1], type(self).__name__)
        chunk = self.config.chunk_size
        n = X.shape[0]
        if chunk is None or n <= chunk:
            return self.memory_.similarities(self.encoder_.encode(X))
        out = np.empty((n, self.memory_.n_classes), dtype=np.float64)
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            out[start:stop] = self.memory_.similarities(
                self.encoder_.encode(X[start:stop])
            )
        return out

    def encode(self, X) -> np.ndarray:
        """Expose the fitted encoder (useful for robustness experiments)."""
        self._check_fitted()
        return self.encoder_.encode(
            check_matrix(X, "X"), chunk_size=self.config.chunk_size
        )

    # ------------------------------------------------------------ properties

    @property
    def effective_dim_(self) -> int:
        """Paper's D*: physical D plus all dimensions regenerated during fit."""
        self._check_fitted()
        return self.encoder_.effective_dim()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DistHDClassifier(dim={self.config.dim}, regen_rate={self.config.regen_rate})"
