"""The model registry: construct any library classifier by name.

Mirrors :mod:`repro.datasets.registry` for the estimator layer.  Every
classifier (DistHD, the six baselines, and the deploy variants) is
registered under a short name together with a declarative hyper-parameter
spec, so pipelines, the CLI, grid search, and user code can build models by
name instead of importing concrete classes::

    from repro.models import make_model, list_models

    clf = make_model("disthd", dim=1000, seed=0)
    list_models(tag="streaming")   # every online-capable learner

Registration is open: downstream code adds its own learners with
:func:`register_model` (usable as a decorator factory) and they immediately
work everywhere models are referenced by name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Hyperparam:
    """One declarative hyper-parameter of a registered model.

    Attributes
    ----------
    name:
        Keyword argument the model factory accepts.
    default:
        Value used when the caller does not override it (informational —
        the factory's own default is authoritative).
    grid:
        Candidate values for grid search; empty means "not swept by
        default".  :meth:`ModelSpec.default_grid` collects these into the
        space :func:`repro.pipeline.grid.grid_search` consumes.
    description:
        One-line human description (shown by the CLI).
    """

    name: str
    default: object = None
    grid: Tuple = ()
    description: str = ""


@dataclass(frozen=True)
class ModelSpec:
    """A registered model: factory, capability tags, hyper-parameter spec."""

    name: str
    factory: Callable[..., object]
    tags: Tuple[str, ...] = ()
    description: str = ""
    hyperparams: Tuple[Hyperparam, ...] = ()

    def param_names(self) -> Tuple[str, ...]:
        """Names of the declared hyper-parameters."""
        return tuple(p.name for p in self.hyperparams)

    def default_grid(self) -> Dict[str, Sequence]:
        """The declared search space, ready for ``grid_search``."""
        return {p.name: list(p.grid) for p in self.hyperparams if p.grid}


_REGISTRY: Dict[str, ModelSpec] = {}


def register_model(
    name: str,
    factory: Optional[Callable[..., object]] = None,
    *,
    tags: Sequence[str] = (),
    description: str = "",
    hyperparams: Sequence[Hyperparam] = (),
    overwrite: bool = False,
):
    """Register ``factory`` under ``name``; usable as a decorator factory.

    ``factory(**hyperparams)`` must return a fresh, unfitted model.  Names
    are case-insensitive and must be unique unless ``overwrite`` is set.

    Returns the factory (decorator form) or the created :class:`ModelSpec`.
    """
    key = name.strip().lower()
    if not key:
        raise ValueError("model name must be non-empty")

    def _register(fn: Callable[..., object]):
        if key in _REGISTRY and not overwrite:
            raise ValueError(
                f"model {key!r} is already registered; pass overwrite=True "
                "to replace it"
            )
        _REGISTRY[key] = ModelSpec(
            name=key,
            factory=fn,
            tags=tuple(tags),
            description=description,
            hyperparams=tuple(hyperparams),
        )
        return fn

    if factory is None:
        return _register
    _register(factory)
    return _REGISTRY[key]


def get_model_spec(name: str) -> ModelSpec:
    """Look up a model spec by (case-insensitive) name."""
    key = str(name).strip().lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key]


def make_model(name: str, **hyperparams):
    """Build a fresh, unfitted model registered under ``name``.

    Keyword arguments are forwarded to the registered factory, which
    validates them (unknown parameters raise ``TypeError`` from the
    underlying constructor).
    """
    return get_model_spec(name).factory(**hyperparams)


def list_models(tag: Optional[str] = None) -> Tuple[str, ...]:
    """Registered model names (sorted); optionally filtered by ``tag``."""
    names = sorted(_REGISTRY)
    if tag is None:
        return tuple(names)
    return tuple(n for n in names if tag in _REGISTRY[n].tags)


def default_hyperparam_grid(name: str) -> Dict[str, Sequence]:
    """The declared grid-search space for ``name`` (may be empty)."""
    return get_model_spec(name).default_grid()
