"""Model construction and dispatch: the estimator-layer registry.

``from repro.models import make_model`` is the single way to build any
library classifier by name; importing this package registers the full
catalog (DistHD, the six baselines, and the deploy variants).
"""

from repro.models import catalog as _catalog  # noqa: F401  (populates registry)
from repro.models.registry import (
    Hyperparam,
    ModelSpec,
    default_hyperparam_grid,
    get_model_spec,
    list_models,
    make_model,
    register_model,
)

__all__ = [
    "Hyperparam",
    "ModelSpec",
    "default_hyperparam_grid",
    "get_model_spec",
    "list_models",
    "make_model",
    "register_model",
]
