"""Registrations for every classifier shipped with the library.

Importing this module (or :mod:`repro.models`) populates the registry with
the paper's model zoo — DistHD plus its six comparators — and the deploy
variants.  Tags encode capabilities:

- ``"hdc"`` / ``"classical"`` — model family;
- ``"paper"`` — appears in the paper's Fig. 4/5 comparison;
- ``"streaming"`` — implements ``partial_fit`` (incremental training);
- ``"deploy"`` — edge-deployment variant;
- ``"persistable"`` — round-trips through ``save_model`` / ``load_model``.

Each registration declares the hyper-parameters the grid-search layer
sweeps by default (``ModelSpec.default_grid``), mirroring the paper's
"common practice of grid search" at analog-friendly scales.
"""

from __future__ import annotations

from repro.baselines.baselinehd import BaselineHDClassifier
from repro.baselines.knn import KNNClassifier
from repro.baselines.mlp import MLPClassifier
from repro.baselines.neuralhd import NeuralHDClassifier
from repro.baselines.onlinehd import OnlineHDClassifier
from repro.baselines.svm import LinearSVMClassifier, RFFSVMClassifier
from repro.core.disthd import DistHDClassifier
from repro.deploy.quantized import QuantizedTrainer
from repro.models.registry import Hyperparam, register_model

_SEED = Hyperparam("seed", None, description="RNG seed")
_LR = Hyperparam("lr", 0.05, (0.01, 0.05, 0.1), "learning rate")
_HDC_DIM = Hyperparam(
    "dim", 500, (250, 500, 1000), "hypervector dimensionality D"
)
_ITERATIONS = Hyperparam("iterations", 20, (), "max training iterations")
_BACKEND = Hyperparam(
    "backend", "numpy", (), "array backend (numpy | torch, see repro.backend)"
)
_DTYPE = Hyperparam(
    "dtype", "float32", (), "hot-path compute dtype (float32 | float64)"
)
_N_JOBS = Hyperparam(
    "n_jobs", None, (),
    "parallel workers for sharded fit (None/1 serial, -1 all cores)",
)
_ENCODER = Hyperparam(
    "encoder", "rbf", (),
    "encoder spec from the registry (rbf | fastfood-rbf | projection-* | "
    "structured-*)",
)
_BANDWIDTH = Hyperparam(
    "bandwidth", 0.5, (), "RBF-family encoder kernel width"
)


def _make_mlp(dim=None, hidden_sizes=None, **params) -> MLPClassifier:
    """Build an MLP; ``dim`` is a uniform capacity alias for one hidden layer."""
    if hidden_sizes is None:
        hidden_sizes = (int(dim),) if dim is not None else (128,)
    elif dim is not None:
        raise TypeError("pass either dim or hidden_sizes, not both")
    return MLPClassifier(hidden_sizes=hidden_sizes, **params)


def _make_rff_svm(dim=None, n_components=None, **params) -> RFFSVMClassifier:
    """Build an RFF-SVM; ``dim`` aliases the random-feature count."""
    if n_components is None:
        n_components = int(dim) if dim is not None else 500
    elif dim is not None:
        raise TypeError("pass either dim or n_components, not both")
    return RFFSVMClassifier(n_components=n_components, **params)


def _register_all() -> None:
    register_model(
        "disthd",
        DistHDClassifier,
        tags=("hdc", "dynamic", "paper", "streaming", "persistable"),
        description="DistHD: learner-aware dynamic encoding (the paper)",
        hyperparams=(
            _HDC_DIM,
            _LR,
            Hyperparam(
                "regen_rate", 0.10, (0.05, 0.10, 0.20), "regeneration rate R"
            ),
            _ENCODER,
            _BANDWIDTH,
            Hyperparam("alpha", 1.0, (), "true-label distance weight"),
            Hyperparam("beta", 1.0, (), "wrong-label proximity weight"),
            Hyperparam("theta", 0.25, (), "second wrong-label weight"),
            _ITERATIONS,
            Hyperparam(
                "chunk_size", None, (),
                "row-chunk bound for inference/scoring memory",
            ),
            Hyperparam(
                "fused_regen", True, (),
                "fused chunked Algorithm-2 scoring (off = dense reference)",
            ),
            _N_JOBS,
            _BACKEND,
            _DTYPE,
            _SEED,
        ),
    )
    register_model(
        "baselinehd",
        BaselineHDClassifier,
        tags=("hdc", "static", "paper", "baseline", "streaming", "persistable"),
        description="Static record-based HDC + perceptron retraining "
        "(Rahimi et al. ISLPED'16)",
        hyperparams=(
            Hyperparam(
                "dim", 4000, (2000, 4000, 8000), "hypervector dimensionality D"
            ),
            _LR,
            Hyperparam(
                "encoder", "id-level", (),
                "id-level | sign | any registry spec (rbf, fastfood-rbf, ...)",
            ),
            _ITERATIONS,
            _N_JOBS,
            _BACKEND,
            _DTYPE,
            _SEED,
        ),
    )
    register_model(
        "neuralhd",
        NeuralHDClassifier,
        tags=("hdc", "dynamic", "paper", "baseline", "persistable"),
        description="Variance-ranked dynamic encoding (Zou et al. SC'21)",
        hyperparams=(
            _HDC_DIM,
            _LR,
            Hyperparam(
                "regen_rate", 0.10, (0.05, 0.10, 0.20), "regeneration rate"
            ),
            _ENCODER,
            _BANDWIDTH,
            _ITERATIONS,
            _N_JOBS,
            _BACKEND,
            _DTYPE,
            _SEED,
        ),
    )
    register_model(
        "onlinehd",
        OnlineHDClassifier,
        tags=("hdc", "paper", "baseline", "streaming", "persistable"),
        description="Adaptive similarity-weighted HDC, static encoder",
        hyperparams=(
            _HDC_DIM, _LR, _ENCODER, _BANDWIDTH, _ITERATIONS, _N_JOBS,
            _BACKEND, _DTYPE, _SEED,
        ),
    )
    register_model(
        "mlp",
        _make_mlp,
        tags=("classical", "dnn", "paper", "baseline", "persistable"),
        description="NumPy MLP (ReLU + softmax + Adam) — the SOTA-DNN "
        "comparator",
        hyperparams=(
            Hyperparam("dim", 128, (64, 128, 256), "hidden-layer width"),
            Hyperparam("lr", 1e-3, (1e-3, 1e-2), "Adam learning rate"),
            Hyperparam("epochs", 30, (), "training epochs"),
            _SEED,
        ),
    )
    register_model(
        "svm",
        LinearSVMClassifier,
        tags=("classical", "paper", "baseline", "persistable"),
        description="One-vs-rest linear SVM (squared hinge + Adam)",
        hyperparams=(
            Hyperparam("C", 1.0, (0.1, 1.0, 10.0), "inverse regularisation"),
            Hyperparam("epochs", 30, (), "training epochs"),
            _SEED,
        ),
    )
    register_model(
        "rff-svm",
        _make_rff_svm,
        tags=("classical", "paper", "baseline", "persistable"),
        description="Approximate RBF-kernel SVM via random Fourier features",
        hyperparams=(
            Hyperparam("dim", 500, (250, 500, 1000), "random-feature count"),
            Hyperparam("gamma", None, (), "RBF width (None = 1/sqrt(q))"),
            _SEED,
        ),
    )
    register_model(
        "knn",
        KNNClassifier,
        tags=("classical", "baseline", "persistable"),
        description="Brute-force k-nearest-neighbours sanity baseline",
        hyperparams=(
            Hyperparam("k", 5, (3, 5, 9), "neighbour count"),
            Hyperparam("weights", "uniform", (), "uniform | distance votes"),
        ),
    )

    # ------------------------------------------------------ deploy variants

    def _make_disthd_stream(**params) -> DistHDClassifier:
        streaming_defaults = dict(
            regen_rate=0.2, selection="union",
            reservoir_size=512, regen_every=10,
        )
        streaming_defaults.update(params)
        return DistHDClassifier(**streaming_defaults)

    register_model(
        "disthd-stream",
        _make_disthd_stream,
        tags=("hdc", "dynamic", "deploy", "streaming", "persistable"),
        description="DistHD tuned for partial_fit streams (union selection, "
        "reservoir regeneration)",
        hyperparams=(
            _HDC_DIM,
            _LR,
            Hyperparam(
                "reservoir_size", 512, (), "regeneration reservoir size"
            ),
            Hyperparam(
                "regen_every", 10, (), "batches between regeneration steps"
            ),
            _ENCODER,
            _BACKEND,
            _DTYPE,
            _SEED,
        ),
    )

    def _make_disthd_quantized(
        bits=8, packed=False, **params
    ) -> QuantizedTrainer:
        return QuantizedTrainer(
            DistHDClassifier(**params), bits=bits, packed=packed
        )

    register_model(
        "disthd-quantized",
        _make_disthd_quantized,
        tags=("hdc", "deploy", "quantized", "persistable"),
        description="DistHD trained in float, served from fixed-point "
        "class memory (Fig. 8 deployment); packed=True bit-packs the "
        "1-bit memory and scores via XOR + popcount",
        hyperparams=(
            Hyperparam("bits", 8, (1, 2, 4, 8), "class-memory precision"),
            Hyperparam(
                "packed", False, (False, True),
                "bit-packed 1-bit storage + XOR/popcount scoring",
            ),
            _HDC_DIM,
            _ENCODER,
            _LR,
            _ITERATIONS,
            _N_JOBS,
            _BACKEND,
            _DTYPE,
            _SEED,
        ),
    )


_register_all()
