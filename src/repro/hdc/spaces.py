"""Random hypervector spaces.

Hyperdimensional computing rests on one geometric fact: independently drawn
high-dimensional random vectors are nearly orthogonal.  This module generates
the three hypervector flavours the library uses (bipolar {-1,+1}, binary
{0,1}, real Gaussian) plus the level-hypervector chains used by the ID-level
encoder.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, as_rng


def _check_shape(n: int, dim: int) -> None:
    if n <= 0:
        raise ValueError(f"number of hypervectors must be positive, got {n}")
    if dim <= 0:
        raise ValueError(f"dimensionality must be positive, got {dim}")


def random_bipolar(n: int, dim: int, seed: SeedLike = None) -> np.ndarray:
    """``(n, dim)`` random bipolar hypervectors with entries in {-1, +1}."""
    _check_shape(n, dim)
    rng = as_rng(seed)
    return rng.choice(np.array([-1, 1], dtype=np.int8), size=(n, dim)).astype(np.int8)


def random_binary(n: int, dim: int, seed: SeedLike = None) -> np.ndarray:
    """``(n, dim)`` random binary hypervectors with entries in {0, 1}."""
    _check_shape(n, dim)
    rng = as_rng(seed)
    return rng.integers(0, 2, size=(n, dim), dtype=np.int8)


def random_gaussian(
    n: int, dim: int, seed: SeedLike = None, *, scale: float = 1.0
) -> np.ndarray:
    """``(n, dim)`` real hypervectors with i.i.d. N(0, scale²) entries.

    These are the base-vector rows of the paper's RBF encoder
    (``b ~ Gaussian(mu=0, sigma=1)``).
    """
    _check_shape(n, dim)
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    rng = as_rng(seed)
    return rng.normal(0.0, scale, size=(n, dim))


def random_level_hypervectors(
    n_levels: int, dim: int, seed: SeedLike = None
) -> np.ndarray:
    """A chain of ``n_levels`` correlated bipolar hypervectors.

    Level hypervectors encode scalar magnitude: the first level is fully
    random and each subsequent level flips a fresh ``dim / (n_levels - 1)``
    slice of coordinates, so similarity decreases linearly with level
    distance — adjacent levels are similar, extreme levels nearly orthogonal.
    """
    if n_levels <= 0:
        raise ValueError(f"n_levels must be positive, got {n_levels}")
    _check_shape(n_levels, dim)
    rng = as_rng(seed)
    levels = np.empty((n_levels, dim), dtype=np.int8)
    levels[0] = random_bipolar(1, dim, rng)[0]
    if n_levels == 1:
        return levels
    flip_order = rng.permutation(dim)
    # Evenly spaced flip budget so level n_levels-1 has flipped ~dim/2 bits,
    # putting the extreme levels at near-orthogonality.
    total_flips = dim // 2
    boundaries = np.linspace(0, total_flips, n_levels).astype(int)
    current = levels[0].copy()
    for lvl in range(1, n_levels):
        start, stop = boundaries[lvl - 1], boundaries[lvl]
        current = current.copy()
        current[flip_order[start:stop]] *= -1
        levels[lvl] = current
    return levels


def expected_orthogonality_bound(dim: int, confidence: float = 0.999) -> float:
    """Upper bound on |cosine| between two random bipolar hypervectors.

    By Hoeffding's inequality the cosine of two independent random bipolar
    hypervectors concentrates around 0 with deviation
    ``sqrt(ln(2 / (1 - confidence)) / (2 dim))``.  Useful for tests asserting
    near-orthogonality at a given dimensionality.
    """
    if dim <= 0:
        raise ValueError(f"dim must be positive, got {dim}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    return float(np.sqrt(np.log(2.0 / (1.0 - confidence)) / (2.0 * dim)))
