"""Hyperdimensional-computing substrate.

This package provides the primitives every HDC classifier in the library is
built from:

- :mod:`repro.hdc.ops` — bundling, binding, permutation and the similarity
  kernels of §III-A of the paper (cosine / dot / Hamming), all matrix-wise;
- :mod:`repro.hdc.packed` — bit-packed binary hypervectors (64 cells per
  ``uint64`` word) with XOR + popcount Hamming kernels;
- :mod:`repro.hdc.spaces` — random hypervector generation in bipolar, binary
  and real-Gaussian spaces plus near-orthogonality utilities;
- :mod:`repro.hdc.memory` — the associative (class-hypervector) memory shared
  by every HDC learner;
- :mod:`repro.hdc.encoders` — the encoder family, including the regenerable
  RBF encoder at the heart of DistHD.
"""

from repro.hdc.memory import AssociativeMemory
from repro.hdc.ops import (
    bind,
    bundle,
    cosine_similarity,
    dot_similarity,
    hamming_distance,
    hamming_similarity,
    normalize_rows,
    pack_hypervectors,
    packed_hamming_similarity,
    permute,
    unpack_hypervectors,
)
from repro.hdc.spaces import (
    random_binary,
    random_bipolar,
    random_gaussian,
    random_level_hypervectors,
)
from repro.hdc.encoders import (
    DEFAULT_ENCODER,
    Encoder,
    FastfoodRBFEncoder,
    IDLevelEncoder,
    NGramEncoder,
    RandomProjectionEncoder,
    RBFEncoder,
    StructuredProjectionEncoder,
    list_encoders,
    make_encoder,
    register_encoder,
)

__all__ = [
    "AssociativeMemory",
    "bind",
    "bundle",
    "cosine_similarity",
    "dot_similarity",
    "hamming_distance",
    "hamming_similarity",
    "normalize_rows",
    "pack_hypervectors",
    "packed_hamming_similarity",
    "permute",
    "unpack_hypervectors",
    "random_binary",
    "random_bipolar",
    "random_gaussian",
    "random_level_hypervectors",
    "Encoder",
    "IDLevelEncoder",
    "NGramEncoder",
    "RandomProjectionEncoder",
    "RBFEncoder",
    "StructuredProjectionEncoder",
    "FastfoodRBFEncoder",
    "DEFAULT_ENCODER",
    "make_encoder",
    "register_encoder",
    "list_encoders",
]
