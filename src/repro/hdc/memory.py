"""Associative (class-hypervector) memory.

Every HDC learner in the library stores one hypervector per class in an
:class:`AssociativeMemory`.  The memory supports the bundling-style updates of
single-pass training, the similarity-weighted updates of adaptive learning,
querying (similarity scores, top-k labels) and the dimension-reset operation
dimension regeneration relies on.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.hdc.ops import cosine_similarity, dot_similarity, normalize_rows
from repro.utils.validation import check_matrix


class AssociativeMemory:
    """A ``(k, D)`` bank of class hypervectors with similarity queries.

    Parameters
    ----------
    n_classes:
        Number of class hypervectors ``k``.
    dim:
        Hypervector dimensionality ``D``.
    metric:
        ``"cosine"`` (default, the paper's δ) or ``"dot"``.
    """

    def __init__(self, n_classes: int, dim: int, metric: str = "cosine") -> None:
        if n_classes <= 0:
            raise ValueError(f"n_classes must be positive, got {n_classes}")
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if metric not in ("cosine", "dot"):
            raise ValueError(f"metric must be 'cosine' or 'dot', got {metric!r}")
        self.n_classes = int(n_classes)
        self.dim = int(dim)
        self.metric = metric
        self.vectors = np.zeros((self.n_classes, self.dim), dtype=np.float64)

    # ------------------------------------------------------------------ state

    def copy(self) -> "AssociativeMemory":
        """A deep copy (used by convergence tracking and noise injection)."""
        clone = AssociativeMemory(self.n_classes, self.dim, self.metric)
        clone.vectors = self.vectors.copy()
        return clone

    def reset(self) -> None:
        """Zero out every class hypervector."""
        self.vectors[:] = 0.0

    def reset_dimensions(self, dims: np.ndarray) -> None:
        """Zero the given dimensions across all classes.

        This is the class-memory half of dimension regeneration: once the
        encoder redraws a base vector, the stale class contributions along
        that dimension no longer correspond to anything and are cleared so
        subsequent training re-learns them.
        """
        dims = np.asarray(dims, dtype=np.int64)
        if dims.size == 0:
            return
        if dims.min() < 0 or dims.max() >= self.dim:
            raise ValueError(
                f"dimension indices must lie in [0, {self.dim}), got range "
                f"[{dims.min()}, {dims.max()}]"
            )
        self.vectors[:, dims] = 0.0

    # ---------------------------------------------------------------- updates

    def accumulate(self, encoded: np.ndarray, labels: np.ndarray) -> None:
        """Single-pass bundling: add each encoded sample into its class row."""
        H = check_matrix(encoded, "encoded")
        labels = np.asarray(labels, dtype=np.int64)
        if H.shape[0] != labels.shape[0]:
            raise ValueError(
                f"encoded and labels disagree on sample count: "
                f"{H.shape[0]} vs {labels.shape[0]}"
            )
        if H.shape[1] != self.dim:
            raise ValueError(
                f"encoded dimensionality {H.shape[1]} != memory dim {self.dim}"
            )
        if labels.size and (labels.min() < 0 or labels.max() >= self.n_classes):
            raise ValueError(
                f"labels must lie in [0, {self.n_classes}), got range "
                f"[{labels.min()}, {labels.max()}]"
            )
        np.add.at(self.vectors, labels, H)

    def add_to_class(self, class_index: int, delta: np.ndarray) -> None:
        """Add ``delta`` to one class hypervector (adaptive-learning update)."""
        if not 0 <= class_index < self.n_classes:
            raise ValueError(
                f"class_index must lie in [0, {self.n_classes}), got {class_index}"
            )
        self.vectors[class_index] += np.asarray(delta, dtype=np.float64)

    # ---------------------------------------------------------------- queries

    def similarities(self, encoded: np.ndarray) -> np.ndarray:
        """``(n, k)`` similarity scores between encoded queries and classes."""
        H = check_matrix(encoded, "encoded")
        if H.shape[1] != self.dim:
            raise ValueError(
                f"encoded dimensionality {H.shape[1]} != memory dim {self.dim}"
            )
        if self.metric == "cosine":
            return cosine_similarity(H, self.vectors)
        return dot_similarity(H, self.vectors)

    def predict(self, encoded: np.ndarray) -> np.ndarray:
        """Most-similar class per query (paper inference step F)."""
        return np.argmax(self.similarities(encoded), axis=1)

    def topk(self, encoded: np.ndarray, k: int = 2) -> Tuple[np.ndarray, np.ndarray]:
        """Top-``k`` labels and their scores, most similar first.

        Returns ``(labels, scores)`` with shapes ``(n, k)``.
        """
        if not 1 <= k <= self.n_classes:
            raise ValueError(
                f"k must lie in [1, {self.n_classes}], got {k}"
            )
        sims = self.similarities(encoded)
        order = np.argsort(-sims, axis=1)[:, :k]
        return order, np.take_along_axis(sims, order, axis=1)

    def normalized(self) -> np.ndarray:
        """Row-normalised class hypervectors (``N_l`` in equation (1))."""
        return normalize_rows(self.vectors)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AssociativeMemory(n_classes={self.n_classes}, dim={self.dim}, "
            f"metric={self.metric!r})"
        )
