"""Associative (class-hypervector) memory.

Every HDC learner in the library stores one hypervector per class in an
:class:`AssociativeMemory`.  The memory supports the bundling-style updates of
single-pass training, the similarity-weighted updates of adaptive learning
(including the grouped scatter-add form of Algorithm 1), querying (similarity
scores, top-k labels) and the dimension-reset operation dimension
regeneration relies on.

The class memory lives on a pluggable
:class:`~repro.backend.base.ArrayBackend` at a configurable storage dtype
(float32 for the hot paths, float64 by default for backward compatibility).

**Score dtype contract.**  Similarity scores leave as float64 NumPy
*containers* so downstream control flow (argmax, partitions, metrics) is
backend-agnostic — but the values inside are computed at the memory's
storage dtype.  A float32 memory yields float32-precision scores in a
float64 array; only ``dtype="float64"`` memories give genuinely
double-precision scores.  (An earlier revision claimed scores "always leave
as float64", which the float32 hot path made misleading; the contract is
container-float64, compute-at-storage-dtype, and is pinned by
``tests/test_hdc_memory.py::TestScoreDtypeContract``.)

**Norm caching.**  Class norms and the row-normalised class bank are
cached per *mutation version*: every mutator (``accumulate``,
``update_misclassified``, ``add_to_class``, ``bundle_columns``,
``reset_dimensions``, ``set_vectors``, ``reset``, and assignment to the
``vectors`` property) bumps an internal version counter that stamps and
invalidates the caches, so repeated queries against an unchanged memory —
the adaptive pass, ``partition_outcomes``, ``predict`` and the fused
Algorithm-2 scoring inside one training iteration — recompute nothing.
Code that mutates the underlying array *in place* without going through a
mutator must call :meth:`AssociativeMemory.invalidate_caches`.

**Locking contract (concurrent use).**  The memory takes no locks; the
guarantees under one writer (e.g. an online-adaptation ``partial_fit``)
racing any number of reader threads (``predict`` / ``similarities``) are:

- *no stale cache survives a mutation* — cache entries are stamped with
  the version read **before** their value was computed, so a value whose
  computation overlapped a mutation is stamped with the pre-mutation
  version and the next query at the new version recomputes (pinned by
  ``tests/test_serve_concurrency.py``);
- *individual in-progress reads may tear* — a reader that overlaps a
  mutator's in-place array update can observe a mix of pre- and
  post-update values for that one call.  Callers that need coherent
  per-call results under concurrent training must serve an immutable
  snapshot and swap it atomically, which is exactly what
  :mod:`repro.serve` does (see ``docs/serving.md``).
- more than one concurrent *writer* is not supported.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np

from repro.backend import BackendLike, get_backend, resolve_dtype
from repro.utils.validation import check_matrix


def as_numpy_vectors(memory: Any) -> np.ndarray:
    """The class bank of any memory-like object as a NumPy array.

    Duck-typed so the deploy/noise layers accept third-party classifiers
    whose ``memory_`` exposes plain ``vectors`` without the backend API.
    """
    if hasattr(memory, "numpy_vectors"):
        return memory.numpy_vectors()
    return np.asarray(memory.vectors)


class AssociativeMemory:
    """A ``(k, D)`` bank of class hypervectors with similarity queries.

    Parameters
    ----------
    n_classes:
        Number of class hypervectors ``k``.
    dim:
        Hypervector dimensionality ``D``.
    metric:
        ``"cosine"`` (default, the paper's δ) or ``"dot"``.
    dtype:
        Storage/compute dtype of the class bank (``"float32"`` /
        ``"float64"`` or a NumPy dtype).  Defaults to float64.
    backend:
        Array backend name or instance (default: NumPy).
    """

    #: Class-level kill switch for the version-stamped norm caches.  The
    #: perf harness flips this off to time the cache-free (PR 2) reference
    #: path; leave it on everywhere else.
    caching_enabled: bool = True

    def __init__(
        self,
        n_classes: int,
        dim: int,
        metric: str = "cosine",
        *,
        dtype: Any = None,
        backend: BackendLike = None,
    ) -> None:
        if n_classes <= 0:
            raise ValueError(f"n_classes must be positive, got {n_classes}")
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if metric not in ("cosine", "dot"):
            raise ValueError(f"metric must be 'cosine' or 'dot', got {metric!r}")
        self.n_classes = int(n_classes)
        self.dim = int(dim)
        self.metric = metric
        self.backend = get_backend(backend)
        self.dtype = resolve_dtype(dtype)
        self._version = 0
        self._cache = {}
        self._vectors = self.backend.zeros(
            (self.n_classes, self.dim), dtype=self.dtype
        )

    # ---------------------------------------------------------------- caching

    @property
    def vectors(self) -> Any:
        """The native ``(k, D)`` class bank.

        Assigning to this property invalidates the norm caches; in-place
        mutation of the returned array does not (use the mutator methods, or
        call :meth:`invalidate_caches` afterwards).
        """
        return self._vectors

    @vectors.setter
    def vectors(self, value: Any) -> None:
        self._vectors = value
        self.invalidate_caches()

    @property
    def version(self) -> int:
        """Mutation counter: bumped by every mutator, stamps the caches."""
        return self._version

    def invalidate_caches(self) -> None:
        """Mark cached norms stale (called by every mutator)."""
        self._version += 1

    def _cached(self, key: str, compute: Any) -> Any:
        """``compute()`` memoised under ``key`` for the current version.

        The version is read *before* ``compute()`` runs and that stamp —
        not the post-compute one — is stored.  Under concurrent use
        (serving reads racing an online-adaptation writer) a mutator can
        bump the version mid-compute; stamping afterwards would file a
        value derived from pre-mutation state under the post-mutation
        version, and every later query at that version would serve the
        stale entry.  With the pre-read stamp such an entry is already
        out of date when stored, so the next query recomputes.  (The
        value returned from *this* call may still reflect a torn read —
        see the locking contract in the module docstring.)
        """
        if not type(self).caching_enabled:
            return compute()
        hit = self._cache.get(key)
        if hit is not None and hit[0] == self._version:
            return hit[1]
        version = self._version
        value = compute()
        self._cache[key] = (version, value)
        return value

    # ------------------------------------------------------------------ state

    def copy(self) -> "AssociativeMemory":
        """A deep copy (used by convergence tracking and noise injection)."""
        clone = AssociativeMemory(
            self.n_classes, self.dim, self.metric,
            dtype=self.dtype, backend=self.backend,
        )
        clone.vectors = self.backend.copy(self._vectors)
        return clone

    def reset(self) -> None:
        """Zero out every class hypervector."""
        self._vectors[:] = 0.0
        self.invalidate_caches()

    def set_vectors(self, vectors: Any) -> None:
        """Replace the class bank, casting to this memory's backend/dtype."""
        vectors = self.backend.asarray(vectors, dtype=self.dtype)
        if tuple(vectors.shape) != (self.n_classes, self.dim):
            raise ValueError(
                f"vectors must have shape {(self.n_classes, self.dim)}, "
                f"got {tuple(vectors.shape)}"
            )
        self.vectors = vectors

    def numpy_vectors(self) -> np.ndarray:
        """The class bank as a NumPy array (zero-copy on the NumPy backend)."""
        return self.backend.to_numpy(self.vectors)

    def reset_dimensions(self, dims: np.ndarray) -> None:
        """Zero the given dimensions across all classes.

        This is the class-memory half of dimension regeneration: once the
        encoder redraws a base vector, the stale class contributions along
        that dimension no longer correspond to anything and are cleared so
        subsequent training re-learns them.
        """
        dims = np.asarray(dims, dtype=np.int64)
        if dims.size == 0:
            return
        if dims.min() < 0 or dims.max() >= self.dim:
            raise ValueError(
                f"dimension indices must lie in [0, {self.dim}), got range "
                f"[{dims.min()}, {dims.max()}]"
            )
        self.backend.zero_columns(self._vectors, dims)
        self.invalidate_caches()

    # ---------------------------------------------------------------- updates

    def as_encoded(self, encoded: Any, name: str = "encoded") -> Any:
        """Validate an encoded batch without forcing a dtype or a copy.

        Shape-checks only: finiteness is enforced once at the encoder
        boundary (``Encoder.encode``), not on every memory call — the
        training loop queries the same cached encoding dozens of times and
        an O(nD) ``isfinite`` scan per call is exactly the overhead the
        backend refactor removed.
        """
        b = self.backend
        H = encoded if b.is_native(encoded) else check_matrix(
            encoded, name, dtype=None, ensure_finite=False
        )
        if H.ndim == 1:
            H = H.reshape(1, -1)
        if H.shape[1] != self.dim:
            raise ValueError(
                f"{name} dimensionality {H.shape[1]} != memory dim {self.dim}"
            )
        return H

    def accumulate(self, encoded: Any, labels: Any) -> None:
        """Single-pass bundling: add each encoded sample into its class row."""
        H = self.as_encoded(encoded)
        labels = np.asarray(labels, dtype=np.int64)
        if H.shape[0] != labels.shape[0]:
            raise ValueError(
                f"encoded and labels disagree on sample count: "
                f"{H.shape[0]} vs {labels.shape[0]}"
            )
        if labels.size and (labels.min() < 0 or labels.max() >= self.n_classes):
            raise ValueError(
                f"labels must lie in [0, {self.n_classes}), got range "
                f"[{labels.min()}, {labels.max()}]"
            )
        self.backend.scatter_add_rows(self._vectors, labels, H)
        self.invalidate_caches()

    def add_to_class(self, class_index: int, delta: Any) -> None:
        """Add ``delta`` to one class hypervector (adaptive-learning update)."""
        if not 0 <= class_index < self.n_classes:
            raise ValueError(
                f"class_index must lie in [0, {self.n_classes}), got {class_index}"
            )
        self._vectors[class_index] += self.backend.asarray(delta, dtype=self.dtype)
        self.invalidate_caches()

    def update_misclassified(
        self,
        encoded_wrong: Any,
        predicted: np.ndarray,
        labels: np.ndarray,
        sim_pred: np.ndarray,
        sim_true: np.ndarray,
        lr: float,
    ) -> None:
        """Apply Algorithm 1's update for a batch of misclassified samples.

        All coefficients come from similarities computed *at batch start*
        (the paper's matrix-wise grouping), so the per-sample updates commute
        and can be applied as two grouped scatter-adds instead of a Python
        loop:

            C_pred ← C_pred − η · (1 − δ(H, C_pred)) · H
            C_true ← C_true + η · (1 − δ(H, C_true)) · H
        """
        b = self.backend
        H = self.as_encoded(encoded_wrong)
        coeff_pred = b.asarray(-lr * (1.0 - sim_pred), dtype=self.dtype)
        coeff_true = b.asarray(lr * (1.0 - sim_true), dtype=self.dtype)
        H = b.asarray(H, dtype=self.dtype)
        b.scatter_add_rows(
            self._vectors, predicted, coeff_pred.reshape(-1, 1) * H
        )
        b.scatter_add_rows(
            self._vectors, labels, coeff_true.reshape(-1, 1) * H
        )
        self.invalidate_caches()

    def bundle_columns(
        self,
        labels: np.ndarray,
        dims: np.ndarray,
        values: Any,
    ) -> None:
        """Scatter-add ``values`` into ``vectors[labels][:, dims]``.

        The re-bundle half of dimension regeneration: freshly encoded columns
        are bundled back into each sample's class row so regenerated
        dimensions start trained instead of at zero.
        """
        self.backend.scatter_add_cells(self._vectors, labels, dims, values)
        self.invalidate_caches()

    # ---------------------------------------------------------------- queries

    def class_norms(self) -> Any:
        """Native ``(k, 1)`` L2 norms of the class rows, cached per version.

        Feeds the cosine path of :meth:`similarities` so repeated queries
        against an unchanged memory skip the per-call ``O(kD)`` recompute.
        """
        return self._cached(
            "norms",
            lambda: self.backend.norm(self._vectors, axis=1, keepdims=True),
        )

    def similarities(
        self,
        encoded: Any,
        *,
        chunk_size: Optional[int] = None,
    ) -> np.ndarray:
        """``(n, k)`` similarity scores between queries and classes.

        The returned array is a float64 NumPy *container*; values are
        computed at the memory's storage dtype (float32-precision scores
        for the default hot path — see the module docstring for the
        contract).  ``chunk_size`` streams the queries in row windows so
        peak intermediate memory is ``O(chunk_size · D)`` regardless of
        batch size; each query row's score depends only on that row, so
        chunking changes results only by BLAS accumulation-order rounding.
        """
        H = self.as_encoded(encoded)
        b = self.backend
        if not b.is_native(H) or (
            hasattr(H, "dtype") and np.dtype(self.dtype) != H.dtype
        ):
            H = b.asarray(H, dtype=self.dtype)
        norms = self.class_norms() if self.metric == "cosine" else None
        n = int(H.shape[0])
        if chunk_size is None or n <= int(chunk_size):
            return b.similarity_scores(
                H, self._vectors, metric=self.metric, memory_norms=norms
            )
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        chunk = int(chunk_size)
        out = np.empty((n, self.n_classes), dtype=np.float64)
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            out[start:stop] = b.similarity_scores(
                b.slice_rows(H, start, stop),
                self._vectors,
                metric=self.metric,
                memory_norms=norms,
            )
        return out

    def predict(
        self,
        encoded: Any,
        *,
        chunk_size: Optional[int] = None,
    ) -> np.ndarray:
        """Most-similar class per query (paper inference step F)."""
        return np.argmax(
            self.similarities(encoded, chunk_size=chunk_size), axis=1
        )

    def topk(
        self,
        encoded: Any,
        k: int = 2,
        *,
        chunk_size: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Top-``k`` labels and their scores, most similar first.

        Returns ``(labels, scores)`` with shapes ``(n, k)``; selection uses
        an argpartition-style partial sort rather than a full argsort.
        ``chunk_size`` bounds intermediate memory as in :meth:`similarities`.
        """
        if not 1 <= k <= self.n_classes:
            raise ValueError(
                f"k must lie in [1, {self.n_classes}], got {k}"
            )
        sims = self.similarities(encoded, chunk_size=chunk_size)
        return self.backend.topk_desc(sims, k)

    def normalized_native(self) -> Any:
        """Native row-normalised class bank, cached per version.

        The fused Algorithm-2 scoring path consumes this directly, so the
        normalisation runs once per training iteration instead of once per
        ``regenerate_step`` call — and never round-trips through NumPy on
        device backends.
        """
        from repro.hdc.ops import normalize_rows

        return self._cached(
            "normalized_native",
            lambda: normalize_rows(self._vectors, backend=self.backend),
        )

    def normalized(self) -> np.ndarray:
        """Row-normalised class hypervectors (``N_l`` in equation (1)).

        NumPy view of :meth:`normalized_native`, cached per version.
        Treat the result as read-only — it is shared across calls at the
        same version.
        """
        return self._cached(
            "normalized_numpy",
            lambda: self.backend.to_numpy(self.normalized_native()),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AssociativeMemory(n_classes={self.n_classes}, dim={self.dim}, "
            f"metric={self.metric!r}, dtype={np.dtype(self.dtype).name}, "
            f"backend={self.backend.name!r})"
        )
