"""Core hypervector operations (paper §III-A).

All operations accept either a single hypervector ``(D,)`` or a batch
``(n, D)`` and are implemented as vectorised NumPy expressions, mirroring the
"highly parallel matrix-wise" framing of the paper.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_matrix

_EPS = 1e-12


def bundle(*hypervectors: np.ndarray) -> np.ndarray:
    """Bundle (element-wise add) hypervectors: the HDC memory operation.

    ``bundle(H1, H2)`` returns a hypervector similar to both inputs; in
    high-dimensional space ``cos(bundle(H1, H2), H1) >> 0`` while the
    similarity with an unrelated hypervector stays near zero.

    Accepts any mix of ``(D,)`` vectors and ``(n, D)`` batches; batches are
    first reduced along their sample axis.
    """
    if not hypervectors:
        raise ValueError("bundle requires at least one hypervector")
    total = None
    dim = None
    for hv in hypervectors:
        arr = np.asarray(hv, dtype=np.float64)
        if arr.ndim == 2:
            arr = arr.sum(axis=0)
        elif arr.ndim != 1:
            raise ValueError(f"hypervectors must be 1-D or 2-D, got ndim={arr.ndim}")
        if dim is None:
            dim = arr.shape[0]
        elif arr.shape[0] != dim:
            raise ValueError(
                f"dimension mismatch in bundle: {dim} vs {arr.shape[0]}"
            )
        total = arr if total is None else total + arr
    return total


def bind(h1: np.ndarray, h2: np.ndarray) -> np.ndarray:
    """Bind (element-wise multiply) two hypervectors.

    Binding associates two hypervectors into one that is near-orthogonal to
    both.  For bipolar inputs it is an involution: ``bind(bind(a, b), a) == b``.
    Supports broadcasting between ``(D,)`` and ``(n, D)``.
    """
    a = np.asarray(h1, dtype=np.float64)
    b = np.asarray(h2, dtype=np.float64)
    if a.shape[-1] != b.shape[-1]:
        raise ValueError(
            f"dimension mismatch in bind: {a.shape[-1]} vs {b.shape[-1]}"
        )
    return a * b


def permute(hv: np.ndarray, shifts: int = 1) -> np.ndarray:
    """Cyclically permute hypervector elements (the HDC sequence operation).

    Permutation produces a hypervector near-orthogonal to its input while
    preserving pairwise similarities, which makes it the standard encoding for
    positional/temporal order in n-gram encoders.
    """
    arr = np.asarray(hv, dtype=np.float64)
    return np.roll(arr, shifts, axis=-1)


def normalize_rows(X: np.ndarray) -> np.ndarray:
    """L2-normalise each row; zero rows are passed through unchanged."""
    arr = np.asarray(X, dtype=np.float64)
    single = arr.ndim == 1
    if single:
        arr = arr.reshape(1, -1)
    norms = np.linalg.norm(arr, axis=1, keepdims=True)
    out = arr / np.where(norms > _EPS, norms, 1.0)
    return out[0] if single else out


def dot_similarity(queries: np.ndarray, memory: np.ndarray) -> np.ndarray:
    """Raw dot-product similarity between queries ``(n, D)`` and memory ``(k, D)``.

    Returns an ``(n, k)`` score matrix.  Per equation (1) of the paper this is
    proportional to cosine similarity once the memory rows are normalised,
    because the query norm is constant across classes.
    """
    Q = check_matrix(queries, "queries")
    M = check_matrix(memory, "memory")
    if Q.shape[1] != M.shape[1]:
        raise ValueError(
            f"queries and memory disagree on dimensionality: "
            f"{Q.shape[1]} vs {M.shape[1]}"
        )
    return Q @ M.T


def cosine_similarity(queries: np.ndarray, memory: np.ndarray) -> np.ndarray:
    """Cosine similarity δ(H, C) between queries ``(n, D)`` and memory ``(k, D)``.

    Zero vectors on either side yield similarity 0 rather than NaN, matching
    the convention that an empty class hypervector matches nothing.
    """
    Q = check_matrix(queries, "queries")
    M = check_matrix(memory, "memory")
    scores = dot_similarity(Q, M)
    q_norm = np.linalg.norm(Q, axis=1)
    m_norm = np.linalg.norm(M, axis=1)
    denom = np.outer(q_norm, m_norm)
    with np.errstate(invalid="ignore", divide="ignore"):
        out = np.where(denom > _EPS, scores / np.where(denom > _EPS, denom, 1.0), 0.0)
    return out


def hamming_distance(h1: np.ndarray, h2: np.ndarray) -> np.ndarray:
    """Normalised Hamming distance between bipolar/binary hypervectors.

    For batches, broadcasts ``(n, D)`` against ``(D,)`` or pairs two equal
    batches element-wise.  Returns values in [0, 1].
    """
    a = np.asarray(h1)
    b = np.asarray(h2)
    if a.shape[-1] != b.shape[-1]:
        raise ValueError(
            f"dimension mismatch in hamming_distance: {a.shape[-1]} vs {b.shape[-1]}"
        )
    return np.mean(a != b, axis=-1)


def hamming_similarity(queries: np.ndarray, memory: np.ndarray) -> np.ndarray:
    """Fraction of matching elements between each query and each memory row.

    The bipolar simplification of cosine similarity the paper mentions:
    returns an ``(n, k)`` matrix with entries ``1 - hamming_distance``.
    """
    Q = check_matrix(queries, "queries", dtype=None)
    M = check_matrix(memory, "memory", dtype=None)
    if Q.shape[1] != M.shape[1]:
        raise ValueError(
            f"queries and memory disagree on dimensionality: "
            f"{Q.shape[1]} vs {M.shape[1]}"
        )
    return 1.0 - np.mean(Q[:, None, :] != M[None, :, :], axis=2)
