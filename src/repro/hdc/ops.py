"""Core hypervector operations (paper §III-A).

All operations accept either a single hypervector ``(D,)`` or a batch
``(n, D)`` and are implemented against the pluggable
:class:`~repro.backend.base.ArrayBackend` protocol, mirroring the "highly
parallel matrix-wise" framing of the paper.  Pass ``backend=`` to run on a
non-default engine (e.g. torch); by default everything runs on vectorised
NumPy.

Dtype policy: operations **preserve** the input dtype instead of silently
upcasting to float64 — bipolar int8 stays int8 under ``bind``/``permute``,
float32 encodings stay float32 end to end.  The only promotions are the
unavoidable ones: integer ``bundle`` follows NumPy's sum-promotion rules
(int8 sums promote so bundling cannot overflow) and norms/similarity ratios
of integer inputs are computed in floating point.
"""

from __future__ import annotations

import numpy as np

from typing import Any

from repro.backend import BackendLike, get_backend
from repro.utils.validation import check_matrix

_EPS = 1e-12


def _as_hv(hv: Any, b: Any, name: str = "hypervector") -> Any:
    """Coerce to a backend-native array without changing a floating dtype."""
    if b.is_native(hv):
        return hv
    return b.asarray(hv)


def bundle(*hypervectors: Any, backend: BackendLike = None) -> Any:
    """Bundle (element-wise add) hypervectors: the HDC memory operation.

    ``bundle(H1, H2)`` returns a hypervector similar to both inputs; in
    high-dimensional space ``cos(bundle(H1, H2), H1) >> 0`` while the
    similarity with an unrelated hypervector stays near zero.

    Accepts any mix of ``(D,)`` vectors and ``(n, D)`` batches; batches are
    first reduced along their sample axis.  The result keeps the (promoted)
    input dtype rather than forcing float64.
    """
    if not hypervectors:
        raise ValueError("bundle requires at least one hypervector")
    b = get_backend(backend)
    total = None
    dim = None
    for hv in hypervectors:
        arr = _as_hv(hv, b)
        if arr.ndim == 2:
            arr = b.sum(arr, axis=0)
        elif arr.ndim == 1:
            # Reduce through sum even for single vectors: integer inputs get
            # the same overflow-safe promotion as batches (int8 → int64),
            # and the result is always a fresh array, never an alias of the
            # caller's hypervector.
            arr = b.sum(arr.reshape(1, -1), axis=0)
        else:
            raise ValueError(f"hypervectors must be 1-D or 2-D, got ndim={arr.ndim}")
        if dim is None:
            dim = arr.shape[0]
        elif arr.shape[0] != dim:
            raise ValueError(
                f"dimension mismatch in bundle: {dim} vs {arr.shape[0]}"
            )
        total = arr if total is None else total + arr
    return total


def bind(h1: Any, h2: Any, backend: BackendLike = None) -> Any:
    """Bind (element-wise multiply) two hypervectors.

    Binding associates two hypervectors into one that is near-orthogonal to
    both.  For bipolar inputs it is an involution: ``bind(bind(a, b), a) == b``.
    Supports broadcasting between ``(D,)`` and ``(n, D)``; preserves the
    (promoted) input dtype.
    """
    b = get_backend(backend)
    a = _as_hv(h1, b)
    c = _as_hv(h2, b)
    if a.shape[-1] != c.shape[-1]:
        raise ValueError(
            f"dimension mismatch in bind: {a.shape[-1]} vs {c.shape[-1]}"
        )
    return a * c


def permute(hv: Any, shifts: int = 1, backend: BackendLike = None) -> Any:
    """Cyclically permute hypervector elements (the HDC sequence operation).

    Permutation produces a hypervector near-orthogonal to its input while
    preserving pairwise similarities, which makes it the standard encoding for
    positional/temporal order in n-gram encoders.  Dtype-preserving.
    """
    b = get_backend(backend)
    return b.roll(_as_hv(hv, b), shifts, axis=-1)


def normalize_rows(X: Any, backend: BackendLike = None) -> Any:
    """L2-normalise each row; zero rows are passed through unchanged.

    Floating inputs keep their dtype; integer inputs promote to floating
    point (a ratio cannot stay integral).
    """
    b = get_backend(backend)
    arr = _as_hv(X, b)
    single = arr.ndim == 1
    if single:
        arr = arr.reshape(1, -1)
    norms = b.norm(arr, axis=1, keepdims=True)
    out = arr / b.where(norms > _EPS, norms, b.ones_like(norms))
    return out[0] if single else out


def _check_pair(
    queries: Any,
    memory: Any,
    b: Any,
    q_name: str,
    m_name: str,
) -> Any:
    Q = queries if b.is_native(queries) else _validated(queries, q_name)
    M = memory if b.is_native(memory) else _validated(memory, m_name)
    if Q.ndim == 1:
        Q = Q.reshape(1, -1)
    if M.ndim == 1:
        M = M.reshape(1, -1)
    if Q.ndim != 2 or M.ndim != 2:
        raise ValueError(
            f"{q_name} and {m_name} must be 1-D or 2-D, got ndim "
            f"{Q.ndim} and {M.ndim}"
        )
    if Q.shape[1] != M.shape[1]:
        raise ValueError(
            f"{q_name} and {m_name} disagree on dimensionality: "
            f"{Q.shape[1]} vs {M.shape[1]}"
        )
    return Q, M


def _validated(x: Any, name: str) -> np.ndarray:
    return check_matrix(x, name, dtype=None)


def dot_similarity(
    queries: Any,
    memory: Any,
    backend: BackendLike = None,
) -> Any:
    """Raw dot-product similarity between queries ``(n, D)`` and memory ``(k, D)``.

    Returns an ``(n, k)`` score matrix.  Per equation (1) of the paper this is
    proportional to cosine similarity once the memory rows are normalised,
    because the query norm is constant across classes.
    """
    b = get_backend(backend)
    Q, M = _check_pair(queries, memory, b, "queries", "memory")
    return b.matmul(Q, b.transpose(M))


def cosine_similarity(
    queries: Any,
    memory: Any,
    backend: BackendLike = None,
) -> Any:
    """Cosine similarity δ(H, C) between queries ``(n, D)`` and memory ``(k, D)``.

    Zero vectors on either side yield similarity 0 rather than NaN, matching
    the convention that an empty class hypervector matches nothing.
    """
    b = get_backend(backend)
    Q, M = _check_pair(queries, memory, b, "queries", "memory")
    return b.cosine_similarity(Q, M)


def hamming_distance(h1: Any, h2: Any, backend: BackendLike = None) -> np.ndarray:
    """Normalised Hamming distance between bipolar/binary hypervectors.

    For batches, broadcasts ``(n, D)`` against ``(D,)`` or pairs two equal
    batches element-wise.  The comparison runs on the selected backend
    (native tensors stay native end to end); per the library's score
    convention the normalised result returns as float64 NumPy, values in
    [0, 1].
    """
    b = get_backend(backend)
    a = _as_hv(h1, b)
    c = _as_hv(h2, b)
    if a.shape[-1] != c.shape[-1]:
        raise ValueError(
            f"dimension mismatch in hamming_distance: {a.shape[-1]} vs {c.shape[-1]}"
        )
    dim = int(a.shape[-1])
    mismatches = b.sum(b.cast(a != c, np.float64), axis=-1)
    return np.asarray(b.to_numpy(mismatches), dtype=np.float64) / dim


def hamming_similarity(
    queries: Any,
    memory: Any,
    backend: BackendLike = None,
) -> np.ndarray:
    """Fraction of matching elements between each query and each memory row.

    The bipolar simplification of cosine similarity the paper mentions:
    returns an ``(n, k)`` float64 matrix with entries
    ``1 - hamming_distance``, computed on the selected backend.
    """
    b = get_backend(backend)
    Q, M = _check_pair(queries, memory, b, "queries", "memory")
    dim = int(Q.shape[1])
    mismatch = Q[:, None, :] != M[None, :, :]
    counts = b.sum(b.cast(mismatch, np.float64), axis=2)
    return 1.0 - np.asarray(b.to_numpy(counts), dtype=np.float64) / dim


def pack_hypervectors(x: Any, backend: BackendLike = None) -> np.ndarray:
    """Sign-binarise and bit-pack hypervectors, 64 cells per ``uint64`` word.

    ``x`` is ``(n, D)`` or ``(D,)``; returns ``(n, W)`` NumPy ``uint64``
    words with ``W = ceil(D / 64)`` and zero pad bits (the padding
    contract of :mod:`repro.hdc.packed`).  Cells ``>= 0`` map to bit 1,
    matching 1-bit quantization.  The binarisation runs on the selected
    backend; packed words always return as NumPy (they are boundary
    values, like similarity scores).
    """
    b = get_backend(backend)
    return b.packbits_rows(_as_hv(x, b))


def unpack_hypervectors(words: Any, dim: int) -> np.ndarray:
    """Unpack ``(n, W)`` ``uint64`` words to ``(n, dim)`` uint8 ``{0, 1}``.

    Inverse of :func:`pack_hypervectors` up to binarisation (the sign
    magnitude is gone); pad bits are sliced off.
    """
    from repro.hdc.packed import unpack_rows

    return unpack_rows(np.asarray(words, dtype=np.uint64), int(dim))


def packed_hamming_similarity(
    q_words: Any,
    m_words: Any,
    dim: int,
    backend: BackendLike = None,
    chunk_size: Any = None,
) -> np.ndarray:
    """Similarity ``(dim − 2·hamming) / dim`` between packed hypervectors.

    The packed-domain scoring kernel: ``q_words`` ``(n, W)`` and
    ``m_words`` ``(k, W)`` are ``uint64`` words from
    :func:`pack_hypervectors`; returns ``(n, k)`` float64 scores in
    ``[-1, 1]`` via XOR + popcount on the selected backend.  Identical
    rows score 1.0 and the score is strictly decreasing in Hamming
    distance, so rankings agree with :func:`hamming_similarity` on the
    unpacked codes.
    """
    b = get_backend(backend)
    return b.hamming_scores_packed(q_words, m_words, int(dim),
                                   chunk_size=chunk_size)
