"""Bit-packed binary hypervectors: 64 cells per ``uint64`` word.

A binary (sign) hypervector carries one bit of information per dimension,
yet the unpacked 1-bit deploy path stores one integer per cell and scores
through float arithmetic.  This module packs binary hypervectors 64 cells
per ``uint64`` word and scores them with XOR + popcount, collapsing a
D=4096 class vector from 4096 stored cells to 64 words (512 bytes) and
per-class similarity to a handful of cache-line reads.

Bit layout and padding contract
-------------------------------

- Cell ``j`` of a row maps to bit ``j % 8`` of byte ``j // 8``
  (``np.packbits(..., bitorder="little")``), and bytes are viewed as
  little-end-first ``uint64`` words, so cell ``j`` is bit ``j % 64`` of
  word ``j // 64`` on every platform NumPy supports (byte order within a
  word follows the native layout, which is consistent within a process;
  persisted artifacts store *codes*, not words, so packed words never
  cross machines).
- A row of ``D`` cells occupies ``W = ceil(D / 64)`` words.  When
  ``D % 64 != 0`` the trailing ``64*W - D`` **pad bits are always zero**,
  on queries and memory alike.  XOR of two padded rows is therefore zero
  in the pad region and popcount-based Hamming distances need no masking.
  Every producer in this module guarantees the contract; consumers
  (including :func:`flip_packed_bits`) must preserve it.

Popcount selection
------------------

The fast path uses :func:`numpy.bitwise_count` (NumPy >= 2.0).  The
declared floor is ``numpy>=1.21``, so at import time this module selects a
256-entry lookup-table fallback operating on the ``uint8`` view when
``bitwise_count`` is missing.  All call sites dispatch through the module
attribute :data:`popcount_words`, so tests can monkeypatch it to force the
fallback and assert bit-identical scores.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

__all__ = [
    "WORD_BITS",
    "HAS_BITWISE_COUNT",
    "words_per_row",
    "packed_nbytes",
    "pack_bool_rows",
    "pack_sign_rows",
    "pack_code_rows",
    "unpack_rows",
    "popcount_words",
    "popcount_words_native",
    "popcount_words_lut",
    "hamming_counts_packed",
    "hamming_scores_packed",
    "flip_packed_bits",
]

#: Cells per packed word.
WORD_BITS = 64

#: Bytes per packed word.
_WORD_BYTES = 8

#: Whether this NumPy build has ``np.bitwise_count`` (NumPy >= 2.0).
HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: Popcount of every byte value — the NumPy < 2.0 fallback table.
_POPCOUNT_TABLE = np.array(
    [bin(i).count("1") for i in range(256)], dtype=np.uint8
)


def words_per_row(dim: int) -> int:
    """Packed words per row of ``dim`` cells: ``ceil(dim / 64)``."""
    if dim <= 0:
        raise ValueError(f"dim must be positive, got {dim}")
    return (int(dim) + WORD_BITS - 1) // WORD_BITS


def packed_nbytes(n_rows: int, dim: int) -> int:
    """Bytes occupied by ``n_rows`` packed rows of ``dim`` cells."""
    return int(n_rows) * words_per_row(dim) * _WORD_BYTES


def _check_words(words: np.ndarray, name: str = "words") -> np.ndarray:
    arr = np.asarray(words)
    if arr.dtype != np.uint64:
        raise TypeError(
            f"{name} must be uint64 packed words, got dtype {arr.dtype}"
        )
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 1-D or 2-D, got ndim={arr.ndim}")
    return arr


def _bytes_to_words(packed_bytes: np.ndarray, dim: int) -> np.ndarray:
    """View ``(n, ceil(dim/8))`` packed bytes as ``(n, W)`` uint64 words,
    zero-padding the trailing bytes when ``dim`` is not word-aligned."""
    n = packed_bytes.shape[0]
    want = words_per_row(dim) * _WORD_BYTES
    have = packed_bytes.shape[1]
    if have != want:
        padded = np.zeros((n, want), dtype=np.uint8)
        padded[:, :have] = packed_bytes
        packed_bytes = padded
    elif not packed_bytes.flags["C_CONTIGUOUS"]:
        packed_bytes = np.ascontiguousarray(packed_bytes)
    return packed_bytes.view(np.uint64)


def pack_bool_rows(mask: np.ndarray) -> np.ndarray:
    """Pack a boolean ``(n, D)`` (or ``(D,)``) mask into ``(n, W)`` words.

    ``True`` cells become 1-bits; pad bits are zero per the module
    contract.  This is the innermost pack primitive — it does not copy the
    mask into an intermediate integer array, which matters on the serving
    hot path (see :meth:`repro.backend.base.ArrayBackend.packbits_rows`).
    """
    arr = np.asarray(mask)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValueError(f"mask must be 1-D or 2-D, got ndim={arr.ndim}")
    if arr.shape[1] == 0:
        raise ValueError("cannot pack rows of zero cells")
    packed_bytes = np.packbits(arr, axis=-1, bitorder="little")
    return _bytes_to_words(packed_bytes, arr.shape[1])


def pack_sign_rows(x: np.ndarray) -> np.ndarray:
    """Sign-binarise rows (``x >= 0`` → bit 1) and pack them to words.

    Matches the 1-bit quantization convention of
    :func:`repro.noise.quantization.quantize`: non-negative cells map to
    code 1, negative cells to code 0.
    """
    return pack_bool_rows(np.asarray(x) >= 0)


def pack_code_rows(codes: np.ndarray) -> np.ndarray:
    """Pack 1-bit quantization codes (``{0, 1}`` integers) to words.

    ``np.packbits`` treats any non-zero cell as a 1-bit, so ``uint8``
    code rows pack directly.
    """
    return pack_bool_rows(np.asarray(codes) != 0)


def unpack_rows(words: np.ndarray, dim: int) -> np.ndarray:
    """Unpack ``(n, W)`` words back to ``(n, dim)`` uint8 ``{0, 1}`` codes.

    Inverse of the pack functions; the pad bits are sliced off.
    """
    arr = _check_words(words)
    if arr.shape[1] != words_per_row(dim):
        raise ValueError(
            f"words have {arr.shape[1]} columns but dim={dim} needs "
            f"{words_per_row(dim)}"
        )
    as_bytes = np.ascontiguousarray(arr).view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=-1, bitorder="little")
    return bits[:, : int(dim)]


def popcount_words_native(words: np.ndarray) -> np.ndarray:
    """Per-word popcount via ``np.bitwise_count`` (NumPy >= 2.0)."""
    return np.bitwise_count(words)


def popcount_words_lut(words: np.ndarray) -> np.ndarray:
    """Per-word popcount via a 256-entry byte lookup table.

    The NumPy < 2.0 fallback: views the words as bytes, maps each byte
    through the table and sums the 8 byte-counts back per word.  Exact for
    every input; slower than the native path but bit-identical.
    """
    arr = np.ascontiguousarray(np.asarray(words, dtype=np.uint64))
    byte_counts = _POPCOUNT_TABLE[arr.view(np.uint8)]
    per_word = byte_counts.reshape(arr.shape + (_WORD_BYTES,))
    return per_word.sum(axis=-1, dtype=np.uint64)


#: Selected popcount implementation.  Chosen at import time from the
#: running NumPy; call through the module attribute
#: (``packed.popcount_words``) so a monkeypatch can force the fallback.
popcount_words: Callable[[np.ndarray], np.ndarray] = (
    popcount_words_native if HAS_BITWISE_COUNT else popcount_words_lut
)


def hamming_counts_packed(
    q_words: np.ndarray,
    m_words: np.ndarray,
    chunk_size: Optional[int] = None,
) -> np.ndarray:
    """Raw Hamming distances (differing-bit counts) between packed rows.

    ``q_words`` is ``(n, W)``, ``m_words`` is ``(k, W)``; returns an
    ``(n, k)`` int64 count matrix via XOR + popcount.  With the pad-bit
    contract in force the pad region XORs to zero and contributes nothing.
    ``chunk_size`` bounds the ``(chunk, k, W)`` XOR temporary for large
    query batches (``None`` processes the batch at once).
    """
    Q = _check_words(q_words, "q_words")
    M = _check_words(m_words, "m_words")
    if Q.shape[1] != M.shape[1]:
        raise ValueError(
            f"q_words and m_words disagree on word count: "
            f"{Q.shape[1]} vs {M.shape[1]}"
        )
    n = Q.shape[0]
    counts = np.empty((n, M.shape[0]), dtype=np.int64)
    step = n if chunk_size is None else max(1, int(chunk_size))
    for start in range(0, n, step):
        stop = min(start + step, n)
        xor = Q[start:stop, None, :] ^ M[None, :, :]
        counts[start:stop] = popcount_words(xor).sum(
            axis=-1, dtype=np.int64
        )
    return counts


def hamming_scores_packed(
    q_words: np.ndarray,
    m_words: np.ndarray,
    dim: int,
    chunk_size: Optional[int] = None,
) -> np.ndarray:
    """Similarity scores ``(dim - 2*hamming) / dim`` between packed rows.

    The bipolar analogue of cosine similarity: identical rows score 1.0,
    complementary rows -1.0, and the score is a strictly decreasing
    function of Hamming distance, so argmax rankings match any other
    monotone Hamming scoring.  Returns ``(n, k)`` float64.
    """
    if dim <= 0:
        raise ValueError(f"dim must be positive, got {dim}")
    counts = hamming_counts_packed(q_words, m_words, chunk_size=chunk_size)
    scale = np.float64(dim)
    return (scale - 2.0 * counts.astype(np.float64)) / scale


def flip_packed_bits(
    words: np.ndarray,
    n_flips: int,
    dim: int,
    rng: np.random.Generator,
) -> int:
    """XOR exactly ``n_flips`` distinct payload bits of packed rows, in place.

    Fault injection in the packed domain: draws ``n_flips`` distinct cell
    positions uniformly over the ``n_rows * dim`` **payload** bits (pad
    bits are never touched, preserving the padding contract) and flips
    each with a literal XOR mask.  Returns the number of bits flipped.
    """
    arr = _check_words(words)
    if arr.shape[1] != words_per_row(dim):
        raise ValueError(
            f"words have {arr.shape[1]} columns but dim={dim} needs "
            f"{words_per_row(dim)}"
        )
    total = arr.shape[0] * int(dim)
    n_flips = int(n_flips)
    if n_flips < 0 or n_flips > total:
        raise ValueError(
            f"n_flips must be in [0, {total}], got {n_flips}"
        )
    if n_flips == 0:
        return 0
    positions = rng.choice(total, size=n_flips, replace=False)
    rows = positions // dim
    cells = positions % dim
    word_cols = (cells // WORD_BITS).astype(np.int64)
    masks = np.uint64(1) << (cells % WORD_BITS).astype(np.uint64)
    np.bitwise_xor.at(arr, (rows.astype(np.int64), word_cols), masks)
    return n_flips
