"""Fast Walsh–Hadamard transform over row batches.

The structured-projection encoders (SORF/Fastfood,
:mod:`repro.hdc.encoders.structured`) replace the dense ``(D, q)`` Gaussian
projection with chains of ``H · diag(±1)`` factors, where ``H`` is the
(unnormalised, Hadamard-ordered) Walsh–Hadamard matrix of a power-of-two
order ``m``:

    H_1 = [1],   H_2m = [[H_m, H_m], [H_m, -H_m]]

Applying ``H`` naively is an ``O(m²)`` matmul; this module applies it in
``O(m^1.5)`` arithmetic that runs at BLAS speed via the Kronecker
factorisation ``H_m = H_f1 ⊗ H_f2 ⊗ … ⊗ H_fk`` (balanced factors of order
≤ 128).  Each factor is one *high-radix butterfly stage* executed as a
batched GEMM along its axis of the row viewed as an ``(f1, …, fk)`` tensor —
for the common two-factor case, ``row ↦ H_a · mat(row) · H_b``.  This beats
the classic radix-2 butterfly by an order of magnitude here because the
±1-matrix GEMMs run on the BLAS kernels while stride-1/2/4 butterfly passes
are NumPy-dispatch-bound.  Three properties the encoders rely on:

- **Unnormalised convention** — ``fwht_rows_inplace(x)`` computes ``x @ H``
  exactly (``H`` symmetric, entries ±1, ``H @ H == m·I``).  Callers fold any
  ``1/√m``-style normalisation into their own scaling diagonal, keeping the
  transform itself integer-exact: for inputs whose entries are integers,
  every intermediate is an integer too, so the float result is
  *bit-identical* to the ``H``-matrix reference at float64 (the property the
  perf harness asserts).
- **Row-count-invariant rounding** — every GEMM is batched with a
  *per-sample-fixed* operand shape (``(f, post) @ (f, f)`` style), never
  flattened into one variable-height GEMM: BLAS picks kernels (and hence
  summation order) by operand shape, so a lone row routed through ``gemv``
  would round differently than the same row inside a taller batch.  Fixed
  shapes make the transform of a row bit-identical no matter how many
  neighbours it is batched with — the invariant ``Encoder.encode``'s
  chunked path and ``shard_fit`` determinism need.
- **In place** — the transform overwrites its input (ping-ponging with one
  scratch buffer), so encoder pipelines (``H D₃ H D₂ H D₁ x``) reuse one
  work buffer across the whole chain.  Rows are processed in cache-sized
  chunks so a chunk plus its scratch stay resident across all stages.

Backends expose this through :meth:`repro.backend.base.ArrayBackend.fwht_rows`
(the torch backend overrides with native batched-tensor GEMMs).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.backend.base import auto_chunk_rows

__all__ = [
    "is_pow2",
    "next_pow2",
    "hadamard_matrix",
    "fwht_rows_inplace",
    "fwht_rows",
]

#: Largest Hadamard factor order applied as a single GEMM.  128² entries of
#: float64 is 128 KiB — L2-resident — and a 2⁷ radix keeps the factor count
#: at two for every realistic padded feature width (m ≤ 16384).
_MAX_FACTOR_BITS = 7


def is_pow2(n: int) -> bool:
    """Whether ``n`` is a positive power of two."""
    n = int(n)
    return n > 0 and (n & (n - 1)) == 0


def next_pow2(n: int) -> int:
    """Smallest power of two ``>= n`` (``n`` must be positive)."""
    n = int(n)
    if n <= 0:
        raise ValueError(f"next_pow2 needs a positive size, got {n}")
    return 1 << (n - 1).bit_length()


def hadamard_matrix(order: int, dtype: np.dtype = np.float64) -> np.ndarray:
    """The naive ``(order, order)`` Walsh–Hadamard matrix (Sylvester form).

    The ``O(m²)`` reference the fast transform is verified against;
    ``order`` must be a power of two.
    """
    if not is_pow2(order):
        raise ValueError(f"Hadamard order must be a power of two, got {order}")
    H = np.ones((1, 1), dtype=np.dtype(dtype))
    while H.shape[0] < order:
        H = np.block([[H, H], [H, -H]])
    return H


#: Cached small Hadamard factors, keyed by (order, dtype).
_H_FACTORS: dict = {}


def _h_factor(order: int, dtype: np.dtype) -> np.ndarray:
    key = (order, np.dtype(dtype))
    H = _H_FACTORS.get(key)
    if H is None:
        H = hadamard_matrix(order, dtype=key[1])
        _H_FACTORS[key] = H
    return H


def _factor_orders(m: int) -> Tuple[int, ...]:
    """Balanced Kronecker factor orders (each ≤ 2^_MAX_FACTOR_BITS) for ``m``.

    ``log₂ m`` is split as evenly as possible across the minimum factor
    count: balance minimises the arithmetic, ``m · Σ fᵢ`` (e.g. 1024 → 32·32
    at 64·m multiplies, versus 136·m for the lopsided 128·8 split).
    """
    bits = m.bit_length() - 1
    if bits <= _MAX_FACTOR_BITS:
        return (m,)
    k = -(-bits // _MAX_FACTOR_BITS)
    base, rem = divmod(bits, k)
    return tuple(
        1 << (base + 1 if i < rem else base) for i in range(k)
    )


def _fwht_chunk(x: np.ndarray, scratch: np.ndarray, factors: Tuple[int, ...]) -> None:
    """Transform one row chunk in place, ping-ponging with ``scratch``.

    Each Kronecker factor ``f`` is contracted along its own axis of the row
    viewed as an ``(f₁, …, f_k)`` tensor, as a batched GEMM whose per-sample
    operand shape is independent of the chunk's row count (see module
    docstring).  When the factor count is odd the final stage lands in
    ``scratch`` and one copy restores ``x``.
    """
    n, m = x.shape
    src, dst = x, scratch
    pre, post = 1, m
    for f in factors:
        post //= f
        H = _h_factor(f, x.dtype)
        if post == 1:
            np.matmul(
                src.reshape(n, pre, f), H, out=dst.reshape(n, pre, f)
            )
        else:
            np.matmul(
                H,
                src.reshape(n * pre, f, post),
                out=dst.reshape(n * pre, f, post),
            )
        src, dst = dst, src
        pre *= f
    if src is not x:
        np.copyto(x, src)


def fwht_rows_inplace(x: np.ndarray, chunk_rows: Optional[int] = None) -> np.ndarray:
    """Walsh–Hadamard-transform every row of ``x`` in place; returns ``x``.

    ``x`` must be a C-contiguous, writable 2-D float array whose column
    count is a power of two.  ``chunk_rows`` bounds the rows transformed per
    pass (default: a cache-sized count via
    :func:`repro.backend.base.auto_chunk_rows`), so the working set —
    chunk plus one equal-sized scratch buffer — stays cache-resident across
    all stages.
    """
    if x.ndim != 2:
        raise ValueError(f"fwht_rows_inplace needs a 2-D array, got {x.ndim}-D")
    n, m = x.shape
    if not is_pow2(m):
        raise ValueError(
            f"fwht_rows_inplace needs a power-of-two column count, got {m}"
        )
    if not (x.flags.c_contiguous and x.flags.writeable):
        raise ValueError(
            "fwht_rows_inplace needs a C-contiguous writable array; "
            "pass a copy (or use fwht_rows)"
        )
    if m == 1 or n == 0:
        return x
    factors = _factor_orders(m)
    chunk = int(chunk_rows) if chunk_rows is not None else auto_chunk_rows(m)
    chunk = max(1, min(chunk, n))
    scratch = np.empty((chunk, m), dtype=x.dtype)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        rows = stop - start
        _fwht_chunk(x[start:stop], scratch[:rows], factors)
    return x


def fwht_rows(x: np.ndarray, chunk_rows: Optional[int] = None) -> np.ndarray:
    """Out-of-place convenience wrapper: transform a float copy of ``x``."""
    arr = np.array(x, copy=True, order="C")  # repro: allow[backend-purity] copy preserves input dtype
    if not np.issubdtype(arr.dtype, np.floating):
        arr = arr.astype(np.float64)
    if arr.ndim == 1:
        return fwht_rows_inplace(arr.reshape(1, -1), chunk_rows=chunk_rows)[0]
    return fwht_rows_inplace(arr, chunk_rows=chunk_rows)
