"""N-gram sequence encoder.

Encodes discrete symbol sequences (e.g. characters, event streams) as bundles
of permuted-and-bound n-grams — the standard HDC recipe for temporal data and
the encoder family behind the voice/activity applications the paper's
introduction motivates.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.backend import resolve_dtype
from repro.hdc.ops import bind, permute
from repro.hdc.spaces import random_bipolar
from repro.utils.rng import SeedLike, as_rng


class NGramEncoder:
    """Encode symbol sequences into hypervectors via n-gram statistics.

    Parameters
    ----------
    n_symbols:
        Alphabet size; sequences must contain integers in ``[0, n_symbols)``.
    dim:
        Output dimensionality.
    n:
        N-gram order (``n = 3`` is the classic trigram encoder).
    seed:
        RNG seed.
    """

    def __init__(
        self,
        n_symbols: int,
        dim: int,
        *,
        n: int = 3,
        seed: SeedLike = None,
        dtype: Any = None,
    ) -> None:
        if n_symbols <= 0:
            raise ValueError(f"n_symbols must be positive, got {n_symbols}")
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if n <= 0:
            raise ValueError(f"n-gram order must be positive, got {n}")
        self.n_symbols = int(n_symbols)
        self.dim = int(dim)
        self.n = int(n)
        self.dtype = resolve_dtype(dtype)
        self.symbol_vectors = random_bipolar(self.n_symbols, self.dim, as_rng(seed))

    def encode_sequence(self, sequence: Sequence[int]) -> np.ndarray:
        """Encode one sequence as the bundle of its bound n-grams.

        A sequence shorter than ``n`` is encoded from its single, shorter
        gram; an empty sequence raises ``ValueError``.
        """
        seq = np.asarray(sequence, dtype=np.int64).ravel()
        if seq.size == 0:
            raise ValueError("cannot encode an empty sequence")
        if seq.min() < 0 or seq.max() >= self.n_symbols:
            raise ValueError(
                f"symbols must lie in [0, {self.n_symbols}), got range "
                f"[{seq.min()}, {seq.max()}]"
            )
        order = min(self.n, seq.size)
        out = np.zeros(self.dim, dtype=self.dtype)
        symbols = self.symbol_vectors.astype(self.dtype)
        for start in range(seq.size - order + 1):
            gram = symbols[seq[start]]
            # position j in the gram gets j cyclic shifts, binding order in.
            for offset in range(1, order):
                gram = bind(gram, permute(symbols[seq[start + offset]], offset))
            out += gram
        return out

    def encode(self, sequences: Sequence[Sequence[int]]) -> np.ndarray:
        """Encode a batch of sequences into an ``(n, D)`` matrix."""
        if len(sequences) == 0:
            raise ValueError("cannot encode an empty batch")
        return np.stack([self.encode_sequence(seq) for seq in sequences])
