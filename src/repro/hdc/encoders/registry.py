"""Encoder registry: spec strings → constructed encoders.

Every model used to hard-code ``RBFEncoder`` at construction; the registry
makes the encoder family a configuration choice instead.  A *spec* is a
lowercase string naming a registered factory:

- ``"rbf"`` — dense Gaussian RBF encoder (the paper's default);
- ``"fastfood-rbf"`` — structured SORF/Fastfood RBF encoder, O(D log D)
  encode with O(D) parameter memory;
- ``"projection-{linear,sign,tanh,cos}"`` — dense random projection with the
  given activation (``"projection"`` aliases the linear one);
- ``"structured-{linear,sign,tanh,cos}"`` — SORF-chain projection with the
  given activation (``"structured"`` aliases the linear one).

``make_encoder`` takes one uniform keyword set (``bandwidth``, ``seed``,
``dtype``, ``backend``) so callers thread a single knob bundle through
configs; factories consume what applies to their family — ``bandwidth`` is a
kernel-width knob the non-RBF projections accept and ignore.  All registered
encoders are :class:`~repro.hdc.encoders.base.RegenerableEncoder` subclasses,
so DistHD/NeuralHD regeneration works regardless of the spec chosen.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.backend import BackendLike
from repro.hdc.encoders.base import RegenerableEncoder
from repro.hdc.encoders.projection import RandomProjectionEncoder
from repro.hdc.encoders.rbf import RBFEncoder
from repro.hdc.encoders.structured import (
    FastfoodRBFEncoder,
    StructuredProjectionEncoder,
)
from repro.utils.rng import SeedLike

#: The spec models fall back to when no encoder choice is given — the dense
#: RBF encoder the paper (and every pre-registry config) uses.
DEFAULT_ENCODER = "rbf"

EncoderFactory = Callable[..., RegenerableEncoder]

_REGISTRY: Dict[str, EncoderFactory] = {}


def register_encoder(spec: str, factory: EncoderFactory) -> None:
    """Register ``factory`` under ``spec`` (stored lowercase).

    The factory must accept ``(n_features, dim, *, bandwidth, seed, dtype,
    backend)`` and return a :class:`RegenerableEncoder`.  Re-registering a
    spec replaces the previous factory.
    """
    key = str(spec).strip().lower()
    if not key:
        raise ValueError("encoder spec must be a non-empty string")
    _REGISTRY[key] = factory


def list_encoders() -> Tuple[str, ...]:
    """All registered spec strings, sorted."""
    return tuple(sorted(_REGISTRY))


def make_encoder(
    spec: str,
    n_features: int,
    dim: int,
    *,
    bandwidth: float = 1.0,
    seed: SeedLike = None,
    dtype: object = None,
    backend: BackendLike = None,
) -> RegenerableEncoder:
    """Construct the encoder named by ``spec`` (case-insensitive)."""
    key = str(spec).strip().lower()
    factory = _REGISTRY.get(key)
    if factory is None:
        raise ValueError(
            f"unknown encoder spec {spec!r}; registered specs: "
            f"{', '.join(list_encoders())}"
        )
    return factory(
        n_features,
        dim,
        bandwidth=bandwidth,
        seed=seed,
        dtype=dtype,
        backend=backend,
    )


def _rbf_family(cls: type) -> EncoderFactory:
    def factory(n_features, dim, *, bandwidth, seed, dtype, backend):
        return cls(
            n_features,
            dim,
            bandwidth=bandwidth,
            seed=seed,
            dtype=dtype,
            backend=backend,
        )

    return factory


def _projection_family(cls: type, activation: str) -> EncoderFactory:
    def factory(n_features, dim, *, bandwidth, seed, dtype, backend):
        # bandwidth is an RBF kernel-width knob; the plain projections have
        # none, so it is accepted (for the uniform signature) and ignored.
        return cls(
            n_features,
            dim,
            activation=activation,
            seed=seed,
            dtype=dtype,
            backend=backend,
        )

    return factory


register_encoder("rbf", _rbf_family(RBFEncoder))
register_encoder("fastfood-rbf", _rbf_family(FastfoodRBFEncoder))
for _activation in ("linear", "sign", "tanh", "cos"):
    register_encoder(
        f"projection-{_activation}",
        _projection_family(RandomProjectionEncoder, _activation),
    )
    register_encoder(
        f"structured-{_activation}",
        _projection_family(StructuredProjectionEncoder, _activation),
    )
register_encoder("projection", _projection_family(RandomProjectionEncoder, "linear"))
register_encoder("structured", _projection_family(StructuredProjectionEncoder, "linear"))
