"""Encoder interfaces.

Two protocols:

- :class:`Encoder` — anything mapping an ``(n, q)`` feature matrix to an
  ``(n, D)`` hypervector batch;
- :class:`RegenerableEncoder` — encoders whose individual output dimensions
  can be redrawn, the capability DistHD and NeuralHD build on.

Encoders carry a compute dtype and an
:class:`~repro.backend.base.ArrayBackend`: parameters are stored and
encodings produced at ``dtype`` on the chosen backend (float64 NumPy by
default; the model configs run the hot paths at float32).
"""

from __future__ import annotations

import abc

from typing import Any

import numpy as np

from repro.backend import BackendLike, get_backend, resolve_dtype
from repro.utils.validation import check_features_match, check_matrix


class Encoder(abc.ABC):
    """Maps feature vectors onto hyperdimensional space.

    Attributes
    ----------
    n_features:
        Expected input feature count ``q``.
    dim:
        Output hypervector dimensionality ``D``.
    dtype:
        Output (and parameter) dtype.
    backend:
        The :class:`~repro.backend.base.ArrayBackend` encodings run on.
    """

    def __init__(
        self,
        n_features: int,
        dim: int,
        *,
        dtype: Any = None,
        backend: BackendLike = None,
    ) -> None:
        if n_features <= 0:
            raise ValueError(f"n_features must be positive, got {n_features}")
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.n_features = int(n_features)
        self.dim = int(dim)
        self.dtype = resolve_dtype(dtype)
        self.backend = get_backend(backend)

    def encode(self, X: Any, *, chunk_size: Any = None) -> Any:
        """Encode ``(n, q)`` features into ``(n, D)`` hypervectors.

        ``chunk_size`` encodes in row windows into one preallocated output,
        bounding intermediate memory at ``O(chunk_size · D)`` — the encoder
        nonlinearities otherwise materialise several ``(n, D)`` temporaries.
        The ``(n, D)`` result itself is allocated either way; results are
        identical because encoding is row-independent.
        """
        X = self._check_input(X)
        n = int(X.shape[0])
        if chunk_size is None or n <= int(chunk_size):
            return self._encode(X)
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        b = self.backend
        chunk = int(chunk_size)
        # Every row window of the output is overwritten below, so skip the
        # zero-fill; one index vector is allocated up front and sliced per
        # chunk instead of re-built inside the loop.
        out = b.empty((n, self.dim), dtype=self.dtype)
        idx = np.arange(n, dtype=np.int64)
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            b.set_rows(
                out,
                idx[start:stop],
                b.asarray(
                    self._encode(b.slice_rows(X, start, stop)),
                    dtype=self.dtype,
                ),
            )
        return out

    def _check_input(self, X: Any) -> Any:
        """Validate features and cast them to the encoder's dtype/backend.

        NumPy inputs (and anything coercible) get the full ``check_matrix``
        treatment — shape and finiteness — without a dtype-changing copy;
        non-NumPy backend-native tensors are shape-checked only (a host
        round-trip per encode would defeat the point of a device backend).
        """
        b = self.backend
        if isinstance(X, np.ndarray) or not b.is_native(X):
            X = check_matrix(X, "X", dtype=None)
        elif X.ndim == 1:
            X = X.reshape(1, -1)
        check_features_match(self.n_features, X.shape[1], type(self).__name__)
        return b.asarray(X, dtype=self.dtype)

    @abc.abstractmethod
    def _encode(self, X: Any) -> Any:
        """Encode validated input (subclass hook)."""

    def __call__(self, X: Any) -> Any:
        return self.encode(X)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n_features={self.n_features}, dim={self.dim})"


class RegenerableEncoder(Encoder):
    """An encoder whose output dimensions can be individually redrawn."""

    @abc.abstractmethod
    def regenerate(self, dims: np.ndarray) -> None:
        """Redraw the parameters producing the given output dimensions.

        After this call, encoding the same input yields fresh values at
        ``dims`` and identical values everywhere else.
        """

    def _check_dims(self, dims: np.ndarray) -> np.ndarray:
        arr = np.asarray(dims)
        if arr.size and not np.issubdtype(arr.dtype, np.integer):
            # An int64 cast would silently truncate 2.7 -> 2; make the
            # caller pass real indices.
            raise ValueError(
                f"dimension indices must be integers, got dtype {arr.dtype}"
            )
        dims = arr.astype(np.int64, copy=False).ravel()
        if dims.size and (dims.min() < 0 or dims.max() >= self.dim):
            raise ValueError(
                f"dimension indices must lie in [0, {self.dim}), got range "
                f"[{dims.min()}, {dims.max()}]"
            )
        return dims
