"""Encoder interfaces.

Two protocols:

- :class:`Encoder` — anything mapping an ``(n, q)`` feature matrix to an
  ``(n, D)`` hypervector batch;
- :class:`RegenerableEncoder` — encoders whose individual output dimensions
  can be redrawn, the capability DistHD and NeuralHD build on.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.utils.validation import check_features_match, check_matrix


class Encoder(abc.ABC):
    """Maps feature vectors onto hyperdimensional space.

    Attributes
    ----------
    n_features:
        Expected input feature count ``q``.
    dim:
        Output hypervector dimensionality ``D``.
    """

    def __init__(self, n_features: int, dim: int) -> None:
        if n_features <= 0:
            raise ValueError(f"n_features must be positive, got {n_features}")
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.n_features = int(n_features)
        self.dim = int(dim)

    def encode(self, X: np.ndarray) -> np.ndarray:
        """Encode ``(n, q)`` features into ``(n, D)`` hypervectors."""
        X = check_matrix(X, "X")
        check_features_match(self.n_features, X.shape[1], type(self).__name__)
        return self._encode(X)

    @abc.abstractmethod
    def _encode(self, X: np.ndarray) -> np.ndarray:
        """Encode validated input (subclass hook)."""

    def __call__(self, X: np.ndarray) -> np.ndarray:
        return self.encode(X)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n_features={self.n_features}, dim={self.dim})"


class RegenerableEncoder(Encoder):
    """An encoder whose output dimensions can be individually redrawn."""

    @abc.abstractmethod
    def regenerate(self, dims: np.ndarray) -> None:
        """Redraw the parameters producing the given output dimensions.

        After this call, encoding the same input yields fresh values at
        ``dims`` and identical values everywhere else.
        """

    def _check_dims(self, dims: np.ndarray) -> np.ndarray:
        dims = np.asarray(dims, dtype=np.int64).ravel()
        if dims.size and (dims.min() < 0 or dims.max() >= self.dim):
            raise ValueError(
                f"dimension indices must lie in [0, {self.dim}), got range "
                f"[{dims.min()}, {dims.max()}]"
            )
        return dims
