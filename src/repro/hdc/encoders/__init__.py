"""Encoder family: feature vectors → hypervectors.

The paper's contribution lives in making the encoder *dynamic*; the encoder
interface therefore exposes not just :meth:`~repro.hdc.encoders.base.Encoder.encode`
but (for encoders that support it) per-dimension regeneration.
"""

from repro.hdc.encoders.base import Encoder, RegenerableEncoder
from repro.hdc.encoders.id_level import IDLevelEncoder
from repro.hdc.encoders.ngram import NGramEncoder
from repro.hdc.encoders.projection import RandomProjectionEncoder
from repro.hdc.encoders.rbf import RBFEncoder
from repro.hdc.encoders.registry import (
    DEFAULT_ENCODER,
    list_encoders,
    make_encoder,
    register_encoder,
)
from repro.hdc.encoders.structured import (
    FastfoodRBFEncoder,
    StructuredProjectionEncoder,
)

__all__ = [
    "Encoder",
    "RegenerableEncoder",
    "IDLevelEncoder",
    "NGramEncoder",
    "RandomProjectionEncoder",
    "RBFEncoder",
    "StructuredProjectionEncoder",
    "FastfoodRBFEncoder",
    "DEFAULT_ENCODER",
    "make_encoder",
    "register_encoder",
    "list_encoders",
]
