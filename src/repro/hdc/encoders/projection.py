"""Static random-projection encoders.

These are the "pre-generated static encoder" family the paper contrasts
against: a fixed Gaussian projection followed by an optional nonlinearity or
sign quantisation.  BaselineHD uses them.
"""

from __future__ import annotations

import numpy as np

from typing import Any

from repro.backend import BackendLike
from repro.hdc.encoders.base import RegenerableEncoder
from repro.utils.rng import SeedLike, as_rng

_ACTIVATIONS = ("linear", "sign", "tanh", "cos")


class RandomProjectionEncoder(RegenerableEncoder):
    """Linear random projection ``H = X @ B.T`` with optional activation.

    Parameters
    ----------
    n_features, dim:
        Input and output sizes.
    activation:
        ``"linear"`` (raw projection, Algorithm 1 line 1 of the paper),
        ``"sign"`` (bipolar hypervectors), ``"tanh"`` or ``"cos"``.
    seed:
        RNG seed.
    dtype, backend:
        Compute dtype and array backend.

    Although static encoders never regenerate during normal training, the
    class still implements :meth:`regenerate` so ablations can graft dynamic
    regeneration onto a linear encoder.
    """

    def __init__(
        self,
        n_features: int,
        dim: int,
        *,
        activation: str = "linear",
        seed: SeedLike = None,
        dtype: Any = None,
        backend: BackendLike = None,
    ) -> None:
        super().__init__(n_features, dim, dtype=dtype, backend=backend)
        if activation not in _ACTIVATIONS:
            raise ValueError(
                f"activation must be one of {_ACTIVATIONS}, got {activation!r}"
            )
        self.activation = activation
        self._rng = as_rng(seed)
        # Same 1/sqrt(q) projection scaling as the RBF encoder so the "cos"
        # activation stays in its informative phase range on standardised
        # inputs (linear/sign/tanh are scale-robust but benefit too).
        self._scale = 1.0 / np.sqrt(self.n_features)
        self.base_vectors = self.backend.draw_normal(
            self._rng, 0.0, self._scale, (self.dim, self.n_features), self.dtype
        )
        self.regenerated_count = 0

    def _activate(self, projections: Any) -> Any:
        b = self.backend
        if self.activation == "linear":
            return projections
        if self.activation == "sign":
            # Break sign(0) ties to +1 so outputs stay strictly bipolar.
            return b.where(
                projections >= 0.0,
                b.ones_like(projections),
                -b.ones_like(projections),
            )
        if self.activation == "tanh":
            return b.tanh(projections)
        return b.cos(projections)

    def _encode(self, X: Any) -> Any:
        b = self.backend
        return self._activate(b.matmul(X, b.transpose(self.base_vectors)))

    def encode_dims(self, X: Any, dims: np.ndarray) -> Any:
        """Encode only the selected output dimensions (``(n, len(dims))``)."""
        dims = self._check_dims(dims)
        b = self.backend
        if dims.size == 0:
            return b.zeros((np.asarray(X).shape[0], 0), dtype=self.dtype)
        X = self._check_input(X)
        rows = b.take_rows(self.base_vectors, dims)
        return self._activate(b.matmul(X, b.transpose(rows)))

    def regenerate(self, dims: np.ndarray) -> None:
        dims = self._check_dims(dims)
        if dims.size == 0:
            return
        self.backend.set_rows(
            self.base_vectors,
            dims,
            self.backend.draw_normal(
                self._rng, 0.0, self._scale,
                (dims.size, self.n_features), self.dtype,
            ),
        )
        self.regenerated_count += int(dims.size)

    def effective_dim(self) -> int:
        """Effective dimensionality ``D* = D + total regenerated``."""
        return self.dim + self.regenerated_count
