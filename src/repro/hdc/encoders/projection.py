"""Static random-projection encoders.

These are the "pre-generated static encoder" family the paper contrasts
against: a fixed Gaussian projection followed by an optional nonlinearity or
sign quantisation.  BaselineHD uses them.
"""

from __future__ import annotations

import numpy as np

from repro.hdc.encoders.base import RegenerableEncoder
from repro.utils.rng import SeedLike, as_rng

_ACTIVATIONS = ("linear", "sign", "tanh", "cos")


class RandomProjectionEncoder(RegenerableEncoder):
    """Linear random projection ``H = X @ B.T`` with optional activation.

    Parameters
    ----------
    n_features, dim:
        Input and output sizes.
    activation:
        ``"linear"`` (raw projection, Algorithm 1 line 1 of the paper),
        ``"sign"`` (bipolar hypervectors), ``"tanh"`` or ``"cos"``.
    seed:
        RNG seed.

    Although static encoders never regenerate during normal training, the
    class still implements :meth:`regenerate` so ablations can graft dynamic
    regeneration onto a linear encoder.
    """

    def __init__(
        self,
        n_features: int,
        dim: int,
        *,
        activation: str = "linear",
        seed: SeedLike = None,
    ) -> None:
        super().__init__(n_features, dim)
        if activation not in _ACTIVATIONS:
            raise ValueError(
                f"activation must be one of {_ACTIVATIONS}, got {activation!r}"
            )
        self.activation = activation
        self._rng = as_rng(seed)
        # Same 1/sqrt(q) projection scaling as the RBF encoder so the "cos"
        # activation stays in its informative phase range on standardised
        # inputs (linear/sign/tanh are scale-robust but benefit too).
        self._scale = 1.0 / np.sqrt(self.n_features)
        self.base_vectors = self._rng.normal(
            0.0, self._scale, size=(self.dim, self.n_features)
        )

    def _encode(self, X: np.ndarray) -> np.ndarray:
        projections = X @ self.base_vectors.T
        if self.activation == "linear":
            return projections
        if self.activation == "sign":
            # Break sign(0) ties to +1 so outputs stay strictly bipolar.
            return np.where(projections >= 0.0, 1.0, -1.0)
        if self.activation == "tanh":
            return np.tanh(projections)
        return np.cos(projections)

    def regenerate(self, dims: np.ndarray) -> None:
        dims = self._check_dims(dims)
        if dims.size == 0:
            return
        self.base_vectors[dims] = self._rng.normal(
            0.0, self._scale, size=(dims.size, self.n_features)
        )
