"""The RBF-inspired nonlinear encoder (paper §III-C, "Dimension Regeneration").

For a feature vector ``F`` with ``q`` features, dimension ``i`` of the encoded
hypervector is

    h_i = cos(B_i · F + c_i) * sin(B_i · F)

with base vector ``B_i ~ N(0, σ²)^q`` and phase ``c_i ~ U[0, 2π)``.  This is
the random-Fourier-feature construction of Rahimi & Recht that the paper
cites, with the cos·sin product giving a bounded nonlinearity in [-1, 1].

The paper writes ``b ~ Gaussian(µ=0, σ=1)`` but leaves the input scaling
implicit.  For standardised inputs with ``q`` features, ``B_i·F`` then has
standard deviation ``√q`` (≈24 on UCIHAR), wrapping the phase dozens of times
and turning the encoder into a random hash with no generalisation.  Working
HDC implementations normalise for this; we draw
``B_i ~ N(0, (bandwidth/√q)²)`` so the projection is O(1)-scale for
standardised inputs, with ``bandwidth`` as the kernel-width knob.

Regeneration redraws ``B_i`` (and ``c_i``) for selected dimensions — the
mechanical heart of DistHD's dynamic encoding.
"""

from __future__ import annotations

import numpy as np

from typing import Any

from repro.backend import BackendLike
from repro.hdc.encoders.base import RegenerableEncoder
from repro.utils.rng import SeedLike, as_rng


class RBFEncoder(RegenerableEncoder):
    """Nonlinear random-projection encoder with per-dimension regeneration.

    Parameters
    ----------
    n_features:
        Input feature count ``q``.
    dim:
        Output dimensionality ``D``.
    bandwidth:
        Kernel-width knob: base vectors are drawn from
        ``N(0, (bandwidth/√n_features)²)`` (larger → higher-frequency
        features).
    seed:
        RNG seed; regeneration draws continue from the same stream so a full
        training run is reproducible end-to-end.  Draws are materialised via
        NumPy regardless of backend, so encoders built at the same seed are
        bit-identical across backends.
    dtype, backend:
        Compute dtype and array backend for parameters and encodings.

    Attributes
    ----------
    base_vectors:
        ``(D, q)`` Gaussian projection matrix (row ``i`` is ``B_i``).
    phases:
        ``(D,)`` phase offsets ``c``.
    regenerated_count:
        Total number of dimension redraws performed over the encoder's
        lifetime; the paper's *effective dimensionality* is
        ``D + regenerated_count`` (``D* = D + D·R%·iterations``).
    """

    def __init__(
        self,
        n_features: int,
        dim: int,
        *,
        bandwidth: float = 1.0,
        seed: SeedLike = None,
        dtype: Any = None,
        backend: BackendLike = None,
    ) -> None:
        super().__init__(n_features, dim, dtype=dtype, backend=backend)
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self.bandwidth = float(bandwidth)
        self._scale = self.bandwidth / np.sqrt(self.n_features)
        self._rng = as_rng(seed)
        b = self.backend
        self.base_vectors = b.draw_normal(
            self._rng, 0.0, self._scale, (self.dim, self.n_features), self.dtype
        )
        self.phases = b.draw_uniform(
            self._rng, 0.0, 2.0 * np.pi, self.dim, self.dtype
        )
        self.regenerated_count = 0

    def _encode(self, X: Any) -> Any:
        b = self.backend
        projections = b.matmul(X, b.transpose(self.base_vectors))  # (n, D)
        return b.cos(projections + self.phases) * b.sin(projections)

    def encode_dims(self, X: Any, dims: np.ndarray) -> Any:
        """Encode only the selected output dimensions (``(n, len(dims))``).

        Lets training refresh just the regenerated columns of a cached
        encoding instead of re-encoding the full batch.
        """
        dims = self._check_dims(dims)
        b = self.backend
        if dims.size == 0:
            return b.zeros((np.asarray(X).shape[0], 0), dtype=self.dtype)
        X = self._check_input(X)
        rows = b.take_rows(self.base_vectors, dims)
        projections = b.matmul(X, b.transpose(rows))
        phases = b.take_rows(self.phases, dims)
        return b.cos(projections + phases) * b.sin(projections)

    def regenerate(self, dims: np.ndarray) -> None:
        """Redraw base vectors and phases for the given output dimensions."""
        dims = self._check_dims(dims)
        if dims.size == 0:
            return
        b = self.backend
        b.set_rows(
            self.base_vectors,
            dims,
            b.draw_normal(
                self._rng, 0.0, self._scale,
                (dims.size, self.n_features), self.dtype,
            ),
        )
        b.set_rows(
            self.phases,
            dims,
            b.draw_uniform(self._rng, 0.0, 2.0 * np.pi, dims.size, self.dtype),
        )
        self.regenerated_count += int(dims.size)

    def effective_dim(self) -> int:
        """Paper's effective dimensionality ``D* = D + total regenerated``."""
        return self.dim + self.regenerated_count
